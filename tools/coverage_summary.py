#!/usr/bin/env python3
"""Line-coverage summary over a QAGVIEW_COVERAGE=ON build, gcov only.

Runs gcov on every .gcda the instrumented ctest run produced, keeps the
results for first-party sources (src/ by default), and prints a per-file
and total line-coverage table. No gcovr/lcov dependency — the CI coverage
job and a bare container both have plain gcov.

Usage (from the repo root, after building with -DQAGVIEW_COVERAGE=ON and
running ctest in <build-dir>):

    python3 tools/coverage_summary.py --build-dir build-cov [--source src]
            [--output coverage.txt] [--fail-under 90]

Exit status: 0 on success, 1 when --fail-under is given and total line
coverage sits below it (the CI gate), 2 when no coverage data is found.
"""

import argparse
import os
import re
import subprocess
import sys


def find_gcda(build_dir):
    out = []
    for root, _dirs, files in os.walk(build_dir):
        # Absolute paths: gcov runs with cwd=build_dir, where paths
        # relative to the caller's cwd would not resolve.
        out.extend(os.path.abspath(os.path.join(root, f))
                   for f in files if f.endswith(".gcda"))
    return out


def run_gcov(gcda_files, build_dir):
    """Runs gcov in intermediate-text mode; returns {source: (covered, total)}."""
    stats = {}
    # Batch to keep command lines bounded.
    for start in range(0, len(gcda_files), 64):
        batch = gcda_files[start:start + 64]
        proc = subprocess.run(
            ["gcov", "--stdout", "--source-prefix", os.getcwd()] + batch,
            cwd=build_dir, capture_output=True, text=True, check=False)
        current = None
        for line in proc.stdout.splitlines():
            m = re.match(r"^\s*-:\s*0:Source:(.*)$", line)
            if m:
                current = m.group(1)
                continue
            m = re.match(r"^\s*([^:]+):\s*(\d+):", line)
            if m and current is not None:
                count, lineno = m.group(1).strip(), int(m.group(2))
                if lineno == 0:
                    continue
                covered, total = stats.get(current, (set(), set()))
                if count != "-":
                    total.add(lineno)
                    if count not in ("#####", "====="):
                        covered.add(lineno)
                stats[current] = (covered, total)
    return stats


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build-cov")
    parser.add_argument("--source", default="src",
                        help="first-party prefix to report (default: src)")
    parser.add_argument("--output", default=None,
                        help="also write the table to this file")
    parser.add_argument("--fail-under", type=float, default=None,
                        metavar="PCT",
                        help="exit 1 when total line coverage is below PCT "
                             "(default: report only)")
    args = parser.parse_args()

    gcda = find_gcda(args.build_dir)
    if not gcda:
        print(f"error: no .gcda files under {args.build_dir} — build with "
              f"-DQAGVIEW_COVERAGE=ON and run ctest first", file=sys.stderr)
        return 2

    stats = run_gcov(gcda, args.build_dir)
    rows = []
    grand_covered = grand_total = 0
    for source, (covered, total) in sorted(stats.items()):
        rel = os.path.relpath(source) if os.path.isabs(source) else source
        norm = rel.replace("\\", "/")
        if not norm.startswith(args.source.rstrip("/") + "/"):
            continue
        if not total:
            continue
        rows.append((norm, len(covered), len(total)))
        grand_covered += len(covered)
        grand_total += len(total)

    if grand_total == 0:
        print(f"error: no coverage rows matched prefix '{args.source}'",
              file=sys.stderr)
        return 2

    lines = [f"{'file':<44} {'lines':>7} {'covered':>8} {'%':>7}"]
    for name, covered, total in rows:
        lines.append(f"{name:<44} {total:>7} {covered:>8} "
                     f"{100.0 * covered / total:>6.1f}%")
    lines.append("-" * 68)
    lines.append(f"{'TOTAL':<44} {grand_total:>7} {grand_covered:>8} "
                 f"{100.0 * grand_covered / grand_total:>6.1f}%")
    table = "\n".join(lines)
    print(table)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(table + "\n")
        print(f"\nwrote {args.output}")
    if args.fail_under is not None:
        pct = 100.0 * grand_covered / grand_total
        if pct < args.fail_under:
            print(f"\ncoverage gate: FAILED — {pct:.1f}% < "
                  f"--fail-under {args.fail_under:g}%", file=sys.stderr)
            return 1
        print(f"\ncoverage gate: OK ({pct:.1f}% >= "
              f"{args.fail_under:g}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
