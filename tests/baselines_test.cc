#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "baselines/decision_tree.h"
#include "baselines/disc_diversity.h"
#include "baselines/diversified_topk.h"
#include "baselines/mmr.h"
#include "baselines/smart_drilldown.h"
#include "core/cluster.h"
#include "test_util.h"

namespace qagview::baselines {
namespace {

using core::AnswerSet;
using core::ClusterUniverse;

struct Instance {
  std::unique_ptr<AnswerSet> set;
  ClusterUniverse u;
};

Instance MakeInstance(uint64_t seed, int n, int m, int domain, int top_l) {
  auto set = std::make_unique<AnswerSet>(
      testutil::MakeRandomAnswerSet(seed, n, m, domain));
  auto u = ClusterUniverse::Build(set.get(), top_l);
  QAG_CHECK(u.ok()) << u.status().ToString();
  return Instance{std::move(set), std::move(u).value()};
}

// --- Smart drill-down. ---

TEST(SmartDrilldownTest, SelectsAtMostKMarginalRules) {
  Instance inst = MakeInstance(3, 60, 4, 3, 10);
  SmartDrilldownResult result = SmartDrilldown(inst.u, 3);
  EXPECT_LE(result.rules.size(), 3u);
  EXPECT_GT(result.total_score, 0.0);
  // Rules are distinct clusters, none trivial.
  std::set<int> ids;
  for (const DrilldownRule& r : result.rules) {
    EXPECT_TRUE(ids.insert(r.cluster_id).second);
    EXPECT_GT(r.weight, 0);
    EXPECT_GT(r.marginal_count, 0);
  }
}

TEST(SmartDrilldownTest, GreedyFirstPickMaximizesScore) {
  Instance inst = MakeInstance(5, 50, 4, 3, 8);
  SmartDrilldownResult result = SmartDrilldown(inst.u, 1);
  ASSERT_EQ(result.rules.size(), 1u);
  // Verify no other cluster has a strictly better first-pick score.
  const core::AnswerSet& s = inst.u.answer_set();
  double best = 0.0;
  for (int id = 0; id < inst.u.num_clusters(); ++id) {
    int weight = s.num_attrs() - inst.u.cluster(id).level();
    if (weight == 0) continue;
    double score = inst.u.covered_count(id) * weight * inst.u.Average(id);
    best = std::max(best, score);
  }
  EXPECT_NEAR(result.rules[0].contribution, best, 1e-9);
}

TEST(SmartDrilldownTest, PrefersPrevalentPatternsUnlikeMaxAvg) {
  // The Appendix A.5.1 point: drill-down scores by coverage x specificity,
  // so its rules cover many tuples regardless of their values. Its first
  // rule should cover at least as many tuples as any Max-Avg style pick of
  // a top singleton would (1).
  Instance inst = MakeInstance(7, 80, 4, 3, 12);
  SmartDrilldownOptions options;
  options.value_weighted = false;  // original [24] scoring
  SmartDrilldownResult result = SmartDrilldown(inst.u, 2, options);
  ASSERT_FALSE(result.rules.empty());
  EXPECT_GT(result.rules[0].marginal_count, 1);
}

// --- Diversified top-k. ---

TEST(DiversifiedTopKTest, ExactRespectsConstraintsAndBeatsGreedy) {
  Instance inst = MakeInstance(11, 60, 5, 3, 12);
  const AnswerSet& s = *inst.set;
  auto exact = DiversifiedTopKExact(s, 4, 12, 3);
  ASSERT_TRUE(exact.ok());
  EXPECT_LE(exact->element_ids.size(), 4u);
  for (size_t i = 0; i < exact->element_ids.size(); ++i) {
    for (size_t j = i + 1; j < exact->element_ids.size(); ++j) {
      EXPECT_GE(core::ElementDistance(
                    s.element(exact->element_ids[i]).attrs,
                    s.element(exact->element_ids[j]).attrs),
                3);
    }
  }
  DiversifiedTopKResult greedy = DiversifiedTopKGreedy(s, 4, 12, 3);
  EXPECT_GE(exact->score_sum, greedy.score_sum - 1e-9);
}

TEST(DiversifiedTopKTest, DZeroReturnsTopK) {
  Instance inst = MakeInstance(13, 50, 4, 3, 10);
  auto exact = DiversifiedTopKExact(*inst.set, 3, 10, 0);
  ASSERT_TRUE(exact.ok());
  std::vector<int> expected = {0, 1, 2};
  EXPECT_EQ(exact->element_ids, expected);
}

TEST(DiversifiedTopKTest, RepresentedAverageIncludesLowNeighbors) {
  // The A.5.2 criticism: representatives "cover" nearby elements including
  // low-valued ones, so the represented average sits below the raw scores.
  Instance inst = MakeInstance(17, 80, 4, 3, 10);
  auto exact = DiversifiedTopKExact(*inst.set, 4, 10, 2);
  ASSERT_TRUE(exact.ok());
  double rep_avg =
      RepresentedAverage(*inst.set, exact->element_ids, /*radius=*/1);
  double raw_avg = exact->score_sum / exact->element_ids.size();
  EXPECT_LE(rep_avg, raw_avg + 1e-9);
}

TEST(DiversifiedTopKTest, Validation) {
  Instance inst = MakeInstance(19, 50, 4, 3, 10);
  EXPECT_FALSE(DiversifiedTopKExact(*inst.set, 0, 10, 1).ok());
  EXPECT_FALSE(DiversifiedTopKExact(*inst.set, 3, 100, 1).ok());
}

// --- DisC diversity. ---

class DiscTest : public testing::TestWithParam<int> {};

TEST_P(DiscTest, GreedyOutputIsDiscDiverse) {
  int radius = GetParam();
  Instance inst = MakeInstance(23, 70, 5, 3, 20);
  DiscResult result = DiscDiversity(*inst.set, 20, radius);
  EXPECT_FALSE(result.element_ids.empty());
  EXPECT_TRUE(IsDiscDiverse(*inst.set, 20, radius, result.element_ids));
}

INSTANTIATE_TEST_SUITE_P(Radii, DiscTest, testing::Values(1, 2, 3));

TEST(DiscTest2, LargerRadiusNeverNeedsMoreRepresentatives) {
  Instance inst = MakeInstance(29, 70, 5, 3, 20);
  size_t prev = 1000;
  for (int radius : {1, 2, 3, 4}) {
    DiscResult result = DiscDiversity(*inst.set, 20, radius);
    EXPECT_LE(result.element_ids.size(), prev);
    prev = result.element_ids.size();
  }
}

TEST(DiscTest2, ValidatorCatchesViolations) {
  Instance inst = MakeInstance(31, 50, 4, 3, 10);
  // Two identical-ish close elements: ranks 0 and 1 likely within radius m.
  std::vector<int> bad = {0, 1};
  EXPECT_FALSE(
      IsDiscDiverse(*inst.set, 10, /*radius=*/inst.set->num_attrs(), bad));
  // Empty set dominates nothing.
  EXPECT_FALSE(IsDiscDiverse(*inst.set, 10, 1, {}));
}

// --- MMR. ---

TEST(MmrTest, LambdaZeroIsTopK) {
  Instance inst = MakeInstance(37, 60, 5, 3, 15);
  std::vector<int> picks = Mmr(*inst.set, 4, 15, 0.0);
  EXPECT_EQ(picks, (std::vector<int>{0, 1, 2, 3}));
}

TEST(MmrTest, LambdaOneMaximizesDispersion) {
  Instance inst = MakeInstance(41, 60, 5, 3, 15);
  const AnswerSet& s = *inst.set;
  std::vector<int> diverse = Mmr(s, 4, 15, 1.0);
  std::vector<int> relevant = Mmr(s, 4, 15, 0.0);
  auto min_pairwise = [&s](const std::vector<int>& ids) {
    int best = s.num_attrs();
    for (size_t i = 0; i < ids.size(); ++i) {
      for (size_t j = i + 1; j < ids.size(); ++j) {
        best = std::min(best, core::ElementDistance(s.element(ids[i]).attrs,
                                                    s.element(ids[j]).attrs));
      }
    }
    return best;
  };
  EXPECT_GE(min_pairwise(diverse), min_pairwise(relevant));
}

TEST(MmrTest, IntermediateLambdaTradesOff) {
  Instance inst = MakeInstance(43, 60, 5, 3, 15);
  const AnswerSet& s = *inst.set;
  auto sum_value = [&s](const std::vector<int>& ids) {
    double v = 0.0;
    for (int e : ids) v += s.value(e);
    return v;
  };
  double v0 = sum_value(Mmr(s, 4, 15, 0.0));
  double v5 = sum_value(Mmr(s, 4, 15, 0.5));
  double v1 = sum_value(Mmr(s, 4, 15, 1.0));
  EXPECT_GE(v0 + 1e-9, v5);
  EXPECT_GE(v5 + 1e-9, v1 - 1e-9);
}

// --- Decision tree. ---

TEST(DecisionTreeTest, SeparatesPlantedClasses) {
  AnswerSet s = testutil::MakeRandomAnswerSet(47, 120, 5, 3);
  DecisionTree tree = DecisionTree::Train(s, 20);
  // Training accuracy on the top-L class should beat the base rate.
  int correct = 0;
  for (int e = 0; e < s.size(); ++e) {
    bool predicted = tree.PredictTop(s.element(e).attrs);
    correct += predicted == (e < 20);
  }
  double accuracy = static_cast<double>(correct) / s.size();
  EXPECT_GT(accuracy, 0.85);
}

TEST(DecisionTreeTest, TunedTreeRespectsPositiveLeafBudget) {
  AnswerSet s = testutil::MakeRandomAnswerSet(53, 150, 5, 3);
  for (int k : {2, 4, 8}) {
    DecisionTree tree = DecisionTree::TrainTuned(s, 25, k);
    EXPECT_LE(tree.PositiveLeafCount(), k) << "k=" << k;
    EXPECT_EQ(static_cast<int>(tree.PositiveRules().size()),
              tree.PositiveLeafCount());
  }
}

TEST(DecisionTreeTest, RulesMatchTheirLeafMembers) {
  AnswerSet s = testutil::MakeRandomAnswerSet(59, 100, 5, 3);
  DecisionTree tree = DecisionTree::Train(s, 15);
  for (const DecisionRule& rule : tree.PositiveRules()) {
    // Count elements matching the rule: must equal the leaf's total.
    int matches = 0;
    for (int e = 0; e < s.size(); ++e) {
      matches += rule.Matches(s.element(e).attrs);
    }
    EXPECT_EQ(matches, rule.total_count);
    EXPECT_GT(rule.positive_count * 2, rule.total_count);  // majority leaf
  }
}

TEST(DecisionTreeTest, RuleComplexityWeighsNegations) {
  DecisionRule rule;
  rule.predicates = {{0, 1, true}, {1, 2, false}, {2, 0, false}};
  EXPECT_EQ(rule.Complexity(), 5);  // 1 + 2 + 2
}

TEST(DecisionTreeTest, PureInputMakesSingleLeaf) {
  // All elements are "top": no split possible, one positive leaf.
  AnswerSet s = testutil::MakeRandomAnswerSet(61, 30, 4, 3);
  DecisionTree tree = DecisionTree::Train(s, 30);
  EXPECT_EQ(tree.PositiveLeafCount(), 1);
  EXPECT_TRUE(tree.PredictTop(s.element(0).attrs));
}

TEST(DecisionTreeTest, ToStringRendersPredicates) {
  AnswerSet s = testutil::MakeRandomAnswerSet(67, 80, 4, 3);
  DecisionTree tree = DecisionTree::TrainTuned(s, 10, 5);
  std::string text = tree.ToString(s);
  EXPECT_NE(text.find("="), std::string::npos);
  EXPECT_NE(text.find("top, avg"), std::string::npos);
}

// Decision-tree rules are structurally more complex than QAGView patterns
// for the same k — the §8 mechanism.
TEST(DecisionTreeTest, RulesAreMoreComplexThanClusterPatterns) {
  Instance inst = MakeInstance(71, 150, 5, 3, 25);
  DecisionTree tree = DecisionTree::TrainTuned(*inst.set, 25, 6);
  int tree_complexity = 0;
  for (const DecisionRule& rule : tree.PositiveRules()) {
    tree_complexity += rule.Complexity();
  }
  int rule_count = static_cast<int>(tree.PositiveRules().size());
  ASSERT_GT(rule_count, 0);
  // Cluster patterns: at most m equality predicates each, no negations.
  EXPECT_GT(static_cast<double>(tree_complexity) / rule_count, 1.0);
}

}  // namespace
}  // namespace qagview::baselines
