#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/answer_set.h"
#include "core/cluster.h"
#include "test_util.h"

namespace qagview::core {
namespace {

Cluster C(std::vector<int32_t> pattern) { return Cluster(std::move(pattern)); }

TEST(ClusterTest, LevelCountsWildcards) {
  EXPECT_EQ(C({1, 2, 3}).level(), 0);
  EXPECT_EQ(C({1, kWildcard, 3}).level(), 1);
  EXPECT_EQ(Cluster::Trivial(4).level(), 4);
}

TEST(ClusterTest, CoversSemantics) {
  Cluster a = C({1, kWildcard, 3});
  EXPECT_TRUE(a.Covers(C({1, 2, 3})));
  EXPECT_TRUE(a.Covers(a));  // reflexive
  EXPECT_FALSE(a.Covers(C({2, 2, 3})));
  EXPECT_FALSE(C({1, 2, 3}).Covers(a));  // concrete can't cover wildcard
  EXPECT_TRUE(Cluster::Trivial(3).Covers(a));
  EXPECT_TRUE(a.CoversElement({1, 9, 3}));
  EXPECT_FALSE(a.CoversElement({1, 9, 4}));
}

TEST(ClusterTest, LcaKeepsAgreements) {
  Cluster lca = Cluster::Lca(C({1, kWildcard, 3, 4}), C({1, 2, 5, 4}));
  EXPECT_EQ(lca, C({1, kWildcard, kWildcard, 4}));
  // LCA covers both inputs.
  EXPECT_TRUE(lca.Covers(C({1, kWildcard, 3, 4})));
  EXPECT_TRUE(lca.Covers(C({1, 2, 5, 4})));
  // LCA with self is identity.
  EXPECT_EQ(Cluster::Lca(lca, lca), lca);
}

TEST(ClusterTest, GeneralizeMask) {
  std::vector<int32_t> attrs = {5, 6, 7};
  EXPECT_EQ(Cluster::Generalize(attrs, 0), C({5, 6, 7}));
  EXPECT_EQ(Cluster::Generalize(attrs, 0b101),
            C({kWildcard, 6, kWildcard}));
  EXPECT_EQ(Cluster::Generalize(attrs, 0b111), Cluster::Trivial(3));
}

TEST(DistanceTest, PaperExample) {
  // Figure 3a: d((*, *, c1, d1), (a2, b1, *, d1)) = 3.
  Cluster c1 = C({kWildcard, kWildcard, 0, 0});
  Cluster c2 = C({1, 1, kWildcard, 0});
  EXPECT_EQ(Distance(c1, c2), 3);
}

TEST(DistanceTest, WildcardSamePositionCounts) {
  // Both sides '*' in a position still counts toward the distance.
  EXPECT_EQ(Distance(C({kWildcard, 1}), C({kWildcard, 1})), 1);
  EXPECT_EQ(Distance(C({1, 2}), C({1, 2})), 0);
}

TEST(DistanceTest, ElementDistanceIsHamming) {
  EXPECT_EQ(ElementDistance({1, 2, 3}, {1, 5, 3}), 1);
  EXPECT_EQ(ElementDistance({1, 2, 3}, {1, 2, 3}), 0);
  EXPECT_EQ(DistanceToElement(C({1, kWildcard, 3}), {1, 2, 3}), 1);
  EXPECT_EQ(DistanceToElement(C({1, kWildcard, 3}), {2, 2, 3}), 2);
}

TEST(ClusterTest, RenderingWithNames) {
  AnswerSet s = testutil::MakeMovieExample();
  Cluster c = C({1, kWildcard, 0, kWildcard});
  EXPECT_EQ(c.ToString(s), "(1980, *, M, *)");
  EXPECT_EQ(c.ToString(), "(1, *, 0, *)");
}

// --- Property-based sweeps over random clusters. ---

class DistancePropertyTest : public testing::TestWithParam<int> {};

Cluster RandomCluster(Rng* rng, int m, int domain) {
  std::vector<int32_t> pattern(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    pattern[static_cast<size_t>(i)] =
        rng->Bernoulli(0.3) ? kWildcard
                            : static_cast<int32_t>(rng->Index(domain));
  }
  return Cluster(std::move(pattern));
}

TEST_P(DistancePropertyTest, MetricAxiomsAndMonotonicity) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int m = 5;
  const int domain = 4;
  for (int trial = 0; trial < 200; ++trial) {
    Cluster a = RandomCluster(&rng, m, domain);
    Cluster b = RandomCluster(&rng, m, domain);
    Cluster c = RandomCluster(&rng, m, domain);

    // Symmetry and range.
    EXPECT_EQ(Distance(a, b), Distance(b, a));
    EXPECT_GE(Distance(a, b), 0);
    EXPECT_LE(Distance(a, b), m);
    // Identity holds only for fully-concrete patterns (a wildcard position
    // always contributes).
    if (a.level() == 0) {
      EXPECT_EQ(Distance(a, a), 0);
    }
    // Triangle inequality.
    EXPECT_LE(Distance(a, c), Distance(a, b) + Distance(b, c));

    // Monotonicity (Proposition 4.2): replacing a by an ancestor never
    // decreases its distance to any other cluster.
    Cluster ancestor = Cluster::Lca(a, b);  // some ancestor of a
    EXPECT_GE(Distance(ancestor, c), Distance(a, c))
        << "ancestor " << ancestor.ToString() << " of " << a.ToString()
        << " got closer to " << c.ToString();
  }
}

TEST_P(DistancePropertyTest, LcaLaws) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  const int m = 6;
  const int domain = 3;
  for (int trial = 0; trial < 200; ++trial) {
    Cluster a = RandomCluster(&rng, m, domain);
    Cluster b = RandomCluster(&rng, m, domain);
    Cluster lca = Cluster::Lca(a, b);
    // LCA covers both sides and is the *least* such pattern: any common
    // ancestor covers the LCA.
    EXPECT_TRUE(lca.Covers(a));
    EXPECT_TRUE(lca.Covers(b));
    Cluster other = RandomCluster(&rng, m, domain);
    if (other.Covers(a) && other.Covers(b)) {
      EXPECT_TRUE(other.Covers(lca));
    }
    // Commutativity and idempotence.
    EXPECT_EQ(lca, Cluster::Lca(b, a));
    EXPECT_EQ(Cluster::Lca(lca, a), lca);
  }
}

TEST_P(DistancePropertyTest, DistanceIsMaxElementDistance) {
  // "The distance between two clusters is the maximum possible distance
  // between any two elements that these two clusters may contain."
  Rng rng(static_cast<uint64_t>(GetParam()) + 2000);
  const int m = 4;
  const int domain = 3;
  for (int trial = 0; trial < 50; ++trial) {
    Cluster a = RandomCluster(&rng, m, domain);
    Cluster b = RandomCluster(&rng, m, domain);
    int cluster_d = Distance(a, b);
    // Sample element pairs within the extents; with domain >= 3 the
    // maximum is achievable, so check sampled distances never exceed it.
    int max_seen = 0;
    for (int s = 0; s < 100; ++s) {
      std::vector<int32_t> ea(static_cast<size_t>(m)), eb(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) {
        ea[static_cast<size_t>(i)] =
            a.IsWildcard(i) ? static_cast<int32_t>(rng.Index(domain)) : a[i];
        eb[static_cast<size_t>(i)] =
            b.IsWildcard(i) ? static_cast<int32_t>(rng.Index(domain)) : b[i];
      }
      max_seen = std::max(max_seen, ElementDistance(ea, eb));
    }
    EXPECT_LE(max_seen, cluster_d);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistancePropertyTest,
                         testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace qagview::core
