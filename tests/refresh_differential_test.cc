// The refresh invariant, enforced differentially: for hundreds of seeded
// append/query interleavings — serial and 8-client concurrent — a service
// maintained incrementally through AppendRows + transparent stale-handle
// refresh must produce responses bit-identical to a cold service built
// from the final table state. Footprints are rendered strings, averages,
// and counts (never raw cluster ids), so the comparison is at the
// client-visible API level and independent of which warm universe served.
//
// The TSan/ASan CI jobs run this binary explicitly: the concurrent mode
// races client queries against catalog appends and in-place session
// refreshes.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "service/query_service.h"
#include "test_util.h"

namespace qagview::service {
namespace {

constexpr char kSql[] =
    "SELECT g0, g1, g2, avg(rating) AS val FROM ratings "
    "GROUP BY g0, g1, g2 HAVING count(*) > 2 ORDER BY val DESC";

core::PrecomputeOptions Grid() {
  core::PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 5;
  options.d_values = {1, 2};
  return options;
}

/// Client-visible footprint of one probe of the service: answer-set shape,
/// both rendered display layers, and retrieval results. Everything here
/// must be bit-identical between the incremental and the cold path.
struct Footprint {
  int num_answers = 0;
  std::string explore_summary;
  std::string explore_expanded;
  double summarize_avg = 0.0;
  int summarize_count = 0;
  double retrieve_avg = 0.0;
  int retrieve_count = 0;
  std::string error;  // first error, if any (must match too)

  bool operator==(const Footprint& other) const {
    return num_answers == other.num_answers &&
           explore_summary == other.explore_summary &&
           explore_expanded == other.explore_expanded &&
           summarize_avg == other.summarize_avg &&
           summarize_count == other.summarize_count &&
           retrieve_avg == other.retrieve_avg &&
           retrieve_count == other.retrieve_count && error == other.error;
  }
};

std::ostream& operator<<(std::ostream& out, const Footprint& f) {
  return out << "{n=" << f.num_answers << " summarize=" << f.summarize_avg
             << "/" << f.summarize_count << " retrieve=" << f.retrieve_avg
             << "/" << f.retrieve_count << " error='" << f.error
             << "' summary:\n"
             << f.explore_summary << "}";
}

/// One full probe through the public API. Appends only ever grow the
/// answer set (HAVING-count thresholds pass monotonically), so parameters
/// derived from num_answers stay valid across refreshes.
Footprint Probe(QueryService& service) {
  Footprint f;
  auto info = service.Query(kSql, "val");
  if (!info.ok()) {
    f.error = info.status().ToString();
    return f;
  }
  f.num_answers = info->num_answers;
  const int top_l = std::min(6, f.num_answers);
  const int k = std::min(3, top_l);
  auto explore = service.Explore(info->handle, {k, top_l, 2});
  if (explore.ok()) {
    f.explore_summary = explore->summary;
    f.explore_expanded = explore->expanded;
  } else if (f.error.empty()) {
    f.error = explore.status().ToString();
  }
  auto summarized = service.Summarize(info->handle, {std::min(4, top_l),
                                                     top_l, 1});
  if (summarized.ok()) {
    f.summarize_avg = summarized->average;
    f.summarize_count = summarized->covered_count;
  } else if (f.error.empty()) {
    f.error = summarized.status().ToString();
  }
  auto guided = service.Guidance(info->handle, top_l, Grid());
  if (!guided.ok() && f.error.empty()) f.error = guided.status().ToString();
  auto retrieved = service.Retrieve(info->handle, top_l, 2, 3);
  if (retrieved.ok()) {
    f.retrieve_avg = retrieved->average;
    f.retrieve_count = retrieved->covered_count;
  } else if (f.error.empty()) {
    f.error = retrieved.status().ToString();
  }
  return f;
}

/// The cold oracle: a fresh service over base + all applied deltas.
Footprint ColdProbe(const testutil::RandomTableSpec& spec, uint64_t seed,
                    int base_rows,
                    const std::vector<std::vector<storage::Value>>& extra) {
  QueryService cold;
  storage::Table table = testutil::MakeRandomTable(spec, seed, base_rows);
  QAG_CHECK_OK(table.AppendRows(extra));
  QAG_CHECK_OK(cold.RegisterTable("ratings", std::move(table)));
  return Probe(cold);
}

class RefreshDifferentialSerial : public testing::TestWithParam<int> {};

// Each case drives one seeded interleaving of appends and probes and
// checks bit-identity against the cold oracle after every append. Seeds
// are blocked 8 per gtest case so ctest -j spreads the work.
TEST_P(RefreshDifferentialSerial, IncrementalEqualsColdRebuild) {
  for (int i = 0; i < 8; ++i) {
    const uint64_t seed = static_cast<uint64_t>(GetParam()) * 8 + i;
    SCOPED_TRACE(StrCat("seed ", seed));
    testutil::RandomTableSpec spec;
    Rng rng(seed * 7919 + 13);
    const int base_rows = 180 + static_cast<int>(rng.Index(120));

    QueryService incremental;
    ASSERT_TRUE(incremental
                    .RegisterTable("ratings", testutil::MakeRandomTable(
                                                  spec, seed, base_rows))
                    .ok());
    // Warm the caches so refreshes have structures to reuse or retire.
    Footprint warm = Probe(incremental);
    ASSERT_EQ(warm, ColdProbe(spec, seed, base_rows, {}));

    std::vector<std::vector<storage::Value>> extra;
    const int appends = 2 + static_cast<int>(rng.Index(3));
    for (int a = 0; a < appends; ++a) {
      // Delta sizes mix single rows with up-to-15% batches.
      const int delta_rows = 1 + static_cast<int>(rng.Index(30));
      auto rows = testutil::MakeRandomRows(
          spec, seed ^ (0xA5A5u + static_cast<uint64_t>(a) * 31), delta_rows);
      ASSERT_TRUE(incremental.AppendRows("ratings", rows).ok());
      extra.insert(extra.end(), rows.begin(), rows.end());

      Footprint live = Probe(incremental);
      Footprint cold = ColdProbe(spec, seed, base_rows, extra);
      ASSERT_EQ(live, cold) << "append " << a << " (+" << delta_rows
                            << " rows)";
    }
    // The incremental path really did refresh in place: one session, with
    // at least `appends` SQL re-executions behind it.
    QueryService::Stats stats = incremental.stats();
    EXPECT_EQ(stats.sessions, 1);
    EXPECT_GE(stats.refreshes, static_cast<int64_t>(appends));
  }
}

// 20 blocks x 8 seeds = 160 serial interleavings.
INSTANTIATE_TEST_SUITE_P(Seeds, RefreshDifferentialSerial,
                         testing::Range(0, 20));

class RefreshDifferentialConcurrent : public testing::TestWithParam<int> {};

// 8 client threads hammer the service while the main thread appends;
// afterwards the quiesced service must be bit-identical to the cold
// oracle over the final state. Mid-run responses are not compared (they
// may linearize before or after any append) but must never fail — except
// Retrieve, which may legitimately race a refresh that retired its grid
// between Guidance and Retrieve (FailedPrecondition; a client re-issues
// Guidance).
TEST_P(RefreshDifferentialConcurrent, FinalStateEqualsColdRebuild) {
  for (int i = 0; i < 8; ++i) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(GetParam()) * 8 + i;
    SCOPED_TRACE(StrCat("seed ", seed));
    testutil::RandomTableSpec spec;
    Rng rng(seed * 6151 + 7);
    const int base_rows = 180 + static_cast<int>(rng.Index(120));
    constexpr int kClients = 8;
    constexpr int kRounds = 3;
    constexpr int kAppends = 3;

    QueryService service;
    ASSERT_TRUE(service
                    .RegisterTable("ratings", testutil::MakeRandomTable(
                                                  spec, seed, base_rows))
                    .ok());
    Probe(service);  // warm

    std::vector<std::vector<storage::Value>> extra;
    std::vector<std::vector<std::vector<storage::Value>>> batches;
    for (int a = 0; a < kAppends; ++a) {
      const int delta_rows = 1 + static_cast<int>(rng.Index(25));
      batches.push_back(testutil::MakeRandomRows(
          spec, seed ^ (0xC3C3u + static_cast<uint64_t>(a) * 17),
          delta_rows));
    }

    testutil::StartLatch latch(kClients + 1);
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
      threads.emplace_back([&, t] {
        latch.ArriveAndWait();
        for (int round = 0; round < kRounds; ++round) {
          auto info = service.Query(kSql, "val");
          ASSERT_TRUE(info.ok()) << info.status().ToString();
          const int top_l = std::min(6, info->num_answers);
          const int k = std::min(3, top_l);
          switch ((t + round) % 3) {
            case 0: {
              auto explore = service.Explore(info->handle, {k, top_l, 2});
              ASSERT_TRUE(explore.ok()) << explore.status().ToString();
              break;
            }
            case 1: {
              auto summarized =
                  service.Summarize(info->handle, {k, top_l, 1});
              ASSERT_TRUE(summarized.ok())
                  << summarized.status().ToString();
              break;
            }
            default: {
              auto guided = service.Guidance(info->handle, top_l, Grid());
              ASSERT_TRUE(guided.ok()) << guided.status().ToString();
              auto retrieved = service.Retrieve(info->handle, top_l, 1, 3);
              if (!retrieved.ok()) {
                // Only the documented Guidance/Retrieve race is tolerated.
                EXPECT_EQ(retrieved.status().code(),
                          StatusCode::kFailedPrecondition)
                    << retrieved.status().ToString();
              }
              break;
            }
          }
        }
      });
    }
    {
      latch.ArriveAndWait();
      for (const auto& batch : batches) {
        ASSERT_TRUE(service.AppendRows("ratings", batch).ok());
        extra.insert(extra.end(), batch.begin(), batch.end());
      }
    }
    for (auto& thread : threads) thread.join();

    // Quiesced: the incremental service must match the cold oracle.
    Footprint live = Probe(service);
    Footprint cold = ColdProbe(spec, seed, base_rows, extra);
    ASSERT_EQ(live, cold);
    EXPECT_EQ(service.stats().sessions, 1);
  }
}

// 7 blocks x 8 seeds = 56 concurrent interleavings; 216 total with the
// serial mode, comfortably past the 200-interleaving acceptance bar.
INSTANTIATE_TEST_SUITE_P(Seeds, RefreshDifferentialConcurrent,
                         testing::Range(0, 7));

}  // namespace
}  // namespace qagview::service
