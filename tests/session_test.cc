#include <cstdio>
#include <memory>

#include <gtest/gtest.h>

#include "core/bottom_up.h"
#include "core/greedy_state.h"
#include "core/session.h"
#include "test_util.h"

namespace qagview::core {
namespace {

std::unique_ptr<Session> MakeSession(uint64_t seed = 3, int n = 100) {
  auto session =
      Session::Create(testutil::MakeRandomAnswerSet(seed, n, 5, 3));
  QAG_CHECK(session.ok());
  return std::move(session).value();
}

TEST(SessionTest, SummarizeProducesFeasibleSolutions) {
  auto session = MakeSession();
  Params params{4, 12, 2};
  auto solution = session->Summarize(params);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  auto universe = session->UniverseFor(12);
  ASSERT_TRUE(universe.ok());
  EXPECT_TRUE(CheckFeasible(**universe, solution->cluster_ids, params).ok());
}

TEST(SessionTest, UniverseCacheReusesWiderUniverse) {
  auto session = MakeSession();
  ASSERT_TRUE(session->UniverseFor(20).ok());   // miss: builds L=20
  ASSERT_TRUE(session->UniverseFor(10).ok());   // hit: 20 covers 10
  ASSERT_TRUE(session->UniverseFor(20).ok());   // hit
  ASSERT_TRUE(session->UniverseFor(30).ok());   // miss: wider
  Session::CacheStats stats = session->cache_stats();
  EXPECT_EQ(stats.universes, 2);
  EXPECT_EQ(stats.universe_misses, 2);
  EXPECT_EQ(stats.universe_hits, 2);
}

TEST(SessionTest, CachedSummarizeMatchesDirectRun) {
  auto session = MakeSession(7);
  Params params{5, 15, 2};
  auto first = session->Summarize(params);
  auto second = session->Summarize(params);  // cached universe
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->cluster_ids, second->cluster_ids);
  EXPECT_NEAR(first->average, second->average, 1e-12);
}

TEST(SessionTest, SaveAndLoadGuidanceAcrossSessions) {
  std::string path = testing::TempDir() + "/qagview_session_guidance.txt";
  PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 8;
  options.d_values = {1, 2};

  // Session A precomputes and saves.
  auto a = MakeSession(31);
  ASSERT_TRUE(a->Guidance(12, options).ok());
  ASSERT_TRUE(a->SaveGuidance(12, path).ok());
  auto direct = a->Retrieve(12, 2, 5);
  ASSERT_TRUE(direct.ok());

  // Session B (same answer set) loads instead of precomputing.
  auto b = MakeSession(31);
  ASSERT_TRUE(b->LoadGuidance(12, path).ok());
  auto loaded = b->Retrieve(12, 2, 5);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_NEAR(direct->average, loaded->average, 1e-12);
  EXPECT_EQ(direct->covered_count, loaded->covered_count);

  // A session over different data rejects the file.
  auto c = MakeSession(32);
  EXPECT_FALSE(c->LoadGuidance(12, path).ok());
  // Save without a prior Guidance() fails.
  EXPECT_FALSE(c->SaveGuidance(12, path + ".none").ok());
  std::remove(path.c_str());
}

TEST(SessionTest, GuidanceAndRetrieve) {
  auto session = MakeSession(9);
  PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 8;
  options.d_values = {1, 2};
  auto store = session->Guidance(15, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  // Cached second call returns the same store.
  auto again = session->Guidance(15, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*store, *again);
  EXPECT_EQ(session->cache_stats().stores, 1);

  auto solution = session->Retrieve(15, 2, 6);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  auto universe = session->UniverseFor(15);
  ASSERT_TRUE(universe.ok());
  EXPECT_TRUE(
      CheckFeasible(**universe, solution->cluster_ids, {6, 15, 2}).ok());
}

TEST(SessionTest, RetrieveWithoutGuidanceFails) {
  auto session = MakeSession(11);
  auto solution = session->Retrieve(15, 2, 6);
  EXPECT_EQ(solution.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SessionTest, ValidatesParams) {
  auto session = MakeSession(13);
  EXPECT_FALSE(session->Summarize({0, 10, 2}).ok());
  EXPECT_FALSE(session->Summarize({4, 100000, 2}).ok());
  EXPECT_FALSE(session->UniverseFor(0).ok());
}

TEST(SessionTest, FromTableEndToEnd) {
  storage::Schema schema({{"g", storage::ValueType::kString},
                          {"h", storage::ValueType::kString},
                          {"val", storage::ValueType::kDouble}});
  storage::Table t(schema);
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    QAG_CHECK_OK(t.AppendRow({storage::Value::Str("g" + std::to_string(rng.Index(5))),
                              storage::Value::Str("h" + std::to_string(i)),
                              storage::Value::Real(rng.UniformReal(1, 5))}));
  }
  auto session = Session::FromTable(t, "val");
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ((*session)->answers().size(), 40);
  auto solution = (*session)->Summarize({3, 8, 1});
  ASSERT_TRUE(solution.ok());
}

// --- Min-Size objective (footnote 5). ---

TEST(MinSizeTest, ReducesRedundantElements) {
  auto s = std::make_unique<AnswerSet>(
      testutil::MakeRandomAnswerSet(17, 120, 5, 3));
  auto u = ClusterUniverse::Build(s.get(), 20);
  ASSERT_TRUE(u.ok());
  Params params{4, 20, 2};

  BottomUpOptions max_avg;
  BottomUpOptions min_size;
  min_size.merge_rule = BottomUpOptions::MergeRule::kMinRedundant;
  auto a = BottomUp::Run(*u, params, max_avg);
  auto b = BottomUp::Run(*u, params, min_size);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Both feasible.
  EXPECT_TRUE(CheckFeasible(*u, a->cluster_ids, params).ok());
  EXPECT_TRUE(CheckFeasible(*u, b->cluster_ids, params).ok());
  // Min-Size covers no more elements in total (it minimizes redundancy).
  EXPECT_LE(b->covered_count, a->covered_count + 2);
  // Max-Avg never has a lower objective than Min-Size — that is its job.
  EXPECT_GE(a->average, b->average - 1e-9);
}

TEST(MinSizeTest, TentativeRedundantMatchesCommit) {
  auto s = std::make_unique<AnswerSet>(
      testutil::MakeRandomAnswerSet(19, 80, 4, 3));
  auto u = ClusterUniverse::Build(s.get(), 10);
  ASSERT_TRUE(u.ok());
  GreedyState state(&*u, true);
  state.AddCluster(u->singleton_id(0));
  int before = state.redundant_count();
  // A broad cluster: wildcard everything except attribute 0.
  Cluster broad = Cluster::Generalize(s->element(1).attrs, 0b1110);
  int id = u->FindId(broad);
  ASSERT_GE(id, 0);
  int predicted = state.TentativeRedundant(id);
  state.AddCluster(id);
  EXPECT_EQ(state.redundant_count() - before, predicted);
}

}  // namespace
}  // namespace qagview::core
