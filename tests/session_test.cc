#include <cstdio>
#include <memory>

#include <gtest/gtest.h>

#include "core/bottom_up.h"
#include "core/greedy_state.h"
#include "core/session.h"
#include "test_util.h"

namespace qagview::core {
namespace {

std::unique_ptr<Session> MakeSession(uint64_t seed = 3, int n = 100) {
  auto session =
      Session::Create(testutil::MakeRandomAnswerSet(seed, n, 5, 3));
  QAG_CHECK(session.ok());
  return std::move(session).value();
}

TEST(SessionTest, SummarizeProducesFeasibleSolutions) {
  auto session = MakeSession();
  Params params{4, 12, 2};
  auto solution = session->Summarize(params);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  auto universe = session->UniverseFor(12);
  ASSERT_TRUE(universe.ok());
  EXPECT_TRUE(CheckFeasible(**universe, solution->cluster_ids, params).ok());
}

TEST(SessionTest, UniverseCacheReusesWiderUniverse) {
  auto session = MakeSession();
  ASSERT_TRUE(session->UniverseFor(20).ok());   // miss: builds L=20
  ASSERT_TRUE(session->UniverseFor(10).ok());   // hit: 20 covers 10
  ASSERT_TRUE(session->UniverseFor(20).ok());   // hit
  ASSERT_TRUE(session->UniverseFor(30).ok());   // miss: wider
  Session::CacheStats stats = session->cache_stats();
  EXPECT_EQ(stats.universes, 2);
  EXPECT_EQ(stats.universe_misses, 2);
  EXPECT_EQ(stats.universe_hits, 2);
}

TEST(SessionTest, CachedSummarizeMatchesDirectRun) {
  auto session = MakeSession(7);
  Params params{5, 15, 2};
  auto first = session->Summarize(params);
  auto second = session->Summarize(params);  // cached universe
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->cluster_ids, second->cluster_ids);
  EXPECT_NEAR(first->average, second->average, 1e-12);
}

TEST(SessionTest, SaveAndLoadGuidanceAcrossSessions) {
  std::string path = testing::TempDir() + "/qagview_session_guidance.txt";
  PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 8;
  options.d_values = {1, 2};

  // Session A precomputes and saves.
  auto a = MakeSession(31);
  ASSERT_TRUE(a->Guidance(12, options).ok());
  ASSERT_TRUE(a->SaveGuidance(12, path).ok());
  auto direct = a->Retrieve(12, 2, 5);
  ASSERT_TRUE(direct.ok());

  // Session B (same answer set) loads instead of precomputing.
  auto b = MakeSession(31);
  ASSERT_TRUE(b->LoadGuidance(12, path).ok());
  auto loaded = b->Retrieve(12, 2, 5);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_NEAR(direct->average, loaded->average, 1e-12);
  EXPECT_EQ(direct->covered_count, loaded->covered_count);

  // A session over different data rejects the file.
  auto c = MakeSession(32);
  EXPECT_FALSE(c->LoadGuidance(12, path).ok());
  // Save without a prior Guidance() fails.
  EXPECT_FALSE(c->SaveGuidance(12, path + ".none").ok());
  std::remove(path.c_str());
}

TEST(SessionTest, GuidanceAndRetrieve) {
  auto session = MakeSession(9);
  PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 8;
  options.d_values = {1, 2};
  auto store = session->Guidance(15, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  // Cached second call returns the same store.
  auto again = session->Guidance(15, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*store, *again);
  EXPECT_EQ(session->cache_stats().stores, 1);

  auto solution = session->Retrieve(15, 2, 6);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  auto universe = session->UniverseFor(15);
  ASSERT_TRUE(universe.ok());
  EXPECT_TRUE(
      CheckFeasible(**universe, solution->cluster_ids, {6, 15, 2}).ok());
}

TEST(SessionTest, RetrieveWithoutGuidanceFails) {
  auto session = MakeSession(11);
  auto solution = session->Retrieve(15, 2, 6);
  EXPECT_EQ(solution.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session->cache_stats().store_misses, 1);
}

TEST(SessionTest, WiderStoreServesNarrowerRequests) {
  // Mirror of the universe cache policy: Guidance(25) followed by
  // Retrieve(15, ...) must be served from the L=25 grid instead of failing
  // (Proposition 6.1 — the wider grid covers the narrower request).
  auto session = MakeSession(21);
  PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 8;
  options.d_values = {1, 2};
  auto wide = session->Guidance(25, options);
  ASSERT_TRUE(wide.ok()) << wide.status().ToString();

  auto narrow = session->Retrieve(15, 2, 5);
  ASSERT_TRUE(narrow.ok()) << narrow.status().ToString();
  auto direct = session->Retrieve(25, 2, 5);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(narrow->cluster_ids, direct->cluster_ids);

  // Guidance for a narrower L is a cache hit, not a second precompute.
  auto again = session->Guidance(15, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *wide);
  EXPECT_EQ(session->cache_stats().stores, 1);

  // A request wider than every cached grid still fails.
  EXPECT_EQ(session->Retrieve(40, 2, 5).status().code(),
            StatusCode::kFailedPrecondition);

  Session::CacheStats stats = session->cache_stats();
  // Guidance(25) missed; Retrieve(15)/Retrieve(25)/Guidance(15) hit;
  // Retrieve(40) missed.
  EXPECT_EQ(stats.store_misses, 2);
  EXPECT_EQ(stats.store_hits, 3);
}

TEST(SessionTest, SaveGuidanceServesFromWiderStoreAndRoundTrips) {
  std::string path = testing::TempDir() + "/qagview_wider_guidance.txt";
  PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 8;
  options.d_values = {1, 2};

  auto a = MakeSession(33);
  ASSERT_TRUE(a->Guidance(20, options).ok());
  // Saving at a narrower L is served by the L=20 store; the file records
  // the store's own L.
  ASSERT_TRUE(a->SaveGuidance(12, path).ok());

  // The symmetric round-trip — LoadGuidance at the same L the save was
  // requested with — must accept the wider file and serve the request.
  auto b = MakeSession(33);
  ASSERT_TRUE(b->LoadGuidance(12, path).ok());
  auto loaded = b->Retrieve(12, 2, 5);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto direct = a->Retrieve(12, 2, 5);
  ASSERT_TRUE(direct.ok());
  EXPECT_NEAR(direct->average, loaded->average, 1e-12);

  // Loading wider than the file's grid still fails.
  auto c = MakeSession(33);
  EXPECT_FALSE(c->LoadGuidance(30, path).ok());
  std::remove(path.c_str());
}

TEST(SessionTest, GuidanceRebuildsWhenCachedGridLacksRequestedRows) {
  // A wider-L store built with a narrower (k, D) grid must not shadow a
  // request for rows it lacks; Guidance precomputes a fuller grid instead.
  auto session = MakeSession(35);
  PrecomputeOptions narrow;
  narrow.k_min = 2;
  narrow.k_max = 6;
  narrow.d_values = {1};
  ASSERT_TRUE(session->Guidance(25, narrow).ok());

  PrecomputeOptions full;
  full.k_min = 2;
  full.k_max = 10;
  full.d_values = {1, 2, 3};
  auto store = session->Guidance(15, full);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(session->cache_stats().stores, 2);
  auto solution = session->Retrieve(15, 3, 8);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();

  // Same options again: now a cache hit on the L=15 store.
  auto again = session->Guidance(15, full);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *store);
  EXPECT_EQ(session->cache_stats().stores, 2);

  // Retrieve skips the narrower-grid L=15 store when only the wider L=25
  // one has the row... but here the L=15 store has d=3; d=1 k=5 is served
  // by the narrowest store that can answer.
  EXPECT_TRUE(session->Retrieve(20, 1, 5).ok());
  // A D that no cached store holds still errors.
  EXPECT_FALSE(session->Retrieve(15, 5, 5).ok());
}

TEST(SessionTest, GuidanceNeverInvalidatesEarlierStores) {
  // Stores accumulate: a later Guidance with different options must not
  // destroy (or drop rows of) a store an earlier call handed out.
  auto session = MakeSession(37);
  PrecomputeOptions d3_only;
  d3_only.k_min = 2;
  d3_only.k_max = 8;
  d3_only.d_values = {3};
  auto first = session->Guidance(15, d3_only);
  ASSERT_TRUE(first.ok());
  auto before = (*first)->Retrieve(3, 6);
  ASSERT_TRUE(before.ok());

  PrecomputeOptions d1_only = d3_only;
  d1_only.d_values = {1};
  ASSERT_TRUE(session->Guidance(15, d1_only).ok());
  EXPECT_EQ(session->cache_stats().stores, 2);

  // The first store pointer is still alive and its rows still served.
  auto after = (*first)->Retrieve(3, 6);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->cluster_ids, after->cluster_ids);
  EXPECT_TRUE(session->Retrieve(15, 3, 6).ok());
  EXPECT_TRUE(session->Retrieve(15, 1, 6).ok());
}

TEST(SessionTest, NumThreadsKnobPreservesResults) {
  auto serial = MakeSession(27, 150);
  serial->set_num_threads(1);
  auto parallel = MakeSession(27, 150);
  parallel->set_num_threads(8);
  EXPECT_EQ(parallel->num_threads(), 8);

  PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 10;
  ASSERT_TRUE(serial->Guidance(30, options).ok());
  ASSERT_TRUE(parallel->Guidance(30, options).ok());
  for (int d : {1, 2, 3}) {
    for (int k : {4, 7, 10}) {
      auto a = serial->Retrieve(30, d, k);
      auto b = parallel->Retrieve(30, d, k);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_EQ(a->cluster_ids, b->cluster_ids) << "d=" << d << " k=" << k;
      // Bit-identical, not just close.
      EXPECT_EQ(a->average, b->average);
    }
  }
}

TEST(SessionTest, SummarizeWithReportsTheServingUniverse) {
  // The returned Solution's cluster ids index into the universe handed
  // back by SummarizeWith — which, under the narrowest-covering policy,
  // is not necessarily one built for params.L.
  auto session = MakeSession(23);
  ASSERT_TRUE(session->UniverseFor(25).ok());  // widest, serves everything
  std::shared_ptr<const ClusterUniverse> used;
  Params params{4, 10, 2};
  auto solution = session->SummarizeWith(params, &used);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  ASSERT_NE(used, nullptr);
  EXPECT_EQ(used->top_l(), 25);  // served by the pre-built wide universe
  EXPECT_TRUE(CheckFeasible(*used, solution->cluster_ids, params).ok());
  EXPECT_EQ(session->cache_stats().universes, 1);
}

TEST(SessionTest, ValidatesParams) {
  auto session = MakeSession(13);
  EXPECT_FALSE(session->Summarize({0, 10, 2}).ok());
  EXPECT_FALSE(session->Summarize({4, 100000, 2}).ok());
  EXPECT_FALSE(session->UniverseFor(0).ok());
}

TEST(SessionTest, FromTableEndToEnd) {
  storage::Schema schema({{"g", storage::ValueType::kString},
                          {"h", storage::ValueType::kString},
                          {"val", storage::ValueType::kDouble}});
  storage::Table t(schema);
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    QAG_CHECK_OK(t.AppendRow({storage::Value::Str("g" + std::to_string(rng.Index(5))),
                              storage::Value::Str("h" + std::to_string(i)),
                              storage::Value::Real(rng.UniformReal(1, 5))}));
  }
  auto session = Session::FromTable(t, "val");
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ((*session)->answers()->size(), 40);
  auto solution = (*session)->Summarize({3, 8, 1});
  ASSERT_TRUE(solution.ok());
}

// --- Min-Size objective (footnote 5). ---

TEST(MinSizeTest, ReducesRedundantElements) {
  auto s = std::make_unique<AnswerSet>(
      testutil::MakeRandomAnswerSet(17, 120, 5, 3));
  auto u = ClusterUniverse::Build(s.get(), 20);
  ASSERT_TRUE(u.ok());
  Params params{4, 20, 2};

  BottomUpOptions max_avg;
  BottomUpOptions min_size;
  min_size.merge_rule = BottomUpOptions::MergeRule::kMinRedundant;
  auto a = BottomUp::Run(*u, params, max_avg);
  auto b = BottomUp::Run(*u, params, min_size);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Both feasible.
  EXPECT_TRUE(CheckFeasible(*u, a->cluster_ids, params).ok());
  EXPECT_TRUE(CheckFeasible(*u, b->cluster_ids, params).ok());
  // Min-Size covers no more elements in total (it minimizes redundancy).
  EXPECT_LE(b->covered_count, a->covered_count + 2);
  // Max-Avg never has a lower objective than Min-Size — that is its job.
  EXPECT_GE(a->average, b->average - 1e-9);
}

TEST(MinSizeTest, TentativeRedundantMatchesCommit) {
  auto s = std::make_unique<AnswerSet>(
      testutil::MakeRandomAnswerSet(19, 80, 4, 3));
  auto u = ClusterUniverse::Build(s.get(), 10);
  ASSERT_TRUE(u.ok());
  GreedyState state(&*u, true);
  state.AddCluster(u->singleton_id(0));
  int before = state.redundant_count();
  // A broad cluster: wildcard everything except attribute 0.
  Cluster broad = Cluster::Generalize(s->element(1).attrs, 0b1110);
  int id = u->FindId(broad);
  ASSERT_GE(id, 0);
  int predicted = state.TentativeRedundant(id);
  state.AddCluster(id);
  EXPECT_EQ(state.redundant_count() - before, predicted);
}

}  // namespace
}  // namespace qagview::core
