#include <algorithm>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/bottom_up.h"
#include "core/interval_tree.h"
#include "core/fixed_order.h"
#include "core/precompute.h"
#include "test_util.h"

namespace qagview::core {
namespace {

// --- Interval tree. ---

TEST(IntervalTreeTest, EmptyTree) {
  IntervalTree<int> tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Collect(5).empty());
}

TEST(IntervalTreeTest, BasicStabbing) {
  IntervalTree<int> tree({{1, 3, 100}, {2, 5, 200}, {7, 7, 300}});
  EXPECT_EQ(tree.Collect(0).size(), 0u);
  EXPECT_EQ(tree.Collect(1), std::vector<int>{100});
  auto at2 = tree.Collect(2);
  std::sort(at2.begin(), at2.end());
  EXPECT_EQ(at2, (std::vector<int>{100, 200}));
  EXPECT_EQ(tree.Collect(5), std::vector<int>{200});
  EXPECT_EQ(tree.Collect(6).size(), 0u);
  EXPECT_EQ(tree.Collect(7), std::vector<int>{300});
}

class IntervalTreePropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(IntervalTreePropertyTest, MatchesNaiveStabbing) {
  Rng rng(GetParam());
  std::vector<IntervalTree<int>::Entry> entries;
  int n = 200;
  for (int i = 0; i < n; ++i) {
    int lo = static_cast<int>(rng.Uniform(0, 100));
    int hi = lo + static_cast<int>(rng.Uniform(0, 30));
    entries.push_back({lo, hi, i});
  }
  IntervalTree<int> tree(entries);
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  for (int q = -5; q <= 140; ++q) {
    std::vector<int> expected;
    for (const auto& e : entries) {
      if (e.lo <= q && q <= e.hi) expected.push_back(e.payload);
    }
    std::vector<int> actual = tree.Collect(q);
    std::sort(actual.begin(), actual.end());
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(actual, expected) << "stab at " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalTreePropertyTest,
                         testing::Values(1u, 2u, 3u, 4u));

// --- Precompute + SolutionStore. ---

struct Instance {
  std::unique_ptr<AnswerSet> set;
  ClusterUniverse u;
};

Instance MakeInstance(uint64_t seed, int n, int m, int domain, int top_l) {
  auto set = std::make_unique<AnswerSet>(
      testutil::MakeRandomAnswerSet(seed, n, m, domain));
  auto u = ClusterUniverse::Build(set.get(), top_l);
  QAG_CHECK(u.ok()) << u.status().ToString();
  return Instance{std::move(set), std::move(u).value()};
}

PrecomputeOptions GridOptions(int k_min, int k_max, std::vector<int> ds) {
  PrecomputeOptions options;
  options.k_min = k_min;
  options.k_max = k_max;
  options.d_values = std::move(ds);
  return options;
}

TEST(PrecomputeTest, RetrievedSolutionsAreFeasible) {
  Instance inst = MakeInstance(5, 80, 5, 3, 20);
  auto store = Precompute::Run(inst.u, 20, GridOptions(2, 12, {1, 2, 3}));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  for (int d : {1, 2, 3}) {
    int min_k = store->MinK(d).value();
    for (int k = min_k; k <= 12; ++k) {
      auto sol = store->Retrieve(d, k);
      ASSERT_TRUE(sol.ok()) << "k=" << k << " d=" << d << ": "
                            << sol.status().ToString();
      Params params{k, 20, d};
      EXPECT_TRUE(CheckFeasible(inst.u, sol->cluster_ids, params).ok())
          << "k=" << k << " d=" << d;
      // Stored value matches the materialized solution.
      EXPECT_NEAR(store->Value(d, k).value(), sol->average, 1e-9);
    }
  }
}

TEST(PrecomputeTest, ValuesStayWithinElementBounds) {
  // Every stored objective value is an average over covered elements, so it
  // must lie within [min element value, max element value]. (Monotonicity
  // in k holds only approximately — Figure 2's curves can dip — so it is a
  // bench observation, not an invariant.)
  Instance inst = MakeInstance(9, 100, 5, 3, 25);
  auto store = Precompute::Run(inst.u, 25, GridOptions(2, 15, {1, 2}));
  ASSERT_TRUE(store.ok());
  double lo = inst.set->value(inst.set->size() - 1);
  double hi = inst.set->value(0);
  for (int d : {1, 2}) {
    int min_k = store->MinK(d).value();
    for (int k = min_k; k <= 15; ++k) {
      double v = store->Value(d, k).value();
      EXPECT_GE(v, lo - 1e-9);
      EXPECT_LE(v, hi + 1e-9);
    }
  }
}

TEST(PrecomputeTest, StoreIsMoreCompactThanNaive) {
  Instance inst = MakeInstance(13, 90, 5, 3, 24);
  auto store = Precompute::Run(inst.u, 24, GridOptions(2, 20, {1, 2, 3, 4}));
  ASSERT_TRUE(store.ok());
  EXPECT_GT(store->num_intervals(), 0);
  EXPECT_LT(store->num_intervals(), store->naive_entries())
      << "interval storage should beat storing every (k,D) cluster list";
}

TEST(PrecomputeTest, QueriesOutsideRangeBehave) {
  Instance inst = MakeInstance(17, 60, 4, 3, 12);
  auto store = Precompute::Run(inst.u, 12, GridOptions(2, 8, {2}));
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->Retrieve(5, 4).ok());  // unknown D
  // Below the smallest stored size (a merge can subsume several clusters,
  // so the trace may bottom out under k_min; query strictly below it).
  int min_k = store->MinK(2).value();
  EXPECT_FALSE(store->Retrieve(2, min_k - 1).ok());
  EXPECT_FALSE(store->Value(2, min_k - 1).ok());
  // k above k_max clamps to the largest stored state.
  auto big = store->Retrieve(2, 1000);
  ASSERT_TRUE(big.ok());
  auto at_max = store->Retrieve(2, 100);
  ASSERT_TRUE(at_max.ok());
  std::set<int> a(big->cluster_ids.begin(), big->cluster_ids.end());
  std::set<int> b(at_max->cluster_ids.begin(), at_max->cluster_ids.end());
  EXPECT_EQ(a, b);
}

TEST(PrecomputeTest, StatsArePopulated) {
  Instance inst = MakeInstance(19, 60, 4, 3, 12);
  PrecomputeStats stats;
  auto store =
      Precompute::Run(inst.u, 12, GridOptions(2, 8, {1, 2}), &stats);
  ASSERT_TRUE(store.ok());
  EXPECT_GT(stats.initial_clusters, 0);
  EXPECT_GE(stats.fixed_order_ms, 0.0);
  EXPECT_GE(stats.bottom_up_ms, 0.0);
}

TEST(PrecomputeTest, DefaultsAndValidation) {
  Instance inst = MakeInstance(23, 50, 4, 3, 10);
  // Defaults: d = 1..m, derived k_max.
  auto store = Precompute::Run(inst.u, 10);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->d_values().size(), 4u);

  EXPECT_FALSE(Precompute::Run(inst.u, 0).ok());
  EXPECT_FALSE(
      Precompute::Run(inst.u, 10, GridOptions(5, 3, {1})).ok());  // k_max<k_min
  EXPECT_FALSE(
      Precompute::Run(inst.u, 10, GridOptions(2, 8, {99})).ok());  // bad D
}

TEST(PrecomputeTest, ParallelReplaysAreBitIdenticalAcrossThreadCounts) {
  // The per-D replays run one pool task per D into pre-sized slots, so the
  // store must be exactly — not approximately — the serial store for any
  // worker count.
  Instance inst = MakeInstance(41, 120, 6, 3, 30);
  PrecomputeOptions options = GridOptions(2, 16, {1, 2, 3, 4, 5, 6});
  options.num_threads = 1;
  auto reference = Precompute::Run(inst.u, 30, options);
  ASSERT_TRUE(reference.ok());

  for (int threads : {2, 8}) {
    options.num_threads = threads;
    PrecomputeStats stats;
    auto store = Precompute::Run(inst.u, 30, options, &stats);
    ASSERT_TRUE(store.ok()) << threads << " threads";
    EXPECT_EQ(stats.num_threads, threads);
    ASSERT_EQ(store->d_values(), reference->d_values());
    for (int d : reference->d_values()) {
      // (size, value) ladders bit-identical (double ==, no tolerance).
      EXPECT_EQ(store->SizeValues(d).value(), reference->SizeValues(d).value())
          << "d=" << d << " threads=" << threads;
      // Interval sets identical (stored order is unspecified; sort).
      auto norm = [d](const Result<std::vector<SolutionStore::IntervalRecord>>&
                          recs) {
        std::vector<std::tuple<int, int, int>> out;
        for (const auto& r : recs.value()) {
          out.emplace_back(r.lo, r.hi, r.cluster_id);
        }
        std::sort(out.begin(), out.end());
        return out;
      };
      EXPECT_EQ(norm(store->Intervals(d)), norm(reference->Intervals(d)))
          << "d=" << d << " threads=" << threads;
    }
  }
}

TEST(PrecomputeTest, DZeroIsTheNoDistanceConstraintRow) {
  // d = 0 is accepted as the explicit "no distance constraint" row: its
  // distance phase is a no-op, so the widest stored state is exactly the
  // Fixed-Order output, and each stored solution matches a direct replay
  // with Params::D == 0 (which ValidateParams accepts everywhere else).
  Instance inst = MakeInstance(37, 80, 5, 3, 16);
  PrecomputeOptions options = GridOptions(2, 10, {0, 2});
  auto store = Precompute::Run(inst.u, 16, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_EQ(store->d_values(), (std::vector<int>{0, 2}));

  FixedOrderOptions fo;
  auto initial = FixedOrder::RunPhase(inst.u, options.c * 10, 16, 0, fo);
  ASSERT_TRUE(initial.ok());
  // The first stored state for d=0 is the untouched Fixed-Order pool.
  auto widest = store->Retrieve(0, 1000);
  ASSERT_TRUE(widest.ok());
  std::set<int> got(widest->cluster_ids.begin(), widest->cluster_ids.end());
  std::set<int> want(initial->begin(), initial->end());
  EXPECT_EQ(got, want);

  for (int k : {8, 4}) {
    auto direct = BottomUp::RunFrom(inst.u, {k, 16, 0}, *initial);
    ASSERT_TRUE(direct.ok());
    auto stored = store->Retrieve(0, k);
    ASSERT_TRUE(stored.ok());
    std::set<int> a(direct->cluster_ids.begin(), direct->cluster_ids.end());
    std::set<int> b(stored->cluster_ids.begin(), stored->cluster_ids.end());
    EXPECT_EQ(a, b) << "k=" << k;
  }

  // The default grid stays 1..m — no implicit d = 0 row.
  auto defaults = Precompute::Run(inst.u, 16, GridOptions(2, 10, {}));
  ASSERT_TRUE(defaults.ok());
  EXPECT_FALSE(defaults->Retrieve(0, 5).ok());
  // Negative d is still rejected.
  EXPECT_FALSE(Precompute::Run(inst.u, 16, GridOptions(2, 10, {-1})).ok());
}

TEST(PrecomputeTest, MatchesDirectReplayAtSampledPoints) {
  // The stored solution at (k, D) must equal running the same Bottom-Up
  // replay directly from the same Fixed-Order initial set. We verify
  // self-consistency: retrieving twice and via value agree, and the state
  // for large k equals the post-distance-phase state of a fresh replay
  // seeded identically (D-independent Fixed-Order phase, c and budget
  // matching).
  Instance inst = MakeInstance(29, 80, 5, 3, 16);
  PrecomputeOptions options = GridOptions(2, 10, {2});
  auto store = Precompute::Run(inst.u, 16, options);
  ASSERT_TRUE(store.ok());

  FixedOrderOptions fo;
  auto initial = FixedOrder::RunPhase(inst.u, options.c * 10, 16, 0, fo);
  ASSERT_TRUE(initial.ok());
  for (int k : {10, 6, 3}) {
    Params params{k, 16, 2};
    auto direct = BottomUp::RunFrom(inst.u, params, *initial);
    ASSERT_TRUE(direct.ok());
    auto stored = store->Retrieve(2, k);
    ASSERT_TRUE(stored.ok());
    std::set<int> a(direct->cluster_ids.begin(), direct->cluster_ids.end());
    std::set<int> b(stored->cluster_ids.begin(), stored->cluster_ids.end());
    EXPECT_EQ(a, b) << "k=" << k;
    EXPECT_NEAR(direct->average, stored->average, 1e-9);
  }
}

}  // namespace
}  // namespace qagview::core
