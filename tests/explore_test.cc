#include <string>

#include <gtest/gtest.h>

#include "core/bottom_up.h"
#include "core/explore.h"
#include "core/hybrid.h"
#include "test_util.h"

namespace qagview::core {
namespace {

TEST(ExploreTest, TwoLayerViewAggregatesPerCluster) {
  AnswerSet s = testutil::MakeMovieExample();
  auto u = ClusterUniverse::Build(&s, 8);
  ASSERT_TRUE(u.ok());
  Params params{4, 8, 2};
  auto sol = BottomUp::Run(*u, params);
  ASSERT_TRUE(sol.ok());

  TwoLayerView view = BuildTwoLayerView(*u, *sol);
  EXPECT_EQ(view.clusters.size(), sol->cluster_ids.size());
  EXPECT_NEAR(view.solution_average, sol->average, 1e-9);
  double prev = 1e18;
  for (const ClusterView& cv : view.clusters) {
    EXPECT_LE(cv.average, prev);  // sorted by average desc
    prev = cv.average;
    EXPECT_GT(cv.count, 0);
    EXPECT_EQ(static_cast<int>(cv.member_ranks.size()), cv.count);
    EXPECT_GE(cv.top_count, 1);  // universe clusters cover >=1 top element
    for (int rank : cv.member_ranks) {
      EXPECT_GE(rank, 1);
      EXPECT_LE(rank, s.size());
    }
  }
}

TEST(ExploreTest, SummaryRendersPatternsAndAverages) {
  AnswerSet s = testutil::MakeMovieExample();
  auto u = ClusterUniverse::Build(&s, 8);
  ASSERT_TRUE(u.ok());
  auto sol = BottomUp::Run(*u, Params{4, 8, 2});
  ASSERT_TRUE(sol.ok());
  std::string text = RenderSummary(*u, *sol);
  EXPECT_NE(text.find("hdec"), std::string::npos);
  EXPECT_NE(text.find("avg val"), std::string::npos);
  EXPECT_NE(text.find("solution avg"), std::string::npos);
}

TEST(ExploreTest, ExpandedViewListsMembersWithRanks) {
  AnswerSet s = testutil::MakeMovieExample();
  auto u = ClusterUniverse::Build(&s, 8);
  ASSERT_TRUE(u.ok());
  auto sol = BottomUp::Run(*u, Params{4, 8, 2});
  ASSERT_TRUE(sol.ok());
  std::string text = RenderExpanded(*u, *sol);
  // Rank-1 tuple (1975 20s M Student, 4.24) must appear with its rank.
  EXPECT_NE(text.find("4.24"), std::string::npos);
  EXPECT_NE(text.find("1975"), std::string::npos);
  // Member lines are indented under cluster headers.
  EXPECT_NE(text.find("▼"), std::string::npos);

  // max_members truncation note appears when limiting to one member if any
  // cluster has more than one member.
  std::string truncated = RenderExpanded(*u, *sol, /*max_members=*/1);
  bool has_multi = false;
  for (const ClusterView& cv : BuildTwoLayerView(*u, *sol).clusters) {
    has_multi = has_multi || cv.count > 1;
  }
  if (has_multi) {
    EXPECT_NE(truncated.find("more)"), std::string::npos);
  }
}

TEST(ExploreTest, PaperExampleSummaryIsDiscriminative) {
  // The headline behaviour from Example 1.2: with k=4, L=8, D=2 the
  // summary's clusters should all have high averages — strictly above the
  // trivial all-tuples average — because Max-Avg avoids patterns shared
  // with low-valued tuples.
  AnswerSet s = testutil::MakeMovieExample();
  auto u = ClusterUniverse::Build(&s, 8);
  ASSERT_TRUE(u.ok());
  auto sol = Hybrid::Run(*u, Params{4, 8, 2});
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(sol->average, s.TrivialAverage());
  // And the solution's covered tuples skew to the top: its average must be
  // closer to the top-8 average than the trivial baseline is.
  double top8 = s.TopAverage(8);
  EXPECT_LT(top8 - sol->average, top8 - s.TrivialAverage());
}

}  // namespace
}  // namespace qagview::core
