#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/semilattice.h"
#include "test_util.h"

namespace qagview::core {
namespace {

TEST(ClusterUniverseTest, GeneratesAllGeneralizationsOfTopL) {
  AnswerSet s = testutil::MakeMovieExample();
  auto u = ClusterUniverse::Build(&s, /*top_l=*/3);
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  // Every mask of every top-3 element must be present.
  for (int i = 0; i < 3; ++i) {
    for (uint32_t mask = 0; mask < 16u; ++mask) {
      Cluster c = Cluster::Generalize(s.element(i).attrs, mask);
      EXPECT_GE(u->FindId(c), 0) << c.ToString();
    }
  }
  // And nothing else: every cluster covers >= 1 top-L element.
  for (int id = 0; id < u->num_clusters(); ++id) {
    EXPECT_GT(u->top_covered_count(id), 0);
  }
  // Upper bound: at most L * 2^m clusters (deduplicated).
  EXPECT_LE(u->num_clusters(), 3 * 16);
}

TEST(ClusterUniverseTest, CoverageMappingIsExact) {
  AnswerSet s = testutil::MakeRandomAnswerSet(7, 60, 4, 4);
  auto u = ClusterUniverse::Build(&s, 10);
  ASSERT_TRUE(u.ok());
  for (int id = 0; id < u->num_clusters(); ++id) {
    const Cluster& c = u->cluster(id);
    // Recompute coverage by brute force.
    std::vector<int32_t> expected;
    double expected_sum = 0.0;
    for (int e = 0; e < s.size(); ++e) {
      if (c.CoversElement(s.element(e).attrs)) {
        expected.push_back(e);
        expected_sum += s.value(e);
      }
    }
    EXPECT_EQ(u->covered(id), expected) << c.ToString();
    EXPECT_NEAR(u->covered_sum(id), expected_sum, 1e-9);
    EXPECT_TRUE(std::is_sorted(u->covered(id).begin(), u->covered(id).end()));
  }
}

TEST(ClusterUniverseTest, NaiveMappingMatchesOptimized) {
  AnswerSet s = testutil::MakeRandomAnswerSet(11, 80, 5, 3);
  auto fast = ClusterUniverse::Build(&s, 12);
  UniverseOptions naive_options;
  naive_options.naive_mapping = true;
  auto naive = ClusterUniverse::Build(&s, 12, naive_options);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(naive.ok());
  ASSERT_EQ(fast->num_clusters(), naive->num_clusters());
  for (int id = 0; id < fast->num_clusters(); ++id) {
    int other = naive->FindId(fast->cluster(id));
    ASSERT_GE(other, 0);
    EXPECT_EQ(fast->covered(id), naive->covered(other));
  }
}

// m = 9 attributes exceeds the packed-key limit of 8, forcing the
// vector-keyed index; coverage must stay exact and algorithms functional.
TEST(ClusterUniverseTest, UnpackedFallbackAtNineAttributes) {
  AnswerSet s = testutil::MakeRandomAnswerSet(23, 50, 9, 2);
  auto u = ClusterUniverse::Build(&s, 6);
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  for (int id = 0; id < u->num_clusters(); id += 17) {
    const Cluster& c = u->cluster(id);
    std::vector<int32_t> expected;
    for (int e = 0; e < s.size(); ++e) {
      if (c.CoversElement(s.element(e).attrs)) {
        expected.push_back(e);
      }
    }
    ASSERT_EQ(u->covered(id), expected) << c.ToString();
  }
}

// A domain wider than a byte lane (>254 codes) also bypasses packing.
TEST(ClusterUniverseTest, UnpackedFallbackAtWideDomain) {
  std::vector<std::string> wide_names;
  for (int i = 0; i < 300; ++i) wide_names.push_back(StrCat("w", i));
  std::vector<Element> elements;
  for (int i = 0; i < 40; ++i) {
    elements.push_back(
        {{static_cast<int32_t>((i * 7) % 300), static_cast<int32_t>(i % 3)},
         40.0 - i});
  }
  auto s = AnswerSet::FromRaw({"wide", "narrow"},
                              {wide_names, {"x", "y", "z"}},
                              std::move(elements));
  ASSERT_TRUE(s.ok());
  auto u = ClusterUniverse::Build(&*s, 8);
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  // Exact singleton mapping survives the fallback.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(u->covered(u->singleton_id(i)), std::vector<int32_t>{i});
  }
  // The trivial cluster still covers all 40 elements.
  int trivial = u->FindId(Cluster::Trivial(2));
  ASSERT_GE(trivial, 0);
  EXPECT_EQ(u->covered_count(trivial), 40);
}

TEST(ClusterUniverseTest, SingletonIdsMatchTopElements) {
  AnswerSet s = testutil::MakeMovieExample();
  auto u = ClusterUniverse::Build(&s, 5);
  ASSERT_TRUE(u.ok());
  for (int i = 0; i < 5; ++i) {
    int id = u->singleton_id(i);
    EXPECT_EQ(u->cluster(id), Cluster(s.element(i).attrs));
    // A singleton's covered list contains exactly the identical elements
    // (group-by outputs are unique, so just element i).
    EXPECT_EQ(u->covered(id), std::vector<int32_t>{i});
  }
}

TEST(ClusterUniverseTest, LcaClosureAndCache) {
  AnswerSet s = testutil::MakeRandomAnswerSet(3, 40, 4, 3);
  auto u = ClusterUniverse::Build(&s, 8);
  ASSERT_TRUE(u.ok());
  // LCA of any two universe clusters resolves to a universe id, and the
  // pattern matches Cluster::Lca.
  for (int a = 0; a < u->num_clusters(); a += 7) {
    for (int b = 0; b < u->num_clusters(); b += 11) {
      int lca = u->LcaId(a, b);
      ASSERT_GE(lca, 0);
      EXPECT_EQ(u->cluster(lca),
                Cluster::Lca(u->cluster(a), u->cluster(b)));
      EXPECT_EQ(u->LcaId(b, a), lca);  // cached/symmetric
    }
  }
}

TEST(ClusterUniverseTest, TrivialClusterCoversEverything) {
  AnswerSet s = testutil::MakeMovieExample();
  auto u = ClusterUniverse::Build(&s, 4);
  ASSERT_TRUE(u.ok());
  int id = u->FindId(Cluster::Trivial(s.num_attrs()));
  ASSERT_GE(id, 0);
  EXPECT_EQ(u->covered_count(id), s.size());
  EXPECT_NEAR(u->Average(id), s.TrivialAverage(), 1e-9);
}

TEST(ClusterUniverseTest, LevelStartIdsAreAtRequestedLevel) {
  AnswerSet s = testutil::MakeRandomAnswerSet(5, 50, 5, 3);
  auto u = ClusterUniverse::Build(&s, 10);
  ASSERT_TRUE(u.ok());
  for (int level : {0, 1, 2}) {
    std::vector<int> ids = u->LevelStartIds(level);
    EXPECT_FALSE(ids.empty());
    std::set<int> unique(ids.begin(), ids.end());
    EXPECT_EQ(unique.size(), ids.size()) << "duplicates at level " << level;
    for (int id : ids) {
      EXPECT_EQ(u->cluster(id).level(), level);
    }
    // Together they cover all top-L elements.
    std::set<int32_t> covered;
    for (int id : ids) {
      for (int32_t e : u->covered(id)) {
        if (e < u->top_l()) covered.insert(e);
      }
    }
    EXPECT_EQ(static_cast<int>(covered.size()), u->top_l());
  }
}

TEST(ClusterUniverseTest, RejectsBadArguments) {
  AnswerSet s = testutil::MakeMovieExample();
  EXPECT_FALSE(ClusterUniverse::Build(&s, 0).ok());
  EXPECT_FALSE(ClusterUniverse::Build(&s, s.size() + 1).ok());
  UniverseOptions tight;
  tight.max_attrs = 2;
  EXPECT_FALSE(ClusterUniverse::Build(&s, 4, tight).ok());
}

TEST(AnswerSetTest, FromTableInternsAndSorts) {
  storage::Schema schema({{"g", storage::ValueType::kString},
                          {"year", storage::ValueType::kInt64},
                          {"val", storage::ValueType::kDouble}});
  storage::Table t(schema);
  QAG_CHECK_OK(t.AppendRow({storage::Value::Str("a"), storage::Value::Int(1990),
                            storage::Value::Real(1.0)}));
  QAG_CHECK_OK(t.AppendRow({storage::Value::Str("b"), storage::Value::Int(1995),
                            storage::Value::Real(3.0)}));
  QAG_CHECK_OK(t.AppendRow({storage::Value::Str("a"), storage::Value::Int(1995),
                            storage::Value::Real(2.0)}));
  auto s = AnswerSet::FromTable(t, "val");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->num_attrs(), 2);
  EXPECT_EQ(s->size(), 3);
  EXPECT_DOUBLE_EQ(s->value(0), 3.0);  // sorted desc
  EXPECT_EQ(s->ValueName(0, s->element(0).attrs[0]), "b");
  EXPECT_EQ(s->ValueName(1, s->element(0).attrs[1]), "1995");
  EXPECT_NEAR(s->TrivialAverage(), 2.0, 1e-9);
  EXPECT_NEAR(s->TopAverage(2), 2.5, 1e-9);
}

TEST(AnswerSetTest, FromTableErrors) {
  storage::Schema schema({{"g", storage::ValueType::kString},
                          {"val", storage::ValueType::kString}});
  storage::Table t(schema);
  QAG_CHECK_OK(t.AppendRow({storage::Value::Str("a"), storage::Value::Str("x")}));
  EXPECT_FALSE(AnswerSet::FromTable(t, "val").ok());   // non-numeric value
  EXPECT_FALSE(AnswerSet::FromTable(t, "nope").ok());  // missing column
}

TEST(AnswerSetTest, FromRawValidation) {
  EXPECT_FALSE(AnswerSet::FromRaw({}, {}, {}).ok());
  EXPECT_FALSE(AnswerSet::FromRaw({"a"}, {{"x"}}, {}).ok());  // empty
  EXPECT_FALSE(
      AnswerSet::FromRaw({"a"}, {{"x"}}, {{{5}, 1.0}}).ok());  // bad code
  EXPECT_FALSE(
      AnswerSet::FromRaw({"a"}, {{"x"}}, {{{0, 0}, 1.0}}).ok());  // arity
}

TEST(AnswerSetTest, ToStringShowsTopAndBottom) {
  AnswerSet s = testutil::MakeMovieExample();
  std::string text = s.ToString(2);
  EXPECT_NE(text.find("4.24"), std::string::npos);  // top value
  EXPECT_NE(text.find("1.98"), std::string::npos);  // bottom value
  EXPECT_NE(text.find("..."), std::string::npos);
}

}  // namespace
}  // namespace qagview::core
