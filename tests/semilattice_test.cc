#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/semilattice.h"
#include "test_util.h"

namespace qagview::core {
namespace {

TEST(ClusterUniverseTest, GeneratesAllGeneralizationsOfTopL) {
  AnswerSet s = testutil::MakeMovieExample();
  auto u = ClusterUniverse::Build(&s, /*top_l=*/3);
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  // Every mask of every top-3 element must be present.
  for (int i = 0; i < 3; ++i) {
    for (uint32_t mask = 0; mask < 16u; ++mask) {
      Cluster c = Cluster::Generalize(s.element(i).attrs, mask);
      EXPECT_GE(u->FindId(c), 0) << c.ToString();
    }
  }
  // And nothing else: every cluster covers >= 1 top-L element.
  for (int id = 0; id < u->num_clusters(); ++id) {
    EXPECT_GT(u->top_covered_count(id), 0);
  }
  // Upper bound: at most L * 2^m clusters (deduplicated).
  EXPECT_LE(u->num_clusters(), 3 * 16);
}

TEST(ClusterUniverseTest, CoverageMappingIsExact) {
  AnswerSet s = testutil::MakeRandomAnswerSet(7, 60, 4, 4);
  auto u = ClusterUniverse::Build(&s, 10);
  ASSERT_TRUE(u.ok());
  for (int id = 0; id < u->num_clusters(); ++id) {
    const Cluster& c = u->cluster(id);
    // Recompute coverage by brute force.
    std::vector<int32_t> expected;
    double expected_sum = 0.0;
    for (int e = 0; e < s.size(); ++e) {
      if (c.CoversElement(s.element(e).attrs)) {
        expected.push_back(e);
        expected_sum += s.value(e);
      }
    }
    EXPECT_EQ(u->covered(id), expected) << c.ToString();
    EXPECT_NEAR(u->covered_sum(id), expected_sum, 1e-9);
    EXPECT_TRUE(std::is_sorted(u->covered(id).begin(), u->covered(id).end()));
  }
}

TEST(ClusterUniverseTest, NaiveMappingMatchesOptimized) {
  AnswerSet s = testutil::MakeRandomAnswerSet(11, 80, 5, 3);
  auto fast = ClusterUniverse::Build(&s, 12);
  UniverseOptions naive_options;
  naive_options.naive_mapping = true;
  auto naive = ClusterUniverse::Build(&s, 12, naive_options);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(naive.ok());
  ASSERT_EQ(fast->num_clusters(), naive->num_clusters());
  for (int id = 0; id < fast->num_clusters(); ++id) {
    int other = naive->FindId(fast->cluster(id));
    ASSERT_GE(other, 0);
    EXPECT_EQ(fast->covered(id), naive->covered(other));
  }
}

// m = 9 attributes exceeds the packed-key limit of 8, forcing the
// vector-keyed index; coverage must stay exact and algorithms functional.
TEST(ClusterUniverseTest, UnpackedFallbackAtNineAttributes) {
  AnswerSet s = testutil::MakeRandomAnswerSet(23, 50, 9, 2);
  auto u = ClusterUniverse::Build(&s, 6);
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  for (int id = 0; id < u->num_clusters(); id += 17) {
    const Cluster& c = u->cluster(id);
    std::vector<int32_t> expected;
    for (int e = 0; e < s.size(); ++e) {
      if (c.CoversElement(s.element(e).attrs)) {
        expected.push_back(e);
      }
    }
    ASSERT_EQ(u->covered(id), expected) << c.ToString();
  }
}

// A domain wider than a byte lane (>255 codes) also bypasses packing.
TEST(ClusterUniverseTest, UnpackedFallbackAtWideDomain) {
  std::vector<std::string> wide_names;
  for (int i = 0; i < 300; ++i) wide_names.push_back(StrCat("w", i));
  std::vector<Element> elements;
  for (int i = 0; i < 40; ++i) {
    elements.push_back(
        {{static_cast<int32_t>((i * 7) % 300), static_cast<int32_t>(i % 3)},
         40.0 - i});
  }
  auto s = AnswerSet::FromRaw({"wide", "narrow"},
                              {wide_names, {"x", "y", "z"}},
                              std::move(elements));
  ASSERT_TRUE(s.ok());
  auto u = ClusterUniverse::Build(&*s, 8);
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  EXPECT_FALSE(u->packed_index());
  // Exact singleton mapping survives the fallback.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(u->covered(u->singleton_id(i)), std::vector<int32_t>{i});
  }
  // The trivial cluster still covers all 40 elements.
  int trivial = u->FindId(Cluster::Trivial(2));
  ASSERT_GE(trivial, 0);
  EXPECT_EQ(u->covered_count(trivial), 40);
}

// Packed-lane boundary: codes 0..254 — a domain of exactly 255 values —
// store as code+1 in a byte, so a domain-255 attribute must still take the
// packed path, and its clusters/coverage must match the forced fallback
// cluster-for-cluster.
TEST(ClusterUniverseTest, PackedPathAtDomain255Boundary) {
  std::vector<std::string> names255;
  for (int i = 0; i < 255; ++i) names255.push_back(StrCat("v", i));
  std::vector<Element> elements;
  for (int i = 0; i < 60; ++i) {
    // Hit the maximal code 254 (lane 0xFF) in the top elements.
    elements.push_back({{static_cast<int32_t>(254 - (i * 13) % 255),
                         static_cast<int32_t>(i % 4)},
                        60.0 - i});
  }
  auto s = AnswerSet::FromRaw({"wide", "narrow"},
                              {names255, {"a", "b", "c", "d"}},
                              std::move(elements));
  ASSERT_TRUE(s.ok()) << s.status().ToString();

  auto packed = ClusterUniverse::Build(&*s, 10);
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  EXPECT_TRUE(packed->packed_index());

  UniverseOptions fallback_options;
  fallback_options.force_unpacked = true;
  auto fallback = ClusterUniverse::Build(&*s, 10, fallback_options);
  ASSERT_TRUE(fallback.ok());
  EXPECT_FALSE(fallback->packed_index());

  ASSERT_EQ(packed->num_clusters(), fallback->num_clusters());
  for (int id = 0; id < packed->num_clusters(); ++id) {
    int other = fallback->FindId(packed->cluster(id));
    ASSERT_GE(other, 0) << packed->cluster(id).ToString();
    EXPECT_EQ(packed->covered(id), fallback->covered(other));
    EXPECT_EQ(packed->covered_sum(id), fallback->covered_sum(other));
    EXPECT_EQ(packed->top_covered_count(id),
              fallback->top_covered_count(other));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(packed->cluster(packed->singleton_id(i)),
              Cluster(s->element(i).attrs));
  }
}

// With 8 attributes all at the full 255-value domain, the all-maximal-code
// pattern would pack to FlatMap64's reserved empty marker; that corner must
// fall back to the vector-keyed index and still build correctly.
TEST(ClusterUniverseTest, EightSaturatedLanesFallBackToUnpacked) {
  std::vector<std::string> names255;
  for (int i = 0; i < 255; ++i) names255.push_back(StrCat("v", i));
  std::vector<Element> elements;
  // The dangerous element: code 254 in every one of the 8 attributes.
  elements.push_back({std::vector<int32_t>(8, 254), 100.0});
  for (int i = 0; i < 20; ++i) {
    std::vector<int32_t> attrs(8);
    for (int a = 0; a < 8; ++a) {
      attrs[static_cast<size_t>(a)] =
          static_cast<int32_t>((i * 31 + a * 7) % 255);
    }
    elements.push_back({std::move(attrs), 50.0 - i});
  }
  std::vector<std::vector<std::string>> domains(8, names255);
  std::vector<std::string> attr_names;
  for (int a = 0; a < 8; ++a) attr_names.push_back(StrCat("attr", a));
  auto s = AnswerSet::FromRaw(attr_names, domains, std::move(elements));
  ASSERT_TRUE(s.ok()) << s.status().ToString();

  auto u = ClusterUniverse::Build(&*s, 4);
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  EXPECT_FALSE(u->packed_index());
  // The all-254 element ranks first; its singleton must be findable and
  // cover exactly itself.
  EXPECT_EQ(u->covered(u->singleton_id(0)), std::vector<int32_t>{0});
  int trivial = u->FindId(Cluster::Trivial(8));
  ASSERT_GE(trivial, 0);
  EXPECT_EQ(u->covered_count(trivial), s->size());
}

// The sharded inverse coverage scan merges per-worker buffers in element
// order, so coverage lists, sums, and top-L counts must be bit-identical
// to the serial scan for every thread count — on both index paths.
TEST(ClusterUniverseTest, BuildIsBitIdenticalAcrossThreadCounts) {
  AnswerSet s = testutil::MakeRandomAnswerSet(29, 300, 5, 4);
  for (bool force_unpacked : {false, true}) {
    UniverseOptions reference_options;
    reference_options.force_unpacked = force_unpacked;
    reference_options.num_threads = 1;
    auto reference = ClusterUniverse::Build(&s, 40, reference_options);
    ASSERT_TRUE(reference.ok());
    ASSERT_EQ(reference->packed_index(), !force_unpacked);

    for (int threads : {2, 8}) {
      UniverseOptions options = reference_options;
      options.num_threads = threads;
      auto u = ClusterUniverse::Build(&s, 40, options);
      ASSERT_TRUE(u.ok());
      ASSERT_EQ(u->num_clusters(), reference->num_clusters());
      for (int id = 0; id < u->num_clusters(); ++id) {
        ASSERT_EQ(u->covered(id), reference->covered(id))
            << "threads=" << threads << " unpacked=" << force_unpacked;
        // Exact double equality: the merge re-accumulates sums in the
        // serial element order.
        ASSERT_EQ(u->covered_sum(id), reference->covered_sum(id));
        ASSERT_EQ(u->top_covered_count(id),
                  reference->top_covered_count(id));
      }
      for (int i = 0; i < 40; ++i) {
        ASSERT_EQ(u->singleton_id(i), reference->singleton_id(i));
      }
    }
  }
}

TEST(ClusterUniverseTest, SingletonIdsMatchTopElements) {
  AnswerSet s = testutil::MakeMovieExample();
  auto u = ClusterUniverse::Build(&s, 5);
  ASSERT_TRUE(u.ok());
  for (int i = 0; i < 5; ++i) {
    int id = u->singleton_id(i);
    EXPECT_EQ(u->cluster(id), Cluster(s.element(i).attrs));
    // A singleton's covered list contains exactly the identical elements
    // (group-by outputs are unique, so just element i).
    EXPECT_EQ(u->covered(id), std::vector<int32_t>{i});
  }
}

TEST(ClusterUniverseTest, LcaClosureAndCache) {
  AnswerSet s = testutil::MakeRandomAnswerSet(3, 40, 4, 3);
  auto u = ClusterUniverse::Build(&s, 8);
  ASSERT_TRUE(u.ok());
  // LCA of any two universe clusters resolves to a universe id, and the
  // pattern matches Cluster::Lca.
  for (int a = 0; a < u->num_clusters(); a += 7) {
    for (int b = 0; b < u->num_clusters(); b += 11) {
      int lca = u->LcaId(a, b);
      ASSERT_GE(lca, 0);
      EXPECT_EQ(u->cluster(lca),
                Cluster::Lca(u->cluster(a), u->cluster(b)));
      EXPECT_EQ(u->LcaId(b, a), lca);  // cached/symmetric
    }
  }
}

TEST(ClusterUniverseTest, TrivialClusterCoversEverything) {
  AnswerSet s = testutil::MakeMovieExample();
  auto u = ClusterUniverse::Build(&s, 4);
  ASSERT_TRUE(u.ok());
  int id = u->FindId(Cluster::Trivial(s.num_attrs()));
  ASSERT_GE(id, 0);
  EXPECT_EQ(u->covered_count(id), s.size());
  EXPECT_NEAR(u->Average(id), s.TrivialAverage(), 1e-9);
}

TEST(ClusterUniverseTest, LevelStartIdsAreAtRequestedLevel) {
  AnswerSet s = testutil::MakeRandomAnswerSet(5, 50, 5, 3);
  auto u = ClusterUniverse::Build(&s, 10);
  ASSERT_TRUE(u.ok());
  for (int level : {0, 1, 2}) {
    std::vector<int> ids = u->LevelStartIds(level);
    EXPECT_FALSE(ids.empty());
    std::set<int> unique(ids.begin(), ids.end());
    EXPECT_EQ(unique.size(), ids.size()) << "duplicates at level " << level;
    for (int id : ids) {
      EXPECT_EQ(u->cluster(id).level(), level);
    }
    // Together they cover all top-L elements.
    std::set<int32_t> covered;
    for (int id : ids) {
      for (int32_t e : u->covered(id)) {
        if (e < u->top_l()) covered.insert(e);
      }
    }
    EXPECT_EQ(static_cast<int>(covered.size()), u->top_l());
  }
}

TEST(ClusterUniverseTest, RejectsBadArguments) {
  AnswerSet s = testutil::MakeMovieExample();
  EXPECT_FALSE(ClusterUniverse::Build(&s, 0).ok());
  EXPECT_FALSE(ClusterUniverse::Build(&s, s.size() + 1).ok());
  UniverseOptions tight;
  tight.max_attrs = 2;
  EXPECT_FALSE(ClusterUniverse::Build(&s, 4, tight).ok());
}

TEST(AnswerSetTest, FromTableInternsAndSorts) {
  storage::Schema schema({{"g", storage::ValueType::kString},
                          {"year", storage::ValueType::kInt64},
                          {"val", storage::ValueType::kDouble}});
  storage::Table t(schema);
  QAG_CHECK_OK(t.AppendRow({storage::Value::Str("a"), storage::Value::Int(1990),
                            storage::Value::Real(1.0)}));
  QAG_CHECK_OK(t.AppendRow({storage::Value::Str("b"), storage::Value::Int(1995),
                            storage::Value::Real(3.0)}));
  QAG_CHECK_OK(t.AppendRow({storage::Value::Str("a"), storage::Value::Int(1995),
                            storage::Value::Real(2.0)}));
  auto s = AnswerSet::FromTable(t, "val");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->num_attrs(), 2);
  EXPECT_EQ(s->size(), 3);
  EXPECT_DOUBLE_EQ(s->value(0), 3.0);  // sorted desc
  EXPECT_EQ(s->ValueName(0, s->element(0).attrs[0]), "b");
  EXPECT_EQ(s->ValueName(1, s->element(0).attrs[1]), "1995");
  EXPECT_NEAR(s->TrivialAverage(), 2.0, 1e-9);
  EXPECT_NEAR(s->TopAverage(2), 2.5, 1e-9);
}

TEST(AnswerSetTest, FromTableErrors) {
  storage::Schema schema({{"g", storage::ValueType::kString},
                          {"val", storage::ValueType::kString}});
  storage::Table t(schema);
  QAG_CHECK_OK(t.AppendRow({storage::Value::Str("a"), storage::Value::Str("x")}));
  EXPECT_FALSE(AnswerSet::FromTable(t, "val").ok());   // non-numeric value
  EXPECT_FALSE(AnswerSet::FromTable(t, "nope").ok());  // missing column
}

TEST(AnswerSetTest, FromRawValidation) {
  EXPECT_FALSE(AnswerSet::FromRaw({}, {}, {}).ok());
  EXPECT_FALSE(AnswerSet::FromRaw({"a"}, {{"x"}}, {}).ok());  // empty
  EXPECT_FALSE(
      AnswerSet::FromRaw({"a"}, {{"x"}}, {{{5}, 1.0}}).ok());  // bad code
  EXPECT_FALSE(
      AnswerSet::FromRaw({"a"}, {{"x"}}, {{{0, 0}, 1.0}}).ok());  // arity
}

TEST(AnswerSetTest, ToStringShowsTopAndBottom) {
  AnswerSet s = testutil::MakeMovieExample();
  std::string text = s.ToString(2);
  EXPECT_NE(text.find("4.24"), std::string::npos);  // top value
  EXPECT_NE(text.find("1.98"), std::string::npos);  // bottom value
  EXPECT_NE(text.find("..."), std::string::npos);
}

}  // namespace
}  // namespace qagview::core
