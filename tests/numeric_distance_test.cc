#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/bottom_up.h"
#include "core/numeric_distance.h"
#include "test_util.h"

namespace qagview::core {
namespace {

// Ages 10/20/30/40 on a numeric scale; a categorical color attribute.
std::unique_ptr<AnswerSet> MakeNumericSet() {
  auto s = AnswerSet::FromRaw(
      {"age", "color"}, {{"10", "20", "30", "40"}, {"red", "green", "blue"}},
      {{{0, 0}, 4.0}, {{1, 1}, 3.0}, {{2, 2}, 2.0}, {{3, 0}, 1.0}});
  QAG_CHECK(s.ok());
  return std::make_unique<AnswerSet>(std::move(s).value());
}

TEST(NumericDistanceTest, DetectsNumericAttributes) {
  auto s = MakeNumericSet();
  NumericDistanceModel model = NumericDistanceModel::FromAnswerSet(*s);
  EXPECT_TRUE(model.is_numeric(0));
  EXPECT_FALSE(model.is_numeric(1));
}

TEST(NumericDistanceTest, ConstantNumericColumnStaysCategorical) {
  auto s = AnswerSet::FromRaw({"x", "y"}, {{"7"}, {"1", "2"}},
                              {{{0, 0}, 2.0}, {{0, 1}, 1.0}});
  ASSERT_TRUE(s.ok());
  NumericDistanceModel model = NumericDistanceModel::FromAnswerSet(*s);
  EXPECT_FALSE(model.is_numeric(0));  // spread 0: nothing to normalize
  EXPECT_TRUE(model.is_numeric(1));
}

TEST(NumericDistanceTest, GapSemantics) {
  auto s = MakeNumericSet();
  NumericDistanceModel model = NumericDistanceModel::FromAnswerSet(*s);
  // Numeric attribute: normalized |x - y| / spread, spread = 40 - 10 = 30.
  EXPECT_DOUBLE_EQ(model.AttributeGap(0, 0, 3), 1.0);        // 10 vs 40
  EXPECT_NEAR(model.AttributeGap(0, 0, 1), 10.0 / 30, 1e-12);  // 10 vs 20
  EXPECT_DOUBLE_EQ(model.AttributeGap(0, 2, 2), 0.0);
  // Categorical attribute: 0/1.
  EXPECT_DOUBLE_EQ(model.AttributeGap(1, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.AttributeGap(1, 0, 2), 1.0);
  // Wildcards take the maximal gap on both kinds.
  EXPECT_DOUBLE_EQ(model.AttributeGap(0, kWildcard, 1), 1.0);
  EXPECT_DOUBLE_EQ(model.AttributeGap(1, 2, kWildcard), 1.0);
}

TEST(NumericDistanceTest, CategoricalL1ReducesToDefinition31) {
  // With every attribute categorical and p=1, the numeric distance equals
  // the paper's integer metric on arbitrary patterns.
  AnswerSet s = testutil::MakeRandomAnswerSet(5, 40, 4, 3);
  NumericDistanceModel model = NumericDistanceModel::Categorical(4);
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int32_t> pa(4);
    std::vector<int32_t> pb(4);
    for (int i = 0; i < 4; ++i) {
      pa[static_cast<size_t>(i)] =
          rng.Bernoulli(0.3) ? kWildcard : static_cast<int32_t>(rng.Index(3));
      pb[static_cast<size_t>(i)] =
          rng.Bernoulli(0.3) ? kWildcard : static_cast<int32_t>(rng.Index(3));
    }
    Cluster a(pa);
    Cluster b(pb);
    EXPECT_DOUBLE_EQ(model.Distance(a, b, 1.0),
                     static_cast<double>(Distance(a, b)));
  }
}

class NumericDistancePropertyTest : public testing::TestWithParam<double> {};

TEST_P(NumericDistancePropertyTest, SymmetryTriangleAndMonotonicity) {
  const double p = GetParam();
  auto s = MakeNumericSet();
  NumericDistanceModel model = NumericDistanceModel::FromAnswerSet(*s);
  Rng rng(23);
  auto random_pattern = [&] {
    std::vector<int32_t> pattern(2);
    pattern[0] =
        rng.Bernoulli(0.25) ? kWildcard : static_cast<int32_t>(rng.Index(4));
    pattern[1] =
        rng.Bernoulli(0.25) ? kWildcard : static_cast<int32_t>(rng.Index(3));
    return Cluster(pattern);
  };
  for (int trial = 0; trial < 300; ++trial) {
    Cluster a = random_pattern();
    Cluster b = random_pattern();
    Cluster c = random_pattern();
    double ab = model.Distance(a, b, p);
    double ba = model.Distance(b, a, p);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_GE(ab, 0.0);
    // Triangle inequality (Minkowski over per-attribute gaps).
    EXPECT_LE(ab,
              model.Distance(a, c, p) + model.Distance(c, b, p) + 1e-12);
    // Monotonicity (Prop 4.2 analogue): generalizing one side to an
    // ancestor never shrinks the distance.
    Cluster ancestor = Cluster::Lca(a, c);  // covers a
    EXPECT_GE(model.Distance(ancestor, b, p) + 1e-12, ab);
  }
}

INSTANTIATE_TEST_SUITE_P(Norms, NumericDistancePropertyTest,
                         testing::Values(1.0, 2.0, 3.0,
                                         NumericDistanceModel::kInfinity));

TEST(NumericDistanceTest, MaxNormIsLimitOfLp) {
  auto s = MakeNumericSet();
  NumericDistanceModel model = NumericDistanceModel::FromAnswerSet(*s);
  Cluster a({0, 1});
  Cluster b({1, 2});
  double inf = model.Distance(a, b, NumericDistanceModel::kInfinity);
  EXPECT_NEAR(model.Distance(a, b, 64.0), inf, 0.02);
  EXPECT_GE(model.Distance(a, b, 1.0), model.Distance(a, b, 2.0));
  EXPECT_GE(model.Distance(a, b, 2.0), inf);
}

TEST(NumericDistanceTest, MinPairwiseDiversityOfFeasibleSolutions) {
  // Under the categorical model with p=1 the numeric machinery must agree
  // with the feasibility the algorithms enforce: every Bottom-Up solution
  // at distance D has min pairwise L1 distance >= D.
  auto set = std::make_unique<AnswerSet>(
      testutil::MakeRandomAnswerSet(31, 70, 5, 3));
  auto u = ClusterUniverse::Build(set.get(), 15);
  ASSERT_TRUE(u.ok());
  NumericDistanceModel categorical = NumericDistanceModel::Categorical(5);
  for (int d : {1, 2, 3}) {
    Params params{4, 15, d};
    auto solution = BottomUp::Run(*u, params);
    ASSERT_TRUE(solution.ok());
    if (solution->size() < 2) continue;
    EXPECT_GE(categorical.MinPairwiseDistance(*u, *solution, 1.0),
              static_cast<double>(d) - 1e-12)
        << "D=" << d;
  }
}

}  // namespace
}  // namespace qagview::core
