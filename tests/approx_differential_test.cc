// Approximate-first serving, enforced differentially:
//
//  (a) the exact generation published by refinement is bit-identical to a
//      cold exact-only rebuild from the same table state (the PR-4 oracle
//      discipline, applied to the exactness upgrade), including after
//      appends land between refinements;
//  (b) approximate answers are honest: across 120 seeded skewed tables,
//      the true (exact) group value falls inside the reported confidence
//      interval at least confidence - 0.03 of the time, per aggregate
//      shape (count / sum / avg);
//  (c) readers racing background refinement only ever observe a complete
//      published view — the approximate set or the exact set, never a
//      blend — and the warm path stays writer-lock-free once refinement
//      quiesces, with the retired approximate generation draining to an
//      empty graveyard.
//
// The TSan/ASan CI jobs run this binary explicitly: mode (c) races 8
// reader threads against the background exact build's republication.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "service/query_service.h"
#include "test_util.h"

namespace qagview::service {
namespace {

constexpr char kRefineSql[] =
    "SELECT g0, g1, g2, avg(rating) AS val FROM ratings "
    "GROUP BY g0, g1, g2 HAVING count(*) > 2 ORDER BY val DESC";

constexpr double kConfidence = 0.95;

/// Small reservoir relative to the 4000-row tables below, so approximate
/// execution genuinely estimates (sample < population) instead of falling
/// back to exact.
ServiceOptions ApproxOptions() {
  ServiceOptions options;
  options.sample_capacity = 512;
  return options;
}

std::shared_ptr<const core::AnswerSet> Answers(QueryService& service,
                                               QueryHandle handle) {
  auto answers = service.Answers(handle);
  QAG_CHECK(answers.ok()) << answers.status().ToString();
  return *answers;
}

/// Display-name key of one answer, stable across services that interned
/// the same attribute values to different codes (the approximate set is
/// built from the sample, so its code space is its own).
std::string KeyOf(const core::AnswerSet& set, int i) {
  std::string key;
  const core::Element& e = set.element(i);
  for (int a = 0; a < set.num_attrs(); ++a) {
    key += set.ValueName(a, e.attrs[static_cast<size_t>(a)]);
    key += '\x1f';
  }
  return key;
}

/// The cold oracle: a fresh exact-only service over base + all deltas.
std::shared_ptr<const core::AnswerSet> ColdExactAnswers(
    const testutil::RandomTableSpec& spec, uint64_t seed, int base_rows,
    const std::vector<std::vector<storage::Value>>& extra) {
  QueryService cold;
  storage::Table table = testutil::MakeRandomTable(spec, seed, base_rows);
  QAG_CHECK_OK(table.AppendRows(extra));
  QAG_CHECK_OK(cold.RegisterTable("ratings", std::move(table)));
  auto info = cold.Query(kRefineSql, "val");
  QAG_CHECK(info.ok()) << info.status().ToString();
  return Answers(cold, info->handle);
}

// ---------------------------------------------------------------------------
// (a) Refinement publishes the bit-identical exact generation.

TEST(ApproxRefinement, ExactGenerationMatchesColdRebuild) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    SCOPED_TRACE(StrCat("seed ", seed));
    testutil::RandomTableSpec spec;
    Rng rng(seed * 9973 + 5);
    const int base_rows = 3600 + static_cast<int>(rng.Index(800));

    QueryService service(ApproxOptions());
    ASSERT_TRUE(service
                    .RegisterTable("ratings", testutil::MakeRandomTable(
                                                  spec, seed, base_rows))
                    .ok());
    QueryOptions mode;
    mode.mode = QueryMode::kApproxFirst;
    mode.confidence = kConfidence;
    auto info = service.Query(kRefineSql, "val", mode);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    // The cold response really is phase one: approximate, with bounds.
    EXPECT_FALSE(info->is_exact);
    EXPECT_TRUE(info->stats.approximate);
    EXPECT_GT(info->max_bound, 0.0);
    EXPECT_EQ(info->confidence, kConfidence);
    EXPECT_LT(info->sample_fraction, 1.0);

    RequestStats refine_stats;
    ASSERT_TRUE(service.Refine(info->handle, &refine_stats).ok());
    EXPECT_FALSE(refine_stats.approximate);
    std::shared_ptr<const core::AnswerSet> live =
        Answers(service, info->handle);
    EXPECT_TRUE(live->approximation().is_exact);
    std::shared_ptr<const core::AnswerSet> oracle =
        ColdExactAnswers(spec, seed, base_rows, {});
    EXPECT_EQ(live->content_fingerprint(), oracle->content_fingerprint());
    EXPECT_TRUE(live->SameContent(*oracle));

    // Appends re-open the gap (the refresh path republishes approximate
    // first in this mode); the next refinement must land exactly on the
    // cold rebuild over the *final* state.
    std::vector<std::vector<storage::Value>> extra;
    for (int a = 0; a < 2; ++a) {
      auto rows = testutil::MakeRandomRows(
          spec, seed ^ (0xD00Du + static_cast<uint64_t>(a) * 131),
          50 + static_cast<int>(rng.Index(150)));
      ASSERT_TRUE(service.AppendRows("ratings", rows).ok());
      extra.insert(extra.end(), rows.begin(), rows.end());
    }
    ASSERT_TRUE(service.Refine(info->handle).ok());
    live = Answers(service, info->handle);
    EXPECT_TRUE(live->approximation().is_exact);
    oracle = ColdExactAnswers(spec, seed, base_rows, extra);
    EXPECT_EQ(live->content_fingerprint(), oracle->content_fingerprint());
    EXPECT_TRUE(live->SameContent(*oracle));

    QueryService::Stats stats = service.stats();
    EXPECT_GE(stats.refine_requests, 2);
    EXPECT_GE(stats.refinements, 1);
    EXPECT_GE(stats.approx_queries, 1);
  }
}

// ---------------------------------------------------------------------------
// (b) Bounds are honest at the configured confidence.

struct CoverageShape {
  const char* name;
  const char* sql;
  /// Allowed shortfall below the nominal confidence. count and sum
  /// estimators average over the whole sample (n ~ 1024), so their CLT
  /// intervals are near-nominal even against the lognormal tail; avg
  /// averages within each group (n ~ 200), where a normal interval over a
  /// one-sided heavy tail genuinely undercovers by a few points — the
  /// wider tolerance documents that gap, while still failing loudly for a
  /// broken standard error (which lands near 0.5, not 0.9).
  double tolerance;
};

class ApproxBounds : public testing::TestWithParam<CoverageShape> {};

// 40 skewed-table seeds per aggregate shape (120 total): the exact group
// value must fall inside [estimate - bound, estimate + bound] at close to
// the nominal rate. The lognormal value tail (SkewedTableSpec) is the
// adversarial case — symmetric noise would pass with far weaker bounds.
TEST_P(ApproxBounds, TrueValueInsideReportedBound) {
  const CoverageShape& shape = GetParam();
  int64_t covered = 0;
  int64_t total = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    SCOPED_TRACE(StrCat("seed ", seed));
    testutil::RandomTableSpec spec = testutil::SkewedTableSpec();
    const int rows = 8000;

    // A larger reservoir than the structural tests use: the CLT intervals
    // being validated here need enough per-group sample rows to be in
    // their asymptotic regime against the lognormal tail.
    ServiceOptions coverage_options;
    coverage_options.sample_capacity = 1024;
    QueryService service(coverage_options);
    ASSERT_TRUE(service
                    .RegisterTable("ratings", testutil::MakeRandomTable(
                                                  spec, seed, rows))
                    .ok());
    QueryOptions mode;
    mode.mode = QueryMode::kApproxOnly;
    mode.confidence = kConfidence;
    auto info = service.Query(shape.sql, "val", mode);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    ASSERT_FALSE(info->is_exact);
    std::shared_ptr<const core::AnswerSet> approx =
        Answers(service, info->handle);

    QueryService exact_service;
    ASSERT_TRUE(exact_service
                    .RegisterTable("ratings", testutil::MakeRandomTable(
                                                  spec, seed, rows))
                    .ok());
    auto exact_info = exact_service.Query(shape.sql, "val");
    ASSERT_TRUE(exact_info.ok()) << exact_info.status().ToString();
    std::shared_ptr<const core::AnswerSet> exact =
        Answers(exact_service, exact_info->handle);
    std::map<std::string, double> truth;
    for (int i = 0; i < exact->size(); ++i) {
      truth.emplace(KeyOf(*exact, i), exact->value(i));
    }
    // Every sampled group exists in the population (no HAVING in these
    // shapes), so every approximate answer has a ground truth.
    for (int i = 0; i < approx->size(); ++i) {
      auto it = truth.find(KeyOf(*approx, i));
      ASSERT_NE(it, truth.end()) << "sampled group missing from exact set";
      ASSERT_GT(approx->bound(i), 0.0);
      ++total;
      if (std::abs(approx->value(i) - it->second) <= approx->bound(i)) {
        ++covered;
      }
    }
  }
  ASSERT_GT(total, 0);
  const double coverage =
      static_cast<double>(covered) / static_cast<double>(total);
  EXPECT_GE(coverage, kConfidence - shape.tolerance)
      << shape.name << ": " << covered << "/" << total;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ApproxBounds,
    testing::Values(
        CoverageShape{"count",
                      "SELECT g0, g1, count(*) AS val FROM ratings "
                      "GROUP BY g0, g1 ORDER BY val DESC",
                      0.03},
        CoverageShape{"sum",
                      "SELECT g0, g1, sum(rating) AS val FROM ratings "
                      "GROUP BY g0, g1 ORDER BY val DESC",
                      0.03},
        CoverageShape{"avg",
                      "SELECT g0, avg(rating) AS val FROM ratings "
                      "GROUP BY g0 ORDER BY val DESC",
                      0.06}),
    [](const testing::TestParamInfo<CoverageShape>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// (c) Readers racing refinement observe only complete views.

TEST(ApproxConcurrency, ReadersSeeOnlyCompleteViewsDuringRefinement) {
  for (int rep = 0; rep < 4; ++rep) {
    const uint64_t seed = 0xACE0u + static_cast<uint64_t>(rep);
    SCOPED_TRACE(StrCat("rep ", rep));
    testutil::RandomTableSpec spec;
    const int rows = 4000;

    // The two fingerprints a racing reader may legitimately observe,
    // computed ahead of the race (samples are deterministic per dataset
    // name, so an approx-only twin service reproduces phase one exactly).
    uint64_t approx_fp = 0;
    uint64_t exact_fp = 0;
    {
      QueryService twin(ApproxOptions());
      ASSERT_TRUE(twin.RegisterTable(
                          "ratings", testutil::MakeRandomTable(spec, seed,
                                                               rows))
                      .ok());
      QueryOptions mode;
      mode.mode = QueryMode::kApproxOnly;
      mode.confidence = kConfidence;
      auto info = twin.Query(kRefineSql, "val", mode);
      ASSERT_TRUE(info.ok()) << info.status().ToString();
      ASSERT_FALSE(info->is_exact);
      approx_fp = Answers(twin, info->handle)->content_fingerprint();
    }
    exact_fp = ColdExactAnswers(spec, seed, rows, {})->content_fingerprint();
    ASSERT_NE(approx_fp, exact_fp);

    QueryService service(ApproxOptions());
    ASSERT_TRUE(service
                    .RegisterTable("ratings", testutil::MakeRandomTable(
                                                  spec, seed, rows))
                    .ok());
    QueryOptions mode;
    mode.mode = QueryMode::kApproxFirst;
    mode.confidence = kConfidence;

    constexpr int kReaders = 8;
    constexpr int kReads = 200;
    testutil::StartLatch latch(kReaders + 1);
    std::vector<std::thread> readers;
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&] {
        latch.ArriveAndWait();
        auto info = service.Query(kRefineSql, "val", mode);
        ASSERT_TRUE(info.ok()) << info.status().ToString();
        for (int i = 0; i < kReads; ++i) {
          std::shared_ptr<const core::AnswerSet> view =
              Answers(service, info->handle);
          const uint64_t fp = view->content_fingerprint();
          // Complete approximate view or complete exact view — a blend
          // would fingerprint as neither.
          EXPECT_TRUE(fp == approx_fp || fp == exact_fp) << fp;
          const core::Approximation& approx = view->approximation();
          if (fp == approx_fp) {
            EXPECT_FALSE(approx.is_exact);
            EXPECT_GT(approx.max_bound, 0.0);
          } else {
            EXPECT_TRUE(approx.is_exact);
            EXPECT_EQ(approx.max_bound, 0.0);
          }
        }
      });
    }
    // Main thread leads the cold approximate build while the readers race
    // the background refinement it schedules.
    latch.ArriveAndWait();
    auto info = service.Query(kRefineSql, "val", mode);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    ASSERT_TRUE(service.Refine(info->handle).ok());
    for (auto& reader : readers) reader.join();

    // Quiesced: exact is published, and the refinement was accounted once
    // (led by Refine or the background task; the other saw it superseded).
    EXPECT_EQ(Answers(service, info->handle)->content_fingerprint(),
              exact_fp);
    QueryService::Stats stats = service.stats();
    EXPECT_GE(stats.refine_requests, 1);
    EXPECT_GE(stats.refinements, 1);

    // The exact generation serves warm hits without the writer lock: once
    // caches are warm, a read burst moves the acquisition counter by zero.
    const int top_l = std::min(6, info->num_answers);
    const core::Params params{std::min(3, top_l), top_l, 2};
    ASSERT_TRUE(service.Summarize(info->handle, params).ok());
    const int64_t locks_before =
        service.SessionCacheStats(info->handle)->writer_lock_acquisitions;
    std::vector<std::thread> warm;
    for (int t = 0; t < kReaders; ++t) {
      warm.emplace_back([&] {
        for (int i = 0; i < 50; ++i) {
          RequestStats rs;
          auto solution = service.Summarize(info->handle, params, &rs);
          ASSERT_TRUE(solution.ok()) << solution.status().ToString();
          EXPECT_FALSE(rs.approximate);
        }
      });
    }
    for (auto& thread : warm) thread.join();
    EXPECT_EQ(service.SessionCacheStats(info->handle)->writer_lock_acquisitions,
              locks_before);

    // The retired approximate generation drained: no reader pins it, so
    // its memory was reclaimed (graveyard empty).
    EXPECT_EQ(service.stats().graveyard_size, 0);
  }
}

}  // namespace
}  // namespace qagview::service
