#include <unordered_map>

#include <gtest/gtest.h>

#include "common/flat_map.h"
#include "common/random.h"

namespace qagview {
namespace {

TEST(FlatMap64Test, InsertAndFind) {
  FlatMap64 map;
  EXPECT_EQ(map.size(), 0u);
  auto [v1, inserted1] = map.FindOrInsert(42, 7);
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(v1, 7);
  auto [v2, inserted2] = map.FindOrInsert(42, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(v2, 7);  // original value kept
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.FindOr(42, -1), 7);
  EXPECT_EQ(map.FindOr(43, -1), -1);
  EXPECT_TRUE(map.Contains(42));
  EXPECT_FALSE(map.Contains(43));
}

TEST(FlatMap64Test, ZeroKeyIsValid) {
  // The all-wildcard pattern packs to 0; it must be storable.
  FlatMap64 map;
  auto [v, inserted] = map.FindOrInsert(0, 5);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(map.FindOr(0, -1), 5);
}

TEST(FlatMap64Test, GrowsAndKeepsAllEntries) {
  FlatMap64 map(4);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    map.FindOrInsert(static_cast<uint64_t>(i) * 2654435761ULL, i);
  }
  EXPECT_EQ(map.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(map.FindOr(static_cast<uint64_t>(i) * 2654435761ULL, -1), i);
  }
}

TEST(FlatMap64Test, ResetClears) {
  FlatMap64 map;
  map.FindOrInsert(1, 1);
  map.Reset(100);
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.Contains(1));
}

class FlatMapPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(FlatMapPropertyTest, MatchesStdUnorderedMap) {
  Rng rng(GetParam());
  FlatMap64 map;
  std::unordered_map<uint64_t, int32_t> reference;
  for (int op = 0; op < 20000; ++op) {
    uint64_t key = static_cast<uint64_t>(rng.Index(4096));
    if (rng.Bernoulli(0.6)) {
      int32_t value = static_cast<int32_t>(rng.Index(1000000));
      auto [flat_value, flat_inserted] = map.FindOrInsert(key, value);
      auto [it, ref_inserted] = reference.try_emplace(key, value);
      ASSERT_EQ(flat_inserted, ref_inserted);
      ASSERT_EQ(flat_value, it->second);
    } else {
      auto it = reference.find(key);
      ASSERT_EQ(map.FindOr(key, -1), it == reference.end() ? -1 : it->second);
      ASSERT_EQ(map.Contains(key), it != reference.end());
    }
  }
  ASSERT_EQ(map.size(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatMapPropertyTest,
                         testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace qagview
