#ifndef QAGVIEW_TESTS_TEST_UTIL_H_
#define QAGVIEW_TESTS_TEST_UTIL_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/answer_set.h"

namespace qagview::testutil {

/// Builds a random categorical answer set: n elements over m attributes
/// with the given per-attribute domain size; values are drawn so that
/// elements sharing low codes on the first attributes tend to score higher
/// (giving the top of the ranking shared structure, like real aggregates).
inline core::AnswerSet MakeRandomAnswerSet(uint64_t seed, int n, int m,
                                           int domain) {
  // The generator rejection-samples distinct attribute combinations; it can
  // only terminate if the domain product is large enough to hold n of them.
  double capacity = 1.0;
  for (int a = 0; a < m; ++a) capacity *= domain;
  QAG_CHECK(static_cast<double>(n) <= capacity)
      << "MakeRandomAnswerSet: n=" << n << " distinct rows impossible with "
      << m << " attrs of domain " << domain << " (capacity " << capacity
      << ")";
  Rng rng(seed);
  std::vector<std::string> attr_names;
  std::vector<std::vector<std::string>> value_names(
      static_cast<size_t>(m));
  for (int a = 0; a < m; ++a) {
    attr_names.push_back(StrCat("a", a));
    for (int v = 0; v < domain; ++v) {
      value_names[static_cast<size_t>(a)].push_back(StrCat("a", a, "v", v));
    }
  }
  std::vector<core::Element> elements;
  elements.reserve(static_cast<size_t>(n));
  // De-duplicate attribute combinations (group-by outputs are unique).
  std::vector<std::vector<int32_t>> seen;
  while (static_cast<int>(elements.size()) < n) {
    std::vector<int32_t> attrs(static_cast<size_t>(m));
    for (int a = 0; a < m; ++a) {
      attrs[static_cast<size_t>(a)] =
          static_cast<int32_t>(rng.Zipf(domain, 0.8));
    }
    bool duplicate = false;
    for (const auto& other : seen) {
      if (other == attrs) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    seen.push_back(attrs);
    double signal = 0.0;
    for (int a = 0; a < m; ++a) {
      signal += (domain - attrs[static_cast<size_t>(a)]) /
                static_cast<double>(domain * m);
    }
    core::Element e;
    e.attrs = std::move(attrs);
    e.value = 2.0 + 2.0 * signal + rng.Gaussian(0.0, 0.3);
    elements.push_back(std::move(e));
  }
  auto result = core::AnswerSet::FromRaw(std::move(attr_names),
                                         std::move(value_names),
                                         std::move(elements));
  QAG_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// A tiny hand-built answer set mirroring the movie example of Figure 1a:
/// 4 attributes (hdec, agegrp, gender, occupation), 12 elements, values
/// chosen so male-student patterns dominate the top.
inline core::AnswerSet MakeMovieExample() {
  std::vector<std::string> attrs = {"hdec", "agegrp", "gender", "occupation"};
  std::vector<std::vector<std::string>> names = {
      {"1975", "1980", "1985", "1995"},
      {"10s", "20s", "30s"},
      {"M", "F"},
      {"Student", "Programmer", "Engineer", "Writer", "Educator"},
  };
  // (hdec, agegrp, gender, occupation) -> value
  std::vector<core::Element> elements = {
      {{0, 1, 0, 0}, 4.24},  // 1975 20s M Student
      {{1, 1, 0, 1}, 4.13},  // 1980 20s M Programmer
      {{1, 0, 0, 0}, 3.96},  // 1980 10s M Student
      {{1, 1, 0, 0}, 3.91},  // 1980 20s M Student
      {{2, 1, 0, 1}, 3.86},  // 1985 20s M Programmer
      {{1, 1, 0, 2}, 3.83},  // 1980 20s M Engineer
      {{2, 0, 0, 0}, 3.77},  // 1985 10s M Student
      {{2, 1, 0, 0}, 3.76},  // 1985 20s M Student
      {{3, 2, 1, 4}, 3.70},  // 1995 30s F Educator
      {{3, 1, 0, 3}, 2.51},  // 1995 20s M Writer
      {{3, 2, 0, 0}, 2.81},  // 1995 30s M Student
      {{3, 1, 1, 4}, 1.98},  // 1995 20s F Educator
  };
  auto result = core::AnswerSet::FromRaw(std::move(attrs), std::move(names),
                                         std::move(elements));
  QAG_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// A synthetic base table for service-layer tests: `rows` rating events
/// over four categorical columns (g0..g3, Zipf-skewed domains 6/5/4/3) and
/// a `rating` value with a planted signal on low codes, so aggregate
/// queries produce ranked answer sets with shared top patterns. The same
/// seed always builds the same table.
inline storage::Table MakeRatingsTable(uint64_t seed, int rows) {
  storage::Schema schema({{"g0", storage::ValueType::kString},
                          {"g1", storage::ValueType::kString},
                          {"g2", storage::ValueType::kString},
                          {"g3", storage::ValueType::kString},
                          {"rating", storage::ValueType::kDouble}});
  storage::Table table(schema);
  const int domains[4] = {6, 5, 4, 3};
  Rng rng(seed);
  for (int i = 0; i < rows; ++i) {
    int codes[4];
    double signal = 0.0;
    for (int a = 0; a < 4; ++a) {
      codes[a] = static_cast<int>(rng.Zipf(domains[a], 0.7));
      signal += (domains[a] - codes[a]) / (4.0 * domains[a]);
    }
    QAG_CHECK_OK(table.AppendRow(
        {storage::Value::Str(StrCat("g0v", codes[0])),
         storage::Value::Str(StrCat("g1v", codes[1])),
         storage::Value::Str(StrCat("g2v", codes[2])),
         storage::Value::Str(StrCat("g3v", codes[3])),
         storage::Value::Real(2.0 + 2.0 * signal +
                              rng.Gaussian(0.0, 0.25))}));
  }
  return table;
}

/// One-shot start barrier for concurrency tests (std::barrier is C++20):
/// every participant blocks in ArriveAndWait() until `count` threads have
/// arrived, maximizing the overlap window the test wants to exercise.
class StartLatch {
 public:
  explicit StartLatch(int count) : remaining_(count) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mu_);
    if (--remaining_ == 0) {
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

}  // namespace qagview::testutil

#endif  // QAGVIEW_TESTS_TEST_UTIL_H_
