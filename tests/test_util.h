#ifndef QAGVIEW_TESTS_TEST_UTIL_H_
#define QAGVIEW_TESTS_TEST_UTIL_H_

#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/answer_set.h"

namespace qagview::testutil {

/// Builds a random categorical answer set: n elements over m attributes
/// with the given per-attribute domain size; values are drawn so that
/// elements sharing low codes on the first attributes tend to score higher
/// (giving the top of the ranking shared structure, like real aggregates).
inline core::AnswerSet MakeRandomAnswerSet(uint64_t seed, int n, int m,
                                           int domain) {
  // The generator rejection-samples distinct attribute combinations; it can
  // only terminate if the domain product is large enough to hold n of them.
  double capacity = 1.0;
  for (int a = 0; a < m; ++a) capacity *= domain;
  QAG_CHECK(static_cast<double>(n) <= capacity)
      << "MakeRandomAnswerSet: n=" << n << " distinct rows impossible with "
      << m << " attrs of domain " << domain << " (capacity " << capacity
      << ")";
  Rng rng(seed);
  std::vector<std::string> attr_names;
  std::vector<std::vector<std::string>> value_names(
      static_cast<size_t>(m));
  for (int a = 0; a < m; ++a) {
    attr_names.push_back(StrCat("a", a));
    for (int v = 0; v < domain; ++v) {
      value_names[static_cast<size_t>(a)].push_back(StrCat("a", a, "v", v));
    }
  }
  std::vector<core::Element> elements;
  elements.reserve(static_cast<size_t>(n));
  // De-duplicate attribute combinations (group-by outputs are unique).
  std::vector<std::vector<int32_t>> seen;
  while (static_cast<int>(elements.size()) < n) {
    std::vector<int32_t> attrs(static_cast<size_t>(m));
    for (int a = 0; a < m; ++a) {
      attrs[static_cast<size_t>(a)] =
          static_cast<int32_t>(rng.Zipf(domain, 0.8));
    }
    bool duplicate = false;
    for (const auto& other : seen) {
      if (other == attrs) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    seen.push_back(attrs);
    double signal = 0.0;
    for (int a = 0; a < m; ++a) {
      signal += (domain - attrs[static_cast<size_t>(a)]) /
                static_cast<double>(domain * m);
    }
    core::Element e;
    e.attrs = std::move(attrs);
    e.value = 2.0 + 2.0 * signal + rng.Gaussian(0.0, 0.3);
    elements.push_back(std::move(e));
  }
  auto result = core::AnswerSet::FromRaw(std::move(attr_names),
                                         std::move(value_names),
                                         std::move(elements));
  QAG_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// A tiny hand-built answer set mirroring the movie example of Figure 1a:
/// 4 attributes (hdec, agegrp, gender, occupation), 12 elements, values
/// chosen so male-student patterns dominate the top.
inline core::AnswerSet MakeMovieExample() {
  std::vector<std::string> attrs = {"hdec", "agegrp", "gender", "occupation"};
  std::vector<std::vector<std::string>> names = {
      {"1975", "1980", "1985", "1995"},
      {"10s", "20s", "30s"},
      {"M", "F"},
      {"Student", "Programmer", "Engineer", "Writer", "Educator"},
  };
  // (hdec, agegrp, gender, occupation) -> value
  std::vector<core::Element> elements = {
      {{0, 1, 0, 0}, 4.24},  // 1975 20s M Student
      {{1, 1, 0, 1}, 4.13},  // 1980 20s M Programmer
      {{1, 0, 0, 0}, 3.96},  // 1980 10s M Student
      {{1, 1, 0, 0}, 3.91},  // 1980 20s M Student
      {{2, 1, 0, 1}, 3.86},  // 1985 20s M Programmer
      {{1, 1, 0, 2}, 3.83},  // 1980 20s M Engineer
      {{2, 0, 0, 0}, 3.77},  // 1985 10s M Student
      {{2, 1, 0, 0}, 3.76},  // 1985 20s M Student
      {{3, 2, 1, 4}, 3.70},  // 1995 30s F Educator
      {{3, 1, 0, 3}, 2.51},  // 1995 20s M Writer
      {{3, 2, 0, 0}, 2.81},  // 1995 30s M Student
      {{3, 1, 1, 4}, 1.98},  // 1995 20s F Educator
  };
  auto result = core::AnswerSet::FromRaw(std::move(attrs), std::move(names),
                                         std::move(elements));
  QAG_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Shape of a synthetic base table: one Zipf-skewed categorical grouping
/// column g0..g{m-1} per domain entry, plus a `rating` double with a
/// planted signal on low codes — so aggregate queries produce ranked
/// answer sets with shared top patterns. This is the one seeded generator
/// every table-level harness shares (service tests, the refresh
/// differential oracle, bench_refresh); keep ad-hoc copies out of tests.
struct RandomTableSpec {
  std::vector<int> domains = {6, 5, 4, 3};
  double zipf_theta = 0.7;
  double noise_stddev = 0.25;
  /// Heavy-tail factor for the rating column: 0 (the default) keeps the
  /// pure Gaussian noise model, > 0 adds `value_skew * exp(N(0,1))` — a
  /// lognormal tail that stresses CLT error bounds far harder than
  /// symmetric noise. The extra RNG draw happens only when enabled, so
  /// every default-spec row stream is byte-identical to before the knob
  /// existed.
  double value_skew = 0.0;

  storage::Schema MakeSchema() const {
    std::vector<storage::Field> fields;
    for (size_t a = 0; a < domains.size(); ++a) {
      fields.push_back({StrCat("g", a), storage::ValueType::kString});
    }
    fields.push_back({"rating", storage::ValueType::kDouble});
    return storage::Schema(std::move(fields));
  }
};

/// One batch of `count` random rows for the spec — directly usable as a
/// table/catalog append batch. A given (spec, seed, count) always produces
/// the same rows, and the batch for seed s is the same whether generated
/// alone or as a prefix of a longer batch.
inline std::vector<std::vector<storage::Value>> MakeRandomRows(
    const RandomTableSpec& spec, uint64_t seed, int count) {
  const int m = static_cast<int>(spec.domains.size());
  Rng rng(seed);
  std::vector<std::vector<storage::Value>> rows;
  rows.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    std::vector<storage::Value> row;
    row.reserve(static_cast<size_t>(m) + 1);
    double signal = 0.0;
    for (int a = 0; a < m; ++a) {
      int domain = spec.domains[static_cast<size_t>(a)];
      int code = static_cast<int>(rng.Zipf(domain, spec.zipf_theta));
      signal += (domain - code) / (static_cast<double>(m) * domain);
      row.push_back(storage::Value::Str(StrCat("g", a, "v", code)));
    }
    double value = 2.0 + 2.0 * signal + rng.Gaussian(0.0, spec.noise_stddev);
    if (spec.value_skew > 0.0) {
      value += spec.value_skew * std::exp(rng.Gaussian(0.0, 1.0));
    }
    row.push_back(storage::Value::Real(value));
    rows.push_back(std::move(row));
  }
  return rows;
}

/// A full random table: MakeRandomRows over a fresh table of the spec's
/// schema.
inline storage::Table MakeRandomTable(const RandomTableSpec& spec,
                                      uint64_t seed, int rows) {
  storage::Table table(spec.MakeSchema());
  QAG_CHECK_OK(table.AppendRows(MakeRandomRows(spec, seed, rows)));
  return table;
}

/// The default-shaped table (g0..g3, domains 6/5/4/3) the service tests
/// use. Same seed, same table — byte-identical to the pre-factoring
/// generator.
inline storage::Table MakeRatingsTable(uint64_t seed, int rows) {
  return MakeRandomTable(RandomTableSpec(), seed, rows);
}

/// The default shape with a lognormal value tail — the adversarial input
/// for approximate-answer coverage tests (skewed populations are where
/// naive bounds break first).
inline RandomTableSpec SkewedTableSpec() {
  RandomTableSpec spec;
  spec.value_skew = 1.5;
  return spec;
}

/// One-shot start barrier for concurrency tests (std::barrier is C++20):
/// every participant blocks in ArriveAndWait() until `count` threads have
/// arrived, maximizing the overlap window the test wants to exercise.
class StartLatch {
 public:
  explicit StartLatch(int count) : remaining_(count) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mu_);
    if (--remaining_ == 0) {
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

}  // namespace qagview::testutil

#endif  // QAGVIEW_TESTS_TEST_UTIL_H_
