#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace qagview {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  QAG_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return x * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 21);
  EXPECT_EQ(*r, 21);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(4).value(), 8);
  EXPECT_FALSE(Doubled(-4).ok());
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join(std::vector<std::string>{"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join(std::vector<int>{1, 2, 3}, "-"), "1-2-3");
  EXPECT_EQ(Join(std::vector<int>{}, ","), "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64(" -7 ").value(), -7);
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2e3").value(), -2000.0);
  EXPECT_FALSE(ParseDouble("x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, StrCatAndFormat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
}

TEST(RandomTest, UniformBounds) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(RandomTest, Deterministic) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
}

TEST(RandomTest, ZipfSkewsLow) {
  Rng rng(7);
  int low = 0;
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Zipf(10, 1.0) == 0) ++low;
  }
  // Index 0 should carry far more than the uniform share of 10%.
  EXPECT_GT(low, kTrials / 5);
}

TEST(RandomTest, WeightedChoiceRespectsWeights) {
  Rng rng(11);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedChoice(weights), 1u);
  }
}

TEST(HashTest, VectorHashDiffers) {
  VectorHash<int32_t> h;
  EXPECT_NE(h({1, 2, 3}), h({3, 2, 1}));
  EXPECT_EQ(h({1, 2, 3}), h({1, 2, 3}));
  EXPECT_NE(h({}), h({0}));
}

TEST(TimerTest, Advances) {
  WallTimer t;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  testing::Test::RecordProperty("sink", sink);
  EXPECT_GE(t.ElapsedNanos(), 0);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace qagview
