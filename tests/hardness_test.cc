#include <memory>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/hardness.h"
#include "core/semilattice.h"

namespace qagview::core {
namespace {

// A small tripartite graph: X = {x0, x1}, Y = {y0, y1}, Z = {z0}.
// Edges: (x0,y0), (x1,y1), (y0,z0), (x0,z0). No two vertices cover all four
// edges (exhaustive check over the 10 pairs), but {x0, y1, z0} does, so the
// minimum vertex cover size is 3.
TripartiteGraph MakeGraph() {
  TripartiteGraph g;
  g.nx = 2;
  g.ny = 2;
  g.nz = 1;
  g.xy = {{0, 0}, {1, 1}};
  g.yz = {{0, 0}};
  g.xz = {{0, 0}};
  return g;
}

TEST(VertexCoverTest, OracleFindsMinimum) {
  TripartiteGraph g = MakeGraph();
  EXPECT_EQ(g.NumEdges(), 4);
  int m = MinVertexCoverSize(g);
  EXPECT_EQ(m, 3);
  // Sanity: explicit covers.
  EXPECT_TRUE(IsVertexCover(g, {{0, 0}, {1, 1}, {2, 0}}));  // x0,y1,z0
  EXPECT_FALSE(IsVertexCover(g, {{0, 0}}));
}

TEST(DecisionReductionTest, VertexCoverYieldsFeasibleSolution) {
  TripartiteGraph g = MakeGraph();
  // Use a known valid cover of size 3.
  std::vector<Vertex> cover = {{0, 0}, {1, 1}, {2, 0}};
  ASSERT_TRUE(IsVertexCover(g, cover));
  auto inst = BuildDecisionInstance(g, static_cast<int>(cover.size()));
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  ASSERT_EQ(inst->answers.size(), g.NumEdges());

  auto universe = ClusterUniverse::Build(&inst->answers, inst->params.L);
  ASSERT_TRUE(universe.ok());

  std::vector<int> ids;
  for (const Cluster& c :
       VertexCoverClusters(cover, inst->x_codes, inst->y_codes,
                           inst->z_codes)) {
    int id = universe->FindId(c);
    ASSERT_GE(id, 0) << c.ToString();
    ids.push_back(id);
  }
  EXPECT_TRUE(CheckFeasible(*universe, ids, inst->params).ok());
}

TEST(DecisionReductionTest, MinimumCoverMatchesMinimumNontrivialSolution) {
  // The reduction's equivalence on a tiny graph: the smallest M for which a
  // non-trivial feasible solution of size <= M exists equals the minimum
  // vertex cover size. We search feasible solutions by brute force over the
  // universe, excluding the trivial all-star cluster and any cluster with
  // 2+ stars (per the proof, those can be replaced by vertex clusters; for
  // the "exists" direction we verify with the vertex-cover clusters).
  TripartiteGraph g = MakeGraph();
  int min_cover = MinVertexCoverSize(g);

  auto inst = BuildDecisionInstance(g, min_cover);
  ASSERT_TRUE(inst.ok());
  auto universe = ClusterUniverse::Build(&inst->answers, inst->params.L);
  ASSERT_TRUE(universe.ok());

  // Collect single-vertex clusters (exactly one non-star position holding a
  // vertex code); check whether some subset of size <= M covers everything,
  // for M = min_cover and M = min_cover - 1.
  auto exists_solution = [&](int m_bound) {
    std::vector<int> vertex_ids;
    auto add = [&](int cls, const std::vector<int32_t>& codes) {
      for (int32_t code : codes) {
        std::vector<int32_t> pattern(3, kWildcard);
        pattern[static_cast<size_t>(cls)] = code;
        int id = universe->FindId(Cluster(pattern));
        if (id >= 0) vertex_ids.push_back(id);
      }
    };
    add(0, inst->x_codes);
    add(1, inst->y_codes);
    add(2, inst->z_codes);
    // Enumerate subsets of vertex clusters up to m_bound.
    int n = static_cast<int>(vertex_ids.size());
    for (uint32_t mask = 1; mask < (1u << n); ++mask) {
      if (__builtin_popcount(mask) > m_bound) continue;
      std::vector<int> ids;
      for (int i = 0; i < n; ++i) {
        if (mask & (1u << i)) ids.push_back(vertex_ids[static_cast<size_t>(i)]);
      }
      Params params = inst->params;
      params.k = m_bound;
      if (CheckFeasible(*universe, ids, params).ok()) return true;
    }
    return false;
  };

  EXPECT_TRUE(exists_solution(min_cover));
  EXPECT_FALSE(exists_solution(min_cover - 1));
}

TEST(OptimizationReductionTest, CoverAchievesThreshold) {
  TripartiteGraph g = MakeGraph();
  int min_cover = MinVertexCoverSize(g);
  // Small redundancy override keeps the instance tiny but preserves the
  // structure (padding tuples penalize fresh-value clusters).
  auto inst = BuildOptimizationInstance(g, min_cover, /*redundancy=*/3);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  EXPECT_EQ(inst->params.L, 2 * g.NumEdges());
  EXPECT_EQ(inst->params.D, 3);

  auto universe = ClusterUniverse::Build(&inst->answers, inst->params.L);
  ASSERT_TRUE(universe.ok());

  // Find a minimum cover explicitly.
  TripartiteGraph& graph = g;
  std::vector<Vertex> all;
  for (int i = 0; i < graph.nx; ++i) all.push_back({0, i});
  for (int i = 0; i < graph.ny; ++i) all.push_back({1, i});
  for (int i = 0; i < graph.nz; ++i) all.push_back({2, i});
  std::vector<Vertex> cover;
  for (uint32_t mask = 0; mask < (1u << all.size()); ++mask) {
    if (__builtin_popcount(mask) != min_cover) continue;
    std::vector<Vertex> candidate;
    for (size_t i = 0; i < all.size(); ++i) {
      if (mask & (1u << i)) candidate.push_back(all[i]);
    }
    if (IsVertexCover(graph, candidate)) {
      cover = candidate;
      break;
    }
  }
  ASSERT_EQ(static_cast<int>(cover.size()), min_cover);

  std::vector<int> ids;
  for (const Cluster& c : VertexCoverClusters(cover, inst->x_codes,
                                              inst->y_codes, inst->z_codes)) {
    int id = universe->FindId(c);
    ASSERT_GE(id, 0);
    ids.push_back(id);
  }
  ASSERT_TRUE(CheckFeasible(*universe, ids, inst->params).ok());
  Solution sol = MakeSolution(*universe, ids);
  // The proof's bound: value >= 2Ne / (2Ne + M). (With the reduced padding
  // the vertex clusters still cover all unit tuples plus M zero tuples.)
  EXPECT_GE(sol.average + 1e-9, inst->cover_threshold);
}

TEST(ReductionBuilderTest, RejectsEmptyGraphs) {
  TripartiteGraph empty;
  EXPECT_FALSE(BuildDecisionInstance(empty, 1).ok());
  EXPECT_FALSE(BuildOptimizationInstance(empty, 1).ok());
}

}  // namespace
}  // namespace qagview::core
