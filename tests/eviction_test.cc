// Drain-then-evict coverage for the refcounted-handle lifetime model:
// under sustained content-changing refreshes the graveyard must stay
// bounded by the number of live readers (dropped handles mean immediate
// eviction), a held handle must pin exactly its own generation — alive and
// bit-identical — and everything served after evictions must match a cold
// session built from the final answer set. The TSan/ASan CI jobs run this
// binary explicitly: the concurrent case races handle drops (which destroy
// whole generations on client threads) against refreshes and builds.

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/explore.h"
#include "core/session.h"
#include "test_util.h"

namespace qagview::core {
namespace {

constexpr int kN = 60;
constexpr int kAttrs = 4;
constexpr int kDomain = 4;
constexpr int kTopL = 8;

AnswerSet Answers(uint64_t seed) {
  return testutil::MakeRandomAnswerSet(seed, kN, kAttrs, kDomain);
}

std::unique_ptr<Session> MakeSession(uint64_t seed) {
  auto session = Session::Create(Answers(seed));
  QAG_CHECK(session.ok());
  return std::move(session).value();
}

PrecomputeOptions SmallGrid() {
  PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 4;
  options.d_values = {1};
  return options;
}

TEST(EvictionTest, GraveyardStaysBoundedUnderSustainedRefreshes) {
  // >= 100 content-changing generations; every handle is dropped before
  // the next refresh, so each retired generation must be evicted
  // immediately — the graveyard never grows.
  constexpr int kGenerations = 120;
  auto session = MakeSession(1);
  int64_t refreshed = 0;
  for (int i = 0; i < kGenerations; ++i) {
    {
      auto universe = session->UniverseFor(kTopL);
      ASSERT_TRUE(universe.ok()) << universe.status().ToString();
      auto store = session->Guidance(kTopL, SmallGrid());
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      ASSERT_TRUE((*store)->Retrieve(1, 3).ok());
    }  // both handles dropped here
    Session::RefreshStats rs;
    ASSERT_TRUE(session->Refresh(Answers(2 + static_cast<uint64_t>(i)), &rs)
                    .ok());
    ASSERT_TRUE(rs.refreshed) << "seeds must differ in content";
    ++refreshed;

    Session::CacheStats stats = session->cache_stats();
    // No live readers => the bound is "<= readers + 1", here identically 0:
    // the generation retired by this refresh had no handles left.
    ASSERT_EQ(stats.graveyard_size, 0) << "generation " << i;
    ASSERT_EQ(stats.live_generations, 1) << "generation " << i;
    ASSERT_EQ(stats.retired_universes, 0) << "generation " << i;
    ASSERT_EQ(stats.retired_stores, 0) << "generation " << i;
    ASSERT_EQ(stats.generations_evicted, refreshed) << "generation " << i;
  }
  EXPECT_EQ(session->cache_stats().refreshes, kGenerations);
}

TEST(EvictionTest, HeldHandlePinsExactlyItsGeneration) {
  auto session = MakeSession(1);
  auto pinned_universe = session->UniverseFor(kTopL);
  ASSERT_TRUE(pinned_universe.ok());
  auto pinned_store = session->Guidance(kTopL, SmallGrid());
  ASSERT_TRUE(pinned_store.ok());
  const Solution before = *(*pinned_store)->Retrieve(1, 3);
  const int clusters_before = (*pinned_universe)->num_clusters();

  // Several content-changing refreshes; the intermediate generations carry
  // no handles (no caches are even built for them), so only the pinned
  // first generation survives in the graveyard.
  for (uint64_t i = 0; i < 3; ++i) {
    Session::RefreshStats rs;
    ASSERT_TRUE(session->Refresh(Answers(10 + i), &rs).ok());
    ASSERT_TRUE(rs.refreshed);
    Session::CacheStats stats = session->cache_stats();
    EXPECT_EQ(stats.graveyard_size, 1);
    EXPECT_EQ(stats.live_generations, 2);
    EXPECT_EQ(stats.retired_universes, 1);
    EXPECT_EQ(stats.retired_stores, 1);
  }

  // The pinned structures are alive and bit-identical to their pre-refresh
  // state (drained, not torn down).
  EXPECT_EQ((*pinned_universe)->num_clusters(), clusters_before);
  const Solution after = *(*pinned_store)->Retrieve(1, 3);
  EXPECT_EQ(after.cluster_ids, before.cluster_ids);
  EXPECT_EQ(after.average, before.average);

  // A store handle alone keeps the whole generation (universe + answers)
  // reachable: dropping just the universe handle evicts nothing.
  pinned_universe = Status::NotFound("dropped");
  EXPECT_EQ(session->cache_stats().graveyard_size, 1);
  EXPECT_TRUE((*pinned_store)->Retrieve(1, 3).ok());

  // Dropping the last handle evicts the generation immediately — no
  // refresh needed to observe it.
  Session::CacheStats drained = session->cache_stats();
  pinned_store = Status::NotFound("dropped");
  Session::CacheStats evicted = session->cache_stats();
  EXPECT_EQ(evicted.graveyard_size, 0);
  EXPECT_EQ(evicted.retired_universes, 0);
  EXPECT_EQ(evicted.retired_stores, 0);
  EXPECT_EQ(evicted.generations_evicted, drained.generations_evicted + 1);
}

TEST(EvictionTest, PostEvictionResultsBitIdenticalToColdRebuild) {
  constexpr uint64_t kFinalSeed = 77;
  auto warm = MakeSession(1);
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(warm->UniverseFor(kTopL).ok());
    ASSERT_TRUE(warm->Guidance(kTopL, SmallGrid()).ok());
    ASSERT_TRUE(warm->Refresh(Answers(20 + i)).ok());
  }
  ASSERT_TRUE(warm->Refresh(Answers(kFinalSeed)).ok());
  ASSERT_EQ(warm->cache_stats().graveyard_size, 0);  // all drained

  auto cold = MakeSession(kFinalSeed);
  const Params params{4, kTopL, 2};
  for (Session* session : {warm.get(), cold.get()}) {
    ASSERT_TRUE(session->Guidance(kTopL, SmallGrid()).ok());
  }

  std::shared_ptr<const ClusterUniverse> warm_universe;
  std::shared_ptr<const ClusterUniverse> cold_universe;
  auto warm_solution = warm->SummarizeWith(params, &warm_universe);
  auto cold_solution = cold->SummarizeWith(params, &cold_universe);
  ASSERT_TRUE(warm_solution.ok());
  ASSERT_TRUE(cold_solution.ok());
  EXPECT_EQ(warm_solution->cluster_ids, cold_solution->cluster_ids);
  EXPECT_EQ(warm_solution->average, cold_solution->average);
  EXPECT_EQ(RenderSummary(*warm_universe, *warm_solution),
            RenderSummary(*cold_universe, *cold_solution));

  auto warm_retrieved = warm->Retrieve(kTopL, 1, 3);
  auto cold_retrieved = cold->Retrieve(kTopL, 1, 3);
  ASSERT_TRUE(warm_retrieved.ok());
  ASSERT_TRUE(cold_retrieved.ok());
  EXPECT_EQ(warm_retrieved->cluster_ids, cold_retrieved->cluster_ids);
  EXPECT_EQ(warm_retrieved->average, cold_retrieved->average);
}

TEST(EvictionTest, AnswersHandleSurvivesRefresh) {
  auto session = MakeSession(1);
  std::shared_ptr<const AnswerSet> old_answers = session->answers();
  const uint64_t old_fp = old_answers->content_fingerprint();
  ASSERT_TRUE(session->Refresh(Answers(2)).ok());
  // The old handle still reads the outgoing data; a fresh call sees the
  // new generation.
  EXPECT_EQ(old_answers->content_fingerprint(), old_fp);
  EXPECT_NE(session->answers()->content_fingerprint(), old_fp);
  EXPECT_EQ(session->cache_stats().graveyard_size, 1);
  old_answers.reset();
  EXPECT_EQ(session->cache_stats().graveyard_size, 0);
}

// Client threads take, read, and drop handles (destroying retired
// generations on whichever thread drains last) while the main thread keeps
// refreshing — the racing-drop counterpart of refresh_differential_test's
// racing appends. Run under TSan/ASan in CI.
TEST(EvictionTest, ConcurrentHandleDropsRaceRefreshes) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 40;
  constexpr int kRefreshes = 25;
  constexpr uint64_t kFinalSeed = 99;
  auto session = MakeSession(1);
  testutil::StartLatch latch(kThreads + 1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      latch.ArriveAndWait();
      for (int round = 0; round < kRounds; ++round) {
        auto store = session->Guidance(kTopL, SmallGrid());
        ASSERT_TRUE(store.ok()) << store.status().ToString();
        // The handle serves regardless of refreshes racing underneath.
        auto solution = (*store)->Retrieve(1, 3);
        ASSERT_TRUE(solution.ok()) << solution.status().ToString();
        auto universe = session->UniverseFor(kTopL);
        ASSERT_TRUE(universe.ok()) << universe.status().ToString();
        ASSERT_GT((*universe)->num_clusters(), 0);
      }  // handles dropped — possibly the last readers of a retired gen
    });
  }
  {
    latch.ArriveAndWait();
    for (uint64_t i = 0; i < kRefreshes; ++i) {
      ASSERT_TRUE(session->Refresh(Answers(100 + i)).ok());
    }
    ASSERT_TRUE(session->Refresh(Answers(kFinalSeed)).ok());
  }
  for (auto& thread : threads) thread.join();

  // Quiesced: every handle is dropped, so every retired generation must
  // have drained away.
  Session::CacheStats stats = session->cache_stats();
  EXPECT_EQ(stats.graveyard_size, 0);
  EXPECT_EQ(stats.live_generations, 1);
  EXPECT_GE(stats.generations_evicted, kRefreshes);

  // And the survivor serves bit-identically to a cold session.
  auto cold = MakeSession(kFinalSeed);
  ASSERT_TRUE(cold->Guidance(kTopL, SmallGrid()).ok());
  ASSERT_TRUE(session->Guidance(kTopL, SmallGrid()).ok());
  auto warm_retrieved = session->Retrieve(kTopL, 1, 3);
  auto cold_retrieved = cold->Retrieve(kTopL, 1, 3);
  ASSERT_TRUE(warm_retrieved.ok());
  ASSERT_TRUE(cold_retrieved.ok());
  EXPECT_EQ(warm_retrieved->cluster_ids, cold_retrieved->cluster_ids);
  EXPECT_EQ(warm_retrieved->average, cold_retrieved->average);
}

}  // namespace
}  // namespace qagview::core
