#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/hierarchy.h"

namespace qagview::core {
namespace {

// The age hierarchy of Figure 11: [0,90) -> [0,20)/[20,60)/[60,90) ->
// decade leaves.
ConceptHierarchy MakeAgeHierarchy() {
  ConceptHierarchy h;
  int root = h.AddNode("[0,90)");
  int young = h.AddNode("[0,20)", root);
  int mid = h.AddNode("[20,60)", root);
  int old = h.AddNode("[60,90)", root);
  const char* labels[] = {"[0,10)",  "[10,20)", "[20,30)",
                          "[30,40)", "[40,50)", "[50,60)",
                          "[60,70)", "[70,80)", "[80,90)"};
  for (int i = 0; i < 9; ++i) {
    int parent = i < 2 ? young : (i < 6 ? mid : old);
    int leaf = h.AddNode(labels[i], parent);
    QAG_CHECK_OK(h.BindLeaf(leaf, i));
  }
  QAG_CHECK_OK(h.Finalize());
  return h;
}

TEST(ConceptHierarchyTest, StructureAccessors) {
  ConceptHierarchy h = MakeAgeHierarchy();
  EXPECT_EQ(h.num_nodes(), 13);
  EXPECT_EQ(h.root(), 0);
  EXPECT_EQ(h.depth(h.root()), 0);
  int leaf = h.LeafNode(0);
  ASSERT_GE(leaf, 0);
  EXPECT_TRUE(h.is_leaf(leaf));
  EXPECT_EQ(h.leaf_code(leaf), 0);
  EXPECT_EQ(h.depth(leaf), 2);
  EXPECT_EQ(h.label(leaf), "[0,10)");
  EXPECT_EQ(h.LeafNode(99), -1);
}

TEST(ConceptHierarchyTest, LcaMatchesPaperExample) {
  // Figure 11 example: union of [20,40) values and a 50s value lands in
  // [20,60).
  ConceptHierarchy h = MakeAgeHierarchy();
  int twenties = h.LeafNode(2);
  int fifties = h.LeafNode(5);
  int lca = h.Lca(twenties, fifties);
  EXPECT_EQ(h.label(lca), "[20,60)");
  int seventies = h.LeafNode(7);
  EXPECT_EQ(h.Lca(twenties, seventies), h.root());
  EXPECT_EQ(h.Lca(twenties, twenties), twenties);
}

TEST(ConceptHierarchyTest, LcaAgainstNaiveOnRandomTrees) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    ConceptHierarchy h;
    std::vector<int> nodes = {h.AddNode("root")};
    for (int i = 1; i < 60; ++i) {
      int parent = nodes[static_cast<size_t>(rng.Index(
          static_cast<int64_t>(nodes.size())))];
      nodes.push_back(h.AddNode("n", parent));
    }
    ASSERT_TRUE(h.Finalize().ok());
    // Naive LCA by parent-walking.
    auto naive_lca = [&h](int a, int b) {
      std::vector<char> seen(static_cast<size_t>(h.num_nodes()), 0);
      while (a >= 0) {
        seen[static_cast<size_t>(a)] = 1;
        a = h.parent(a);
      }
      while (!seen[static_cast<size_t>(b)]) b = h.parent(b);
      return b;
    };
    for (int q = 0; q < 100; ++q) {
      int a = static_cast<int>(rng.Index(h.num_nodes()));
      int b = static_cast<int>(rng.Index(h.num_nodes()));
      ASSERT_EQ(h.Lca(a, b), naive_lca(a, b)) << "a=" << a << " b=" << b;
    }
  }
}

TEST(ConceptHierarchyTest, IsAncestor) {
  ConceptHierarchy h = MakeAgeHierarchy();
  EXPECT_TRUE(h.IsAncestor(h.root(), h.LeafNode(4)));
  EXPECT_TRUE(h.IsAncestor(h.LeafNode(4), h.LeafNode(4)));
  EXPECT_FALSE(h.IsAncestor(h.LeafNode(4), h.root()));
  EXPECT_FALSE(h.IsAncestor(h.LeafNode(4), h.LeafNode(5)));
}

TEST(ConceptHierarchyTest, BindingValidation) {
  ConceptHierarchy h;
  int root = h.AddNode("root");
  int a = h.AddNode("a", root);
  EXPECT_FALSE(h.BindLeaf(99, 0).ok());
  EXPECT_FALSE(h.BindLeaf(a, -1).ok());
  EXPECT_TRUE(h.BindLeaf(a, 0).ok());
  EXPECT_FALSE(h.BindLeaf(a, 1).ok());  // node already bound
  int b = h.AddNode("b", root);
  EXPECT_FALSE(h.BindLeaf(b, 0).ok());  // code already bound
  EXPECT_TRUE(h.BindLeaf(b, 1).ok());
  EXPECT_TRUE(h.Finalize().ok());
}

TEST(ConceptHierarchyTest, FinalizeRejectsBoundInternalNodes) {
  ConceptHierarchy h;
  int root = h.AddNode("root");
  int mid = h.AddNode("mid", root);
  QAG_CHECK_OK(h.BindLeaf(mid, 0));
  h.AddNode("child", mid);  // makes the bound node internal
  EXPECT_FALSE(h.Finalize().ok());
}

TEST(ConceptHierarchyTest, BinaryRangesCoverAllLeaves) {
  std::vector<std::string> labels = {"1990", "1991", "1992", "1993", "1994"};
  ConceptHierarchy h = ConceptHierarchy::BinaryRanges(labels);
  for (int i = 0; i < 5; ++i) {
    int leaf = h.LeafNode(i);
    ASSERT_GE(leaf, 0) << i;
    EXPECT_EQ(h.label(leaf), labels[static_cast<size_t>(i)]);
    EXPECT_TRUE(h.IsAncestor(h.root(), leaf));
  }
  // Adjacent years share a deeper LCA than distant years.
  int near = h.Lca(h.LeafNode(0), h.LeafNode(1));
  int far = h.Lca(h.LeafNode(0), h.LeafNode(4));
  EXPECT_GT(h.depth(near), h.depth(far));
  EXPECT_EQ(far, h.root());
}

TEST(ConceptHierarchyTest, FlatBehavesLikeWildcard) {
  ConceptHierarchy h = ConceptHierarchy::Flat(4);
  EXPECT_EQ(h.Lca(h.LeafNode(0), h.LeafNode(3)), h.root());
  EXPECT_EQ(h.Lca(h.LeafNode(2), h.LeafNode(2)), h.LeafNode(2));
}

// --- Hierarchical clusters (Appendix A.6 semantics). ---

HierarchySet MakeSet() {
  std::vector<ConceptHierarchy> per_attr;
  per_attr.push_back(MakeAgeHierarchy());
  per_attr.push_back(ConceptHierarchy::Flat(3));
  return HierarchySet(std::move(per_attr));
}

TEST(HierarchySetTest, CoverLcaDistance) {
  HierarchySet set = MakeSet();
  HierarchicalCluster a = set.FromElement({2, 1});  // ([20,30), v1)
  HierarchicalCluster b = set.FromElement({5, 1});  // ([50,60), v1)

  HierarchicalCluster lca = set.Lca(a, b);
  EXPECT_EQ(set.hierarchy(0).label(lca.nodes[0]), "[20,60)");
  EXPECT_EQ(lca.nodes[1], a.nodes[1]);  // same leaf kept, not generalized

  EXPECT_TRUE(set.Covers(lca, a));
  EXPECT_TRUE(set.Covers(lca, b));
  EXPECT_FALSE(set.Covers(a, lca));
  EXPECT_TRUE(set.Covers(a, a));

  // Distance: identical leaves contribute 0; everything else contributes 1.
  EXPECT_EQ(set.Distance(a, a), 0);
  EXPECT_EQ(set.Distance(a, b), 1);    // differ on age only
  EXPECT_EQ(set.Distance(lca, a), 1);  // internal node counts like '*'
  EXPECT_EQ(set.Distance(lca, lca), 1);

  EXPECT_EQ(set.Render(lca), "([20,60), v1)");
}

TEST(HierarchySetTest, RangeGeneralizationIsTighterThanStar) {
  // The range node [20,60) excludes 70s ages, unlike '*' — the point of
  // Appendix A.6.
  HierarchySet set = MakeSet();
  HierarchicalCluster a = set.FromElement({2, 0});
  HierarchicalCluster b = set.FromElement({5, 0});
  HierarchicalCluster range = set.Lca(a, b);
  HierarchicalCluster seventies = set.FromElement({7, 0});
  EXPECT_FALSE(set.Covers(range, seventies));
  HierarchicalCluster star = range;
  star.nodes[0] = set.hierarchy(0).root();
  EXPECT_TRUE(set.Covers(star, seventies));
}

// --- Automatic hierarchy construction (A.6 future direction). ---

TEST(WeightedRangesTest, UniformWeightsGiveBalancedFanoutTree) {
  auto h = ConceptHierarchy::WeightedRanges({"a", "b", "c", "d"},
                                            {0, 1, 2, 3}, {}, 2);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  // 4 leaves -> 2 ranges -> root: 7 nodes.
  EXPECT_EQ(h->num_nodes(), 7);
  EXPECT_EQ(h->label(h->root()), "*");
  // Leaves a,b share a parent labeled "[a..b]"; c,d share "[c..d]".
  int a = h->LeafNode(0);
  int b = h->LeafNode(1);
  int c = h->LeafNode(2);
  int d = h->LeafNode(3);
  ASSERT_TRUE(a >= 0 && b >= 0 && c >= 0 && d >= 0);
  EXPECT_EQ(h->parent(a), h->parent(b));
  EXPECT_EQ(h->parent(c), h->parent(d));
  EXPECT_NE(h->parent(a), h->parent(c));
  EXPECT_EQ(h->label(h->parent(a)), "[a..b]");
  EXPECT_EQ(h->label(h->parent(c)), "[c..d]");
  EXPECT_EQ(h->Lca(a, c), h->root());
}

TEST(WeightedRangesTest, HeavyLeafIsIsolated) {
  // With weight 100 on the first leaf and fanout 2, the balanced cut puts
  // it alone in the first range and the three light leaves together.
  auto h = ConceptHierarchy::WeightedRanges(
      {"v0", "v1", "v2", "v3"}, {0, 1, 2, 3}, {100, 1, 1, 1}, 2);
  ASSERT_TRUE(h.ok());
  int v0 = h->LeafNode(0);
  int v1 = h->LeafNode(1);
  int v3 = h->LeafNode(3);
  EXPECT_EQ(h->label(h->parent(v0)), "[v0..v0]");
  EXPECT_EQ(h->parent(v1), h->parent(v3));
  EXPECT_EQ(h->label(h->parent(v1)), "[v1..v3]");
}

TEST(WeightedRangesTest, SingleLeafAndErrors) {
  auto single = ConceptHierarchy::WeightedRanges({"only"}, {0}, {}, 2);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->num_nodes(), 2);
  EXPECT_EQ(single->LeafNode(0), 1);
  EXPECT_TRUE(single->IsAncestor(single->root(), 1));

  EXPECT_FALSE(ConceptHierarchy::WeightedRanges({}, {}, {}, 2).ok());
  EXPECT_FALSE(
      ConceptHierarchy::WeightedRanges({"a", "b"}, {0}, {}, 2).ok());
  EXPECT_FALSE(
      ConceptHierarchy::WeightedRanges({"a", "b"}, {0, 1}, {1.0}, 2).ok());
  EXPECT_FALSE(
      ConceptHierarchy::WeightedRanges({"a", "b"}, {0, 1}, {}, 1).ok());
  EXPECT_FALSE(ConceptHierarchy::WeightedRanges({"a", "b"}, {0, 1},
                                                {1.0, -2.0}, 2)
                   .ok());
  // Duplicate codes are rejected by leaf binding.
  EXPECT_FALSE(
      ConceptHierarchy::WeightedRanges({"a", "b"}, {0, 0}, {}, 2).ok());
}

TEST(WeightedRangesTest, AllCodesBoundAtEveryFanout) {
  std::vector<std::string> labels;
  std::vector<int32_t> codes;
  for (int i = 0; i < 17; ++i) {
    labels.push_back("v" + std::to_string(i));
    codes.push_back(static_cast<int32_t>(i));
  }
  for (int fanout : {2, 3, 4, 7}) {
    auto h = ConceptHierarchy::WeightedRanges(labels, codes, {}, fanout);
    ASSERT_TRUE(h.ok()) << "fanout " << fanout;
    for (int32_t code = 0; code < 17; ++code) {
      int leaf = h->LeafNode(code);
      ASSERT_GE(leaf, 0) << "fanout " << fanout << " code " << code;
      EXPECT_TRUE(h->is_leaf(leaf));
      EXPECT_TRUE(h->IsAncestor(h->root(), leaf));
    }
  }
}

TEST(AutoHierarchyTest, NumericNamesOrderNumerically) {
  // Codes arrive in insertion order "30","4","200"; the hierarchy must
  // order leaves 4 < 30 < 200, so LCA(4, 30) is a range excluding 200.
  auto s = AnswerSet::FromRaw(
      {"x", "y"}, {{"30", "4", "200"}, {"p", "q"}},
      {{{0, 0}, 3.0}, {{1, 0}, 2.0}, {{2, 1}, 1.0}});
  ASSERT_TRUE(s.ok());
  auto h = AutoHierarchyForAttribute(*s, 0);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  int four = h->LeafNode(1);    // code 1 = "4"
  int thirty = h->LeafNode(0);  // code 0 = "30"
  int two_hundred = h->LeafNode(2);
  ASSERT_TRUE(four >= 0 && thirty >= 0 && two_hundred >= 0);
  int lca = h->Lca(four, thirty);
  EXPECT_NE(lca, h->root());
  EXPECT_EQ(h->label(lca), "[4..30]");
  EXPECT_EQ(h->Lca(four, two_hundred), h->root());
}

TEST(AutoHierarchyTest, NonNumericNamesOrderLexicographically) {
  auto s = AnswerSet::FromRaw(
      {"x"}, {{"cherry", "apple", "banana"}},
      {{{0}, 3.0}, {{1}, 2.0}, {{2}, 1.0}});
  ASSERT_TRUE(s.ok());
  auto h = AutoHierarchyForAttribute(*s, 0);
  ASSERT_TRUE(h.ok());
  int apple = h->LeafNode(1);
  int banana = h->LeafNode(2);
  int cherry = h->LeafNode(0);
  EXPECT_EQ(h->label(h->Lca(apple, banana)), "[apple..banana]");
  EXPECT_EQ(h->Lca(apple, cherry), h->root());
}

TEST(AutoHierarchyTest, FrequencyWeightingShiftsBoundaries) {
  // Attribute 0 has domain {0,1,2,3} with value 0 dominating the data.
  std::vector<Element> elements;
  double v = 100.0;
  for (int rep = 0; rep < 12; ++rep) {
    elements.push_back({{0, rep}, v});
    v -= 1.0;
  }
  for (int32_t code = 1; code <= 3; ++code) {
    elements.push_back({{code, 12 + (code - 1)}, v});
    v -= 1.0;
  }
  std::vector<std::string> a0_names = {"0", "1", "2", "3"};
  std::vector<std::string> a1_names;
  for (int i = 0; i < 15; ++i) a1_names.push_back("u" + std::to_string(i));
  auto s = AnswerSet::FromRaw({"a0", "a1"}, {a0_names, a1_names},
                              std::move(elements));
  ASSERT_TRUE(s.ok());

  AutoHierarchyOptions by_freq;
  by_freq.weight_by_frequency = true;
  auto h = AutoHierarchyForAttribute(*s, 0, by_freq);
  ASSERT_TRUE(h.ok());
  // The dominant value 0 sits alone; 1..3 share the sibling range.
  int zero = h->LeafNode(0);
  int one = h->LeafNode(1);
  int three = h->LeafNode(3);
  EXPECT_EQ(h->label(h->parent(zero)), "[0..0]");
  EXPECT_EQ(h->parent(one), h->parent(three));

  // Without weighting the split is by leaf count: {0,1} vs {2,3}.
  auto uniform = AutoHierarchyForAttribute(*s, 0);
  ASSERT_TRUE(uniform.ok());
  EXPECT_EQ(uniform->parent(uniform->LeafNode(0)),
            uniform->parent(uniform->LeafNode(1)));
}

TEST(AutoHierarchyTest, RejectsBadArguments) {
  auto s = AnswerSet::FromRaw({"x"}, {{"a", "b"}},
                              {{{0}, 2.0}, {{1}, 1.0}});
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(AutoHierarchyForAttribute(*s, -1).ok());
  EXPECT_FALSE(AutoHierarchyForAttribute(*s, 1).ok());
  AutoHierarchyOptions bad;
  bad.fanout = 1;
  EXPECT_FALSE(AutoHierarchyForAttribute(*s, 0, bad).ok());
}

TEST(AutoHierarchyTest, WorksAsHierarchySetSubstrate) {
  // End-to-end: auto hierarchies drive the A.6 cover/LCA machinery.
  auto s = AnswerSet::FromRaw(
      {"age", "grp"}, {{"10", "20", "30", "40"}, {"x", "y"}},
      {{{0, 0}, 4.0}, {{1, 0}, 3.0}, {{2, 1}, 2.0}, {{3, 1}, 1.0}});
  ASSERT_TRUE(s.ok());
  std::vector<ConceptHierarchy> per_attr;
  for (int a = 0; a < s->num_attrs(); ++a) {
    auto h = AutoHierarchyForAttribute(*s, a);
    ASSERT_TRUE(h.ok());
    per_attr.push_back(std::move(h).value());
  }
  HierarchySet set(std::move(per_attr));
  HierarchicalCluster t0 = set.FromElement(s->element(0).attrs);
  HierarchicalCluster t1 = set.FromElement(s->element(1).attrs);
  HierarchicalCluster lca = set.Lca(t0, t1);
  EXPECT_TRUE(set.Covers(lca, t0));
  EXPECT_TRUE(set.Covers(lca, t1));
  EXPECT_EQ(set.Render(lca), "([10..20], x)");
}

}  // namespace
}  // namespace qagview::core
