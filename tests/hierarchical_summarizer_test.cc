#include <memory>

#include <gtest/gtest.h>

#include "core/hierarchical_summarizer.h"
#include "test_util.h"

namespace qagview::core {
namespace {

// An answer set whose first attribute is ordinal (so binary ranges make
// sense) plus flat attributes.
struct Fixture {
  std::unique_ptr<AnswerSet> set;
  std::unique_ptr<HierarchicalSummarizer> summarizer;
};

Fixture MakeFixture(uint64_t seed) {
  Fixture f;
  f.set = std::make_unique<AnswerSet>(
      testutil::MakeRandomAnswerSet(seed, 60, 4, 6));
  std::vector<ConceptHierarchy> trees;
  // Attribute 0: binary range tree over its 6 ordered values.
  std::vector<std::string> labels;
  for (int v = 0; v < f.set->domain_size(0); ++v) {
    labels.push_back(f.set->ValueName(0, v));
  }
  trees.push_back(ConceptHierarchy::BinaryRanges(labels));
  // Remaining attributes: flat (plain '*' semantics).
  for (int a = 1; a < f.set->num_attrs(); ++a) {
    trees.push_back(ConceptHierarchy::Flat(f.set->domain_size(a)));
  }
  f.summarizer = std::make_unique<HierarchicalSummarizer>(
      f.set.get(), HierarchySet(std::move(trees)));
  return f;
}

TEST(HierarchicalSummarizerTest, ProducesFeasibleSolutions) {
  Fixture f = MakeFixture(3);
  for (Params params : {Params{3, 10, 2}, Params{5, 15, 1}, Params{2, 8, 3}}) {
    auto solution = f.summarizer->Run(params);
    ASSERT_TRUE(solution.ok()) << params.ToString() << ": "
                               << solution.status().ToString();
    EXPECT_TRUE(
        f.summarizer->CheckFeasible(solution->clusters, params).ok());
    EXPECT_LE(solution->size(), params.k);
    EXPECT_GT(solution->covered_count, 0);
  }
}

TEST(HierarchicalSummarizerTest, CoveredMatchesLeafSemantics) {
  Fixture f = MakeFixture(5);
  // A leaf cluster covers exactly the identical elements.
  HierarchicalCluster leaf =
      f.summarizer->hierarchies().FromElement(f.set->element(0).attrs);
  std::vector<int> covered = f.summarizer->Covered(leaf);
  ASSERT_EQ(covered.size(), 1u);
  EXPECT_EQ(covered[0], 0);
}

TEST(HierarchicalSummarizerTest, RangeClustersAreTighterThanStar) {
  Fixture f = MakeFixture(7);
  const HierarchySet& hs = f.summarizer->hierarchies();
  // Merge two elements close on attribute 0: their LCA should sit below
  // the root when the binary range tree allows it.
  HierarchicalCluster a = hs.FromElement(f.set->element(0).attrs);
  HierarchicalCluster b = a;
  // Perturb attribute 0 to an adjacent value (stay in domain).
  int32_t code = f.set->element(0).attrs[0];
  int32_t neighbor = code > 0 ? code - 1 : code + 1;
  b.nodes[0] = hs.hierarchy(0).LeafNode(neighbor);
  HierarchicalCluster merged = hs.Lca(a, b);
  // The range node covers both but is not necessarily the root.
  EXPECT_TRUE(hs.Covers(merged, a));
  EXPECT_TRUE(hs.Covers(merged, b));
  int root = hs.hierarchy(0).root();
  int depth = hs.hierarchy(0).depth(merged.nodes[0]);
  EXPECT_GE(depth, 0);
  (void)root;
}

TEST(HierarchicalSummarizerTest, SolutionAverageDominatesTrivial) {
  Fixture f = MakeFixture(9);
  auto solution = f.summarizer->Run({4, 12, 2});
  ASSERT_TRUE(solution.ok());
  EXPECT_GE(solution->average, f.set->TrivialAverage() - 1e-9);
}

TEST(HierarchicalSummarizerTest, RenderIncludesRangesAndAverages) {
  Fixture f = MakeFixture(11);
  auto solution = f.summarizer->Run({3, 10, 2});
  ASSERT_TRUE(solution.ok());
  std::string text = f.summarizer->Render(*solution);
  EXPECT_NE(text.find("avg"), std::string::npos);
  EXPECT_NE(text.find("solution avg"), std::string::npos);
}

TEST(HierarchicalSummarizerTest, FlatHierarchiesMatchStarSemantics) {
  // With all-flat hierarchies the generalized machinery must accept the
  // flat algorithms' solutions: run both and compare feasibility of the
  // flat solution under hierarchy semantics.
  auto set = std::make_unique<AnswerSet>(
      testutil::MakeRandomAnswerSet(13, 60, 4, 5));
  std::vector<ConceptHierarchy> trees;
  for (int a = 0; a < set->num_attrs(); ++a) {
    trees.push_back(ConceptHierarchy::Flat(set->domain_size(a)));
  }
  HierarchySet hs(std::move(trees));
  HierarchicalSummarizer summarizer(set.get(), hs);
  Params params{4, 10, 2};
  auto solution = summarizer.Run(params);
  ASSERT_TRUE(solution.ok());
  // Convert each hierarchical cluster to a flat pattern and check the flat
  // distance/cover semantics agree.
  for (const HierarchicalCluster& hc : solution->clusters) {
    std::vector<int32_t> pattern;
    for (int a = 0; a < set->num_attrs(); ++a) {
      int node = hc.nodes[static_cast<size_t>(a)];
      pattern.push_back(hs.hierarchy(a).is_leaf(node)
                            ? hs.hierarchy(a).leaf_code(node)
                            : kWildcard);
    }
    Cluster flat(pattern);
    // Every covered element under hierarchy semantics is covered flatly.
    for (int e : summarizer.Covered(hc)) {
      EXPECT_TRUE(flat.CoversElement(set->element(e).attrs));
    }
  }
}

class HierarchicalBottomUpTest : public testing::TestWithParam<uint64_t> {};

TEST_P(HierarchicalBottomUpTest, FeasibleAndAtLeastFixedOrderQuality) {
  Fixture f = MakeFixture(GetParam());
  for (Params params : {Params{3, 10, 2}, Params{4, 12, 1}, Params{2, 8, 3}}) {
    auto bottom_up = f.summarizer->RunBottomUp(params);
    ASSERT_TRUE(bottom_up.ok()) << bottom_up.status().ToString();
    EXPECT_TRUE(
        f.summarizer->CheckFeasible(bottom_up->clusters, params).ok());
    EXPECT_GT(bottom_up->covered_count, 0);
    EXPECT_GE(bottom_up->average, f.set->TrivialAverage() - 1e-9);

    // Consistency of the reported stats with a recount.
    std::vector<char> seen(static_cast<size_t>(f.set->size()), 0);
    double sum = 0.0;
    int count = 0;
    for (const HierarchicalCluster& c : bottom_up->clusters) {
      for (int e : f.summarizer->Covered(c)) {
        if (!seen[static_cast<size_t>(e)]) {
          seen[static_cast<size_t>(e)] = 1;
          sum += f.set->value(e);
          ++count;
        }
      }
    }
    EXPECT_EQ(bottom_up->covered_count, count);
    EXPECT_NEAR(bottom_up->covered_sum, sum, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchicalBottomUpTest,
                         testing::Values(3u, 5u, 7u, 11u));

TEST(HierarchicalBottomUpTest2, DZeroLargeKKeepsTopLSingletons) {
  // With D=0 and k >= L no merges happen: the solution is the top-L leaf
  // singletons, matching the flat §4.3 case (1).
  Fixture f = MakeFixture(17);
  Params params{12, 10, 0};
  auto solution = f.summarizer->RunBottomUp(params);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->size(), 10);
  EXPECT_NEAR(solution->average, f.set->TopAverage(10), 1e-9);
  for (const HierarchicalCluster& c : solution->clusters) {
    for (int node : c.nodes) {
      (void)node;
    }
    // Each cluster covers exactly one element (answers are distinct).
    EXPECT_EQ(f.summarizer->Covered(c).size(), 1u);
  }
}

TEST(HierarchicalBottomUpTest2, TendsToBeatFixedOrderOnAggregate) {
  // Mirrors the flat finding (Bottom-Up >= Fixed-Order in value most of
  // the time): compare across seeds and require Bottom-Up to win or tie
  // the majority, never losing catastrophically.
  int wins_or_ties = 0;
  const int kSeeds = 8;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Fixture f = MakeFixture(seed);
    Params params{3, 12, 2};
    auto fixed = f.summarizer->Run(params);
    auto bottom_up = f.summarizer->RunBottomUp(params);
    ASSERT_TRUE(fixed.ok());
    ASSERT_TRUE(bottom_up.ok());
    wins_or_ties += bottom_up->average >= fixed->average - 1e-9;
    EXPECT_GT(bottom_up->average, fixed->average - 0.5)
        << "catastrophic loss at seed " << seed;
  }
  EXPECT_GE(wins_or_ties, kSeeds / 2);
}

}  // namespace
}  // namespace qagview::core
