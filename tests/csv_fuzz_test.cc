// Fuzz-style corpus test for storage/csv, mirroring sql_fuzz_test's
// philosophy: malformed quoting, embedded delimiters, over-wide and
// under-wide rows, stray carriage returns, and random byte soups must come
// back as clean Status errors or well-formed tables — never crashes,
// CHECK failures, or silent truncation.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/csv.h"

namespace qagview::storage {
namespace {

// --- Hand-written corpus -------------------------------------------------

struct CorpusCase {
  const char* name;
  const char* text;
  /// Expected row count when the parse must succeed; -1 = must fail.
  int expect_rows;
};

const CorpusCase kCorpus[] = {
    {"plain", "a,b\n1,2\n3,4\n", 2},
    {"trailing_newlines", "a,b\n1,2\n\n\n", 1},
    {"no_final_newline", "a,b\n1,2", 1},
    {"crlf", "a,b\r\n1,2\r\n", 1},
    {"lone_cr_line", "a,b\n\r\n1,2\n", 1},
    {"quoted_delimiter", "a,b\n\"x,y\",2\n", 1},
    {"quoted_quote", "a,b\n\"he said \"\"hi\"\"\",2\n", 1},
    {"quote_then_junk", "a,b\n\"x\"tail,2\n", 1},
    {"empty_cells", "a,b\n,\n1,\n", 2},
    {"trailing_separator", "a,b,\n1,2,\n", 1},
    {"unterminated_quote", "a,b\n\"oops,2\n", -1},
    {"over_wide_row", "a,b\n1,2,3\n", -1},
    {"under_wide_row", "a,b\n1\n", -1},
    {"empty_input", "", -1},
    {"only_blank_lines", "\n\n\n", -1},
    {"header_only", "a,b\n", 0},
    {"huge_integer_overflows_to_double_or_string",
     "a\n99999999999999999999\n", 1},
    {"mixed_types_fall_back_to_string", "a\n1\nx\n2.5\n", 3},
    {"embedded_newline_in_quotes_is_an_error", "a,b\n\"x\ny\",2\n", -1},
    {"duplicate_header_names", "a,a\n1,2\n", 1},
    {"empty_header_name", ",b\n1,2\n", 1},
    {"unicode_bytes", "a,b\n\xc3\xa9,\xf0\x9f\x99\x82\n", 1},
};

TEST(CsvFuzzTest, CorpusParsesOrFailsCleanly) {
  for (const CorpusCase& c : kCorpus) {
    SCOPED_TRACE(c.name);
    auto table = ReadCsvString(c.text);
    if (c.expect_rows < 0) {
      EXPECT_FALSE(table.ok()) << table->ToString();
      continue;
    }
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    // No silent truncation: exactly the expected number of data rows.
    EXPECT_EQ(table->num_rows(), c.expect_rows);
  }
}

TEST(CsvFuzzTest, RoundTripIsStable) {
  // Write(Read(x)) reparses to an identical table: same schema, same
  // cells. Quoting-sensitive content included.
  const std::string text =
      "name,score,note\n"
      "\"comma, inc\",1.5,plain\n"
      "quote\"\"y,2,\"tail\"\n"
      ",3,\n";
  auto first = ReadCsvString(text);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::string written = WriteCsvString(*first);
  auto second = ReadCsvString(written);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_TRUE(first->schema() == second->schema());
  ASSERT_EQ(first->num_rows(), second->num_rows());
  for (int64_t r = 0; r < first->num_rows(); ++r) {
    for (int col = 0; col < first->num_columns(); ++col) {
      EXPECT_TRUE(first->Get(r, col) == second->Get(r, col))
          << "row " << r << " col " << col;
    }
  }
}

// --- Randomized soups ----------------------------------------------------

class CsvRandomFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CsvRandomFuzzTest, RandomByteSoupsNeverCrash) {
  Rng rng(GetParam());
  const char alphabet[] = "ab,\"\n\r0129.x -;\t";
  constexpr int kDocs = 300;
  int parsed_ok = 0;
  for (int doc = 0; doc < kDocs; ++doc) {
    std::string text;
    int length = static_cast<int>(rng.Index(160));
    for (int i = 0; i < length; ++i) {
      text += alphabet[rng.Index(sizeof(alphabet) - 1)];
    }
    auto table = ReadCsvString(text);  // must not crash or hang
    if (table.ok()) {
      ++parsed_ok;
      // Whatever parsed must round-trip without crashing either.
      (void)WriteCsvString(*table);
    }
  }
  EXPECT_GE(parsed_ok, 0);
}

TEST_P(CsvRandomFuzzTest, MutatedValidCsvNeverCrashes) {
  Rng rng(GetParam() ^ 0xC5F);
  const std::string base =
      "g0,g1,rating\n\"a,x\",b,1.5\nc,\"d\"\"e\",2\nf,g,\n";
  for (int doc = 0; doc < 200; ++doc) {
    std::string text = base;
    int mutations = 1 + static_cast<int>(rng.Index(4));
    for (int mu = 0; mu < mutations && !text.empty(); ++mu) {
      size_t pos = rng.Index(text.size());
      switch (rng.Index(3)) {
        case 0:
          text.erase(pos, 1);
          break;
        case 1:
          text.insert(pos, 1, text[pos]);
          break;
        default:
          text[pos] = static_cast<char>(' ' + rng.Index(95));
      }
    }
    auto table = ReadCsvString(text);
    if (table.ok()) (void)WriteCsvString(*table);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRandomFuzzTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace qagview::storage
