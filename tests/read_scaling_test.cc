// The RCU warm read path (core::Session): (a) cache hits acquire the
// session writer lock exactly zero times — asserted against the always-on
// CacheStats::writer_lock_acquisitions counter; (b) readers racing
// content-changing refreshes only ever observe complete, committed
// generations, each bit-identical to a cold rebuild of that version (a
// pinned handle never goes stale-beyond-its-pin or mixes versions); and
// (c) a handle taken after a refresh serves the new version, with the
// retired generation evicted the instant its last handle drops.
//
// This binary is the template for concurrency coverage of new read APIs
// (see CONTRIBUTING.md): warm hits must stay wait-free, and the proof is a
// writer-lock-count assertion plus a bit-identity race like the ones here.
// The TSan and ASan+UBSan CI jobs run it explicitly.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.h"
#include "test_util.h"

namespace qagview::core {
namespace {

constexpr int kReaders = 8;
constexpr int kTopL = 12;
constexpr int kD = 2;
constexpr int kK = 5;

// Two answer-set versions with distinct content; the version a structure
// belongs to is identified by its (answer-set content) fingerprint.
AnswerSet MakeVersion(int version) {
  return testutil::MakeRandomAnswerSet(100 + static_cast<uint64_t>(version),
                                       120, 5, 3);
}

PrecomputeOptions Grid() {
  PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 8;
  options.d_values = {1, 2};
  return options;
}

std::unique_ptr<Session> MakeSessionAt(int version) {
  auto session = Session::Create(MakeVersion(version));
  QAG_CHECK(session.ok());
  return std::move(session).value();
}

// What version `v` must answer at (kTopL, kD, kK): the cold rebuild ground
// truth from a fresh, serial, single-version session.
struct GroundTruth {
  uint64_t answers_fp = 0;
  std::vector<int> ids;
  double average = 0.0;
  int count = 0;
};

GroundTruth ColdTruth(int version) {
  auto session = MakeSessionAt(version);
  session->set_num_threads(1);
  auto store = session->Guidance(kTopL, Grid());
  QAG_CHECK(store.ok());
  auto solution = (*store)->Retrieve(kD, kK);
  QAG_CHECK(solution.ok());
  GroundTruth truth;
  truth.answers_fp = session->answers()->content_fingerprint();
  truth.ids = solution->cluster_ids;
  truth.average = solution->average;
  truth.count = solution->covered_count;
  return truth;
}

TEST(ReadScalingTest, WarmHitsAcquireNoWriterLock) {
  auto session = MakeSessionAt(0);
  // Warm every structure the reader loop touches.
  ASSERT_TRUE(session->UniverseFor(kTopL).ok());
  ASSERT_TRUE(session->Guidance(kTopL, Grid()).ok());
  const Session::CacheStats cold = session->cache_stats();
  ASSERT_GT(cold.writer_lock_acquisitions, 0);  // the builds took it

  testutil::StartLatch latch(kReaders);
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      latch.ArriveAndWait();
      for (int round = 0; round < 50; ++round) {
        auto universe = session->UniverseFor(kTopL);
        ASSERT_TRUE(universe.ok()) << universe.status().ToString();
        auto store = session->Guidance(kTopL, Grid());
        ASSERT_TRUE(store.ok()) << store.status().ToString();
        auto solution = session->Retrieve(kTopL, kD, kK);
        ASSERT_TRUE(solution.ok()) << solution.status().ToString();
        EXPECT_GT(session->answers()->size(), 0);
      }
    });
  }
  for (auto& t : threads) t.join();

  const Session::CacheStats warm = session->cache_stats();
  // The invariant this whole test file exists for: kReaders × 50 warm
  // rounds × 4 ops acquired the writer lock zero times.
  EXPECT_EQ(warm.writer_lock_acquisitions, cold.writer_lock_acquisitions)
      << "a warm hit acquired the session writer lock";
  // And they really were all hits: no builds beyond the two warm-up ones.
  EXPECT_EQ(warm.universe_misses, 1);
  EXPECT_EQ(warm.store_misses, 1);
  EXPECT_EQ(warm.universe_coalesced, 0);
  EXPECT_EQ(warm.store_coalesced, 0);
}

TEST(ReadScalingTest, ReadersPinCompleteGenerationsAcrossRefreshes) {
  std::map<uint64_t, GroundTruth> truths;
  for (int v = 0; v < 2; ++v) {
    GroundTruth truth = ColdTruth(v);
    truths.emplace(truth.answers_fp, truth);
  }
  ASSERT_EQ(truths.size(), 2u);  // the two versions genuinely differ

  auto session = MakeSessionAt(0);
  ASSERT_TRUE(session->Guidance(kTopL, Grid()).ok());

  std::atomic<bool> stop{false};
  testutil::StartLatch latch(kReaders + 1);
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      latch.ArriveAndWait();
      while (!stop.load(std::memory_order_relaxed)) {
        // Pin a guidance handle. Everything read through it must agree
        // with exactly one committed version — never a mix, never a
        // half-published state — even while refreshes retire generations
        // underneath.
        auto store = session->Guidance(kTopL, Grid());
        ASSERT_TRUE(store.ok()) << store.status().ToString();
        auto it = truths.find((*store)->input_fingerprint());
        ASSERT_NE(it, truths.end()) << "handle from an uncommitted state";
        auto solution = (*store)->Retrieve(kD, kK);
        ASSERT_TRUE(solution.ok()) << solution.status().ToString();
        EXPECT_EQ(solution->cluster_ids, it->second.ids);
        EXPECT_EQ(solution->average, it->second.average);
        EXPECT_EQ(solution->covered_count, it->second.count);
        // The answers() handle likewise always names a committed version.
        EXPECT_EQ(truths.count(session->answers()->content_fingerprint()),
                  1u);
      }
    });
  }
  std::thread writer([&] {
    latch.ArriveAndWait();
    for (int round = 0; round < 16; ++round) {
      // Alternate V1, V0, V1, ... — every flip retires a generation while
      // the readers above are mid-request. Ends on V0.
      ASSERT_TRUE(session->Refresh(MakeVersion(round % 2 == 0 ? 1 : 0)).ok());
    }
    stop.store(true, std::memory_order_relaxed);
  });
  writer.join();
  for (auto& t : readers) t.join();

  // A handle taken after the last refresh sees the final version.
  const GroundTruth& final_truth = truths.at(
      MakeVersion(0).content_fingerprint());
  {
    auto store = session->Guidance(kTopL, Grid());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ((*store)->input_fingerprint(), final_truth.answers_fp);
    auto solution = (*store)->Retrieve(kD, kK);
    ASSERT_TRUE(solution.ok());
    EXPECT_EQ(solution->cluster_ids, final_truth.ids);
  }
  // Every reader drained and every handle dropped: nothing retired is
  // still retained.
  Session::CacheStats stats = session->cache_stats();
  EXPECT_EQ(stats.graveyard_size, 0);
  EXPECT_EQ(stats.retired_universes, 0);
  EXPECT_EQ(stats.retired_stores, 0);
}

TEST(ReadScalingTest, HandleTakenBeforeRefreshStaysBitIdentical) {
  const GroundTruth t0 = ColdTruth(0);
  const GroundTruth t1 = ColdTruth(1);

  auto session = MakeSessionAt(0);
  auto before = session->Guidance(kTopL, Grid());
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(session->Refresh(MakeVersion(1)).ok());

  // The pre-refresh handle still serves version 0, bit-identically...
  EXPECT_EQ((*before)->input_fingerprint(), t0.answers_fp);
  auto old_solution = (*before)->Retrieve(kD, kK);
  ASSERT_TRUE(old_solution.ok());
  EXPECT_EQ(old_solution->cluster_ids, t0.ids);
  EXPECT_EQ(old_solution->average, t0.average);
  EXPECT_EQ(old_solution->covered_count, t0.count);
  EXPECT_EQ(session->cache_stats().graveyard_size, 1);  // pinned by it

  // ...while a handle taken after the refresh sees the new version.
  auto after = session->Guidance(kTopL, Grid());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->input_fingerprint(), t1.answers_fp);
  auto new_solution = (*after)->Retrieve(kD, kK);
  ASSERT_TRUE(new_solution.ok());
  EXPECT_EQ(new_solution->cluster_ids, t1.ids);
  EXPECT_EQ(new_solution->average, t1.average);
  EXPECT_EQ(new_solution->covered_count, t1.count);

  // Dropping the last pre-refresh handle evicts the retired generation
  // immediately (drain-then-evict).
  before->reset();
  Session::CacheStats stats = session->cache_stats();
  EXPECT_EQ(stats.graveyard_size, 0);
  EXPECT_EQ(stats.generations_evicted, 1);
}

}  // namespace
}  // namespace qagview::core
