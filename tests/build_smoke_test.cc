// Guards the public surface against rot: includes the umbrella header alone
// (no other project headers) and touches one type per layer, so a header
// that stops compiling — or silently drops out of qagview.h — fails here.

#include <gtest/gtest.h>

#include "qagview.h"

namespace qagview {
namespace {

// The pipeline sample from the qagview.h file comment, verbatim. It is never
// executed (it would read ratings.csv from disk); compiling it is the test.
// If this function stops building, fix qagview.h's comment to match.
[[maybe_unused]] void QuickstartSnippetFromUmbrellaHeader() {
  // 1. Load data (CSV, generator, or build a storage::Table directly).
  auto table = storage::ReadCsvFile("ratings.csv");

  // 2. Run the aggregate query.
  sql::Catalog catalog;
  catalog.Register("ratings", &*table);
  auto result = sql::ExecuteSql(
      "SELECT hdec, agegrp, gender, occupation, avg(rating) AS val "
      "FROM ratings GROUP BY hdec, agegrp, gender, occupation "
      "HAVING count(*) > 50 ORDER BY val DESC", catalog);

  // 3. Open a session and summarize under (k, L, D).
  auto session = core::Session::FromTable(*result, "val");
  auto solution = (*session)->Summarize({/*k=*/4, /*L=*/8, /*D=*/2});

  // 4. Display the two layers (Figures 1b/1c). UniverseFor returns a
  //    shared_ptr handle pinning the universe while you render.
  auto universe = (*session)->UniverseFor(8);
  std::cout << core::RenderSummary(**universe, *solution)
            << core::RenderExpanded(**universe, *solution);

  // 5. Interactive exploration: precompute the (k, D) grid once,
  //    retrieve any combination instantly, chart it, persist it.
  //    Hold the handle, never a raw pointer extracted from it: the
  //    handle keeps the grid valid across live-data refreshes, and
  //    dropping it lets a superseded generation be evicted.
  auto guidance = (*session)->Guidance(8);
  auto alt = (*guidance)->Retrieve(/*d=*/1, /*k=*/6);
  (*session)->SaveGuidance(8, "guidance.store");
}

// The README "live data: append and refresh automatically" snippet,
// verbatim modulo the elided SQL text. Compiling it pins the versioned
// catalog API the README promises (AppendRows batch shape, stats fields).
// If this function stops building, fix README.md to match.
[[maybe_unused]] void AppendRefreshSnippetFromReadme() {
  service::QueryService svc;
  svc.RegisterCsvFile("ratings", "ratings.csv");
  svc.AppendRows("ratings",
                 {{storage::Value::Str("1995"), storage::Value::Str("20s"),
                   storage::Value::Str("F"), storage::Value::Str("Writer"),
                   storage::Value::Real(4.5)}});
  // Next use of the handle re-executes the SQL against the new snapshot
  // and reuses every cache the append provably did not touch:
  auto refreshed = svc.Query("SELECT gender, avg(rating) AS val "
                             "FROM ratings GROUP BY gender", "val");
  if (refreshed.ok()) {
    (void)refreshed->stats.refreshed;
    (void)svc.stats().refreshes;
  }
}

// The README "approximate first, exact soon" snippet, verbatim modulo the
// elided SQL text. Compiling it pins the mode-knob Query overload and the
// provenance fields the README promises (is_exact, max_bound, confidence,
// sample_fraction) plus Refine and the refinements counter. If this
// function stops building, fix README.md to match.
[[maybe_unused]] void ApproxFirstSnippetFromReadme() {
  service::QueryService svc;
  service::QueryOptions approx;
  approx.mode = service::QueryMode::kApproxFirst;  // answer now, refine soon
  auto fast = svc.Query("SELECT gender, avg(rating) AS val "
                        "FROM ratings GROUP BY gender", "val", approx);
  if (fast.ok()) {
    // fast->is_exact == false; bounds: fast->max_bound at fast->confidence,
    // computed from a fast->sample_fraction uniform sample.
    (void)fast->is_exact;
    (void)fast->max_bound;
    (void)fast->confidence;
    (void)fast->sample_fraction;
    svc.Refine(fast->handle);  // block until the exact generation is published
    // The handle now serves the exact set; svc.stats().refinements counts it.
    (void)svc.stats().refinements;
  }
}

// The README "Warm starts and prefetch" snippet, verbatim modulo the
// elided SQL text. Compiling it pins the background-work surface the
// README promises (ServiceOptions::snapshot_dir / prefetch,
// DrainBackgroundWork, and the prefetch/warm-start counters). If this
// function stops building, fix README.md to match.
[[maybe_unused]] void WarmStartPrefetchSnippetFromReadme() {
  service::ServiceOptions options;
  options.snapshot_dir = "snapshots";  // persistent warm starts ("" = off)
  options.prefetch = true;             // speculate on predicted next moves
  service::QueryService svc(options);
  svc.RegisterCsvFile("ratings", "ratings.csv");
  auto q = svc.Query("SELECT gender, avg(rating) AS val "
                     "FROM ratings GROUP BY gender", "val");
  // A previous lifetime's guidance grid for this query reloads in the
  // background, validated by content fingerprint — a stale or corrupt
  // snapshot means a cold build, never a wrong answer. And after every
  // foreground move, the predicted next coverage levels are built
  // speculatively: a correct prediction turns the client's next request
  // into a warm lock-free read, bit-identical to building on demand.
  auto s = svc.Summarize(q->handle, {/*k=*/4, /*L=*/8, /*D=*/2});
  svc.Guidance(q->handle, /*L=*/8);  // snapshotted to disk in the background
  svc.DrainBackgroundWork();         // quiesce before asserting (tests/benches)
  (void)svc.stats().prefetch_issued;
  (void)svc.stats().prefetch_hits;
  (void)svc.stats().warm_start_loads;
  (void)s;
}

// The HTTP front end the README "Serve it over HTTP" section promises —
// the quickstart itself is shell (curl against qagview_server), so this
// pins the underlying C++ surface it is built on: server options, the
// server over a QueryService, and the open-loop load-generator contract.
// If this function stops building, fix README.md and DESIGN.md to match.
[[maybe_unused]] void ServeOverHttpSurfaceFromReadme() {
  service::QueryService svc;
  server::ServerOptions options;
  options.port = 0;        // ephemeral; qagview_server defaults to 8080
  options.num_workers = 4;
  options.max_queue = 64;  // full queue -> 503 + Retry-After at the door
  server::HttpServer http(&svc, options);
  if (http.Start().ok()) {
    server::LoadgenOptions load;
    load.port = http.port();
    load.rate = 200.0;  // open loop: request i due at start + i/rate
    load.total_requests = 0;
    server::LoadgenResults results =
        server::RunOpenLoop({{"GET", "/healthz", ""}}, load);
    (void)results.p99_ms;
    (void)results.http_503;
    http.Shutdown();  // graceful drain: admitted requests all finish
    (void)http.stats().served_2xx;
  }
}

TEST(BuildSmokeTest, OneTypePerLayer) {
  // common/ (pulled in transitively by every layer).
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  Result<int> res(42);
  EXPECT_EQ(*res, 42);

  // storage/
  storage::Table table{storage::Schema()};
  EXPECT_EQ(table.num_rows(), 0);

  // sql/
  sql::Catalog catalog;
  catalog.Register("t", &table);

  // datagen/
  datagen::MovieLensOptions gen_options;
  EXPECT_GT(gen_options.num_ratings, 0);

  // core/
  core::Params params;
  EXPECT_EQ(params.k, 4);
  EXPECT_EQ(params.L, 8);
  EXPECT_EQ(params.D, 2);

  // baselines/
  baselines::SmartDrilldownOptions drill_options;
  (void)drill_options;

  // service/
  service::QueryService svc;
  EXPECT_EQ(svc.stats().requests(), 0);
  EXPECT_TRUE(svc.dataset_names().empty());

  // server/
  server::ServerOptions server_options;
  EXPECT_EQ(server_options.bind_address, "127.0.0.1");
  EXPECT_TRUE(server::ToJson(service::RequestStats{}).is_object());

  // viz/
  viz::ParamGrid grid;
  (void)grid;

  // study/
  study::StudyConfig study_config;
  (void)study_config;
}

}  // namespace
}  // namespace qagview
