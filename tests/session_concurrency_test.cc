// Concurrency coverage for core::Session: N client threads sharing one
// session must (a) never race (the TSan CI job runs this binary), (b) get
// results bit-identical to a serial execution, and (c) coalesce identical
// concurrent builds onto a single precompute (single-flight).

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.h"
#include "test_util.h"

namespace qagview::core {
namespace {

constexpr int kThreads = 8;

std::unique_ptr<Session> MakeSession(uint64_t seed = 41, int n = 120) {
  auto session =
      Session::Create(testutil::MakeRandomAnswerSet(seed, n, 5, 3));
  QAG_CHECK(session.ok());
  return std::move(session).value();
}

PrecomputeOptions GridOptions(int k_max, std::vector<int> d_values) {
  PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = k_max;
  options.d_values = std::move(d_values);
  return options;
}

TEST(SessionConcurrencyTest, ConcurrentUniverseForCoalesces) {
  auto session = MakeSession();
  testutil::StartLatch latch(kThreads);
  std::vector<std::shared_ptr<const ClusterUniverse>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      latch.ArriveAndWait();
      auto universe = session->UniverseFor(15);
      ASSERT_TRUE(universe.ok()) << universe.status().ToString();
      seen[static_cast<size_t>(t)] = *universe;
    });
  }
  for (auto& t : threads) t.join();

  // Exactly one build happened; every thread got the same universe.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  Session::CacheStats stats = session->cache_stats();
  EXPECT_EQ(stats.universes, 1);
  // Misses are exact (exactly one build ran); hits are a monotonic lower
  // bound: each non-leader counts at least one — directly or after a
  // coalesced wait — but the lock-free fast path may retry-and-count
  // again when a probe races a publication.
  EXPECT_EQ(stats.universe_misses, 1);
  EXPECT_GE(stats.universe_hits, kThreads - 1);
  EXPECT_LE(stats.universe_coalesced, kThreads - 1);
}

TEST(SessionConcurrencyTest, ConcurrentGuidanceSingleFlight) {
  auto session = MakeSession(43);
  PrecomputeOptions options = GridOptions(8, {1, 2});
  testutil::StartLatch latch(kThreads);
  std::vector<std::shared_ptr<const SolutionStore>> seen(kThreads);
  std::vector<Session::RequestTrace> traces(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      latch.ArriveAndWait();
      auto store =
          session->Guidance(12, options, &traces[static_cast<size_t>(t)]);
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      seen[static_cast<size_t>(t)] = *store;
    });
  }
  for (auto& t : threads) t.join();

  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  Session::CacheStats stats = session->cache_stats();
  EXPECT_EQ(stats.stores, 1);        // one grid, not kThreads
  EXPECT_EQ(stats.store_misses, 1);  // exactly one precompute ran (exact)
  EXPECT_GE(stats.store_hits, kThreads - 1);  // hits: monotonic lower bound
  // Trace flags partition the callers: one built, the rest hit or
  // coalesced (and every coalesced wait is counted in CacheStats).
  int built = 0, coalesced = 0, hits = 0;
  for (const auto& trace : traces) {
    built += trace.built ? 1 : 0;
    coalesced += trace.coalesced ? 1 : 0;
    hits += trace.cache_hit ? 1 : 0;
  }
  EXPECT_EQ(built, 1);
  EXPECT_EQ(built + coalesced + hits, kThreads);
  EXPECT_EQ(stats.store_coalesced, coalesced);
}

TEST(SessionConcurrencyTest, GuidanceErrorPropagatesToAllWaiters) {
  auto session = MakeSession(47);
  PrecomputeOptions bad = GridOptions(8, {1});
  bad.k_min = 0;  // rejected by Precompute::Run
  testutil::StartLatch latch(4);
  std::vector<Status> statuses(4, Status::OK());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      latch.ArriveAndWait();
      statuses[static_cast<size_t>(t)] =
          session->Guidance(12, bad).status();
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& status : statuses) EXPECT_FALSE(status.ok());
  EXPECT_EQ(session->cache_stats().stores, 0);
  // A failed flight leaves no residue: a correct request now succeeds.
  EXPECT_TRUE(session->Guidance(12, GridOptions(8, {1})).ok());
}

// The satellite-task workload: N threads × mixed Guidance / Retrieve /
// SaveGuidance (plus Summarize) on ONE session, asserted bit-identical to
// the same requests executed serially on an identical session.
TEST(SessionConcurrencyTest, MixedWorkloadBitIdenticalToSerial) {
  constexpr uint64_t kSeed = 53;
  constexpr int kN = 140;
  constexpr int kTopL = 25;  // pre-warmed; serves every narrower request
  const PrecomputeOptions kGridA = GridOptions(10, {1, 2});
  const PrecomputeOptions kGridB = GridOptions(8, {1, 2, 3});

  // The finite request set every thread draws from. Pre-warming the widest
  // universe pins the serving universe (and so the cluster-id space) to be
  // identical in the serial and concurrent executions; without it the
  // narrowest-covering-universe policy would make ids depend on which
  // universes happen to exist, even though the chosen clusters don't.
  struct Expected {
    std::vector<int> ids;
    double average = 0.0;
    int count = 0;
  };
  auto run_op = [&](Session& session, int op) -> Result<Solution> {
    switch (op) {
      case 0:
        QAG_RETURN_IF_ERROR(session.Guidance(20, kGridA).status());
        return session.Retrieve(20, 2, 6);
      case 1:
        QAG_RETURN_IF_ERROR(session.Guidance(15, kGridB).status());
        return session.Retrieve(15, 3, 5);
      case 2:
        return session.Summarize({4, 12, 2});
      case 3:
        return session.Summarize({6, 18, 1});
      default:
        QAG_RETURN_IF_ERROR(session.Guidance(20, kGridA).status());
        return session.Retrieve(20, 1, 8);
    }
  };
  constexpr int kOps = 5;

  // Serial ground truth.
  std::map<int, Expected> expected;
  {
    auto serial = MakeSession(kSeed, kN);
    serial->set_num_threads(1);
    ASSERT_TRUE(serial->UniverseFor(kTopL).ok());
    for (int op = 0; op < kOps; ++op) {
      auto solution = run_op(*serial, op);
      ASSERT_TRUE(solution.ok()) << solution.status().ToString();
      expected[op] = {solution->cluster_ids, solution->average,
                      solution->covered_count};
    }
  }

  // Concurrent run: every thread issues every op several times, plus a
  // SaveGuidance into its own file.
  auto shared = MakeSession(kSeed, kN);
  ASSERT_TRUE(shared->UniverseFor(kTopL).ok());
  testutil::StartLatch latch(kThreads);
  std::vector<std::string> save_paths(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    save_paths[static_cast<size_t>(t)] =
        testing::TempDir() + "/qagview_conc_" + std::to_string(t) + ".txt";
    threads.emplace_back([&, t] {
      latch.ArriveAndWait();
      for (int round = 0; round < 3; ++round) {
        for (int op = 0; op < kOps; ++op) {
          int my_op = (op + t) % kOps;  // different interleavings per thread
          auto solution = run_op(*shared, my_op);
          ASSERT_TRUE(solution.ok()) << solution.status().ToString();
          const Expected& want = expected.at(my_op);
          EXPECT_EQ(solution->cluster_ids, want.ids) << "op " << my_op;
          EXPECT_EQ(solution->average, want.average) << "op " << my_op;
          EXPECT_EQ(solution->covered_count, want.count) << "op " << my_op;
        }
        ASSERT_TRUE(
            shared->SaveGuidance(15, save_paths[static_cast<size_t>(t)]).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  // Exactly one precompute per distinct grid shape, regardless of how many
  // of the kThreads × 3 rounds requested each.
  Session::CacheStats stats = shared->cache_stats();
  EXPECT_EQ(stats.stores, 2);
  EXPECT_EQ(stats.store_misses, 2);
  EXPECT_EQ(stats.universes, 1);  // the pre-warmed kTopL universe

  // Files written under concurrency round-trip into a fresh session and
  // serve the same solutions.
  auto fresh = MakeSession(kSeed, kN);
  ASSERT_TRUE(fresh->LoadGuidance(15, save_paths[0]).ok());
  auto loaded = fresh->Retrieve(15, 3, 5);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->average, expected[1].average);
  EXPECT_EQ(loaded->covered_count, expected[1].count);
  for (const std::string& path : save_paths) std::remove(path.c_str());
}

TEST(SessionConcurrencyTest, ConcurrentSummarizeSharesOneUniverse) {
  auto session = MakeSession(59);
  testutil::StartLatch latch(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      latch.ArriveAndWait();
      for (int round = 0; round < 4; ++round) {
        auto solution = session->Summarize({4, 12, 2});
        ASSERT_TRUE(solution.ok()) << solution.status().ToString();
        auto universe = session->UniverseFor(12);
        ASSERT_TRUE(universe.ok());
        EXPECT_TRUE(
            CheckFeasible(**universe, solution->cluster_ids, {4, 12, 2}).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(session->cache_stats().universes, 1);
  EXPECT_EQ(session->cache_stats().universe_misses, 1);
}

}  // namespace
}  // namespace qagview::core
