// Exploration-aware prefetch and persistent warm starts.
//
// The contracts pinned here:
//  * A prefetch hit is a *warm RCU read*: bit-identical to the answer a
//    cold service computes, served with zero additional writer-lock
//    acquisitions, and visible in prefetch_issued / prefetch_hits.
//  * Prefetch is off by default and never runs for approximate sessions.
//  * Warm-start snapshots survive a service restart and cut the first
//    Guidance to a warm read; stale, truncated, bit-flipped, or
//    wrong-query snapshots degrade to a cold build — never a wrong
//    answer, never a crash.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/solution_store_io.h"
#include "service/prefetch.h"
#include "service/query_service.h"
#include "service/warm_start.h"
#include "test_util.h"

namespace qagview::service {
namespace {

constexpr char kSql[] =
    "SELECT g0, g1, g2, avg(rating) AS val FROM ratings "
    "GROUP BY g0, g1, g2 HAVING count(*) > 3 ORDER BY val DESC";

std::unique_ptr<QueryService> MakeService(ServiceOptions options,
                                          uint64_t seed = 71,
                                          int rows = 2000) {
  auto service = std::make_unique<QueryService>(options);
  QAG_CHECK_OK(service->RegisterTable("ratings",
                                      testutil::MakeRatingsTable(seed, rows)));
  return service;
}

/// Fresh per-test scratch directory under the gtest temp root. Emptied on
/// every call: the temp root outlives test runs, and a stale snapshot from
/// a previous run must not warm-start a lifetime the test expects cold.
std::string ScratchDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/qagview_" + name;
  ::mkdir(dir.c_str(), 0755);
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* entry = ::readdir(d)) {
      const std::string file = entry->d_name;
      if (file != "." && file != "..") ::unlink((dir + "/" + file).c_str());
    }
    ::closedir(d);
  }
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

int64_t WriterLocks(QueryService* service, QueryHandle handle) {
  auto stats = service->SessionCacheStats(handle);
  QAG_CHECK_OK(stats.status());
  return stats->writer_lock_acquisitions;
}

TEST(PrefetchTest, OffByDefaultIssuesNothing) {
  auto service = MakeService(ServiceOptions());
  auto info = service->Query(kSql, "val");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  service->DrainBackgroundWork();
  EXPECT_EQ(service->stats().prefetch_issued, 0);
  EXPECT_EQ(service->stats().prefetch_hits, 0);
  const auto counters = service->scheduler_counters();
  EXPECT_EQ(counters.lane(BackgroundScheduler::Lane::kPrefetch).submitted, 0);
}

TEST(PrefetchTest, QueryPrefetchMakesPredictedSummarizeAWarmRead) {
  ServiceOptions with;
  with.prefetch = true;
  auto warm = MakeService(with);
  auto cold = MakeService(ServiceOptions());

  auto info = warm->Query(kSql, "val");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto cold_info = cold->Query(kSql, "val");
  ASSERT_TRUE(cold_info.ok());
  ASSERT_EQ(info->num_answers, cold_info->num_answers);

  warm->DrainBackgroundWork();
  EXPECT_GT(warm->stats().prefetch_issued, 0);

  // The same predictor the service consults, so the test aims at a level
  // the prefetcher actually built.
  ExplorationPredictor predictor(2);
  std::vector<int> targets = predictor.InitialLevels(info->num_answers);
  ASSERT_FALSE(targets.empty());

  core::Params params;
  params.L = targets[0];

  RequestStats rs;
  auto warm_solution = warm->Summarize(info->handle, params, &rs);
  ASSERT_TRUE(warm_solution.ok()) << warm_solution.status().ToString();
  EXPECT_TRUE(rs.cache_hit) << "predicted level must serve warm";
  EXPECT_FALSE(rs.built);
  EXPECT_EQ(warm->stats().prefetch_hits, 1);

  // Writer-lock delta of a warm serve is zero. The request above spawned
  // its own follow-up speculation (builds take the lock by design), so
  // measure a second identical request: the predictor is deterministic,
  // its follow-up targets are all built by now, and the only work left is
  // the foreground read itself.
  warm->DrainBackgroundWork();
  const int64_t locks_before = WriterLocks(warm.get(), info->handle);
  RequestStats again;
  ASSERT_TRUE(warm->Summarize(info->handle, params, &again).ok());
  EXPECT_TRUE(again.cache_hit);
  warm->DrainBackgroundWork();
  EXPECT_EQ(WriterLocks(warm.get(), info->handle), locks_before)
      << "a prefetch hit must not take the writer lock";

  // Bit-identical to the cold twin: speculation may only move work
  // earlier in time, never change its result.
  RequestStats cold_rs;
  auto cold_solution = cold->Summarize(cold_info->handle, params, &cold_rs);
  ASSERT_TRUE(cold_solution.ok());
  EXPECT_FALSE(cold_rs.cache_hit);
  EXPECT_EQ(warm_solution->cluster_ids, cold_solution->cluster_ids);
  EXPECT_EQ(warm_solution->covered_sum, cold_solution->covered_sum);
  EXPECT_EQ(warm_solution->covered_count, cold_solution->covered_count);
  EXPECT_EQ(warm_solution->average, cold_solution->average);
  EXPECT_EQ(warm_solution->covered_min, cold_solution->covered_min);
}

TEST(PrefetchTest, GuidancePrefetchBuildsTheNextDrillDownStore) {
  ServiceOptions with;
  with.prefetch = true;
  auto warm = MakeService(with);
  auto cold = MakeService(ServiceOptions());

  auto info = warm->Query(kSql, "val");
  ASSERT_TRUE(info.ok());
  auto cold_info = cold->Query(kSql, "val");
  ASSERT_TRUE(cold_info.ok());
  warm->DrainBackgroundWork();

  const int l0 = 4;
  RequestStats first;
  auto store0 = warm->Guidance(info->handle, l0,
                               core::PrecomputeOptions(), &first);
  ASSERT_TRUE(store0.ok()) << store0.status().ToString();
  EXPECT_TRUE(first.built);
  warm->DrainBackgroundWork();

  ExplorationPredictor predictor(2);
  std::vector<int> targets = predictor.NextLevels(
      study::MoveKind::kGuidance, l0, info->num_answers);
  ASSERT_FALSE(targets.empty());
  const int next_l = targets[0];
  ASSERT_NE(next_l, l0);

  RequestStats rs;
  auto warm_store = warm->Guidance(info->handle, next_l,
                                   core::PrecomputeOptions(), &rs);
  ASSERT_TRUE(warm_store.ok()) << warm_store.status().ToString();
  EXPECT_TRUE(rs.cache_hit) << "the drill-down grid must already be warm";
  EXPECT_FALSE(rs.built);
  EXPECT_GE(warm->stats().prefetch_hits, 1);

  // Lock-freedom of the warm serve, measured once this level's follow-up
  // speculation (which builds, and so takes the lock) has drained.
  warm->DrainBackgroundWork();
  const int64_t locks_before = WriterLocks(warm.get(), info->handle);
  RequestStats again;
  ASSERT_TRUE(warm->Guidance(info->handle, next_l, core::PrecomputeOptions(),
                             &again)
                  .ok());
  EXPECT_TRUE(again.cache_hit);
  warm->DrainBackgroundWork();
  EXPECT_EQ(WriterLocks(warm.get(), info->handle), locks_before)
      << "a warm guidance serve must not take the writer lock";

  RequestStats cold_rs;
  auto cold_store = cold->Guidance(cold_info->handle, next_l,
                                   core::PrecomputeOptions(), &cold_rs);
  ASSERT_TRUE(cold_store.ok());
  EXPECT_EQ(core::SerializeSolutionStore(**warm_store),
            core::SerializeSolutionStore(**cold_store))
      << "prefetched grid must be bit-identical to a cold build";
}

TEST(PrefetchTest, ApproximateSessionsNeverSpeculate) {
  ServiceOptions with;
  with.prefetch = true;
  with.sample_capacity = 512;  // well under rows: sampling must engage
  auto service = MakeService(with, /*seed=*/71, /*rows=*/4000);
  QueryOptions approx;
  approx.mode = QueryMode::kApproxOnly;
  approx.confidence = 0.95;
  auto info = service->Query(kSql, "val", approx);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  if (info->is_exact) GTEST_SKIP() << "sample did not engage; nothing to pin";
  core::Params params;
  auto solution = service->Summarize(info->handle, params, nullptr);
  ASSERT_TRUE(solution.ok());
  service->DrainBackgroundWork();
  EXPECT_EQ(service->stats().prefetch_issued, 0)
      << "background cycles belong to refinement while approximate";
}

TEST(PrefetchTest, CatalogMutationCancelsQueuedSpeculation) {
  ServiceOptions with;
  with.prefetch = true;
  auto service = MakeService(with);
  auto info = service->Query(kSql, "val");
  ASSERT_TRUE(info.ok());
  // Mutate the catalog immediately: any still-queued prefetch task was
  // predicted against retired data and must be dropped, not run.
  auto version = service->AppendRows(
      "ratings", {{storage::Value::Str("g0v0"), storage::Value::Str("g1v1"),
                   storage::Value::Str("g2v2"), storage::Value::Str("g3v3"),
                   storage::Value::Real(4.5)}});
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  service->DrainBackgroundWork();
  const auto counters = service->scheduler_counters();
  const auto& lane =
      counters.lane(BackgroundScheduler::Lane::kPrefetch);
  EXPECT_EQ(lane.submitted, lane.ran + lane.dropped_superseded);
  // Whatever raced, the refreshed session must serve the new data
  // correctly (the refresh machinery is pinned by its own battery; this
  // checks speculation didn't poison it).
  RequestStats rs;
  auto solution = service->Summarize(info->handle, core::Params(), &rs);
  EXPECT_TRUE(solution.ok()) << solution.status().ToString();
}

// ---------------------------------------------------------------------------
// Warm starts.

TEST(WarmStartTest, SnapshotSurvivesRestartAndServesWarm) {
  const std::string dir = ScratchDir("ws_roundtrip");
  ServiceOptions opts;
  opts.snapshot_dir = dir;
  const int top_l = 6;

  // First process lifetime: build a grid, let the snapshot write drain.
  {
    auto service = MakeService(opts);
    auto info = service->Query(kSql, "val");
    ASSERT_TRUE(info.ok());
    RequestStats rs;
    auto store = service->Guidance(info->handle, top_l,
                                   core::PrecomputeOptions(), &rs);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE(rs.built);
    service->DrainBackgroundWork();
  }

  // Second lifetime, same catalog: the load validates and the first
  // Guidance is a warm RCU read of the restored grid.
  auto reborn = MakeService(opts);
  auto cold = MakeService(ServiceOptions());
  auto info = reborn->Query(kSql, "val");
  ASSERT_TRUE(info.ok());
  auto cold_info = cold->Query(kSql, "val");
  ASSERT_TRUE(cold_info.ok());
  reborn->DrainBackgroundWork();
  EXPECT_EQ(reborn->stats().warm_start_loads, 1);

  const int64_t locks_before = WriterLocks(reborn.get(), info->handle);
  RequestStats rs;
  auto warm_store = reborn->Guidance(info->handle, top_l,
                                     core::PrecomputeOptions(), &rs);
  ASSERT_TRUE(warm_store.ok()) << warm_store.status().ToString();
  EXPECT_TRUE(rs.cache_hit);
  EXPECT_FALSE(rs.built);
  EXPECT_EQ(WriterLocks(reborn.get(), info->handle), locks_before)
      << "warm-started guidance must serve without the writer lock";

  RequestStats cold_rs;
  auto cold_store = cold->Guidance(cold_info->handle, top_l,
                                   core::PrecomputeOptions(), &cold_rs);
  ASSERT_TRUE(cold_store.ok());
  EXPECT_EQ(core::SerializeSolutionStore(**warm_store),
            core::SerializeSolutionStore(**cold_store))
      << "a restored grid must be bit-identical to a cold build";
}

TEST(WarmStartTest, ChangedDataRejectsSnapshotAndRebuildsCold) {
  const std::string dir = ScratchDir("ws_changed");
  ServiceOptions opts;
  opts.snapshot_dir = dir;
  {
    auto service = MakeService(opts, /*seed=*/71);
    auto info = service->Query(kSql, "val");
    ASSERT_TRUE(info.ok());
    auto store = service->Guidance(info->handle, 5,
                                   core::PrecomputeOptions(), nullptr);
    ASSERT_TRUE(store.ok());
    service->DrainBackgroundWork();
  }
  // Same query text, same snapshot dir, *different data*: the snapshot's
  // fingerprints no longer match the published answer set, so the load
  // must degrade to a cold build — stale caches must never resurface.
  auto service = MakeService(opts, /*seed=*/99);
  auto cold = MakeService(ServiceOptions(), /*seed=*/99);
  auto info = service->Query(kSql, "val");
  ASSERT_TRUE(info.ok());
  service->DrainBackgroundWork();
  EXPECT_EQ(service->stats().warm_start_loads, 0);

  auto cold_info = cold->Query(kSql, "val");
  ASSERT_TRUE(cold_info.ok());
  RequestStats rs;
  auto store = service->Guidance(info->handle, 5,
                                 core::PrecomputeOptions(), &rs);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(rs.built) << "rejected snapshot must fall back to cold build";
  auto cold_store = cold->Guidance(cold_info->handle, 5,
                                   core::PrecomputeOptions(), nullptr);
  ASSERT_TRUE(cold_store.ok());
  EXPECT_EQ(core::SerializeSolutionStore(**store),
            core::SerializeSolutionStore(**cold_store));
}

TEST(WarmStartTest, DamagedSnapshotCorpusDegradesCleanly) {
  // Drive the real end-to-end path over a corpus of damaged files: every
  // variant must produce warm_start_loads == 0 and a correct cold serve.
  const std::string dir = ScratchDir("ws_corpus_seed");
  ServiceOptions opts;
  opts.snapshot_dir = dir;
  {
    auto service = MakeService(opts);
    auto info = service->Query(kSql, "val");
    ASSERT_TRUE(info.ok());
    auto store = service->Guidance(info->handle, 5,
                                   core::PrecomputeOptions(), nullptr);
    ASSERT_TRUE(store.ok());
    service->DrainBackgroundWork();
  }
  const std::string name =
      WarmStartFileName(std::string(kSql) + '\x1f' + "val");
  const std::string valid = ReadFile(dir + "/" + name);
  ASSERT_FALSE(valid.empty());

  std::vector<std::pair<std::string, std::string>> corpus;
  corpus.emplace_back("empty file", "");
  corpus.emplace_back("garbage", "this is not a snapshot\n");
  corpus.emplace_back("wrong magic",
                      "qagview-nope" + valid.substr(12));
  for (size_t cut : {size_t{1}, valid.size() / 4, valid.size() / 2,
                     valid.size() - 1}) {
    corpus.emplace_back("truncated@" + std::to_string(cut),
                        valid.substr(0, cut));
  }
  for (size_t pos = 0; pos < valid.size(); pos += valid.size() / 9 + 1) {
    std::string flipped = valid;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x10);
    corpus.emplace_back("bitflip@" + std::to_string(pos), flipped);
  }

  auto cold = MakeService(ServiceOptions());
  auto cold_info = cold->Query(kSql, "val");
  ASSERT_TRUE(cold_info.ok());
  auto cold_store = cold->Guidance(cold_info->handle, 5,
                                   core::PrecomputeOptions(), nullptr);
  ASSERT_TRUE(cold_store.ok());
  const std::string cold_bytes = core::SerializeSolutionStore(**cold_store);

  int case_index = 0;
  for (const auto& [label, bytes] : corpus) {
    const std::string case_dir =
        ScratchDir("ws_corpus_" + std::to_string(case_index++));
    WriteFile(case_dir + "/" + name, bytes);
    ServiceOptions case_opts;
    case_opts.snapshot_dir = case_dir;
    auto service = MakeService(case_opts);
    auto info = service->Query(kSql, "val");
    ASSERT_TRUE(info.ok()) << label;
    service->DrainBackgroundWork();
    // A flip can land in provenance bytes the loader legitimately ignores
    // (catalog version), so "loads == 0 or served identically" is the
    // contract: never a crash, never a divergent answer.
    auto store = service->Guidance(info->handle, 5,
                                   core::PrecomputeOptions(), nullptr);
    ASSERT_TRUE(store.ok()) << label;
    EXPECT_EQ(core::SerializeSolutionStore(**store), cold_bytes)
        << label << ": a damaged snapshot must never change an answer";
  }
}

TEST(WarmStartTest, EnvelopeRejectsForgedAndOversizedHeaders) {
  const std::string dir = ScratchDir("ws_envelope");
  WarmStartSnapshot snap;
  snap.catalog_version = 7;
  snap.content_fingerprint = 0xabcdefull;
  snap.domain_fingerprint = 0x123456ull;
  snap.num_answers = 42;
  snap.num_attrs = 4;
  snap.store_l = 6;
  snap.payload = "qagview-store 1 6 42 4 0\n";
  const std::string path = dir + "/forged.qsnap";
  ASSERT_TRUE(WriteWarmStartSnapshot(path, snap).ok());
  auto ok = ReadWarmStartSnapshot(path);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->payload, snap.payload);
  EXPECT_EQ(ok->content_fingerprint, snap.content_fingerprint);

  const std::string valid = ReadFile(path);
  // Header promising more payload than the file holds.
  {
    std::string lying = valid;
    size_t nl = lying.find('\n');
    ASSERT_NE(nl, std::string::npos);
    std::string header = lying.substr(0, nl);
    // payload_bytes is the 8th space-separated field (index 7).
    std::istringstream fields(header);
    std::vector<std::string> parts;
    std::string f;
    while (fields >> f) parts.push_back(f);
    ASSERT_EQ(parts.size(), 10u);
    parts[8] = "99999";  // payload_bytes: promise more than the file holds
    std::string rebuilt;
    for (size_t i = 0; i < parts.size(); ++i) {
      rebuilt += (i ? " " : "") + parts[i];
    }
    WriteFile(path, rebuilt + lying.substr(nl));
    EXPECT_FALSE(ReadWarmStartSnapshot(path).ok());
  }
  // Payload-size field beyond the hard ceiling must be rejected before
  // any allocation is attempted.
  {
    std::string huge = valid;
    size_t nl = huge.find('\n');
    std::string header = huge.substr(0, nl);
    std::istringstream fields(header);
    std::vector<std::string> parts;
    std::string f;
    while (fields >> f) parts.push_back(f);
    parts[8] = "9999999999999";
    std::string rebuilt;
    for (size_t i = 0; i < parts.size(); ++i) {
      rebuilt += (i ? " " : "") + parts[i];
    }
    WriteFile(path, rebuilt + huge.substr(nl));
    EXPECT_FALSE(ReadWarmStartSnapshot(path).ok());
  }
  // Unsupported format version.
  {
    std::string wrong = valid;
    size_t pos = wrong.find(" 1 ");
    ASSERT_NE(pos, std::string::npos);
    wrong.replace(pos, 3, " 2 ");
    WriteFile(path, wrong);
    EXPECT_FALSE(ReadWarmStartSnapshot(path).ok());
  }
  // Missing file: NotFound, not a crash.
  EXPECT_FALSE(ReadWarmStartSnapshot(dir + "/absent.qsnap").ok());
}

}  // namespace
}  // namespace qagview::service
