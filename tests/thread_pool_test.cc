#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace qagview {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1);
  ThreadPool fixed(3);
  EXPECT_EQ(fixed.num_threads(), 3);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    const int64_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(0, n, [&](int64_t i) { ++hits[static_cast<size_t>(i)]; });
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "index " << i << " with " << threads << " threads";
    }
  }
}

TEST(ThreadPoolTest, NonZeroBeginAndPreSizedSlots) {
  ThreadPool pool(4);
  std::vector<int64_t> out(100, -1);
  pool.ParallelFor(40, 100, [&](int64_t i) { out[static_cast<size_t>(i)] = i; });
  for (int64_t i = 0; i < 40; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], -1);
  for (int64_t i = 40; i < 100; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, EmptyAndShortRanges) {
  ThreadPool pool(8);
  int calls = 0;
  pool.ParallelFor(0, 0, [&](int64_t) { ++calls; });
  pool.ParallelFor(5, 5, [&](int64_t) { ++calls; });
  pool.ParallelFor(5, 3, [&](int64_t) { ++calls; });  // inverted => empty
  EXPECT_EQ(calls, 0);
  // Fewer indices than workers.
  std::atomic<int> ran{0};
  pool.ParallelFor(0, 3, [&](int64_t) { ++ran; });
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 100, [&](int64_t i) { sum += i; });
    ASSERT_EQ(sum.load(), 99 * 100 / 2);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(0, 100,
                         [&](int64_t i) {
                           if (i == 37) throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool survives the exception and runs subsequent jobs.
    std::atomic<int> ran{0};
    pool.ParallelFor(0, 10, [&](int64_t) { ++ran; });
    EXPECT_EQ(ran.load(), 10);
  }
}

TEST(ThreadPoolTest, ExceptionAbortsRemainingWork) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  try {
    pool.ParallelFor(0, 1000000, [&](int64_t) {
      ++ran;
      throw std::runtime_error("first iteration fails");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  // Every participant stops claiming work after the first failure; far
  // fewer than all iterations ran.
  EXPECT_LT(ran.load(), 1000);
}

TEST(ThreadPoolTest, ShardsAreContiguousOrderedAndComplete) {
  for (int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    const int64_t n = 1001;
    std::vector<std::pair<int64_t, int64_t>> ranges(
        static_cast<size_t>(threads), {-1, -1});
    pool.ParallelForShards(0, n, [&](int shard, int64_t b, int64_t e) {
      ranges[static_cast<size_t>(shard)] = {b, e};
    });
    int64_t expected_begin = 0;
    for (int sh = 0; sh < threads; ++sh) {
      auto [b, e] = ranges[static_cast<size_t>(sh)];
      if (b < 0) continue;  // empty shard never invoked
      EXPECT_EQ(b, expected_begin) << "shard " << sh;
      EXPECT_GT(e, b);
      expected_begin = e;
    }
    EXPECT_EQ(expected_begin, n) << threads << " threads";
  }
}

TEST(ThreadPoolTest, ShardsSkipEmptyRangesWhenFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> invocations{0};
  std::atomic<int64_t> covered{0};
  pool.ParallelForShards(0, 3, [&](int, int64_t b, int64_t e) {
    ++invocations;
    covered += e - b;
  });
  EXPECT_EQ(covered.load(), 3);
  EXPECT_LE(invocations.load(), 3);
  int none = 0;
  pool.ParallelForShards(7, 7, [&](int, int64_t, int64_t) { ++none; });
  EXPECT_EQ(none, 0);
}

}  // namespace
}  // namespace qagview
