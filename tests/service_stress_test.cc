// The service stress test the TSan CI job gates on: many client threads
// hammer one QueryService with a mixed Query / Summarize / Guidance /
// Retrieve / Explore workload over shared sessions, and every response
// must be bit-identical to the same request served by a single-threaded
// run. Also pins the single-flight invariants: one SQL execution per
// distinct query and one precompute per distinct grid shape, no matter
// how many clients race.

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/query_service.h"
#include "test_util.h"

namespace qagview::service {
namespace {

constexpr int kClients = 16;  // ≥ 8 per the CI acceptance bar
constexpr int kRounds = 3;
constexpr uint64_t kSeed = 83;
constexpr int kRows = 5000;

constexpr char kSqlCoarse[] =
    "SELECT g0, g1, g2, avg(rating) AS val FROM ratings "
    "GROUP BY g0, g1, g2 HAVING count(*) > 3 ORDER BY val DESC";
constexpr char kSqlFine[] =
    "SELECT g0, g1, g2, g3, avg(rating) AS val FROM ratings "
    "GROUP BY g0, g1, g2, g3 HAVING count(*) > 2 ORDER BY val DESC";

std::unique_ptr<QueryService> MakeService() {
  auto service = std::make_unique<QueryService>();
  QAG_CHECK_OK(service->RegisterTable(
      "ratings", testutil::MakeRatingsTable(kSeed, kRows)));
  return service;
}

core::PrecomputeOptions GridOptions() {
  core::PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 8;
  options.d_values = {1, 2};
  return options;
}

/// The comparable footprint of one response. Raw cluster ids are
/// comparable across runs because both runs pre-warm the same widest
/// universe per session, pinning the id space (see WarmUp below).
struct Footprint {
  std::vector<int> ids;
  double average = 0.0;
  int count = 0;
  bool operator==(const Footprint& other) const {
    return ids == other.ids && average == other.average &&
           count == other.count;
  }
};

/// The finite request vocabulary, identified by op index. Every op routes
/// through the service API only — exactly what a client stub would issue.
constexpr int kNumOps = 6;
Result<Footprint> RunOp(QueryService& service, int op) {
  const char* sql = (op % 2 == 0) ? kSqlCoarse : kSqlFine;
  QAG_ASSIGN_OR_RETURN(QueryInfo info, service.Query(sql, "val"));
  Footprint out;
  switch (op) {
    case 0: {
      QAG_ASSIGN_OR_RETURN(core::Solution s,
                           service.Summarize(info.handle, {4, 12, 2}));
      out = {s.cluster_ids, s.average, s.covered_count};
      break;
    }
    case 1: {
      QAG_ASSIGN_OR_RETURN(core::Solution s,
                           service.Summarize(info.handle, {5, 15, 1}));
      out = {s.cluster_ids, s.average, s.covered_count};
      break;
    }
    case 2: {
      QAG_RETURN_IF_ERROR(
          service.Guidance(info.handle, 14, GridOptions()).status());
      QAG_ASSIGN_OR_RETURN(core::Solution s,
                           service.Retrieve(info.handle, 14, 2, 6));
      out = {s.cluster_ids, s.average, s.covered_count};
      break;
    }
    case 3: {
      // Same grid shape as op 2 on purpose: with one distinct Guidance
      // key per session, exactly one store can ever exist, so which
      // client's call built it cannot change what Retrieve returns.
      QAG_RETURN_IF_ERROR(
          service.Guidance(info.handle, 14, GridOptions()).status());
      QAG_ASSIGN_OR_RETURN(core::Solution s,
                           service.Retrieve(info.handle, 12, 1, 4));
      out = {s.cluster_ids, s.average, s.covered_count};
      break;
    }
    case 4: {
      QAG_ASSIGN_OR_RETURN(ExploreResult e,
                           service.Explore(info.handle, {4, 10, 2}));
      out = {e.solution.cluster_ids, e.solution.average,
             e.solution.covered_count};
      break;
    }
    default: {
      QAG_RETURN_IF_ERROR(
          service.Guidance(info.handle, 14, GridOptions()).status());
      QAG_ASSIGN_OR_RETURN(core::Solution s,
                           service.Retrieve(info.handle, 10, 2, 7));
      out = {s.cluster_ids, s.average, s.covered_count};
      break;
    }
  }
  return out;
}

/// Opens both sessions and pre-warms each one's widest universe (L=16) so
/// the narrowest-covering-universe policy serves every request from the
/// same universe in the serial and concurrent runs — making cluster ids,
/// not just patterns, comparable across runs. A Summarize at L=16 is the
/// service-API warm trigger (one recorded request + one universe build per
/// session, accounted for in the stats assertions below).
void WarmUp(QueryService& service) {
  for (const char* sql : {kSqlCoarse, kSqlFine}) {
    auto info = service.Query(sql, "val");
    QAG_CHECK(info.ok()) << info.status().ToString();
    auto solution = service.Summarize(info->handle, {4, 16, 1});
    QAG_CHECK(solution.ok()) << solution.status().ToString();
  }
}

/// The full bit-identity-vs-serial battery at a given client count. Run at
/// 16 and 32 clients: well past the core count, so the lock-free warm path
/// is exercised under heavy oversubscription and preemption inside the
/// pin-serve window.
void RunMixedWorkload(int clients) {
  // Serial ground truth: a fresh identical service, one thread.
  std::map<int, Footprint> expected;
  {
    auto serial = MakeService();
    WarmUp(*serial);
    for (int op = 0; op < kNumOps; ++op) {
      auto footprint = RunOp(*serial, op);
      ASSERT_TRUE(footprint.ok()) << "op " << op << ": "
                                  << footprint.status().ToString();
      expected.emplace(op, *footprint);
    }
  }

  // Concurrent run: `clients` threads × kRounds × all ops, rotated so
  // every op is in flight from multiple threads at once.
  auto service = MakeService();
  WarmUp(*service);
  testutil::StartLatch latch(clients);
  std::vector<std::thread> threads;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      latch.ArriveAndWait();
      for (int round = 0; round < kRounds; ++round) {
        for (int op = 0; op < kNumOps; ++op) {
          int my_op = (op + t) % kNumOps;
          auto footprint = RunOp(*service, my_op);
          ASSERT_TRUE(footprint.ok()) << "op " << my_op << ": "
                                      << footprint.status().ToString();
          EXPECT_EQ(*footprint, expected.at(my_op))
              << "client " << t << " round " << round << " op " << my_op;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Single-flight invariants, checked over everything the clients did:
  //  * 2 distinct queries → exactly 2 sessions, however many Query calls;
  //  * each session: one universe build (the pre-warm) and exactly one
  //    precompute per distinct (L, options) grid shape.
  QueryService::Stats stats = service->stats();
  EXPECT_EQ(stats.sessions, 2);
  EXPECT_EQ(stats.queries,
            2 + static_cast<int64_t>(clients) * kRounds * kNumOps);
  EXPECT_EQ(stats.query_cache_hits, stats.queries - 2 - stats.query_coalesced);

  for (const char* sql : {kSqlCoarse, kSqlFine}) {
    auto info = service->Query(sql, "val");
    ASSERT_TRUE(info.ok());
    auto cache = service->SessionCacheStats(info->handle);
    ASSERT_TRUE(cache.ok());
    EXPECT_EQ(cache->universes, 1) << sql;
    EXPECT_EQ(cache->universe_misses, 1) << sql;
    // All ops share one grid shape, so exactly one precompute ran per
    // session — never one per client.
    EXPECT_EQ(cache->stores, 1) << sql;
    EXPECT_EQ(cache->store_misses, 1) << sql;
  }

  // Request accounting: every client call was recorded. The counters are
  // sharded per thread (common/sharded_stats.h) and aggregated by
  // stats(); after the join above the shard sums must equal — exactly —
  // the totals a single global set of counters would have recorded. A
  // lost or double-counted increment anywhere fails one of these.
  int64_t expected_non_query =
      static_cast<int64_t>(clients) * kRounds * kNumOps;
  // ops 2, 3, 5 issue Guidance + Retrieve (2 recorded requests each);
  // ops 0, 1 issue Summarize; op 4 issues Explore. WarmUp added one
  // Summarize per session (+2).
  EXPECT_EQ(stats.summarize_requests, expected_non_query / kNumOps * 2 + 2);
  EXPECT_EQ(stats.explore_requests, expected_non_query / kNumOps);
  EXPECT_EQ(stats.guidance_requests, expected_non_query / kNumOps * 3);
  EXPECT_EQ(stats.retrieve_requests, expected_non_query / kNumOps * 3);
  // Per 6-op cycle: 2 Summarize + 3 Guidance + 3 Retrieve + 1 Explore =
  // 9 recorded non-query requests, plus the 2 warm-up Summarizes.
  const int64_t recorded_non_query = expected_non_query / kNumOps * 9 + 2;
  EXPECT_EQ(stats.requests(), stats.queries + recorded_non_query);
  // Every non-query request resolved to exactly one of {hit, built,
  // coalesced}; with two universe builds (warm-up) and two grid
  // precomputes total, the partition is exact.
  EXPECT_EQ(stats.builds, 4);
  EXPECT_EQ(stats.cache_hits + stats.builds + stats.coalesced_waits,
            recorded_non_query);
  EXPECT_EQ(stats.refreshes, 0);  // no dataset moved during the run
  EXPECT_GT(stats.total_latency_ms, 0.0);
  EXPECT_GT(stats.max_latency_ms, 0.0);
}

TEST(ServiceStressTest, MixedWorkloadBitIdenticalToSerial16Clients) {
  RunMixedWorkload(16);
}

TEST(ServiceStressTest, MixedWorkloadBitIdenticalToSerial32Clients) {
  RunMixedWorkload(32);
}

TEST(ServiceStressTest, ConcurrentIdenticalQueriesCoalesce) {
  auto service = MakeService();
  testutil::StartLatch latch(kClients);
  std::vector<QueryHandle> handles(kClients, -1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      latch.ArriveAndWait();
      auto info = service->Query(kSqlCoarse, "val");
      ASSERT_TRUE(info.ok()) << info.status().ToString();
      handles[static_cast<size_t>(t)] = info->handle;
    });
  }
  for (auto& t : threads) t.join();

  // One SQL execution, one session; every client got the same handle.
  for (int t = 1; t < kClients; ++t) {
    EXPECT_EQ(handles[static_cast<size_t>(t)], handles[0]);
  }
  QueryService::Stats stats = service->stats();
  EXPECT_EQ(stats.sessions, 1);
  EXPECT_EQ(stats.queries, kClients);
  // One build; everyone else either hit the cache directly or waited on
  // the in-flight execution (coalesced) and then served from it.
  EXPECT_EQ(stats.query_cache_hits + stats.query_coalesced, kClients - 1);
}

TEST(ServiceStressTest, ConcurrentGuidanceOnSharedSessionSingleFlight) {
  auto service = MakeService();
  auto info = service->Query(kSqlCoarse, "val");
  ASSERT_TRUE(info.ok());
  testutil::StartLatch latch(kClients);
  std::vector<RequestStats> stats(kClients);
  // Handles, not raw pointers: each client pins the store it was served.
  std::vector<std::shared_ptr<const core::SolutionStore>> stores(kClients);
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      latch.ArriveAndWait();
      auto store = service->Guidance(info->handle, 14, GridOptions(),
                                     &stats[static_cast<size_t>(t)]);
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      stores[static_cast<size_t>(t)] = *store;
    });
  }
  for (auto& t : threads) t.join();

  for (int t = 1; t < kClients; ++t) {
    EXPECT_EQ(stores[static_cast<size_t>(t)], stores[0]);
  }
  int built = 0, coalesced = 0, hit = 0;
  for (const RequestStats& s : stats) {
    built += s.built ? 1 : 0;
    coalesced += s.coalesced ? 1 : 0;
    hit += s.cache_hit ? 1 : 0;
  }
  EXPECT_EQ(built, 1);  // exactly one client paid for the precompute
  EXPECT_EQ(built + coalesced + hit, kClients);
  auto cache = service->SessionCacheStats(info->handle);
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ(cache->stores, 1);
  EXPECT_EQ(cache->store_misses, 1);
  EXPECT_EQ(cache->store_coalesced, coalesced);
}

}  // namespace
}  // namespace qagview::service
