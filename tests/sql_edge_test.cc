// Executor edge semantics: NULL handling end-to-end, type coercion,
// multi-key ordering, case-insensitivity, and unsupported-syntax errors.
// (Core template coverage lives in sql_test.cc.)

#include <string>

#include <gtest/gtest.h>

#include "sql/executor.h"
#include "storage/table.h"

namespace qagview::sql {
namespace {

using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

// g | x    | y     — exercises NULLs in a grouping column, an INT64
// a | 1    | 1.5     aggregate input, and a DOUBLE aggregate input.
// a | NULL | 2.5
// b | 3    | NULL
// ∅ | 4    | 4.5
Table MakeNullTable() {
  Schema schema({{"g", ValueType::kString},
                 {"x", ValueType::kInt64},
                 {"y", ValueType::kDouble}});
  Table t(schema);
  QAG_CHECK_OK(t.AppendRow({Value::Str("a"), Value::Int(1), Value::Real(1.5)}));
  QAG_CHECK_OK(t.AppendRow({Value::Str("a"), Value::Null(), Value::Real(2.5)}));
  QAG_CHECK_OK(t.AppendRow({Value::Str("b"), Value::Int(3), Value::Null()}));
  QAG_CHECK_OK(t.AppendRow({Value::Null(), Value::Int(4), Value::Real(4.5)}));
  return t;
}

class SqlEdgeTest : public testing::Test {
 protected:
  SqlEdgeTest() : table_(MakeNullTable()) { catalog_.Register("t", &table_); }

  Result<Table> Run(const std::string& query) {
    return ExecuteSql(query, catalog_);
  }

  Table table_;
  Catalog catalog_;
};

TEST_F(SqlEdgeTest, NullFormsItsOwnGroup) {
  auto r = Run("SELECT g, count(*) AS n FROM t GROUP BY g ORDER BY n DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 3);
  EXPECT_EQ(r->Get(0, 0).as_string(), "a");
  EXPECT_EQ(r->Get(0, 1).as_int(), 2);
  // One of the two singleton groups is the NULL group.
  EXPECT_TRUE(r->Get(1, 0).is_null() || r->Get(2, 0).is_null());
}

TEST_F(SqlEdgeTest, CountColumnSkipsNullsCountStarDoesNot) {
  auto r = Run("SELECT count(*) AS n, count(x) AS nx, count(y) AS ny FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Get(0, 0).as_int(), 4);
  EXPECT_EQ(r->Get(0, 1).as_int(), 3);
  EXPECT_EQ(r->Get(0, 2).as_int(), 3);
}

TEST_F(SqlEdgeTest, AggregatesSkipNulls) {
  auto r = Run("SELECT sum(x) AS s, avg(y) AS a FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Get(0, 0).ToDouble(), 8.0);   // 1 + 3 + 4
  EXPECT_NEAR(r->Get(0, 1).ToDouble(), (1.5 + 2.5 + 4.5) / 3, 1e-12);
}

TEST_F(SqlEdgeTest, AggregateOverEmptyFilterIsNull) {
  auto r = Run("SELECT sum(y) AS s, min(y) AS lo FROM t WHERE g = 'b'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1);
  EXPECT_TRUE(r->Get(0, 0).is_null());  // the only b row has y = NULL
  EXPECT_TRUE(r->Get(0, 1).is_null());
}

TEST_F(SqlEdgeTest, MinMaxWorkOnStrings) {
  auto r = Run("SELECT min(g) AS lo, max(g) AS hi FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Get(0, 0).as_string(), "a");
  EXPECT_EQ(r->Get(0, 1).as_string(), "b");
}

TEST_F(SqlEdgeTest, NullComparisonsNeverPass) {
  // Row 2 has x NULL and y 2.5; x > 1 is NULL there, y < 2.0 is false:
  // NULL OR false = NULL, so the row is filtered out.
  auto r = Run("SELECT g, x FROM t WHERE x > 1 OR y < 2.0 ORDER BY x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 3);
  // NOT of a NULL comparison stays NULL and filters too.
  auto n = Run("SELECT g, x FROM t WHERE NOT (x > 1)");
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(n->num_rows(), 1);
  EXPECT_EQ(n->Get(0, 1).as_int(), 1);
}

TEST_F(SqlEdgeTest, DivisionByZeroYieldsNull) {
  auto r = Run("SELECT x / 0 AS d FROM t LIMIT 1");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Get(0, 0).is_null());
}

TEST_F(SqlEdgeTest, IntPlusDoubleCoercesToDouble) {
  auto r = Run("SELECT x + y AS s FROM t ORDER BY s DESC LIMIT 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().field(0).type, ValueType::kDouble);
  EXPECT_DOUBLE_EQ(r->Get(0, 0).ToDouble(), 8.5);
}

TEST_F(SqlEdgeTest, UnaryMinus) {
  auto r = Run("SELECT -x AS neg FROM t ORDER BY neg LIMIT 4");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 4);
  // NULLs order lowest; then -4 < -3 < -1.
  EXPECT_TRUE(r->Get(0, 0).is_null());
  EXPECT_EQ(r->Get(1, 0).as_int(), -4);
  EXPECT_EQ(r->Get(3, 0).as_int(), -1);
}

TEST_F(SqlEdgeTest, MultiKeyOrderByMixedDirections) {
  auto r = Run("SELECT g, x FROM t ORDER BY g DESC, x ASC");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 4);
  EXPECT_EQ(r->Get(0, 0).as_string(), "b");
  // Within g='a', ascending x puts the NULL x first.
  EXPECT_EQ(r->Get(1, 0).as_string(), "a");
  EXPECT_TRUE(r->Get(1, 1).is_null());
  EXPECT_EQ(r->Get(2, 1).as_int(), 1);
  // NULL group key sorts lowest, so it is last under DESC.
  EXPECT_TRUE(r->Get(3, 0).is_null());
}

TEST_F(SqlEdgeTest, LimitZeroAndLimitBeyondRows) {
  auto zero = Run("SELECT g FROM t ORDER BY g LIMIT 0");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->num_rows(), 0);
  auto beyond = Run("SELECT g FROM t ORDER BY g LIMIT 100");
  ASSERT_TRUE(beyond.ok());
  EXPECT_EQ(beyond->num_rows(), 4);
}

TEST_F(SqlEdgeTest, KeywordsColumnsAndTableNamesAreCaseInsensitive) {
  auto r = Run("select G, COUNT(*) as N from T group by g order by n desc");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 3);
  EXPECT_EQ(r->Get(0, 1).as_int(), 2);
}

TEST_F(SqlEdgeTest, UnsupportedSyntaxFailsCleanly) {
  EXPECT_FALSE(Run("SELECT g || 'x' FROM t").ok());             // concat
  EXPECT_FALSE(Run("SELECT x FROM t WHERE g BETWEEN 'a' AND 'b'").ok());
  EXPECT_FALSE(Run("SELECT * FROM t JOIN t ON 1 = 1").ok());    // joins
  EXPECT_FALSE(Run("SELECT DISTINCT g FROM t").ok());           // distinct
  EXPECT_FALSE(Run("INSERT INTO t VALUES (1)").ok());           // non-select
  EXPECT_FALSE(Run("").ok());
}

TEST_F(SqlEdgeTest, HavingOnAvgAndGroupColumn) {
  auto r = Run(
      "SELECT g, avg(x) AS m FROM t GROUP BY g "
      "HAVING avg(x) >= 1 AND count(*) >= 1 ORDER BY m DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Groups: a -> avg 1, b -> avg 3, NULL -> avg 4. All pass.
  EXPECT_EQ(r->num_rows(), 3);
  EXPECT_DOUBLE_EQ(r->Get(0, 1).ToDouble(), 4.0);
}

TEST_F(SqlEdgeTest, WhereOnStringEquality) {
  auto r = Run("SELECT x FROM t WHERE g = 'a' ORDER BY x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2);
  // The NULL g row never matches equality.
  auto ne = Run("SELECT x FROM t WHERE g <> 'a' ORDER BY x");
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne->num_rows(), 1);
  EXPECT_EQ(ne->Get(0, 0).as_int(), 3);
}

}  // namespace
}  // namespace qagview::sql
