// Unit coverage for the versioned update pipeline: core::Session::Refresh
// fingerprint reuse/retirement semantics, and QueryService's transparent
// stale-handle refresh over a versioned DatasetCatalog. The end-to-end
// bit-identity invariant lives in refresh_differential_test.cc.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/query_service.h"
#include "test_util.h"

namespace qagview {
namespace {

using core::Session;
using service::QueryService;
using storage::Value;

constexpr char kSql[] =
    "SELECT g0, g1, g2, avg(rating) AS val FROM ratings "
    "GROUP BY g0, g1, g2 HAVING count(*) > 2 ORDER BY val DESC";

core::PrecomputeOptions SmallGrid() {
  core::PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 5;
  options.d_values = {1, 2};
  return options;
}

// --- core::Session::Refresh ---------------------------------------------

TEST(SessionRefreshTest, UnchangedContentReusesEveryCache) {
  core::AnswerSet answers = testutil::MakeRandomAnswerSet(7, 80, 4, 4);
  auto session = Session::Create(testutil::MakeRandomAnswerSet(7, 80, 4, 4));
  ASSERT_TRUE(session.ok());
  auto universe = (*session)->UniverseFor(10);
  ASSERT_TRUE(universe.ok());
  auto store = (*session)->Guidance(10, SmallGrid());
  ASSERT_TRUE(store.ok());

  Session::RefreshStats stats;
  ASSERT_TRUE((*session)->Refresh(std::move(answers), &stats).ok());
  EXPECT_FALSE(stats.refreshed);
  EXPECT_TRUE(stats.hierarchy_reused);
  EXPECT_EQ(stats.universes_reused, 1);
  EXPECT_EQ(stats.universes_retired, 0);
  EXPECT_EQ(stats.stores_reused, 1);
  EXPECT_EQ(stats.stores_retired, 0);

  // The identical universe and store keep serving — same pointers.
  auto universe_after = (*session)->UniverseFor(10);
  ASSERT_TRUE(universe_after.ok());
  EXPECT_EQ(*universe_after, *universe);
  auto store_after = (*session)->Guidance(10, SmallGrid());
  ASSERT_TRUE(store_after.ok());
  EXPECT_EQ(*store_after, *store);

  Session::CacheStats cache = (*session)->cache_stats();
  EXPECT_EQ(cache.refreshes, 1);
  EXPECT_EQ(cache.refresh_full_reuses, 1);
  EXPECT_EQ(cache.retired_universes, 0);
  EXPECT_EQ(cache.retired_stores, 0);
}

TEST(SessionRefreshTest, ChangedContentRetiresCachesButKeepsPointersAlive) {
  auto session = Session::Create(testutil::MakeRandomAnswerSet(7, 80, 4, 4));
  ASSERT_TRUE(session.ok());
  auto universe = (*session)->UniverseFor(10);
  ASSERT_TRUE(universe.ok());
  auto store = (*session)->Guidance(10, SmallGrid());
  ASSERT_TRUE(store.ok());
  const int old_clusters = (*universe)->num_clusters();
  core::Solution old_solution = *(*session)->Retrieve(10, 1, 4);

  // Same domains, different elements: content changes, hierarchy doesn't.
  Session::RefreshStats stats;
  ASSERT_TRUE(
      (*session)
          ->Refresh(testutil::MakeRandomAnswerSet(8, 80, 4, 4), &stats)
          .ok());
  EXPECT_TRUE(stats.refreshed);
  EXPECT_TRUE(stats.hierarchy_reused);
  EXPECT_EQ(stats.universes_reused, 0);
  EXPECT_EQ(stats.universes_retired, 1);
  EXPECT_EQ(stats.stores_reused, 0);
  EXPECT_EQ(stats.stores_retired, 1);

  // Retired pointers stay dereferenceable (drained, not torn down).
  EXPECT_EQ((*universe)->num_clusters(), old_clusters);
  EXPECT_EQ((*store)->l(), 10);

  // The store cache was swept: Retrieve needs a fresh Guidance.
  auto orphaned = (*session)->Retrieve(10, 1, 4);
  EXPECT_EQ(orphaned.status().code(), StatusCode::kFailedPrecondition);

  // Rebuilt structures match a cold session over the new answer set.
  auto cold = Session::Create(testutil::MakeRandomAnswerSet(8, 80, 4, 4));
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE((*session)->Guidance(10, SmallGrid()).ok());
  ASSERT_TRUE((*cold)->Guidance(10, SmallGrid()).ok());
  core::Solution refreshed = *(*session)->Retrieve(10, 1, 4);
  core::Solution fresh = *(*cold)->Retrieve(10, 1, 4);
  EXPECT_EQ(refreshed.cluster_ids, fresh.cluster_ids);
  EXPECT_EQ(refreshed.average, fresh.average);
  EXPECT_NE(refreshed.average, old_solution.average);

  Session::CacheStats cache = (*session)->cache_stats();
  EXPECT_EQ(cache.refreshes, 1);
  EXPECT_EQ(cache.refresh_full_reuses, 0);
  EXPECT_EQ(cache.retired_universes, 1);
  EXPECT_EQ(cache.retired_stores, 1);
}

TEST(SessionRefreshTest, DomainChangeClearsHierarchyReuse) {
  auto session = Session::Create(testutil::MakeRandomAnswerSet(7, 60, 4, 4));
  ASSERT_TRUE(session.ok());
  Session::RefreshStats stats;
  // Different domain size => different value-name hierarchy.
  ASSERT_TRUE(
      (*session)
          ->Refresh(testutil::MakeRandomAnswerSet(7, 60, 4, 5), &stats)
          .ok());
  EXPECT_TRUE(stats.refreshed);
  EXPECT_FALSE(stats.hierarchy_reused);
}

// --- QueryService over the versioned catalog ----------------------------

TEST(ServiceRefreshTest, AppendTriggersTransparentRefreshOnNextUse) {
  QueryService service;
  ASSERT_TRUE(
      service.RegisterTable("ratings", testutil::MakeRatingsTable(11, 600))
          .ok());
  auto info = service.Query(kSql, "val");
  ASSERT_TRUE(info.ok());
  const int answers_before = info->num_answers;

  // A delta that lands in existing heavy groups: values move, the handle
  // goes stale, and the next use re-executes transparently.
  testutil::RandomTableSpec spec;
  auto version = service.AppendRows(
      "ratings", testutil::MakeRandomRows(spec, 99, 50));
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 2u);
  EXPECT_EQ(service.catalog_version(), 2u);

  auto again = service.Query(kSql, "val");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->handle, info->handle);  // same handle, refreshed data
  EXPECT_TRUE(again->stats.refreshed);
  EXPECT_FALSE(again->stats.cache_hit);
  EXPECT_GE(again->num_answers, answers_before);

  // Now fresh: the next use is a plain cache hit.
  auto third = service.Query(kSql, "val");
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->stats.cache_hit);
  EXPECT_FALSE(third->stats.refreshed);

  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.sessions, 1);
  EXPECT_EQ(stats.refreshes, 1);

  // Bit-identity with a cold service over the final state.
  QueryService cold;
  storage::Table final_table = testutil::MakeRatingsTable(11, 600);
  ASSERT_TRUE(
      final_table.AppendRows(testutil::MakeRandomRows(spec, 99, 50)).ok());
  ASSERT_TRUE(cold.RegisterTable("ratings", std::move(final_table)).ok());
  auto cold_info = cold.Query(kSql, "val");
  ASSERT_TRUE(cold_info.ok());
  EXPECT_EQ(cold_info->num_answers, again->num_answers);
  auto warm_explore = service.Explore(info->handle, {3, 8, 2});
  auto cold_explore = cold.Explore(cold_info->handle, {3, 8, 2});
  ASSERT_TRUE(warm_explore.ok());
  ASSERT_TRUE(cold_explore.ok());
  EXPECT_EQ(warm_explore->summary, cold_explore->summary);
  EXPECT_EQ(warm_explore->expanded, cold_explore->expanded);
}

TEST(ServiceRefreshTest, QuietDeltaProvablyUnchangedReusesAllCaches) {
  QueryService service;
  ASSERT_TRUE(
      service.RegisterTable("ratings", testutil::MakeRatingsTable(11, 600))
          .ok());
  auto info = service.Query(kSql, "val");
  ASSERT_TRUE(info.ok());
  auto store = service.Guidance(info->handle, 8, SmallGrid());
  ASSERT_TRUE(store.ok());

  // A row in a group that stays under the HAVING threshold: the catalog
  // version moves but the re-executed answer set is bit-identical, so the
  // refresh proves "unchanged" and every cache (incl. the grid) survives.
  auto version = service.AppendRows(
      "ratings",
      {{Value::Str("quietA"), Value::Str("quietB"), Value::Str("quietC"),
        Value::Str("g3v0"), Value::Real(1.0)}});
  ASSERT_TRUE(version.ok());

  service::RequestStats rs;
  auto store_after = service.Guidance(info->handle, 8, SmallGrid(), &rs);
  ASSERT_TRUE(store_after.ok());
  EXPECT_TRUE(rs.refreshed);       // the SQL did re-execute...
  EXPECT_EQ(*store_after, *store); // ...but the same grid keeps serving
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.refreshes, 1);
  EXPECT_EQ(stats.refresh_full_reuses, 1);
}

TEST(ServiceRefreshTest, OnlyDependentHandlesGoStale) {
  QueryService service;
  ASSERT_TRUE(
      service.RegisterTable("ratings", testutil::MakeRatingsTable(11, 500))
          .ok());
  ASSERT_TRUE(
      service.RegisterTable("other", testutil::MakeRatingsTable(12, 500))
          .ok());
  auto ratings = service.Query(kSql, "val");
  ASSERT_TRUE(ratings.ok());
  constexpr char kOtherSql[] =
      "SELECT g0, g1, avg(rating) AS val FROM other "
      "GROUP BY g0, g1 ORDER BY val DESC";
  auto other = service.Query(kOtherSql, "val");
  ASSERT_TRUE(other.ok());

  // Appending to `ratings` must not disturb the `other` handle.
  testutil::RandomTableSpec spec;
  ASSERT_TRUE(
      service.AppendRows("ratings", testutil::MakeRandomRows(spec, 5, 40))
          .ok());
  auto other_again = service.Query(kOtherSql, "val");
  ASSERT_TRUE(other_again.ok());
  EXPECT_TRUE(other_again->stats.cache_hit);
  EXPECT_FALSE(other_again->stats.refreshed);
  auto ratings_again = service.Query(kSql, "val");
  ASSERT_TRUE(ratings_again.ok());
  EXPECT_TRUE(ratings_again->stats.refreshed);
}

TEST(ServiceRefreshTest, ReplaceTableBreakingQueryReportsErrorThenRecovers) {
  QueryService service;
  ASSERT_TRUE(
      service.RegisterTable("ratings", testutil::MakeRatingsTable(11, 400))
          .ok());
  auto info = service.Query(kSql, "val");
  ASSERT_TRUE(info.ok());

  // Replace with a schema missing g2: the SQL no longer executes; every
  // use of the handle surfaces the error instead of stale data.
  testutil::RandomTableSpec narrow;
  narrow.domains = {6, 5};
  ASSERT_TRUE(
      service
          .ReplaceTable("ratings", testutil::MakeRandomTable(narrow, 3, 200))
          .ok());
  auto broken = service.Query(kSql, "val");
  EXPECT_FALSE(broken.ok());
  EXPECT_FALSE(service.Summarize(info->handle, {3, 8, 2}).ok());

  // Restoring a compatible table heals the handle on next use.
  ASSERT_TRUE(
      service.ReplaceTable("ratings", testutil::MakeRatingsTable(13, 400))
          .ok());
  auto healed = service.Query(kSql, "val");
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(healed->handle, info->handle);
  EXPECT_TRUE(healed->stats.refreshed);
  EXPECT_TRUE(service.Summarize(info->handle, {3, 8, 2}).ok());
}

}  // namespace
}  // namespace qagview
