// End-to-end pipelines across modules: CSV -> SQL -> summarization ->
// exploration -> precompute -> retrieval -> comparison visualization, and
// the generator-backed paths the examples exercise.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "baselines/decision_tree.h"
#include "core/explore.h"
#include "core/hybrid.h"
#include "core/precompute.h"
#include "core/session.h"
#include "datagen/movielens.h"
#include "datagen/store_sales.h"
#include "sql/executor.h"
#include "storage/csv.h"
#include "study/study.h"
#include "viz/param_grid.h"
#include "viz/sankey.h"

namespace qagview {
namespace {

TEST(IntegrationTest, CsvToSummaryPipeline) {
  // A small CSV of grouped answers straight into the summarizer.
  std::string csv =
      "region,segment,channel,val\n"
      "east,corp,web,9.1\n"
      "east,corp,store,8.9\n"
      "east,smb,web,8.5\n"
      "west,corp,web,8.2\n"
      "west,smb,store,4.1\n"
      "east,smb,store,3.9\n"
      "west,corp,store,3.2\n"
      "west,smb,web,2.8\n";
  auto table = storage::ReadCsvString(csv);
  ASSERT_TRUE(table.ok());
  auto session = core::Session::FromTable(*table, "val");
  ASSERT_TRUE(session.ok());
  core::Params params{2, 4, 1};
  auto solution = (*session)->Summarize(params);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  auto universe = (*session)->UniverseFor(4);
  ASSERT_TRUE(universe.ok());
  EXPECT_TRUE(
      core::CheckFeasible(**universe, solution->cluster_ids, params).ok());
  // The top-4 are all 'east' or corp/web patterns; summary average must
  // beat the trivial average by a wide margin on this polarized data.
  EXPECT_GT(solution->average, (*session)->answers()->TrivialAverage() + 1.0);
  std::string rendered = core::RenderSummary(**universe, *solution);
  EXPECT_NE(rendered.find("avg val"), std::string::npos);
}

TEST(IntegrationTest, MovieLensSqlToStoreToSankey) {
  datagen::MovieLensOptions gen;
  gen.num_ratings = 20000;
  storage::Table ratings = datagen::MovieLensGenerator(gen).GenerateRatingTable();
  sql::Catalog catalog;
  catalog.Register("RatingTable", &ratings);
  auto result = sql::ExecuteSql(
      "SELECT agegrp, gender, occupation, avg(rating) AS val "
      "FROM RatingTable GROUP BY agegrp, gender, occupation "
      "HAVING count(*) > 10 ORDER BY val DESC",
      catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->num_rows(), 30);

  auto answers = core::AnswerSet::FromTable(*result, "val");
  ASSERT_TRUE(answers.ok());
  auto universe = core::ClusterUniverse::Build(&*answers, 20);
  ASSERT_TRUE(universe.ok());

  core::PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 10;
  options.d_values = {1, 2};
  auto store = core::Precompute::Run(*universe, 20, options);
  ASSERT_TRUE(store.ok());

  auto grid = viz::BuildParamGrid(*store, 2, 10);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->d_values.size(), 2u);

  auto old_solution = store->Retrieve(2, 8);
  auto new_solution = store->Retrieve(2, 4);
  ASSERT_TRUE(old_solution.ok());
  ASSERT_TRUE(new_solution.ok());
  viz::SankeyDiagram diagram =
      viz::BuildSankey(*universe, *old_solution, *new_solution);
  std::vector<int> left = viz::IdentityPositions(diagram.num_left());
  auto optimized = viz::OptimizeRightPositions(diagram, left);
  ASSERT_TRUE(optimized.ok());
  EXPECT_LE(
      viz::PlacementDistance(diagram, left, *optimized),
      viz::PlacementDistance(diagram, left,
                             viz::IdentityPositions(diagram.num_right())) +
          1e-9);
}

TEST(IntegrationTest, StoreSalesSqlToSummary) {
  datagen::StoreSalesOptions gen;
  gen.num_rows = 30000;
  storage::Table sales = datagen::StoreSalesGenerator(gen).Generate();
  sql::Catalog catalog;
  catalog.Register("store_sales", &sales);
  auto result = sql::ExecuteSql(
      "SELECT store_state, item_category, customer_gender, channel, "
      "avg(net_profit) AS val FROM store_sales "
      "GROUP BY store_state, item_category, customer_gender, channel "
      "HAVING count(*) > 5 ORDER BY val DESC",
      catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto answers = core::AnswerSet::FromTable(*result, "val");
  ASSERT_TRUE(answers.ok());
  int top_l = std::min(30, answers->size());
  auto universe = core::ClusterUniverse::Build(&*answers, top_l);
  ASSERT_TRUE(universe.ok());
  core::Params params{5, top_l, 2};
  auto solution = core::Hybrid::Run(*universe, params);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(
      core::CheckFeasible(*universe, solution->cluster_ids, params).ok());
  // Net profit can be negative; the solution average still dominates the
  // trivial baseline.
  EXPECT_GE(solution->average, answers->TrivialAverage() - 1e9);
}

TEST(IntegrationTest, StudyPipelineOverSqlAnswers) {
  datagen::MovieLensOptions gen;
  gen.num_ratings = 30000;
  storage::Table ratings = datagen::MovieLensGenerator(gen).GenerateRatingTable();
  sql::Catalog catalog;
  catalog.Register("r", &ratings);
  auto result = sql::ExecuteSql(
      "SELECT agegrp, gender, occupation, avg(rating) AS val FROM r "
      "GROUP BY agegrp, gender, occupation HAVING count(*) > 20 "
      "ORDER BY val DESC",
      catalog);
  ASSERT_TRUE(result.ok());
  auto answers = core::AnswerSet::FromTable(*result, "val");
  ASSERT_TRUE(answers.ok());
  if (answers->size() < 40) GTEST_SKIP() << "answer set too small";

  int top_l = 20;
  auto universe = core::ClusterUniverse::Build(&*answers, top_l);
  ASSERT_TRUE(universe.ok());
  auto solution = core::Hybrid::Run(*universe, {6, top_l, 1});
  ASSERT_TRUE(solution.ok());

  study::StudyConfig config;
  config.num_subjects = 4;
  study::UserStudySimulator sim(&*answers, config);
  auto condition = sim.RunCondition(
      study::PatternsFromSolution(*universe, *solution), top_l, "ours");
  EXPECT_GT(condition.patterns_members.t_accuracy.mean, 0.6);
}

TEST(IntegrationTest, PersistedGuidanceSurvivesTheFullPipeline) {
  // generator -> SQL -> session A: precompute + save -> session B over the
  // same query: load + retrieve; B must match A without precomputing.
  datagen::MovieLensOptions gen;
  gen.num_ratings = 30000;
  storage::Table ratings =
      datagen::MovieLensGenerator(gen).GenerateRatingTable();
  sql::Catalog catalog;
  catalog.Register("RatingTable", &ratings);
  auto result = sql::ExecuteSql(
      "SELECT agegrp, gender, occupation, avg(rating) AS val "
      "FROM RatingTable GROUP BY agegrp, gender, occupation "
      "HAVING count(*) > 20 ORDER BY val DESC",
      catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto a = core::Session::FromTable(*result, "val");
  ASSERT_TRUE(a.ok());
  int top_l = std::min(15, (*a)->answers()->size());
  ASSERT_GE(top_l, 5);
  core::PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 8;
  options.d_values = {1, 2};
  ASSERT_TRUE((*a)->Guidance(top_l, options).ok());
  std::string path = testing::TempDir() + "/qagview_integration_grid.txt";
  ASSERT_TRUE((*a)->SaveGuidance(top_l, path).ok());

  auto b = core::Session::FromTable(*result, "val");
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*b)->LoadGuidance(top_l, path).ok());
  for (int d : {1, 2}) {
    for (int k = 4; k <= 8; k += 2) {
      auto original = (*a)->Retrieve(top_l, d, k);
      auto reloaded = (*b)->Retrieve(top_l, d, k);
      ASSERT_TRUE(original.ok());
      ASSERT_TRUE(reloaded.ok());
      EXPECT_NEAR(original->average, reloaded->average, 1e-12);
      EXPECT_EQ(original->covered_count, reloaded->covered_count);
    }
  }
  // The reloaded grid also feeds the Figure-2 visualization layer.
  auto store = (*b)->Guidance(top_l, options);  // cache hit, no recompute
  ASSERT_TRUE(store.ok());
  auto grid = viz::BuildParamGrid(**store, 2, 8);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->d_values.size(), 2u);
  std::remove(path.c_str());
}

TEST(IntegrationTest, TwoLayerViewCoversEveryTopRank) {
  // Whatever the algorithm picks, the expanded second layer must surface
  // every top-L rank in at least one cluster's member list (the "original
  // top tuples are not lost" guarantee of §1).
  datagen::MovieLensOptions gen;
  gen.num_ratings = 30000;
  storage::Table ratings =
      datagen::MovieLensGenerator(gen).GenerateRatingTable();
  sql::Catalog catalog;
  catalog.Register("RatingTable", &ratings);
  auto result = sql::ExecuteSql(
      "SELECT hdec, agegrp, gender, avg(rating) AS val FROM RatingTable "
      "GROUP BY hdec, agegrp, gender HAVING count(*) > 20 "
      "ORDER BY val DESC",
      catalog);
  ASSERT_TRUE(result.ok());
  auto answers = core::AnswerSet::FromTable(*result, "val");
  ASSERT_TRUE(answers.ok());
  int top_l = std::min(12, answers->size());
  ASSERT_GE(top_l, 6);
  auto universe = core::ClusterUniverse::Build(&*answers, top_l);
  ASSERT_TRUE(universe.ok());
  core::Params params{4, top_l, 2};
  auto solution = core::Hybrid::Run(*universe, params);
  ASSERT_TRUE(solution.ok());

  core::TwoLayerView view = core::BuildTwoLayerView(*universe, *solution);
  std::vector<char> covered(static_cast<size_t>(top_l) + 1, 0);
  for (const core::ClusterView& cv : view.clusters) {
    for (int rank : cv.member_ranks) {
      if (rank <= top_l) covered[static_cast<size_t>(rank)] = 1;
    }
  }
  for (int rank = 1; rank <= top_l; ++rank) {
    EXPECT_TRUE(covered[static_cast<size_t>(rank)]) << "rank " << rank;
  }
}

}  // namespace
}  // namespace qagview
