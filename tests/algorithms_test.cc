#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/bottom_up.h"
#include "core/brute_force.h"
#include "core/fixed_order.h"
#include "core/greedy_state.h"
#include "core/hybrid.h"
#include "core/kmeans.h"
#include "test_util.h"

namespace qagview::core {
namespace {

// The universe holds a pointer to the answer set, so keep the set at a
// stable address.
struct Instance {
  std::unique_ptr<AnswerSet> set;
  ClusterUniverse u;
  const AnswerSet& s() const { return *set; }
};

Instance MakeInstance(uint64_t seed, int n, int m, int domain, int top_l) {
  auto set = std::make_unique<AnswerSet>(
      testutil::MakeRandomAnswerSet(seed, n, m, domain));
  auto u = ClusterUniverse::Build(set.get(), top_l);
  QAG_CHECK(u.ok()) << u.status().ToString();
  return Instance{std::move(set), std::move(u).value()};
}

TEST(GreedyStateTest, CoverageAndAverageTracking) {
  AnswerSet s = testutil::MakeMovieExample();
  auto u = ClusterUniverse::Build(&s, 4);
  ASSERT_TRUE(u.ok());
  GreedyState state(&*u, /*use_delta_judgment=*/true);
  EXPECT_EQ(state.size(), 0);
  EXPECT_DOUBLE_EQ(state.Average(), 0.0);

  state.AddCluster(u->singleton_id(0));
  EXPECT_EQ(state.size(), 1);
  EXPECT_EQ(state.covered_count(), 1);
  EXPECT_NEAR(state.Average(), s.value(0), 1e-9);
  EXPECT_TRUE(state.ElementCovered(0));
  EXPECT_FALSE(state.ElementCovered(1));

  // Tentative average of adding the top-2 singleton.
  double tentative = state.TentativeAverage(u->singleton_id(1));
  EXPECT_NEAR(tentative, (s.value(0) + s.value(1)) / 2.0, 1e-9);
  // Tentative does not mutate.
  EXPECT_EQ(state.covered_count(), 1);

  state.AddCluster(u->singleton_id(1));
  EXPECT_NEAR(state.Average(), (s.value(0) + s.value(1)) / 2.0, 1e-9);
}

TEST(GreedyStateTest, SubsumedClustersAreRemoved) {
  AnswerSet s = testutil::MakeMovieExample();
  auto u = ClusterUniverse::Build(&s, 4);
  ASSERT_TRUE(u.ok());
  GreedyState state(&*u, true);
  state.AddCluster(u->singleton_id(0));
  state.AddCluster(u->singleton_id(1));
  int lca = u->LcaId(u->singleton_id(0), u->singleton_id(1));
  state.AddCluster(lca);
  EXPECT_EQ(state.size(), 1);
  EXPECT_EQ(state.clusters()[0], lca);
}

// Delta judgment must be externally invisible: the same call sequence with
// and without it yields identical tentative averages.
class DeltaEquivalenceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DeltaEquivalenceTest, TentativeAveragesMatchNaive) {
  Instance inst = MakeInstance(GetParam(), 80, 5, 3, 16);
  GreedyState with_delta(&inst.u, true);
  GreedyState without_delta(&inst.u, false);

  Rng rng(GetParam() ^ 0xDEADBEEF);
  // A fixed candidate pool evaluated every round — the access pattern the
  // greedy algorithms produce (all candidate LCAs each merge round).
  std::vector<int> pool;
  for (int i = 0; i < 25; ++i) {
    pool.push_back(static_cast<int>(rng.Index(inst.u.num_clusters())));
  }
  for (int round = 0; round < 10; ++round) {
    for (int id : pool) {
      double a = with_delta.TentativeAverage(id);
      double b = without_delta.TentativeAverage(id);
      ASSERT_NEAR(a, b, 1e-9) << "round " << round << " cluster " << id;
    }
    // Commit a random singleton (always a legal antichain add when not
    // already covered).
    int e = static_cast<int>(rng.Index(inst.u.top_l()));
    if (!with_delta.ElementCovered(e)) {
      with_delta.AddCluster(inst.u.singleton_id(e));
      without_delta.AddCluster(inst.u.singleton_id(e));
    }
    ASSERT_NEAR(with_delta.Average(), without_delta.Average(), 1e-9);
  }
  // Delta judgment must do less element-comparison work.
  EXPECT_LT(with_delta.comparison_count(),
            without_delta.comparison_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaEquivalenceTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// --- Feasibility invariants across algorithms and parameters. ---

struct AlgoCase {
  const char* name;
  int k, l, d;
};

class FeasibilityTest
    : public testing::TestWithParam<std::tuple<uint64_t, AlgoCase>> {};

TEST_P(FeasibilityTest, AllAlgorithmsProduceFeasibleSolutions) {
  auto [seed, c] = GetParam();
  Instance inst = MakeInstance(seed, 70, 5, 3, 20);
  Params params{c.k, c.l, c.d};

  auto bu = BottomUp::Run(inst.u, params);
  ASSERT_TRUE(bu.ok()) << bu.status().ToString();
  EXPECT_TRUE(CheckFeasible(inst.u, bu->cluster_ids, params).ok());

  auto fo = FixedOrder::Run(inst.u, params);
  ASSERT_TRUE(fo.ok()) << fo.status().ToString();
  EXPECT_TRUE(CheckFeasible(inst.u, fo->cluster_ids, params).ok());

  auto hy = Hybrid::Run(inst.u, params);
  ASSERT_TRUE(hy.ok()) << hy.status().ToString();
  EXPECT_TRUE(CheckFeasible(inst.u, hy->cluster_ids, params).ok());

  // Values are sane: no worse than the trivial lower bound, no better than
  // the max element value.
  double lower = inst.s().TrivialAverage();
  double upper = inst.s().value(0);
  for (const Solution* sol : {&*bu, &*fo, &*hy}) {
    EXPECT_GE(sol->average, lower - 1e-9);
    EXPECT_LE(sol->average, upper + 1e-9);
    EXPECT_GT(sol->covered_count, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FeasibilityTest,
    testing::Combine(testing::Values(1u, 2u, 3u),
                     testing::Values(AlgoCase{"easy", 8, 6, 1},
                                     AlgoCase{"tight_k", 2, 10, 2},
                                     AlgoCase{"diverse", 4, 8, 4},
                                     AlgoCase{"d0", 5, 5, 0},
                                     AlgoCase{"cover_all", 6, 20, 2},
                                     AlgoCase{"max_d", 3, 10, 5})));

TEST(BottomUpTest, DZeroKAtLeastLReturnsTopKSingletons) {
  // §4.3 case (1): with D=0 and k >= L the top-L singletons are optimal and
  // Bottom-Up performs no merges.
  Instance inst = MakeInstance(21, 60, 4, 3, 10);
  Params params{12, 10, 0};
  auto sol = BottomUp::Run(inst.u, params);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->size(), 10);
  EXPECT_NEAR(sol->average, inst.s().TopAverage(10), 1e-9);
}

TEST(BottomUpTest, VariantsAreFeasible) {
  Instance inst = MakeInstance(31, 60, 5, 3, 12);
  Params params{4, 12, 3};
  BottomUpOptions level_start;
  level_start.start = BottomUpOptions::Start::kLevelDMinus1;
  auto a = BottomUp::Run(inst.u, params, level_start);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(CheckFeasible(inst.u, a->cluster_ids, params).ok());

  BottomUpOptions lca_rule;
  lca_rule.merge_rule = BottomUpOptions::MergeRule::kLcaAverage;
  auto b = BottomUp::Run(inst.u, params, lca_rule);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(CheckFeasible(inst.u, b->cluster_ids, params).ok());
}

TEST(GreedyStateTest, MinTracking) {
  AnswerSet s = testutil::MakeMovieExample();
  auto u = ClusterUniverse::Build(&s, 4);
  ASSERT_TRUE(u.ok());
  GreedyState state(&*u, true);
  EXPECT_TRUE(std::isinf(state.Min()));

  state.AddCluster(u->singleton_id(0));
  EXPECT_NEAR(state.Min(), s.value(0), 1e-12);

  // Tentative min of adding singleton 2 is the lower of the two values and
  // does not mutate the state.
  double tentative = state.TentativeMin(u->singleton_id(2));
  EXPECT_NEAR(tentative, s.value(2), 1e-12);
  EXPECT_NEAR(state.Min(), s.value(0), 1e-12);

  state.AddCluster(u->singleton_id(2));
  EXPECT_NEAR(state.Min(), s.value(2), 1e-12);

  // A cluster whose members are all above the current min leaves it alone.
  EXPECT_NEAR(state.TentativeMin(u->singleton_id(1)), s.value(2), 1e-12);
}

// A hand-built instance where the Max-Avg and Max-Min merge rules provably
// disagree: merging the top two elements into (a0,*) drags in high-valued
// extras plus one 6.0 element (best average, worst floor), while merging
// via (*,b0) picks up a single 6.5 element (lower average, higher floor).
TEST(BottomUpTest, MaxMinRuleGuardsTheFloorWhereMaxAvgDoesNot) {
  std::vector<std::string> attrs = {"A", "B"};
  std::vector<std::vector<std::string>> names = {
      {"a0", "a1", "a2"},
      {"b0", "b1", "b2", "b3", "b4", "b5"},
  };
  std::vector<Element> elements = {
      {{0, 0}, 10.0},  // top 1
      {{0, 1}, 9.96},  // top 2
      {{1, 0}, 9.93},  // top 3
      {{0, 2}, 9.9},   // (a0,*) extra
      {{0, 3}, 9.8},   // (a0,*) extra
      {{0, 4}, 9.7},   // (a0,*) extra
      {{2, 0}, 6.5},   // (*,b0) extra
      {{0, 5}, 6.0},   // (a0,*) extra — the low floor
  };
  auto s = AnswerSet::FromRaw(std::move(attrs), std::move(names),
                              std::move(elements));
  ASSERT_TRUE(s.ok());
  auto u = ClusterUniverse::Build(&*s, 3);
  ASSERT_TRUE(u.ok());
  Params params{2, 3, 0};

  auto by_avg = BottomUp::Run(*u, params);
  ASSERT_TRUE(by_avg.ok());
  BottomUpOptions maxmin;
  maxmin.merge_rule = BottomUpOptions::MergeRule::kMaxMin;
  auto by_min = BottomUp::Run(*u, params, maxmin);
  ASSERT_TRUE(by_min.ok());

  EXPECT_NEAR(by_avg->covered_min, 6.0, 1e-9);
  EXPECT_NEAR(by_min->covered_min, 6.5, 1e-9);
  EXPECT_GT(by_avg->average, by_min->average);
  EXPECT_TRUE(CheckFeasible(*u, by_avg->cluster_ids, params).ok());
  EXPECT_TRUE(CheckFeasible(*u, by_min->cluster_ids, params).ok());
}

// Max-Min stays feasible and self-consistent across random instances, for
// both Bottom-Up and the Hybrid pass-through.
class MaxMinRuleTest : public testing::TestWithParam<uint64_t> {};

TEST_P(MaxMinRuleTest, FeasibleAndMinIsConsistent) {
  Instance inst = MakeInstance(GetParam(), 70, 5, 3, 15);
  Params params{4, 15, 2};
  BottomUpOptions options;
  options.merge_rule = BottomUpOptions::MergeRule::kMaxMin;
  auto bu = BottomUp::Run(inst.u, params, options);
  ASSERT_TRUE(bu.ok()) << bu.status().ToString();
  EXPECT_TRUE(CheckFeasible(inst.u, bu->cluster_ids, params).ok());

  HybridOptions hybrid;
  hybrid.merge_rule = BottomUpOptions::MergeRule::kMaxMin;
  auto hy = Hybrid::Run(inst.u, params, hybrid);
  ASSERT_TRUE(hy.ok()) << hy.status().ToString();
  EXPECT_TRUE(CheckFeasible(inst.u, hy->cluster_ids, params).ok());

  // covered_min matches a naive recomputation over the covered union.
  for (const Solution* sol : {&*bu, &*hy}) {
    double naive = std::numeric_limits<double>::infinity();
    std::vector<char> seen(static_cast<size_t>(inst.s().size()), 0);
    for (int id : sol->cluster_ids) {
      for (int32_t e : inst.u.covered(id)) {
        if (!seen[static_cast<size_t>(e)]) {
          seen[static_cast<size_t>(e)] = 1;
          naive = std::min(naive, inst.s().value(e));
        }
      }
    }
    EXPECT_NEAR(sol->covered_min, naive, 1e-12);
    // The floor can never exceed the average.
    EXPECT_LE(sol->covered_min, sol->average + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinRuleTest,
                         testing::Values(101u, 102u, 103u, 104u));

TEST(BottomUpTest, DeltaJudgmentDoesNotChangeResult) {
  Instance inst = MakeInstance(41, 80, 5, 3, 16);
  Params params{5, 16, 2};
  BottomUpOptions with;
  with.use_delta_judgment = true;
  BottomUpOptions without;
  without.use_delta_judgment = false;
  auto a = BottomUp::Run(inst.u, params, with);
  auto b = BottomUp::Run(inst.u, params, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cluster_ids, b->cluster_ids);
  EXPECT_NEAR(a->average, b->average, 1e-12);
}

TEST(FixedOrderTest, VariantsAreFeasible) {
  Instance inst = MakeInstance(51, 70, 5, 3, 14);
  Params params{4, 14, 2};
  for (auto seeding : {FixedOrderOptions::Seeding::kRandom,
                       FixedOrderOptions::Seeding::kKMeans}) {
    FixedOrderOptions options;
    options.seeding = seeding;
    options.seed = 99;
    auto sol = FixedOrder::Run(inst.u, params, options);
    ASSERT_TRUE(sol.ok()) << sol.status().ToString();
    EXPECT_TRUE(CheckFeasible(inst.u, sol->cluster_ids, params).ok());
  }
}

TEST(FixedOrderTest, CoversEachTopElementAsProcessed) {
  Instance inst = MakeInstance(61, 60, 4, 4, 15);
  Params params{3, 15, 2};
  auto sol = FixedOrder::Run(inst.u, params);
  ASSERT_TRUE(sol.ok());
  // All top-15 covered despite only 3 clusters.
  EXPECT_TRUE(CheckFeasible(inst.u, sol->cluster_ids, params).ok());
  EXPECT_LE(sol->size(), 3);
}

TEST(HybridTest, RejectsBadC) {
  Instance inst = MakeInstance(71, 40, 4, 3, 8);
  Params params{3, 8, 2};
  HybridOptions options;
  options.c = 1;
  EXPECT_FALSE(Hybrid::Run(inst.u, params, options).ok());
}

TEST(ParamsTest, Validation) {
  AnswerSet s = testutil::MakeMovieExample();
  EXPECT_TRUE(ValidateParams(s, {4, 8, 2}).ok());
  EXPECT_FALSE(ValidateParams(s, {0, 8, 2}).ok());
  EXPECT_FALSE(ValidateParams(s, {4, 0, 2}).ok());
  EXPECT_FALSE(ValidateParams(s, {4, 100, 2}).ok());
  EXPECT_FALSE(ValidateParams(s, {4, 8, -1}).ok());
  EXPECT_FALSE(ValidateParams(s, {4, 8, 5}).ok());  // D > m
}

TEST(CheckFeasibleTest, DetectsEachViolation) {
  AnswerSet s = testutil::MakeMovieExample();
  auto u = ClusterUniverse::Build(&s, 4);
  ASSERT_TRUE(u.ok());
  int s0 = u->singleton_id(0);
  int s1 = u->singleton_id(1);
  int trivial = u->FindId(Cluster::Trivial(4));

  // Size violation.
  EXPECT_EQ(
      CheckFeasible(*u, {s0, s1}, {1, 1, 0}).code(),
      StatusCode::kFailedPrecondition);
  // Coverage violation.
  EXPECT_EQ(CheckFeasible(*u, {s0}, {4, 4, 0}).code(),
            StatusCode::kFailedPrecondition);
  // Antichain violation (trivial covers the singleton).
  EXPECT_EQ(CheckFeasible(*u, {s0, trivial}, {4, 1, 0}).code(),
            StatusCode::kFailedPrecondition);
  // Distance violation: two top elements differing in < 4 attributes.
  int d = Distance(u->cluster(s0), u->cluster(s1));
  EXPECT_EQ(CheckFeasible(*u, {s0, s1}, {4, 2, d + 1}).code(),
            StatusCode::kFailedPrecondition);
  // A valid solution passes.
  EXPECT_TRUE(CheckFeasible(*u, {trivial}, {4, 4, 0}).ok());
}

// --- Brute force: exactness on small instances. ---

class BruteForceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(BruteForceTest, HeuristicsNeverBeatBruteForce) {
  Instance inst = MakeInstance(GetParam(), 40, 4, 3, 5);
  for (int k : {2, 3}) {
    for (int d : {2, 3}) {
      Params params{k, 5, d};
      auto bf = BruteForce::Run(inst.u, params);
      ASSERT_TRUE(bf.ok()) << bf.status().ToString();
      ASSERT_TRUE(bf->exact);
      EXPECT_TRUE(
          CheckFeasible(inst.u, bf->solution.cluster_ids, params).ok());
      for (auto run : {&BottomUp::Run}) {
        auto heuristic = run(inst.u, params, BottomUpOptions());
        ASSERT_TRUE(heuristic.ok());
        EXPECT_LE(heuristic->average, bf->solution.average + 1e-9)
            << "heuristic beat 'optimal' at k=" << k << " D=" << d;
      }
      auto fo = FixedOrder::Run(inst.u, params);
      ASSERT_TRUE(fo.ok());
      EXPECT_LE(fo->average, bf->solution.average + 1e-9);
      auto hy = Hybrid::Run(inst.u, params);
      ASSERT_TRUE(hy.ok());
      EXPECT_LE(hy->average, bf->solution.average + 1e-9);
      // And brute force is at least the trivial lower bound.
      EXPECT_GE(bf->solution.average, inst.s().TrivialAverage() - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BruteForceTest,
                         testing::Values(11u, 22u, 33u, 44u));

TEST(BruteForceTest2, TimeBudgetAbortStillFeasible) {
  Instance inst = MakeInstance(77, 60, 5, 3, 10);
  Params params{4, 10, 2};
  BruteForceOptions options;
  options.time_budget_seconds = 0.0;  // abort immediately
  auto bf = BruteForce::Run(inst.u, params, options);
  ASSERT_TRUE(bf.ok());
  EXPECT_FALSE(bf->exact);
  EXPECT_TRUE(CheckFeasible(inst.u, bf->solution.cluster_ids, params).ok());
}

TEST(BruteForceTest2, RejectsLargeL) {
  Instance inst = MakeInstance(78, 80, 4, 3, 70);
  Params params{4, 70, 2};
  EXPECT_FALSE(BruteForce::Run(inst.u, params).ok());
}

// The running example (Figure 1, Example 1.2): k=4, L=8, D=2 on the
// Figure-1a-style fixture. Any feasible solution covers all top-8 elements,
// and covering anything else can only dilute the average, so
// TopAverage(8) is a provable optimum — which Bottom-Up, Hybrid, and brute
// force all attain with zero redundant coverage (the paper's Figure 1b/1c
// also covers exactly the top 8).
TEST(RunningExampleTest, GreedyHeuristicsAttainTheProvableOptimum) {
  AnswerSet s = testutil::MakeMovieExample();
  auto u = ClusterUniverse::Build(&s, 8);
  ASSERT_TRUE(u.ok());
  Params params{4, 8, 2};
  double optimum = s.TopAverage(8);

  auto bf = BruteForce::Run(*u, params);
  ASSERT_TRUE(bf.ok());
  ASSERT_TRUE(bf->exact);
  EXPECT_NEAR(bf->solution.average, optimum, 1e-9);

  for (auto solution : {BottomUp::Run(*u, params), Hybrid::Run(*u, params)}) {
    ASSERT_TRUE(solution.ok());
    EXPECT_NEAR(solution->average, optimum, 1e-9);
    EXPECT_EQ(solution->covered_count, 8);  // no redundant tuples
    EXPECT_LE(solution->size(), 4);
    EXPECT_TRUE(CheckFeasible(*u, solution->cluster_ids, params).ok());
  }

  // Fixed-Order is the weaker heuristic: still feasible, possibly below the
  // optimum, never above it.
  auto fo = FixedOrder::Run(*u, params);
  ASSERT_TRUE(fo.ok());
  EXPECT_TRUE(CheckFeasible(*u, fo->cluster_ids, params).ok());
  EXPECT_LE(fo->average, optimum + 1e-9);
  EXPECT_GE(fo->average, s.TrivialAverage());
}

// §4.1: "the optimal solution when D = 0 and k >= L is obtained by
// selecting top-k original elements" — verified against brute force across
// random instances.
class DZeroOptimalityTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DZeroOptimalityTest, TopLSingletonsAreOptimal) {
  Instance inst = MakeInstance(GetParam(), 40, 4, 3, 5);
  Params params{6, 5, 0};
  auto bf = BruteForce::Run(inst.u, params);
  ASSERT_TRUE(bf.ok());
  ASSERT_TRUE(bf->exact);
  EXPECT_NEAR(bf->solution.average, inst.s().TopAverage(5), 1e-9);
  auto bu = BottomUp::Run(inst.u, params);
  ASSERT_TRUE(bu.ok());
  EXPECT_NEAR(bu->average, inst.s().TopAverage(5), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DZeroOptimalityTest,
                         testing::Values(201u, 202u, 203u));

// --- k-modes. ---

TEST(KModesTest, PartitionsPoints) {
  std::vector<std::vector<int32_t>> points = {
      {0, 0, 0}, {0, 0, 1}, {5, 5, 5}, {5, 5, 4}, {0, 1, 0}, {5, 4, 5},
  };
  KModesResult result = KModes(points, 2, /*seed=*/7);
  ASSERT_EQ(result.assignment.size(), points.size());
  // Points 0,1,4 (low block) should share a cluster; 2,3,5 the other.
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[0], result.assignment[4]);
  EXPECT_EQ(result.assignment[2], result.assignment[3]);
  EXPECT_EQ(result.assignment[2], result.assignment[5]);
  EXPECT_NE(result.assignment[0], result.assignment[2]);
}

TEST(KModesTest, SeedPatternsCoverTheirMembers) {
  AnswerSet s = testutil::MakeRandomAnswerSet(13, 50, 4, 3);
  auto patterns = KModesSeedPatterns(s, 12, 3, 5);
  EXPECT_FALSE(patterns.empty());
  EXPECT_LE(patterns.size(), 3u);
  // Every top-12 element is covered by at least one seed pattern.
  for (int i = 0; i < 12; ++i) {
    bool covered = false;
    for (const auto& p : patterns) {
      covered = covered || Cluster(p).CoversElement(s.element(i).attrs);
    }
    EXPECT_TRUE(covered) << "top element " << i;
  }
}

}  // namespace
}  // namespace qagview::core
