#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "viz/height_placement.h"
#include "viz/sankey.h"

namespace qagview::viz {
namespace {

HeightPlacementProblem MakeProblem(std::vector<double> left,
                                   std::vector<double> right,
                                   std::vector<std::vector<double>> overlap) {
  HeightPlacementProblem p;
  p.left_heights = std::move(left);
  p.right_heights = std::move(right);
  p.overlap = std::move(overlap);
  return p;
}

std::vector<int> Identity(int n) {
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

HeightPlacementProblem MakeRandomProblem(uint64_t seed, int nl, int nr) {
  Rng rng(seed);
  HeightPlacementProblem p;
  for (int i = 0; i < nl; ++i) {
    p.left_heights.push_back(1.0 + rng.Index(9));
  }
  for (int j = 0; j < nr; ++j) {
    p.right_heights.push_back(1.0 + rng.Index(9));
  }
  p.overlap.assign(static_cast<size_t>(nl),
                   std::vector<double>(static_cast<size_t>(nr), 0.0));
  for (int i = 0; i < nl; ++i) {
    for (int j = 0; j < nr; ++j) {
      if (rng.Bernoulli(0.5)) {
        p.overlap[static_cast<size_t>(i)][static_cast<size_t>(j)] =
            static_cast<double>(rng.Index(20));
      }
    }
  }
  return p;
}

TEST(StackedCentersTest, StacksTopToBottom) {
  std::vector<double> centers = StackedCenters({2.0, 4.0, 6.0}, {0, 1, 2});
  EXPECT_DOUBLE_EQ(centers[0], 1.0);
  EXPECT_DOUBLE_EQ(centers[1], 4.0);
  EXPECT_DOUBLE_EQ(centers[2], 9.0);
}

TEST(StackedCentersTest, OrderControlsOffsets) {
  // Box 2 first (center 3), then box 0 (center 7), then box 1 (center 10).
  std::vector<double> centers = StackedCenters({2.0, 4.0, 6.0}, {2, 0, 1});
  EXPECT_DOUBLE_EQ(centers[2], 3.0);
  EXPECT_DOUBLE_EQ(centers[0], 7.0);
  EXPECT_DOUBLE_EQ(centers[1], 10.0);
}

TEST(HeightPlacementCostTest, ZeroOverlapIsFree) {
  HeightPlacementProblem p =
      MakeProblem({1, 2}, {3, 4}, {{0, 0}, {0, 0}});
  auto cost = HeightPlacementCost(p, {0, 1}, {1, 0});
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(*cost, 0.0);
}

TEST(HeightPlacementCostTest, HandComputedCase) {
  // Left: box0 h=2 (center 1), box1 h=2 (center 3).
  // Right identity: box0 h=4 (center 2), box1 h=2 (center 5).
  // overlap: (0,0)=3, (1,1)=2 -> 3*|1-2| + 2*|3-5| = 7.
  HeightPlacementProblem p =
      MakeProblem({2, 2}, {4, 2}, {{3, 0}, {0, 2}});
  auto cost = HeightPlacementCost(p, {0, 1}, {0, 1});
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(*cost, 7.0);
  // Swapped right order: box1 center 1, box0 center 4 ->
  // 3*|1-4| + 2*|3-1| = 13.
  auto swapped = HeightPlacementCost(p, {0, 1}, {1, 0});
  ASSERT_TRUE(swapped.ok());
  EXPECT_DOUBLE_EQ(*swapped, 13.0);
}

TEST(HeightPlacementCostTest, RejectsMalformedInputs) {
  HeightPlacementProblem p =
      MakeProblem({2, 2}, {4, 2}, {{3, 0}, {0, 2}});
  EXPECT_FALSE(HeightPlacementCost(p, {0}, {0, 1}).ok());      // short order
  EXPECT_FALSE(HeightPlacementCost(p, {0, 0}, {0, 1}).ok());   // repeat
  EXPECT_FALSE(HeightPlacementCost(p, {0, 2}, {0, 1}).ok());   // out of range
  HeightPlacementProblem bad_height =
      MakeProblem({2, 0}, {4, 2}, {{3, 0}, {0, 2}});
  EXPECT_FALSE(HeightPlacementCost(bad_height, {0, 1}, {0, 1}).ok());
  HeightPlacementProblem ragged =
      MakeProblem({2, 2}, {4, 2}, {{3, 0, 1}, {0, 2}});
  EXPECT_FALSE(HeightPlacementCost(ragged, {0, 1}, {0, 1}).ok());
  HeightPlacementProblem negative =
      MakeProblem({2, 2}, {4, 2}, {{3, 0}, {0, -2}});
  EXPECT_FALSE(HeightPlacementCost(negative, {0, 1}, {0, 1}).ok());
}

TEST(OptimizeHeightPlacementTest, RecoversAlignedStructure) {
  // Right box j overlaps only left box j and all heights match: identity is
  // the unique zero-cost placement.
  HeightPlacementProblem p = MakeProblem(
      {2, 4, 6}, {2, 4, 6},
      {{5, 0, 0}, {0, 5, 0}, {0, 0, 5}});
  auto order = OptimizeHeightPlacement(p, Identity(3));
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, Identity(3));
  auto cost = HeightPlacementCost(p, Identity(3), *order);
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(*cost, 0.0);
}

TEST(OptimizeHeightPlacementTest, UndoesAReversal) {
  // Right boxes anchored to left boxes in reverse index order; the optimizer
  // must reverse them back into alignment.
  HeightPlacementProblem p = MakeProblem(
      {3, 3, 3}, {3, 3, 3},
      {{0, 0, 7}, {0, 7, 0}, {7, 0, 0}});
  auto order = OptimizeHeightPlacement(p, Identity(3));
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<int>{2, 1, 0}));
}

TEST(OptimizeHeightPlacementTest, EmptyProblem) {
  HeightPlacementProblem p;
  auto order = OptimizeHeightPlacement(p, {});
  ASSERT_TRUE(order.ok());
  EXPECT_TRUE(order->empty());
}

TEST(OptimizeHeightPlacementBruteForceTest, RejectsLargeN) {
  HeightPlacementProblem p = MakeRandomProblem(1, 4, 11);
  EXPECT_FALSE(OptimizeHeightPlacementBruteForce(p, Identity(4)).ok());
}

// On random instances: the heuristic result is a valid permutation, never
// beats the exhaustive optimum, and is locally optimal under single swaps.
class HeightPlacementRandomTest : public testing::TestWithParam<uint64_t> {};

TEST_P(HeightPlacementRandomTest, HeuristicSoundAndLocallyOptimal) {
  HeightPlacementProblem p = MakeRandomProblem(GetParam(), 5, 6);
  std::vector<int> left = Identity(5);

  auto heuristic = OptimizeHeightPlacement(p, left);
  ASSERT_TRUE(heuristic.ok());
  auto optimal = OptimizeHeightPlacementBruteForce(p, left);
  ASSERT_TRUE(optimal.ok());

  auto h_cost = HeightPlacementCost(p, left, *heuristic);
  auto o_cost = HeightPlacementCost(p, left, *optimal);
  ASSERT_TRUE(h_cost.ok());
  ASSERT_TRUE(o_cost.ok());
  EXPECT_GE(*h_cost, *o_cost - 1e-9);

  // Local optimality: no single swap of the heuristic order improves it.
  std::vector<int> order = *heuristic;
  for (size_t a = 0; a + 1 < order.size(); ++a) {
    for (size_t b = a + 1; b < order.size(); ++b) {
      std::swap(order[a], order[b]);
      auto swapped = HeightPlacementCost(p, left, order);
      ASSERT_TRUE(swapped.ok());
      EXPECT_GE(*swapped, *h_cost - 1e-9)
          << "swap (" << a << "," << b << ") improves the local optimum";
      std::swap(order[a], order[b]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeightPlacementRandomTest,
                         testing::Values(11u, 12u, 13u, 14u, 15u, 16u, 17u,
                                         18u));

// With uniform heights the variant degenerates to the slot formulation, so
// the exhaustive height optimum must equal the Hungarian slot optimum.
class UniformHeightEquivalenceTest : public testing::TestWithParam<uint64_t> {
};

TEST_P(UniformHeightEquivalenceTest, MatchesSlotFormulation) {
  Rng rng(GetParam());
  const int n = 5;
  SankeyDiagram diagram;
  diagram.left_sizes.assign(static_cast<size_t>(n), 1);
  diagram.right_sizes.assign(static_cast<size_t>(n), 1);
  diagram.left_top_counts.assign(static_cast<size_t>(n), 0);
  diagram.right_top_counts.assign(static_cast<size_t>(n), 0);
  diagram.overlap.assign(static_cast<size_t>(n),
                         std::vector<int>(static_cast<size_t>(n), 0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      diagram.overlap[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          static_cast<int>(rng.Index(10));
    }
  }

  std::vector<int> left_positions = IdentityPositions(n);
  auto slot = OptimizeRightPositions(diagram, left_positions);
  ASSERT_TRUE(slot.ok());
  double slot_cost = PlacementDistance(diagram, left_positions, *slot);

  HeightPlacementProblem p = FromSankey(diagram);
  auto height = OptimizeHeightPlacementBruteForce(p, Identity(n));
  ASSERT_TRUE(height.ok());
  auto height_cost = HeightPlacementCost(p, Identity(n), *height);
  ASSERT_TRUE(height_cost.ok());

  // Unit heights: centers are slot + 0.5, so |center deltas| == |slot
  // deltas| and the two optima agree in cost.
  EXPECT_NEAR(*height_cost, slot_cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniformHeightEquivalenceTest,
                         testing::Values(21u, 22u, 23u, 24u));

TEST(FromSankeyTest, CopiesSizesAndOverlap) {
  SankeyDiagram diagram;
  diagram.left_sizes = {3, 5};
  diagram.right_sizes = {4};
  diagram.overlap = {{2}, {1}};
  HeightPlacementProblem p = FromSankey(diagram);
  EXPECT_EQ(p.num_left(), 2);
  EXPECT_EQ(p.num_right(), 1);
  EXPECT_DOUBLE_EQ(p.left_heights[1], 5.0);
  EXPECT_DOUBLE_EQ(p.right_heights[0], 4.0);
  EXPECT_DOUBLE_EQ(p.overlap[0][0], 2.0);
  EXPECT_DOUBLE_EQ(p.overlap[1][0], 1.0);
}

}  // namespace
}  // namespace qagview::viz
