// API coverage for service::QueryService and service::DatasetCatalog: the
// dataset catalog, SQL → session caching, the interactive ops, per-request
// statistics, and error paths. Concurrency is exercised separately in
// service_stress_test.cc.

#include <cstdio>
#include <memory>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/explore.h"
#include "service/query_service.h"
#include "sql/executor.h"
#include "storage/csv.h"
#include "test_util.h"

namespace qagview::service {
namespace {

constexpr char kSqlCoarse[] =
    "SELECT g0, g1, g2, avg(rating) AS val FROM ratings "
    "GROUP BY g0, g1, g2 HAVING count(*) > 3 ORDER BY val DESC";
constexpr char kSqlFine[] =
    "SELECT g0, g1, g2, g3, avg(rating) AS val FROM ratings "
    "GROUP BY g0, g1, g2, g3 HAVING count(*) > 2 ORDER BY val DESC";

std::unique_ptr<QueryService> MakeService(uint64_t seed = 71,
                                           int rows = 4000) {
  auto service = std::make_unique<QueryService>();
  QAG_CHECK_OK(service->RegisterTable("ratings",
                                      testutil::MakeRatingsTable(seed, rows)));
  return service;
}

TEST(DatasetCatalogTest, RegisterFindAndSnapshot) {
  DatasetCatalog catalog;
  ASSERT_TRUE(catalog.Register("Ratings", testutil::MakeRatingsTable(3, 50))
                  .ok());
  EXPECT_EQ(catalog.size(), 1);
  EXPECT_EQ(catalog.version(), 1u);
  // Case-insensitive lookup, like sql::Catalog.
  EXPECT_NE(catalog.Find("ratings").table, nullptr);
  EXPECT_NE(catalog.Find("RATINGS").table, nullptr);
  EXPECT_EQ(catalog.Find("other").table, nullptr);
  EXPECT_EQ(catalog.Find("other").version, 0u);
  EXPECT_EQ(catalog.names(), std::vector<std::string>{"ratings"});

  // Names are unique; Register never replaces (snapshot stability).
  const storage::Table* first = catalog.Find("ratings").table.get();
  EXPECT_EQ(catalog.Register("ratings", testutil::MakeRatingsTable(4, 10))
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.Find("ratings").table.get(), first);
  EXPECT_EQ(catalog.TableVersion("ratings"), 1u);
  EXPECT_FALSE(catalog.Register("", testutil::MakeRatingsTable(5, 10)).ok());

  // The pinned SQL view resolves to the same snapshot.
  CatalogSnapshot snapshot = catalog.Snapshot();
  EXPECT_EQ(snapshot.sql.Find("ratings"), first);
  EXPECT_EQ(snapshot.catalog_version, 1u);
  EXPECT_EQ(snapshot.versions.at("ratings"), 1u);
  // The executor records resolved tables as the query's dependency set.
  EXPECT_EQ(snapshot.sql.accessed(),
            std::vector<std::string>{"ratings"});
}

TEST(DatasetCatalogTest, AppendRowsPublishesNewSnapshotOldReadersKeepTheirs) {
  DatasetCatalog catalog;
  ASSERT_TRUE(
      catalog.Register("ratings", testutil::MakeRatingsTable(3, 50)).ok());
  TableSnapshot before = catalog.Find("ratings");
  ASSERT_NE(before.table, nullptr);
  EXPECT_EQ(before.version, 1u);

  auto version = catalog.AppendRows(
      "ratings", {{storage::Value::Str("g0v0"), storage::Value::Str("g1v0"),
                   storage::Value::Str("g2v0"), storage::Value::Str("g3v0"),
                   storage::Value::Real(4.5)}});
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(*version, 2u);
  EXPECT_EQ(catalog.version(), 2u);

  // The old snapshot is untouched; the new one has the row.
  EXPECT_EQ(before.table->num_rows(), 50);
  TableSnapshot after = catalog.Find("ratings");
  EXPECT_EQ(after.table->num_rows(), 51);
  EXPECT_NE(after.table.get(), before.table.get());
  EXPECT_EQ(after.version, 2u);

  // Atomicity: a batch with one bad row changes nothing.
  auto bad = catalog.AppendRows(
      "ratings", {{storage::Value::Str("g0v0"), storage::Value::Str("g1v0"),
                   storage::Value::Str("g2v0"), storage::Value::Str("g3v0"),
                   storage::Value::Real(1.0)},
                  {storage::Value::Real(1.0)}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(catalog.Find("ratings").table->num_rows(), 51);
  EXPECT_EQ(catalog.version(), 2u);

  // Unknown dataset.
  EXPECT_EQ(catalog.AppendRows("nope", {}).status().code(),
            StatusCode::kNotFound);

  // ReplaceTable swaps wholesale (and may create).
  ASSERT_TRUE(
      catalog.ReplaceTable("ratings", testutil::MakeRatingsTable(9, 7)).ok());
  EXPECT_EQ(catalog.Find("ratings").table->num_rows(), 7);
  EXPECT_EQ(catalog.version(), 3u);
  ASSERT_TRUE(
      catalog.ReplaceTable("fresh", testutil::MakeRatingsTable(9, 3)).ok());
  EXPECT_EQ(catalog.size(), 2);
}

TEST(QueryServiceTest, QueryCachesSessionsPerSqlAndValueColumn) {
  auto service = MakeService();
  auto first = service->Query(kSqlCoarse, "val");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->handle, 0);
  EXPECT_GT(first->num_answers, 20);
  EXPECT_EQ(first->num_attrs, 3);
  EXPECT_TRUE(first->stats.built);
  EXPECT_FALSE(first->stats.cache_hit);

  // Identical SQL (modulo surrounding whitespace) reuses the session.
  auto again = service->Query(std::string("  ") + kSqlCoarse + "\n", "val");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->handle, first->handle);
  EXPECT_TRUE(again->stats.cache_hit);
  EXPECT_FALSE(again->stats.built);

  // A different query opens a second session.
  auto fine = service->Query(kSqlFine, "val");
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();
  EXPECT_NE(fine->handle, first->handle);
  EXPECT_EQ(fine->num_attrs, 4);

  QueryService::Stats stats = service->stats();
  EXPECT_EQ(stats.datasets, 1);
  EXPECT_EQ(stats.sessions, 2);
  EXPECT_EQ(stats.queries, 3);
  EXPECT_EQ(stats.query_cache_hits, 1);
}

TEST(QueryServiceTest, QueryErrorPaths) {
  auto service = MakeService();
  EXPECT_FALSE(service->Query("", "val").ok());
  EXPECT_FALSE(service->Query("   \n ", "val").ok());
  // Unknown table.
  EXPECT_FALSE(
      service->Query("SELECT g0, avg(rating) AS val FROM nope GROUP BY g0",
                    "val")
          .ok());
  // Unparseable SQL.
  EXPECT_FALSE(service->Query("SELEC oops", "val").ok());
  // Missing value column in the result.
  EXPECT_FALSE(service->Query(kSqlCoarse, "no_such_column").ok());
  // Failed queries are not cached (no session entries).
  EXPECT_EQ(service->stats().sessions, 0);
  EXPECT_EQ(service->stats().queries, 5);
}

TEST(QueryServiceTest, SummarizeMatchesDirectCorePipeline) {
  auto service = MakeService();
  auto query = service->Query(kSqlCoarse, "val");
  ASSERT_TRUE(query.ok());
  core::Params params{4, 10, 1};
  RequestStats stats;
  auto via_service = service->Summarize(query->handle, params, &stats);
  ASSERT_TRUE(via_service.ok()) << via_service.status().ToString();
  EXPECT_TRUE(stats.built);  // first request built the universe
  EXPECT_GE(stats.latency_ms, 0.0);

  // Same pipeline assembled by hand must agree bit-for-bit.
  sql::Catalog catalog;
  storage::Table ratings = testutil::MakeRatingsTable(71, 4000);
  catalog.Register("ratings", &ratings);
  auto result = sql::ExecuteSql(kSqlCoarse, catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto session = core::Session::FromTable(*result, "val");
  ASSERT_TRUE(session.ok());
  auto direct = (*session)->Summarize(params);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_service->cluster_ids, direct->cluster_ids);
  EXPECT_EQ(via_service->average, direct->average);

  // Second request over the same parameters is a cache hit.
  RequestStats second;
  ASSERT_TRUE(service->Summarize(query->handle, params, &second).ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_FALSE(second.built);
}

TEST(QueryServiceTest, GuidanceRetrieveAndExplore) {
  auto service = MakeService();
  auto query = service->Query(kSqlCoarse, "val");
  ASSERT_TRUE(query.ok());

  core::PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 8;
  options.d_values = {1, 2};
  RequestStats guidance_stats;
  auto store =
      service->Guidance(query->handle, 12, options, &guidance_stats);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(guidance_stats.built);

  RequestStats retrieve_stats;
  auto retrieved =
      service->Retrieve(query->handle, 12, 2, 5, &retrieve_stats);
  ASSERT_TRUE(retrieved.ok()) << retrieved.status().ToString();
  EXPECT_TRUE(retrieve_stats.cache_hit);
  auto from_store = (*store)->Retrieve(2, 5);
  ASSERT_TRUE(from_store.ok());
  EXPECT_EQ(retrieved->cluster_ids, from_store->cluster_ids);

  // Retrieve without a covering grid fails through the service too.
  EXPECT_FALSE(service->Retrieve(query->handle, 30, 2, 5).ok());

  core::Params params{4, 12, 2};
  auto explored = service->Explore(query->handle, params, /*max_members=*/3);
  ASSERT_TRUE(explored.ok()) << explored.status().ToString();
  auto solution = service->Summarize(query->handle, params);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(explored->solution.cluster_ids, solution->cluster_ids);
  EXPECT_EQ(explored->view.clusters.size(),
            explored->solution.cluster_ids.size());
  EXPECT_FALSE(explored->summary.empty());
  EXPECT_FALSE(explored->expanded.empty());
  // The rendered layers name the grouping attributes from the SQL result.
  EXPECT_NE(explored->summary.find("g0"), std::string::npos);

  QueryService::Stats stats = service->stats();
  EXPECT_EQ(stats.guidance_requests, 1);
  EXPECT_EQ(stats.retrieve_requests, 2);
  EXPECT_EQ(stats.explore_requests, 1);
  EXPECT_GE(stats.requests(), 6);
  EXPECT_GE(stats.total_latency_ms, 0.0);
  EXPECT_GE(stats.max_latency_ms, 0.0);
}

TEST(QueryServiceTest, TypedAccessorsAllowGuidancePersistence) {
  auto service = MakeService();
  auto query = service->Query(kSqlCoarse, "val");
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(service->Guidance(query->handle, 10).ok());

  std::string path = testing::TempDir() + "/qagview_service_guidance.txt";
  EXPECT_TRUE(service->SaveGuidance(query->handle, 10, path).ok());
  auto cache = service->SessionCacheStats(query->handle);
  ASSERT_TRUE(cache.ok());
  EXPECT_GE(cache->stores, 1);
  std::remove(path.c_str());

  EXPECT_FALSE(service->SaveGuidance(99, 10, path).ok());
  EXPECT_FALSE(service->SessionCacheStats(-1).ok());
  EXPECT_FALSE(service->Answers(99).ok());
  EXPECT_FALSE(service->Summarize(99, {4, 8, 1}).ok());
}

TEST(QueryServiceTest, RegisterCsvFileEndToEnd) {
  std::string path = testing::TempDir() + "/qagview_service_ratings.csv";
  {
    storage::Table table = testutil::MakeRatingsTable(77, 600);
    QAG_CHECK_OK(storage::WriteCsvFile(table, path));
  }
  QueryService service;
  ASSERT_TRUE(service.RegisterCsvFile("csv_ratings", path).ok());
  EXPECT_EQ(service.dataset_names(),
            std::vector<std::string>{"csv_ratings"});
  auto query = service.Query(
      "SELECT g0, g1, avg(rating) AS val FROM csv_ratings "
      "GROUP BY g0, g1 ORDER BY val DESC",
      "val");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_GT(query->num_answers, 5);
  auto solution = service.Summarize(query->handle, {3, 6, 1});
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();

  EXPECT_FALSE(service.RegisterCsvFile("missing", path + ".nope").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qagview::service
