#include <memory>

#include <gtest/gtest.h>

#include "baselines/decision_tree.h"
#include "core/hybrid.h"
#include "datagen/answers.h"
#include "study/study.h"
#include "study/trajectory.h"
#include "test_util.h"

namespace qagview::study {
namespace {

using core::AnswerSet;
using core::ClusterUniverse;

struct Fixture {
  std::unique_ptr<AnswerSet> set;
  std::unique_ptr<ClusterUniverse> u;
};

Fixture MakeFixture(uint64_t seed, int n, int top_l) {
  Fixture f;
  datagen::SyntheticAnswerOptions options;
  options.n = n;
  options.m = 5;
  options.domain = 7;
  options.seed = seed;
  f.set = std::make_unique<AnswerSet>(datagen::MakeSyntheticAnswers(options));
  auto u = ClusterUniverse::Build(f.set.get(), top_l);
  QAG_CHECK(u.ok());
  f.u = std::make_unique<ClusterUniverse>(std::move(u).value());
  return f;
}

TEST(StudyPatternTest, FromSolutionUsesEqualityPredicatesOnly) {
  Fixture f = MakeFixture(1, 200, 20);
  auto sol = core::Hybrid::Run(*f.u, core::Params{6, 20, 2});
  ASSERT_TRUE(sol.ok());
  PatternSet patterns = PatternsFromSolution(*f.u, *sol);
  ASSERT_EQ(patterns.patterns.size(), sol->cluster_ids.size());
  for (const StudyPattern& p : patterns.patterns) {
    EXPECT_FALSE(p.predicates.empty());
    for (const baselines::Predicate& pred : p.predicates) {
      EXPECT_TRUE(pred.equals);  // cluster patterns never negate
    }
    EXPECT_GT(p.count, 0);
    EXPECT_EQ(static_cast<int>(p.member_ids.size()), p.count);
  }
}

TEST(StudyPatternTest, FromDecisionTreeKeepsNegations) {
  Fixture f = MakeFixture(2, 200, 20);
  baselines::DecisionTree tree =
      baselines::DecisionTree::TrainTuned(*f.set, 20, 6);
  PatternSet patterns = PatternsFromDecisionTree(*f.set, tree);
  ASSERT_EQ(patterns.patterns.size(), tree.PositiveRules().size());
  bool any_negation = false;
  for (const StudyPattern& p : patterns.patterns) {
    for (const baselines::Predicate& pred : p.predicates) {
      any_negation = any_negation || !pred.equals;
    }
  }
  // Binary CART paths almost always include != branches.
  EXPECT_TRUE(any_negation);
}

TEST(GroundTruthTest, ThreeCategories) {
  Fixture f = MakeFixture(3, 100, 10);
  EXPECT_EQ(GroundTruth(*f.set, 0, 10), Category::kTop);
  EXPECT_EQ(GroundTruth(*f.set, 9, 10), Category::kTop);
  EXPECT_EQ(GroundTruth(*f.set, f.set->size() - 1, 10), Category::kLow);
  // Element just outside top-L with above-average value is High.
  int e = 10;
  if (f.set->value(e) >= f.set->TrivialAverage()) {
    EXPECT_EQ(GroundTruth(*f.set, e, 10), Category::kHigh);
  }
}

TEST(SimulatedSubjectTest, MembersSectionIsNearPerfect) {
  Fixture f = MakeFixture(4, 200, 20);
  auto sol = core::Hybrid::Run(*f.u, core::Params{6, 20, 1});
  ASSERT_TRUE(sol.ok());
  PatternSet patterns = PatternsFromSolution(*f.u, *sol);
  SubjectParams params;
  params.slip_prob = 0.0;
  params.time_noise = 0.0;
  SimulatedSubject subject(9, params);
  int correct = 0;
  int total = 0;
  for (int e = 0; e < f.set->size(); e += 7) {
    auto answer = subject.Classify(*f.set, e, 20, patterns,
                                   Section::kPatternsMembers);
    Category truth = GroundTruth(*f.set, e, 20);
    bool t_match = (answer.category == Category::kTop) ==
                   (truth == Category::kTop);
    correct += t_match;
    ++total;
    EXPECT_GT(answer.seconds, 0.0);
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(StudySimulatorTest, ProducesFullTable) {
  Fixture f = MakeFixture(5, 300, 30);
  auto sol = core::Hybrid::Run(*f.u, core::Params{8, 30, 1});
  ASSERT_TRUE(sol.ok());
  PatternSet ours = PatternsFromSolution(*f.u, *sol);

  StudyConfig config;
  config.num_subjects = 8;
  UserStudySimulator sim(f.set.get(), config);
  ConditionResult result = sim.RunCondition(ours, 30, "ours");
  EXPECT_EQ(result.label, "ours");
  for (const SectionMetrics* m :
       {&result.patterns_only, &result.memory_only,
        &result.patterns_members}) {
    EXPECT_GT(m->time_per_question.mean, 0.0);
    EXPECT_GE(m->t_accuracy.mean, 0.0);
    EXPECT_LE(m->t_accuracy.mean, 1.0);
    EXPECT_GE(m->th_accuracy.mean, 0.0);
    EXPECT_LE(m->th_accuracy.mean, 1.0);
  }
  std::string table = UserStudySimulator::RenderTable({result});
  EXPECT_NE(table.find("Patterns-only"), std::string::npos);
  EXPECT_NE(table.find("ours"), std::string::npos);
}

TEST(StudySimulatorTest, PaperDirectionalFindings) {
  // The §8.4 headline: (1) our patterns beat decision trees on TH-accuracy
  // in patterns-only, and (2) retain accuracy in memory-only far better.
  Fixture f = MakeFixture(6, 400, 50);
  auto sol = core::Hybrid::Run(*f.u, core::Params{10, 50, 1});
  ASSERT_TRUE(sol.ok());
  PatternSet ours = PatternsFromSolution(*f.u, *sol);
  baselines::DecisionTree tree =
      baselines::DecisionTree::TrainTuned(*f.set, 50, 10);
  PatternSet theirs = PatternsFromDecisionTree(*f.set, tree);

  StudyConfig config;
  config.num_subjects = 16;
  UserStudySimulator sim(f.set.get(), config);
  ConditionResult ours_result = sim.RunCondition(ours, 50, "ours");
  ConditionResult dt_result = sim.RunCondition(theirs, 50, "dtree");

  EXPECT_GE(ours_result.patterns_only.th_accuracy.mean,
            dt_result.patterns_only.th_accuracy.mean - 0.02);
  // Memory retention: our accuracy drop from patterns-only to memory-only
  // is smaller than the decision tree's.
  double our_drop = ours_result.patterns_only.t_accuracy.mean -
                    ours_result.memory_only.t_accuracy.mean;
  double dt_drop = dt_result.patterns_only.t_accuracy.mean -
                   dt_result.memory_only.t_accuracy.mean;
  EXPECT_LE(our_drop, dt_drop + 0.05);
  // Patterns+members is near-perfect for both (>= 0.85).
  EXPECT_GE(ours_result.patterns_members.t_accuracy.mean, 0.85);
  EXPECT_GE(dt_result.patterns_members.t_accuracy.mean, 0.85);
}

// --- Exploration trajectories and the next-move model (the export the
// service-layer prefetcher consumes). ----------------------------------------

TEST(TrajectoryTest, SimulationIsDeterministicInTheSeed) {
  TrajectoryOptions options;
  options.num_sessions = 32;
  auto a = SimulateTrajectories(options);
  auto b = SimulateTrajectories(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t s = 0; s < a.size(); ++s) {
    ASSERT_EQ(a[s].size(), b[s].size());
    for (size_t i = 0; i < a[s].size(); ++i) {
      EXPECT_EQ(a[s][i].kind, b[s][i].kind);
      EXPECT_EQ(a[s][i].top_l, b[s][i].top_l);
    }
  }
  options.seed = 4242;
  auto c = SimulateTrajectories(options);
  bool any_different = false;
  for (size_t s = 0; s < a.size() && !any_different; ++s) {
    for (size_t i = 0; i < a[s].size(); ++i) {
      if (a[s][i].top_l != c[s][i].top_l) {
        any_different = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_different) << "the seed must actually matter";
}

TEST(TrajectoryTest, SessionsStartWithQueryAndStayInRange) {
  TrajectoryOptions options;
  options.num_sessions = 64;
  auto trajectories = SimulateTrajectories(options);
  ASSERT_EQ(trajectories.size(), 64u);
  for (const auto& session : trajectories) {
    ASSERT_EQ(session.size(), static_cast<size_t>(options.moves_per_session));
    EXPECT_EQ(session[0].kind, MoveKind::kQuery);
    for (size_t i = 1; i < session.size(); ++i) {
      EXPECT_NE(session[i].kind, MoveKind::kQuery)
          << "one query per session";
      EXPECT_GE(session[i].top_l, options.l_min);
      EXPECT_LE(session[i].top_l, options.l_max);
    }
  }
}

TEST(TrajectoryTest, ModelPredictsDrillDownFirst) {
  const NextMoveModel& model = NextMoveModel::Default();
  for (MoveKind kind :
       {MoveKind::kSummarize, MoveKind::kExplore, MoveKind::kGuidance}) {
    std::vector<int> deltas = model.PredictDeltaL(kind, 3);
    ASSERT_FALSE(deltas.empty());
    // The dominant transition in the simulated sessions is one step
    // deeper; zero is excluded by construction.
    EXPECT_EQ(deltas[0], 1);
    for (int delta : deltas) EXPECT_NE(delta, 0);
  }
  std::vector<int> initial = model.PredictInitialL(3);
  ASSERT_FALSE(initial.empty());
  // Initial levels concentrate around the Params default (L = 8).
  EXPECT_GE(initial[0], 5);
  EXPECT_LE(initial[0], 11);
}

TEST(TrajectoryTest, PredictionsAreStableAcrossCalls) {
  const NextMoveModel& model = NextMoveModel::Default();
  EXPECT_EQ(model.PredictDeltaL(MoveKind::kGuidance, 4),
            model.PredictDeltaL(MoveKind::kGuidance, 4));
  EXPECT_EQ(model.PredictInitialL(4), model.PredictInitialL(4));
  // max_predictions truncates, never reorders.
  auto four = model.PredictDeltaL(MoveKind::kSummarize, 4);
  auto two = model.PredictDeltaL(MoveKind::kSummarize, 2);
  ASSERT_LE(two.size(), four.size());
  for (size_t i = 0; i < two.size(); ++i) EXPECT_EQ(two[i], four[i]);
  EXPECT_TRUE(model.PredictDeltaL(MoveKind::kSummarize, 0).empty());
}

}  // namespace
}  // namespace qagview::study
