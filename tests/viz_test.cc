#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/hybrid.h"
#include "core/precompute.h"
#include "test_util.h"
#include "viz/assignment.h"
#include "viz/param_grid.h"
#include "viz/sankey.h"

namespace qagview::viz {
namespace {

using core::AnswerSet;
using core::ClusterUniverse;

// --- Assignment. ---

TEST(AssignmentTest, TinyKnownInstance) {
  // Optimal: row0->col1 (1), row1->col0 (2) = 3 vs diagonal 5+5=10.
  std::vector<std::vector<double>> cost = {{5.0, 1.0}, {2.0, 5.0}};
  auto a = SolveAssignment(cost);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(AssignmentCost(cost, *a), 3.0);
}

TEST(AssignmentTest, Validation) {
  EXPECT_FALSE(SolveAssignment({}).ok());
  EXPECT_FALSE(SolveAssignment({{1.0, 2.0}}).ok());  // not square
  EXPECT_FALSE(SolveAssignmentBruteForce({{1.0, 2.0}}).ok());
}

class AssignmentPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(AssignmentPropertyTest, HungarianMatchesBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + static_cast<int>(rng.Index(6));  // up to 7x7
    std::vector<std::vector<double>> cost(
        static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
    for (auto& row : cost) {
      for (double& c : row) c = rng.UniformReal(0.0, 100.0);
    }
    auto fast = SolveAssignment(cost);
    auto slow = SolveAssignmentBruteForce(cost);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    // Costs must match (assignments may differ under ties).
    EXPECT_NEAR(AssignmentCost(cost, *fast), AssignmentCost(cost, *slow),
                1e-6);
    // Result is a permutation.
    std::vector<char> seen(static_cast<size_t>(n), 0);
    for (int c : *fast) {
      ASSERT_GE(c, 0);
      ASSERT_LT(c, n);
      ASSERT_FALSE(seen[static_cast<size_t>(c)]);
      seen[static_cast<size_t>(c)] = 1;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignmentPropertyTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u));

// --- Sankey. ---

struct Fixture {
  std::unique_ptr<AnswerSet> set;
  std::unique_ptr<ClusterUniverse> u;
  core::Solution old_solution;
  core::Solution new_solution;
};

Fixture MakeFixture(uint64_t seed) {
  Fixture f;
  f.set = std::make_unique<AnswerSet>(
      testutil::MakeRandomAnswerSet(seed, 100, 5, 3));
  auto u = ClusterUniverse::Build(f.set.get(), 20);
  QAG_CHECK(u.ok());
  f.u = std::make_unique<ClusterUniverse>(std::move(u).value());
  f.old_solution = core::Hybrid::Run(*f.u, core::Params{6, 20, 2}).value();
  f.new_solution = core::Hybrid::Run(*f.u, core::Params{4, 20, 2}).value();
  return f;
}

TEST(SankeyTest, OverlapMatrixIsConsistent) {
  Fixture f = MakeFixture(5);
  SankeyDiagram d = BuildSankey(*f.u, f.old_solution, f.new_solution);
  ASSERT_EQ(d.num_left(), f.old_solution.size());
  ASSERT_EQ(d.num_right(), f.new_solution.size());
  for (int i = 0; i < d.num_left(); ++i) {
    int row_sum = 0;
    for (int j = 0; j < d.num_right(); ++j) {
      int m = d.overlap[static_cast<size_t>(i)][static_cast<size_t>(j)];
      EXPECT_GE(m, 0);
      EXPECT_LE(m, std::min(d.left_sizes[static_cast<size_t>(i)],
                            d.right_sizes[static_cast<size_t>(j)]));
      row_sum += m;
    }
    // Overlaps out of a left cluster cannot exceed its size... unless the
    // right clusters overlap each other; then shared tuples count twice.
    // At minimum the row sum is bounded by size * num_right.
    EXPECT_LE(row_sum,
              d.left_sizes[static_cast<size_t>(i)] * d.num_right());
  }
}

TEST(SankeyTest, OptimizedPlacementNeverWorseThanDefault) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Fixture f = MakeFixture(seed);
    SankeyDiagram d = BuildSankey(*f.u, f.old_solution, f.new_solution);
    std::vector<int> left = IdentityPositions(d.num_left());
    std::vector<int> identity = IdentityPositions(d.num_right());
    auto optimized = OptimizeRightPositions(d, left);
    ASSERT_TRUE(optimized.ok());
    EXPECT_LE(PlacementDistance(d, left, *optimized),
              PlacementDistance(d, left, identity) + 1e-9);
  }
}

TEST(SankeyTest, HungarianPlacementMatchesBruteForce) {
  Fixture f = MakeFixture(7);
  SankeyDiagram d = BuildSankey(*f.u, f.old_solution, f.new_solution);
  std::vector<int> left = IdentityPositions(d.num_left());
  auto fast = OptimizeRightPositions(d, left);
  auto slow = OptimizeRightPositionsBruteForce(d, left);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_NEAR(PlacementDistance(d, left, *fast),
              PlacementDistance(d, left, *slow), 1e-9);
}

TEST(SankeyTest, CrossingCountBasics) {
  SankeyDiagram d;
  d.left_labels = {"A", "B"};
  d.right_labels = {"X", "Y"};
  d.left_sizes = {10, 10};
  d.right_sizes = {10, 10};
  d.left_top_counts = {1, 1};
  d.right_top_counts = {1, 1};
  d.overlap = {{5, 0}, {0, 5}};  // parallel bands
  std::vector<int> id2 = {0, 1};
  EXPECT_EQ(CountCrossings(d, id2, id2), 0);
  std::vector<int> swapped = {1, 0};
  EXPECT_EQ(CountCrossings(d, id2, swapped), 1);
  d.overlap = {{5, 5}, {5, 5}};  // full bipartite: one crossing pair
  EXPECT_EQ(CountCrossings(d, id2, id2), 1);
}

TEST(SankeyTest, RenderShowsLabelsAndRibbons) {
  Fixture f = MakeFixture(9);
  SankeyDiagram d = BuildSankey(*f.u, f.old_solution, f.new_solution);
  std::vector<int> left = IdentityPositions(d.num_left());
  std::vector<int> right = IdentityPositions(d.num_right());
  std::string text = RenderSankey(d, left, right);
  EXPECT_NE(text.find("tuples"), std::string::npos);
  EXPECT_NE(text.find("|"), std::string::npos);
}

// --- Param grid. ---

TEST(ParamGridTest, BuildsFromStoreAndRoundTrips) {
  auto set = std::make_unique<AnswerSet>(
      testutil::MakeRandomAnswerSet(11, 90, 5, 3));
  auto u = ClusterUniverse::Build(set.get(), 20);
  ASSERT_TRUE(u.ok());
  core::PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 10;
  options.d_values = {1, 2, 3};
  auto store = core::Precompute::Run(*u, 20, options);
  ASSERT_TRUE(store.ok());
  auto grid = BuildParamGrid(*store, 2, 10);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->d_values, (std::vector<int>{1, 2, 3}));
  // Non-NaN entries match the store.
  for (size_t di = 0; di < grid->d_values.size(); ++di) {
    for (int k = 2; k <= 10; ++k) {
      double v = grid->Value(static_cast<int>(di), k);
      auto expected = store->Value(grid->d_values[di], k);
      if (expected.ok()) {
        EXPECT_NEAR(v, *expected, 1e-12);
      } else {
        EXPECT_TRUE(std::isnan(v));
      }
    }
  }
  // Renderings include the axes.
  EXPECT_NE(grid->ToCsv().find("k,D=1,D=2,D=3"), std::string::npos);
  EXPECT_NE(grid->ToTextChart().find("D=2"), std::string::npos);
}

TEST(ParamGridTest, KneeDetectionFindsSharpElbow) {
  ParamGrid grid;
  grid.l = 10;
  grid.k_min = 1;
  grid.k_max = 6;
  grid.d_values = {1};
  // Flat, then a jump at k=4, then flat: knee at 4.
  grid.values = {{1.0, 1.01, 1.02, 2.0, 2.01, 2.02}};
  EXPECT_EQ(grid.KneePoints(0), (std::vector<int>{4}));
}

TEST(ParamGridTest, RedundantDValuesDetected) {
  ParamGrid grid;
  grid.l = 10;
  grid.k_min = 1;
  grid.k_max = 3;
  grid.d_values = {1, 2, 3};
  grid.values = {{1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}, {0.5, 1.0, 1.5}};
  EXPECT_EQ(grid.RedundantDValues(), (std::vector<int>{2}));
}

TEST(ParamGridTest, Validation) {
  auto set = std::make_unique<AnswerSet>(
      testutil::MakeRandomAnswerSet(13, 50, 4, 3));
  auto u = ClusterUniverse::Build(set.get(), 10);
  ASSERT_TRUE(u.ok());
  auto store = core::Precompute::Run(*u, 10);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(BuildParamGrid(*store, 0, 5).ok());
  EXPECT_FALSE(BuildParamGrid(*store, 5, 2).ok());
}

}  // namespace
}  // namespace qagview::viz
