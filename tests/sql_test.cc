#include <string>

#include <gtest/gtest.h>

#include "sql/aggregate.h"
#include "sql/executor.h"
#include "sql/expr.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "storage/table.h"

namespace qagview::sql {
namespace {

using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

TEST(LexerTest, TokenizesOperatorsAndLiterals) {
  auto tokens = Lexer("select a, b1 from t where x >= 1.5 and y <> 'it''s'")
                    .Tokenize();
  ASSERT_TRUE(tokens.ok());
  // select a , b1 from t where x >= 1.5 and y <> 'it's' <end>
  EXPECT_EQ(tokens->size(), 15u);
  EXPECT_EQ((*tokens)[0].text, "select");
  EXPECT_EQ((*tokens)[2].type, TokenType::kComma);
  EXPECT_EQ((*tokens)[8].type, TokenType::kGe);
  EXPECT_EQ((*tokens)[9].type, TokenType::kReal);
  EXPECT_DOUBLE_EQ((*tokens)[9].real_value, 1.5);
  EXPECT_EQ((*tokens)[12].type, TokenType::kNe);
  EXPECT_EQ((*tokens)[13].text, "it's");
}

TEST(LexerTest, CommentsAndErrors) {
  auto tokens = Lexer("a -- comment\n b").Tokenize();
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 3u);  // a b <end>
  EXPECT_FALSE(Lexer("'unterminated").Tokenize().ok());
  EXPECT_FALSE(Lexer("a ! b").Tokenize().ok());
  EXPECT_FALSE(Lexer("a # b").Tokenize().ok());
}

TEST(ParserTest, ParsesAggregateTemplate) {
  auto stmt = Parser::ParseSelect(
      "SELECT hdec, agegrp, avg(rating) AS val FROM r "
      "WHERE genres_adventure = 1 GROUP BY hdec, agegrp "
      "HAVING count(*) > 50 ORDER BY val DESC LIMIT 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->items.size(), 3u);
  EXPECT_EQ(stmt->items[2].alias, "val");
  EXPECT_EQ(stmt->items[2].expr->ToString(), "avg(rating)");
  EXPECT_EQ(stmt->table_name, "r");
  ASSERT_TRUE(stmt->where != nullptr);
  EXPECT_EQ(stmt->group_by.size(), 2u);
  ASSERT_TRUE(stmt->having != nullptr);
  EXPECT_EQ(stmt->having->ToString(), "(count(*) > 50)");
  ASSERT_EQ(stmt->order_by.size(), 1u);
  EXPECT_TRUE(stmt->order_by[0].descending);
  EXPECT_EQ(stmt->limit, 10);
}

TEST(ParserTest, PrecedenceAndParens) {
  auto e = Parser::ParseExpression("1 + 2 * 3 = 7 and not x or y");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "((((1 + (2 * 3)) = 7) AND NOT (x)) OR y)");
  auto e2 = Parser::ParseExpression("(1 + 2) * 3");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e2)->ToString(), "((1 + 2) * 3)");
  auto e3 = Parser::ParseExpression("-x + 4");
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ((*e3)->ToString(), "(-(x) + 4)");
}

TEST(ParserTest, ImplicitAlias) {
  auto stmt = Parser::ParseSelect("SELECT avg(x) v FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->items[0].alias, "v");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parser::ParseSelect("FROM t").ok());
  EXPECT_FALSE(Parser::ParseSelect("SELECT a FROM").ok());
  EXPECT_FALSE(Parser::ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parser::ParseSelect("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(Parser::ParseSelect("SELECT a FROM t extra garbage (").ok());
  EXPECT_FALSE(Parser::ParseExpression("1 +").ok());
  EXPECT_FALSE(Parser::ParseExpression("f(1,").ok());
}

TEST(AggregatorTest, AllKinds) {
  Aggregator count(AggKind::kCount);
  Aggregator sum(AggKind::kSum);
  Aggregator avg(AggKind::kAvg);
  Aggregator min(AggKind::kMin);
  Aggregator max(AggKind::kMax);
  for (int v : {3, 1, 2}) {
    Value val = Value::Int(v);
    count.Add(val);
    sum.Add(val);
    avg.Add(val);
    min.Add(val);
    max.Add(val);
  }
  Value null = Value::Null();
  count.Add(null);  // NULLs skipped
  sum.Add(null);
  EXPECT_EQ(count.Finish().as_int(), 3);
  EXPECT_DOUBLE_EQ(sum.Finish().as_double(), 6.0);
  EXPECT_DOUBLE_EQ(avg.Finish().as_double(), 2.0);
  EXPECT_EQ(min.Finish().as_int(), 1);
  EXPECT_EQ(max.Finish().as_int(), 3);
}

TEST(AggregatorTest, EmptyInputs) {
  EXPECT_EQ(Aggregator(AggKind::kCount).Finish().as_int(), 0);
  EXPECT_TRUE(Aggregator(AggKind::kSum).Finish().is_null());
  EXPECT_TRUE(Aggregator(AggKind::kAvg).Finish().is_null());
  EXPECT_TRUE(Aggregator(AggKind::kMin).Finish().is_null());
}

TEST(AggregatorTest, NameLookup) {
  EXPECT_EQ(AggKindFromName("avg", false).value(), AggKind::kAvg);
  EXPECT_EQ(AggKindFromName("count", true).value(), AggKind::kCountStar);
  EXPECT_FALSE(AggKindFromName("median", false).ok());
  EXPECT_FALSE(AggKindFromName("sum", true).ok());  // sum(*) invalid
}

// --- Expression evaluation. ---

Table MakeExprTable() {
  Schema schema({{"x", ValueType::kInt64},
                 {"y", ValueType::kDouble},
                 {"s", ValueType::kString}});
  Table t(schema);
  QAG_CHECK_OK(t.AppendRow({Value::Int(4), Value::Real(2.0), Value::Str("a")}));
  QAG_CHECK_OK(t.AppendRow({Value::Null(), Value::Real(1.0), Value::Str("b")}));
  return t;
}

Value EvalOnRow(const std::string& text, const Table& t, int64_t row) {
  auto expr = Parser::ParseExpression(text);
  QAG_CHECK(expr.ok()) << expr.status().ToString();
  auto compiled = CompiledExpr::Compile(**expr, t.schema());
  QAG_CHECK(compiled.ok()) << compiled.status().ToString();
  return compiled->Eval(t, row);
}

TEST(ExprTest, Arithmetic) {
  Table t = MakeExprTable();
  EXPECT_EQ(EvalOnRow("x + 1", t, 0).as_int(), 5);
  EXPECT_DOUBLE_EQ(EvalOnRow("x * y", t, 0).as_double(), 8.0);
  EXPECT_DOUBLE_EQ(EvalOnRow("x / 8", t, 0).as_double(), 0.5);
  EXPECT_EQ(EvalOnRow("x % 3", t, 0).as_int(), 1);
  EXPECT_TRUE(EvalOnRow("x / 0", t, 0).is_null());  // SQL div-by-zero
  EXPECT_EQ(EvalOnRow("-x", t, 0).as_int(), -4);
}

TEST(ExprTest, NullPropagation) {
  Table t = MakeExprTable();
  EXPECT_TRUE(EvalOnRow("x + 1", t, 1).is_null());
  EXPECT_TRUE(EvalOnRow("x = 4", t, 1).is_null());
  EXPECT_TRUE(EvalOnRow("not (x = 4)", t, 1).is_null());
}

TEST(ExprTest, ThreeValuedLogic) {
  Table t = MakeExprTable();
  // Row 1 has x NULL: unknown AND false = false; unknown OR true = true.
  EXPECT_EQ(EvalOnRow("x = 4 and y > 100", t, 1).as_int(), 0);
  EXPECT_EQ(EvalOnRow("x = 4 or y > 0", t, 1).as_int(), 1);
  EXPECT_TRUE(EvalOnRow("x = 4 and y > 0", t, 1).is_null());
  EXPECT_TRUE(EvalOnRow("x = 4 or y > 100", t, 1).is_null());
}

TEST(ExprTest, Comparisons) {
  Table t = MakeExprTable();
  EXPECT_EQ(EvalOnRow("x >= 4", t, 0).as_int(), 1);
  EXPECT_EQ(EvalOnRow("x != 4", t, 0).as_int(), 0);
  EXPECT_EQ(EvalOnRow("s = 'a'", t, 0).as_int(), 1);
  EXPECT_EQ(EvalOnRow("s < 'b'", t, 0).as_int(), 1);
  EXPECT_EQ(EvalOnRow("y = 2", t, 0).as_int(), 1);  // double vs int
}

TEST(ExprTest, CompileErrors) {
  Table t = MakeExprTable();
  auto bad_col = Parser::ParseExpression("nope + 1");
  ASSERT_TRUE(bad_col.ok());
  EXPECT_FALSE(CompiledExpr::Compile(**bad_col, t.schema()).ok());
  auto call = Parser::ParseExpression("avg(x)");
  ASSERT_TRUE(call.ok());
  EXPECT_FALSE(CompiledExpr::Compile(**call, t.schema()).ok());
}

// --- Executor. ---

Table MakeRatings() {
  Schema schema({{"genre", ValueType::kString},
                 {"gender", ValueType::kString},
                 {"rating", ValueType::kDouble}});
  Table t(schema);
  auto add = [&t](const char* g, const char* s, double r) {
    QAG_CHECK_OK(t.AppendRow({Value::Str(g), Value::Str(s), Value::Real(r)}));
  };
  add("adventure", "M", 4.0);
  add("adventure", "M", 5.0);
  add("adventure", "F", 3.0);
  add("comedy", "M", 2.0);
  add("comedy", "F", 4.0);
  add("comedy", "F", 5.0);
  return t;
}

TEST(ExecutorTest, GroupByWithAggregatesAndOrder) {
  Table t = MakeRatings();
  Catalog catalog;
  catalog.Register("r", &t);
  auto result = ExecuteSql(
      "SELECT genre, gender, avg(rating) AS val, count(*) AS n FROM r "
      "GROUP BY genre, gender ORDER BY val DESC",
      catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 4);
  // Top group: (adventure, M) with avg 4.5.
  EXPECT_EQ(result->Get(0, 0).as_string(), "adventure");
  EXPECT_EQ(result->Get(0, 1).as_string(), "M");
  EXPECT_DOUBLE_EQ(result->Get(0, 2).ToDouble(), 4.5);
  EXPECT_EQ(result->Get(0, 3).as_int(), 2);
  // Bottom group: (comedy, M) with avg 2.
  EXPECT_DOUBLE_EQ(result->Get(3, 2).ToDouble(), 2.0);
}

TEST(ExecutorTest, WhereAndHaving) {
  Table t = MakeRatings();
  Catalog catalog;
  catalog.Register("r", &t);
  auto result = ExecuteSql(
      "SELECT gender, avg(rating) AS val FROM r WHERE genre = 'comedy' "
      "GROUP BY gender HAVING count(*) >= 2 ORDER BY val DESC",
      catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 1);  // only F has 2 comedy ratings
  EXPECT_EQ(result->Get(0, 0).as_string(), "F");
  EXPECT_DOUBLE_EQ(result->Get(0, 1).ToDouble(), 4.5);
}

TEST(ExecutorTest, GlobalAggregateWithoutGroupBy) {
  Table t = MakeRatings();
  Catalog catalog;
  catalog.Register("r", &t);
  auto result = ExecuteSql("SELECT count(*) AS n, max(rating) FROM r", catalog);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1);
  EXPECT_EQ(result->Get(0, 0).as_int(), 6);
  EXPECT_DOUBLE_EQ(result->Get(0, 1).ToDouble(), 5.0);
}

TEST(ExecutorTest, PlainProjectionWithLimit) {
  Table t = MakeRatings();
  Catalog catalog;
  catalog.Register("r", &t);
  auto result = ExecuteSql(
      "SELECT genre, rating * 2 AS dbl FROM r ORDER BY dbl DESC LIMIT 2",
      catalog);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2);
  EXPECT_DOUBLE_EQ(result->Get(0, 1).ToDouble(), 10.0);
}

TEST(ExecutorTest, ExpressionOverAggregates) {
  Table t = MakeRatings();
  Catalog catalog;
  catalog.Register("r", &t);
  auto result = ExecuteSql(
      "SELECT genre, sum(rating) / count(rating) AS manual_avg FROM r "
      "GROUP BY genre ORDER BY genre",
      catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 2);
  EXPECT_DOUBLE_EQ(result->Get(0, 1).ToDouble(), 4.0);  // adventure
}

TEST(ExecutorTest, Errors) {
  Table t = MakeRatings();
  Catalog catalog;
  catalog.Register("r", &t);
  EXPECT_FALSE(ExecuteSql("SELECT a FROM missing", catalog).ok());
  // Non-grouped bare column.
  EXPECT_FALSE(
      ExecuteSql("SELECT rating FROM r GROUP BY genre", catalog).ok());
  // Aggregate in WHERE.
  EXPECT_FALSE(
      ExecuteSql("SELECT genre FROM r WHERE avg(rating) > 1 GROUP BY genre",
                 catalog)
          .ok());
  // HAVING without grouping or aggregates.
  EXPECT_FALSE(ExecuteSql("SELECT genre FROM r HAVING 1 = 1", catalog).ok());
  // ORDER BY a column that is not output.
  EXPECT_FALSE(
      ExecuteSql("SELECT genre FROM r GROUP BY genre ORDER BY nope", catalog)
          .ok());
  // Nested aggregate.
  EXPECT_FALSE(
      ExecuteSql("SELECT avg(sum(rating)) FROM r GROUP BY genre", catalog)
          .ok());
}

TEST(ExecutorTest, TheFullPaperTemplate) {
  Table t = MakeRatings();
  Catalog catalog;
  catalog.Register("RatingTable", &t);
  auto result = ExecuteSql(
      "SELECT genre, gender, avg(rating) AS val FROM RatingTable "
      "GROUP BY genre, gender HAVING count(*) > 0 ORDER BY val DESC LIMIT 3",
      catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 3);
  double prev = 1e9;
  for (int64_t r = 0; r < result->num_rows(); ++r) {
    double v = result->Get(r, 2).ToDouble();
    EXPECT_LE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace qagview::sql
