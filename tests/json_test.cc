// Unit tests for the dependency-free JSON reader/writer shared by the
// src/server front end and the bench load generator. The contract under
// test: exact numeric round-trips (the server_test bit-identity checks
// lean on this), deterministic insertion-ordered output, and a parser
// that rejects hostile input with a ParseError instead of crashing.

#include "common/json.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace qagview::json {
namespace {

Json MustParse(const std::string& text) {
  auto parsed = Json::Parse(text);
  EXPECT_TRUE(parsed.ok()) << text << " -> " << parsed.status().message();
  return parsed.ok() ? *std::move(parsed) : Json::Null();
}

TEST(JsonTest, ScalarsRoundTrip) {
  EXPECT_EQ(MustParse("null").Dump(), "null");
  EXPECT_EQ(MustParse("true").Dump(), "true");
  EXPECT_EQ(MustParse("false").Dump(), "false");
  EXPECT_EQ(MustParse("0").Dump(), "0");
  EXPECT_EQ(MustParse("-7").Dump(), "-7");
  EXPECT_EQ(MustParse("\"hi\"").Dump(), "\"hi\"");
}

TEST(JsonTest, DoublesRoundTripExactly) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           3.141592653589793,
                           -2.2250738585072014e-308,
                           1e-300,
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::denorm_min(),
                           123456.789};
  for (double v : values) {
    std::string text = FormatJsonNumber(v);
    auto parsed = Json::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_TRUE(parsed->is_number());
    EXPECT_EQ(parsed->AsDouble(), v) << text;
    // And through a full document dump.
    Json doc = Json::Object();
    doc.Set("v", Json::Number(v));
    auto reparsed = Json::Parse(doc.Dump());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed->Find("v")->AsDouble(), v);
  }
}

TEST(JsonTest, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(FormatJsonNumber(std::nan("")), "null");
  EXPECT_EQ(FormatJsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(Json::Number(std::nan("")).Dump(), "null");
}

TEST(JsonTest, IntegersKeepExactInt64) {
  const int64_t big = int64_t{1} << 62;  // not representable as a double
  Json v = Json::Int(big);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.Dump(), "4611686018427387904");
  Json back = MustParse(v.Dump());
  EXPECT_TRUE(back.is_int());
  EXPECT_EQ(back.AsInt(), big);

  // min/max int64 survive a round trip too.
  EXPECT_EQ(MustParse("-9223372036854775808").AsInt(),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(MustParse("9223372036854775807").AsInt(),
            std::numeric_limits<int64_t>::max());
}

TEST(JsonTest, IntegerFlavorClassification) {
  EXPECT_TRUE(MustParse("42").is_int());
  EXPECT_FALSE(MustParse("42.0").is_int());  // fraction -> double flavor
  EXPECT_FALSE(MustParse("4e2").is_int());   // exponent -> double flavor
  // Beyond int64 range falls back to double instead of failing.
  Json huge = MustParse("92233720368547758080");
  EXPECT_TRUE(huge.is_number());
  EXPECT_FALSE(huge.is_int());
  EXPECT_DOUBLE_EQ(huge.AsDouble(), 9.223372036854776e19);
}

TEST(JsonTest, StringEscapes) {
  Json v = Json::Str("a\"b\\c\n\t\x01");
  EXPECT_EQ(v.Dump(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
  Json back = MustParse(v.Dump());
  EXPECT_EQ(back.AsString(), v.AsString());

  EXPECT_EQ(MustParse("\"\\u0041\"").AsString(), "A");
  EXPECT_EQ(MustParse("\"\\/\"").AsString(), "/");
  // Two-byte and three-byte UTF-8 from \u escapes.
  EXPECT_EQ(MustParse("\"\\u00e9\"").AsString(), "\xc3\xa9");     // é
  EXPECT_EQ(MustParse("\"\\u20ac\"").AsString(), "\xe2\x82\xac");  // €
}

TEST(JsonTest, SurrogatePairsDecodeToUtf8) {
  // U+1F600 as the surrogate pair D83D DE00 -> 4-byte UTF-8.
  EXPECT_EQ(MustParse("\"\\ud83d\\ude00\"").AsString(),
            "\xf0\x9f\x98\x80");
  // Raw UTF-8 bytes in the input pass through untouched.
  EXPECT_EQ(MustParse("\"\xf0\x9f\x98\x80\"").AsString(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonTest, ObjectsPreserveInsertionOrderAndFirstMatchWins) {
  Json doc = Json::Object();
  doc.Set("z", Json::Int(1));
  doc.Set("a", Json::Int(2));
  doc.Set("z", Json::Int(3));  // duplicate key kept, lookup finds the first
  EXPECT_EQ(doc.Dump(), "{\"z\":1,\"a\":2,\"z\":3}");
  EXPECT_EQ(doc.Find("z")->AsInt(), 1);
  EXPECT_EQ(doc.Find("missing"), nullptr);
  EXPECT_EQ(Json::Int(5).Find("z"), nullptr);  // non-object finds nothing

  Json back = MustParse(doc.Dump());
  EXPECT_EQ(back.Dump(), doc.Dump());
}

TEST(JsonTest, NestedStructuresRoundTrip) {
  const std::string text =
      "{\"answers\":[{\"attrs\":[\"F\",\"20s\"],\"value\":4.5,"
      "\"bound\":0.125}],\"stats\":{\"cache_hit\":true,"
      "\"latency_ms\":1.25},\"empty_arr\":[],\"empty_obj\":{}}";
  Json doc = MustParse(text);
  EXPECT_EQ(doc.Dump(), text);  // compact input reproduces byte-for-byte
  ASSERT_NE(doc.Find("answers"), nullptr);
  const Json& first = doc.Find("answers")->at(0);
  EXPECT_EQ(first.Find("attrs")->at(1).AsString(), "20s");
  EXPECT_EQ(first.Find("value")->AsDouble(), 4.5);
  EXPECT_TRUE(doc.Find("stats")->Find("cache_hit")->AsBool());
}

TEST(JsonTest, WhitespaceTolerated) {
  Json doc = MustParse(" \t\r\n{ \"a\" : [ 1 , 2 ] , \"b\" : null } \n");
  EXPECT_EQ(doc.Dump(), "{\"a\":[1,2],\"b\":null}");
}

TEST(JsonTest, MalformedInputsRejectedWithoutCrashing) {
  const char* corpus[] = {
      "",
      "   ",
      "{",
      "}",
      "[1,",
      "[1 2]",
      "{\"a\"}",
      "{\"a\":}",
      "{\"a\":1,}",
      "{a:1}",
      "{'a':1}",
      "[1,2],",
      "1 2",          // trailing garbage
      "true false",   // trailing garbage
      "nul",
      "tru",
      "falsee",       // literal then trailing garbage
      "\"unterminated",
      "\"bad\\escape\"",
      "\"trunc\\",
      "\"\\u12\"",
      "\"\\uZZZZ\"",
      "\"\\ud83d\"",         // unpaired high surrogate
      "\"\\ud83dxx\"",       // high surrogate then non-escape
      "\"\\ud83d\\u0041\"",  // high surrogate then non-low-surrogate
      "\"\\ude00\"",         // unpaired low surrogate
      "\"ctrl\x01char\"",    // raw control char inside a string
      "01",
      "-",
      "+1",
      "1.",
      ".5",
      "1e",
      "1e+",
      "0x10",
      "NaN",
      "Infinity",
      "-Infinity",
      "1e999",  // overflows double
  };
  for (const char* text : corpus) {
    auto parsed = Json::Parse(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
  }
}

TEST(JsonTest, ParseErrorsCarryCodeAndOffset) {
  auto parsed = Json::Parse("[1, oops]");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find("offset"), std::string::npos);
}

TEST(JsonTest, DepthLimitStopsHostileNesting) {
  // Within the limit: fine.
  std::string shallow;
  for (int i = 0; i < 32; ++i) shallow += '[';
  shallow += "1";
  for (int i = 0; i < 32; ++i) shallow += ']';
  EXPECT_TRUE(Json::Parse(shallow).ok());

  // 100k unclosed brackets: must fail cleanly, not overflow the stack.
  std::string hostile(100000, '[');
  auto parsed = Json::Parse(hostile);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);

  // The limit is configurable.
  EXPECT_FALSE(Json::Parse("[[[[1]]]]", /*max_depth=*/2).ok());
  EXPECT_TRUE(Json::Parse("[[[[1]]]]", /*max_depth=*/8).ok());
}

TEST(JsonTest, LargeFlatDocumentRoundTrips) {
  Json arr = Json::Array();
  for (int i = 0; i < 10000; ++i) {
    Json row = Json::Object();
    row.Set("i", Json::Int(i));
    row.Set("v", Json::Number(i * 0.001));
    arr.Append(std::move(row));
  }
  Json back = MustParse(arr.Dump());
  ASSERT_EQ(back.size(), 10000u);
  EXPECT_EQ(back.at(9999).Find("i")->AsInt(), 9999);
  EXPECT_EQ(back.at(9999).Find("v")->AsDouble(), 9999 * 0.001);
}

}  // namespace
}  // namespace qagview::json
