// Deterministic grammar fuzzing of the SQL front end: random token soups
// and mutated templates must come back as clean error Statuses (or valid
// results), never crashes, hangs, or CHECK failures.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "sql/executor.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "storage/table.h"

namespace qagview::sql {
namespace {

using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

Table MakeTable() {
  Schema schema({{"g", ValueType::kString},
                 {"x", ValueType::kInt64},
                 {"val", ValueType::kDouble}});
  Table t(schema);
  QAG_CHECK_OK(
      t.AppendRow({Value::Str("a"), Value::Int(1), Value::Real(0.5)}));
  QAG_CHECK_OK(
      t.AppendRow({Value::Str("b"), Value::Int(2), Value::Real(1.5)}));
  return t;
}

const char* const kVocabulary[] = {
    "SELECT", "FROM",  "WHERE", "GROUP",  "BY",    "HAVING", "ORDER",
    "LIMIT",  "DESC",  "ASC",   "AND",    "OR",    "NOT",    "AS",
    "avg",    "sum",   "count", "min",    "max",   "g",      "x",
    "val",    "t",     "nope",  "*",      "(",     ")",      ",",
    "=",      "<>",    "<",     ">",      "<=",    ">=",     "+",
    "-",      "/",     "1",     "2.5",    "'s'",   "''",     "0",
};

class SqlFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SqlFuzzTest, RandomTokenSoupsNeverCrash) {
  Table t = MakeTable();
  Catalog catalog;
  catalog.Register("t", &t);
  Rng rng(GetParam());
  constexpr int kQueries = 400;
  int parsed_ok = 0;
  for (int q = 0; q < kQueries; ++q) {
    std::string query;
    int length = 1 + static_cast<int>(rng.Index(24));
    for (int i = 0; i < length; ++i) {
      if (i > 0) query += ' ';
      query += kVocabulary[rng.Index(std::size(kVocabulary))];
    }
    auto result = ExecuteSql(query, catalog);  // must not crash or hang
    parsed_ok += result.ok();
  }
  // The soup is mostly garbage; just assert the loop completed and errors
  // were reported as Statuses.
  EXPECT_GE(parsed_ok, 0);
}

TEST_P(SqlFuzzTest, MutatedTemplateNeverCrashes) {
  Table t = MakeTable();
  Catalog catalog;
  catalog.Register("t", &t);
  Rng rng(GetParam() ^ 0x5EED);
  const std::string base =
      "SELECT g, avg(val) AS v FROM t WHERE x > 0 GROUP BY g "
      "HAVING count(*) > 0 ORDER BY v DESC LIMIT 5";
  for (int q = 0; q < 300; ++q) {
    std::string query = base;
    // 1-3 random single-character mutations: delete, duplicate, or swap in
    // a random printable character.
    int mutations = 1 + static_cast<int>(rng.Index(3));
    for (int mu = 0; mu < mutations && !query.empty(); ++mu) {
      size_t pos = rng.Index(query.size());
      switch (rng.Index(3)) {
        case 0:
          query.erase(pos, 1);
          break;
        case 1:
          query.insert(pos, 1, query[pos]);
          break;
        default:
          query[pos] = static_cast<char>(' ' + rng.Index(95));
      }
    }
    auto tokens = Lexer(query).Tokenize();  // both layers must stay safe
    (void)tokens;
    auto result = ExecuteSql(query, catalog);
    (void)result;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlFuzzTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace qagview::sql
