// BackgroundScheduler battery: lane priority, token-based cancellation,
// shutdown semantics, the foreground gate, and an 8-thread race pinning the
// "speculation never delays foreground work" contract. The concurrency
// cases are written to be meaningful under TSan (no sleeps standing in for
// synchronization; every cross-thread edge goes through the scheduler or a
// latch).

#include "common/background_scheduler.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace qagview {
namespace {

using Lane = BackgroundScheduler::Lane;

/// One-shot gate: lets a test hold the (single) worker inside a task so
/// later submissions queue up in a known order before anything else runs.
class Latch {
 public:
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(BackgroundSchedulerTest, RunsSubmittedTasks) {
  BackgroundScheduler scheduler(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    scheduler.Submit(Lane::kRefinement, 0, [&] { ++ran; });
  }
  scheduler.Drain();
  EXPECT_EQ(ran.load(), 100);
  const auto counters = scheduler.counters();
  EXPECT_EQ(counters.lane(Lane::kRefinement).submitted, 100);
  EXPECT_EQ(counters.lane(Lane::kRefinement).ran, 100);
  EXPECT_EQ(counters.lane(Lane::kRefinement).dropped_superseded, 0);
}

TEST(BackgroundSchedulerTest, HigherLaneAlwaysDequeuesFirst) {
  // Hold the single worker hostage, queue one task per lane in *reverse*
  // priority order, then release: execution order must follow lane
  // priority, not submission order.
  BackgroundScheduler scheduler(1);
  Latch gate;
  scheduler.Submit(Lane::kPrefetch, 0, [&] { gate.Wait(); });

  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int lane) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(lane);
  };
  scheduler.Submit(Lane::kPrefetch, 0, [&] { record(2); });
  scheduler.Submit(Lane::kRefinement, 0, [&] { record(1); });
  scheduler.Submit(Lane::kForegroundBuild, 0, [&] { record(0); });
  // Second wave, same shape: FIFO within a lane must be preserved too.
  scheduler.Submit(Lane::kPrefetch, 0, [&] { record(12); });
  scheduler.Submit(Lane::kRefinement, 0, [&] { record(11); });
  scheduler.Submit(Lane::kForegroundBuild, 0, [&] { record(10); });

  gate.Open();
  scheduler.Drain();
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order, (std::vector<int>{0, 10, 1, 11, 2, 12}));
}

TEST(BackgroundSchedulerTest, InvalidateBelowDropsQueuedSuperseded) {
  BackgroundScheduler scheduler(1);
  Latch gate;
  scheduler.Submit(Lane::kPrefetch, 0, [&] { gate.Wait(); });

  std::atomic<int> ran_old{0}, ran_new{0}, ran_pinned{0};
  scheduler.Submit(Lane::kPrefetch, 5, [&] { ++ran_old; });
  scheduler.Submit(Lane::kPrefetch, 5, [&] { ++ran_old; });
  scheduler.Submit(Lane::kPrefetch, 7, [&] { ++ran_new; });
  scheduler.Submit(Lane::kPrefetch, 0, [&] { ++ran_pinned; });

  scheduler.InvalidateBelow(6);
  gate.Open();
  scheduler.Drain();

  EXPECT_EQ(ran_old.load(), 0) << "token 5 < floor 6 must never run";
  EXPECT_EQ(ran_new.load(), 1);
  EXPECT_EQ(ran_pinned.load(), 1) << "token 0 is never superseded";
  const auto counters = scheduler.counters();
  EXPECT_EQ(counters.lane(Lane::kPrefetch).dropped_superseded, 2);
}

TEST(BackgroundSchedulerTest, LateSubmitBelowFloorIsDropped) {
  BackgroundScheduler scheduler(1);
  scheduler.InvalidateBelow(10);
  std::atomic<int> ran{0};
  scheduler.Submit(Lane::kPrefetch, 9, [&] { ++ran; });
  scheduler.Submit(Lane::kPrefetch, 10, [&] { ++ran; });
  scheduler.Drain();
  EXPECT_EQ(ran.load(), 1) << "only the at-floor task may run";
  EXPECT_EQ(scheduler.counters().lane(Lane::kPrefetch).dropped_superseded, 1);
}

TEST(BackgroundSchedulerTest, FloorIsMonotonic) {
  BackgroundScheduler scheduler(1);
  scheduler.InvalidateBelow(10);
  scheduler.InvalidateBelow(4);  // stale: must not lower the floor
  std::atomic<int> ran{0};
  scheduler.Submit(Lane::kPrefetch, 5, [&] { ++ran; });
  scheduler.Drain();
  EXPECT_EQ(ran.load(), 0);
}

TEST(BackgroundSchedulerTest, DestructorDropsQueuedAndJoinsRunning) {
  std::atomic<int> ran{0};
  std::atomic<bool> running_finished{false};
  {
    BackgroundScheduler scheduler(1);
    Latch started, gate;
    scheduler.Submit(Lane::kRefinement, 0, [&] {
      started.Open();
      gate.Wait();
      running_finished.store(true);
    });
    for (int i = 0; i < 50; ++i) {
      scheduler.Submit(Lane::kRefinement, 0, [&] { ++ran; });
    }
    started.Wait();  // the first task is definitely *running*, not queued
    gate.Open();
    // Destructor races the worker: it may run a few queued tasks before
    // the stop flag is observed, but must finish the *running* one and
    // must not hang waiting for the rest.
  }
  EXPECT_TRUE(running_finished.load())
      << "shutdown must join the in-flight task, not abandon it";
  EXPECT_LE(ran.load(), 50);
}

TEST(BackgroundSchedulerTest, ForegroundGateParksPrefetchOnly) {
  BackgroundScheduler scheduler(2);
  scheduler.BeginForeground();

  std::atomic<int> prefetch_ran{0}, owed_ran{0};
  scheduler.Submit(Lane::kPrefetch, 0, [&] { ++prefetch_ran; });
  scheduler.Submit(Lane::kRefinement, 0, [&] { ++owed_ran; });
  scheduler.Submit(Lane::kForegroundBuild, 0, [&] { ++owed_ran; });

  // Owed lanes are not gated: wait (bounded) for both to run while the
  // window is still open.
  for (int spin = 0; owed_ran.load() < 2 && spin < 2000; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(owed_ran.load(), 2);
  EXPECT_EQ(prefetch_ran.load(), 0) << "prefetch must not start while a "
                                       "foreground window is open";

  scheduler.EndForeground();
  scheduler.Drain();
  EXPECT_EQ(prefetch_ran.load(), 1);
}

TEST(BackgroundSchedulerTest, NullForegroundGuardIsNoOp) {
  BackgroundScheduler::ForegroundGuard guard(nullptr);  // must not crash
  BackgroundScheduler scheduler(1);
  {
    BackgroundScheduler::ForegroundGuard inner(&scheduler);
    std::atomic<int> ran{0};
    scheduler.Submit(Lane::kForegroundBuild, 0, [&] { ++ran; });
    scheduler.Drain();
    EXPECT_EQ(ran.load(), 1);
  }
  scheduler.Drain();
}

TEST(BackgroundSchedulerTest, DrainWaitsOutGatedPrefetch) {
  // Drain must not return while gated prefetch work is still queued; it
  // waits for the window to close and the work to run.
  BackgroundScheduler scheduler(1);
  scheduler.BeginForeground();
  std::atomic<int> ran{0};
  scheduler.Submit(Lane::kPrefetch, 0, [&] { ++ran; });
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    scheduler.EndForeground();
  });
  scheduler.Drain();
  EXPECT_EQ(ran.load(), 1);
  closer.join();
}

TEST(BackgroundSchedulerTest, EightThreadForegroundVersusPrefetchRace) {
  // 8 threads hammer the scheduler while one foreground window stays open
  // the whole time. Every prefetch task is submitted strictly *after* the
  // window opened, so the gate invariant is checkable without racing it:
  // not a single prefetch task may run until the window closes, while the
  // owed lanes (the foreground latency classes) keep flowing unimpeded.
  // Under TSan this is also the data-race battery for Submit/dequeue/
  // counters from many threads.
  BackgroundScheduler scheduler(4);
  scheduler.BeginForeground();

  std::atomic<int64_t> prefetch_ran{0};
  std::atomic<int64_t> owed_ran{0};
  std::atomic<bool> go{false};

  const int kThreads = 8;
  const int kRoundsPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (int round = 0; round < kRoundsPerThread; ++round) {
        if (t % 2 == 0) {
          const Lane lane =
              round % 2 == 0 ? Lane::kForegroundBuild : Lane::kRefinement;
          scheduler.Submit(lane, 0, [&] { ++owed_ran; });
        } else {
          scheduler.Submit(Lane::kPrefetch, 1, [&] { ++prefetch_ran; });
        }
      }
    });
  }
  go.store(true);
  for (auto& t : threads) t.join();

  // All owed work must complete *while the window is still open*: the
  // foreground gate parks speculation only, never the serving lanes.
  const int64_t owed_expected = int64_t{kThreads / 2} * kRoundsPerThread;
  for (int spin = 0; owed_ran.load() < owed_expected && spin < 10000; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(owed_ran.load(), owed_expected);
  EXPECT_EQ(prefetch_ran.load(), 0)
      << "a prefetch task ran inside the foreground window";
  EXPECT_EQ(scheduler.counters().lane(Lane::kPrefetch).ran, 0);

  scheduler.EndForeground();
  scheduler.Drain();
  EXPECT_EQ(prefetch_ran.load(), int64_t{kThreads / 2} * kRoundsPerThread);
  const auto counters = scheduler.counters();
  for (int lane = 0; lane < BackgroundScheduler::kNumLanes; ++lane) {
    const auto& c = counters.lanes[lane];
    EXPECT_EQ(c.submitted, c.ran + c.dropped_superseded)
        << "lane " << lane << " counters must balance after Drain";
  }
}

TEST(BackgroundSchedulerTest, TasksSubmittedFromTasksComplete) {
  // A task may enqueue follow-up work (prefetch builds schedule snapshot
  // writes); Drain must cover the transitively submitted tasks too.
  BackgroundScheduler scheduler(2);
  std::atomic<int> ran{0};
  scheduler.Submit(Lane::kPrefetch, 0, [&] {
    ++ran;
    scheduler.Submit(Lane::kPrefetch, 0, [&] {
      ++ran;
      scheduler.Submit(Lane::kPrefetch, 0, [&] { ++ran; });
    });
  });
  scheduler.Drain();
  EXPECT_EQ(ran.load(), 3);
}

}  // namespace
}  // namespace qagview
