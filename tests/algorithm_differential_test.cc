// Standing randomized differential test for the core engine, extending the
// bit-identity philosophy of the parallel-precompute work into a property
// test: on seeded small instances,
//
//  * the cluster universe is bit-identical at 1/2/8 build threads, and so
//    is every algorithm result computed over it;
//  * in the singleton-optimal regime (k >= L, D <= 1) BottomUp, Hybrid,
//    and BruteForce must agree exactly — same weight, same (unique)
//    solution: the top-L singletons;
//  * in the general regime every algorithm's output is feasible
//    (Definition 4.1) and the exact BruteForce weight dominates both
//    greedy weights.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "core/bottom_up.h"
#include "core/brute_force.h"
#include "core/hybrid.h"
#include "test_util.h"

namespace qagview::core {
namespace {

/// Universe-independent identity of a solution: the sorted cluster
/// patterns (ids are only meaningful within one universe) plus objective
/// stats.
std::vector<std::vector<int32_t>> Patterns(const ClusterUniverse& universe,
                                           const Solution& solution) {
  std::vector<std::vector<int32_t>> out;
  out.reserve(solution.cluster_ids.size());
  for (int id : solution.cluster_ids) {
    out.push_back(universe.cluster(id).pattern());
  }
  std::sort(out.begin(), out.end());
  return out;
}

ClusterUniverse BuildUniverse(const AnswerSet& answers, int top_l,
                              int num_threads) {
  UniverseOptions options;
  options.num_threads = num_threads;
  auto universe = ClusterUniverse::Build(&answers, top_l, options);
  QAG_CHECK(universe.ok()) << universe.status().ToString();
  return std::move(universe).value();
}

class AlgorithmDifferentialTest : public testing::TestWithParam<int> {};

TEST_P(AlgorithmDifferentialTest, UniverseBitIdenticalAcrossThreadCounts) {
  for (int i = 0; i < 5; ++i) {
    const uint64_t seed = static_cast<uint64_t>(GetParam()) * 5 + i;
    SCOPED_TRACE(StrCat("seed ", seed));
    Rng rng(seed * 31 + 11);
    const int n = 24 + static_cast<int>(rng.Index(30));
    const int m = 3 + static_cast<int>(rng.Index(2));
    AnswerSet answers = testutil::MakeRandomAnswerSet(seed, n, m, 4);
    const int top_l = 5 + static_cast<int>(rng.Index(4));

    ClusterUniverse reference = BuildUniverse(answers, top_l, 1);
    for (int threads : {2, 8}) {
      ClusterUniverse parallel = BuildUniverse(answers, top_l, threads);
      ASSERT_EQ(parallel.num_clusters(), reference.num_clusters())
          << threads << " threads";
      for (int c = 0; c < reference.num_clusters(); ++c) {
        ASSERT_EQ(parallel.cluster(c).pattern(),
                  reference.cluster(c).pattern());
        ASSERT_EQ(parallel.covered(c), reference.covered(c));
        ASSERT_EQ(parallel.covered_sum(c), reference.covered_sum(c));
      }
      // Algorithms over bit-identical universes give bit-identical
      // results, ids included.
      Params params{3, top_l, 2};
      auto serial = BottomUp::Run(reference, params);
      auto threaded = BottomUp::Run(parallel, params);
      ASSERT_TRUE(serial.ok());
      ASSERT_TRUE(threaded.ok());
      EXPECT_EQ(serial->cluster_ids, threaded->cluster_ids);
      EXPECT_EQ(serial->average, threaded->average);
    }
  }
}

TEST_P(AlgorithmDifferentialTest, SingletonRegimeAllThreeAlgorithmsAgree) {
  for (int i = 0; i < 5; ++i) {
    const uint64_t seed = 500 + static_cast<uint64_t>(GetParam()) * 5 + i;
    SCOPED_TRACE(StrCat("seed ", seed));
    Rng rng(seed * 67 + 5);
    const int n = 24 + static_cast<int>(rng.Index(24));
    AnswerSet answers = testutil::MakeRandomAnswerSet(seed, n, 3, 4);
    const int top_l = 5 + static_cast<int>(rng.Index(3));
    ClusterUniverse universe = BuildUniverse(answers, top_l, 1);

    // k >= L with no distance constraint to speak of (D = 1 is trivially
    // satisfied by distinct patterns): the optimum weight is TopAverage(L)
    // — every redundant covered element ranks below value(L-1) and values
    // are continuous, so covering anything beyond the top-L strictly
    // lowers the average. All three algorithms must agree on that weight.
    Params params{top_l, top_l, 1};
    auto bottom_up = BottomUp::Run(universe, params);
    auto hybrid = Hybrid::Run(universe, params);
    auto brute = BruteForce::Run(universe, params);
    ASSERT_TRUE(bottom_up.ok()) << bottom_up.status().ToString();
    ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
    ASSERT_TRUE(brute.ok()) << brute.status().ToString();
    ASSERT_TRUE(brute->exact);

    EXPECT_NEAR(bottom_up->average, answers.TopAverage(top_l), 1e-9);
    EXPECT_NEAR(hybrid->average, answers.TopAverage(top_l), 1e-9);
    EXPECT_NEAR(brute->solution.average, answers.TopAverage(top_l), 1e-9);
    EXPECT_EQ(bottom_up->covered_count, top_l);
    EXPECT_EQ(hybrid->covered_count, top_l);
    EXPECT_EQ(brute->solution.covered_count, top_l);

    // The optimum is the top-L singletons, uniquely — unless some
    // wildcarded cluster covers only top-L elements (swapping it for its
    // singletons keeps the average bit-identical, even when it covers just
    // one). Detect that and assert solution agreement exactly when
    // uniqueness holds.
    bool unique = true;
    for (int c = 0; c < universe.num_clusters(); ++c) {
      if (universe.cluster(c).level() > 0 &&
          universe.top_covered_count(c) == universe.covered_count(c)) {
        unique = false;
        break;
      }
    }
    if (unique) {
      auto expected = Patterns(universe, *bottom_up);
      EXPECT_EQ(Patterns(universe, *hybrid), expected);
      EXPECT_EQ(Patterns(universe, brute->solution), expected);
      EXPECT_EQ(static_cast<int>(expected.size()), top_l);
    }
  }
}

TEST_P(AlgorithmDifferentialTest, GeneralRegimeFeasibleAndDominated) {
  for (int i = 0; i < 5; ++i) {
    const uint64_t seed = 900 + static_cast<uint64_t>(GetParam()) * 5 + i;
    SCOPED_TRACE(StrCat("seed ", seed));
    Rng rng(seed * 101 + 3);
    const int n = 20 + static_cast<int>(rng.Index(20));
    const int m = 3;
    AnswerSet answers = testutil::MakeRandomAnswerSet(seed, n, m, 4);
    const int top_l = 4 + static_cast<int>(rng.Index(4));
    const int k = 2 + static_cast<int>(rng.Index(3));
    const int d = 1 + static_cast<int>(rng.Index(m));
    Params params{k, top_l, d};
    SCOPED_TRACE(params.ToString());
    ClusterUniverse universe = BuildUniverse(answers, top_l, 1);

    auto bottom_up = BottomUp::Run(universe, params);
    auto hybrid = Hybrid::Run(universe, params);
    BruteForceOptions brute_options;
    brute_options.time_budget_seconds = 10.0;
    auto brute = BruteForce::Run(universe, params, brute_options);
    // Tight (k, D) combinations can be infeasible; all solvers must then
    // agree there is no solution.
    if (!brute.ok()) {
      EXPECT_FALSE(bottom_up.ok());
      EXPECT_FALSE(hybrid.ok());
      continue;
    }
    ASSERT_TRUE(brute->exact);
    ASSERT_TRUE(bottom_up.ok()) << bottom_up.status().ToString();
    ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();

    // Every output is feasible under Definition 4.1...
    EXPECT_TRUE(
        CheckFeasible(universe, bottom_up->cluster_ids, params).ok());
    EXPECT_TRUE(CheckFeasible(universe, hybrid->cluster_ids, params).ok());
    EXPECT_TRUE(
        CheckFeasible(universe, brute->solution.cluster_ids, params).ok());
    // ...and the exact optimum dominates both greedy weights.
    EXPECT_GE(brute->solution.average, bottom_up->average - 1e-9);
    EXPECT_GE(brute->solution.average, hybrid->average - 1e-9);
  }
}

// 8 blocks x 5 seeds per property = 120 instances total.
INSTANTIATE_TEST_SUITE_P(Seeds, AlgorithmDifferentialTest,
                         testing::Range(0, 8));

}  // namespace
}  // namespace qagview::core
