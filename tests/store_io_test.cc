#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/precompute.h"
#include "core/solution_store_io.h"
#include "test_util.h"

namespace qagview::core {
namespace {

struct Instance {
  std::unique_ptr<AnswerSet> set;
  ClusterUniverse u;
};

Instance MakeInstance(uint64_t seed, int n, int m, int domain, int top_l) {
  auto set = std::make_unique<AnswerSet>(
      testutil::MakeRandomAnswerSet(seed, n, m, domain));
  auto u = ClusterUniverse::Build(set.get(), top_l);
  QAG_CHECK(u.ok()) << u.status().ToString();
  return Instance{std::move(set), std::move(u).value()};
}

SolutionStore MakeStore(const Instance& inst, int top_l) {
  PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 8;
  options.d_values = {1, 2, 3};
  auto store = Precompute::Run(inst.u, top_l, options);
  QAG_CHECK(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

TEST(StoreIoTest, RoundTripPreservesEveryRetrievableSolution) {
  Instance inst = MakeInstance(5, 80, 5, 3, 16);
  SolutionStore store = MakeStore(inst, 16);

  std::string text = SerializeSolutionStore(store);
  auto loaded = DeserializeSolutionStore(&inst.u, text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->l(), store.l());
  EXPECT_EQ(loaded->k_max(), store.k_max());
  EXPECT_EQ(loaded->d_values(), store.d_values());
  EXPECT_EQ(loaded->num_intervals(), store.num_intervals());

  for (int d : store.d_values()) {
    int min_k = store.MinK(d).value();
    ASSERT_EQ(loaded->MinK(d).value(), min_k);
    for (int k = min_k; k <= store.k_max() + 2; ++k) {
      auto original = store.Retrieve(d, k);
      auto reloaded = loaded->Retrieve(d, k);
      ASSERT_TRUE(original.ok());
      ASSERT_TRUE(reloaded.ok());
      // Same cluster set (ids resolve back through the shared universe).
      std::vector<int> a = original->cluster_ids;
      std::vector<int> b = reloaded->cluster_ids;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b) << "D=" << d << " k=" << k;
      EXPECT_NEAR(original->average, reloaded->average, 1e-12);
      EXPECT_NEAR(store.Value(d, k).value(), loaded->Value(d, k).value(),
                  1e-12);
    }
  }
}

TEST(StoreIoTest, RoundTripSurvivesUniverseRebuild) {
  // The realistic reload scenario: a later process rebuilds the universe
  // from the same answer set and loads the serialized store against it.
  Instance inst = MakeInstance(7, 70, 4, 4, 12);
  SolutionStore store = MakeStore(inst, 12);
  std::string text = SerializeSolutionStore(store);

  auto rebuilt = ClusterUniverse::Build(inst.set.get(), 12);
  ASSERT_TRUE(rebuilt.ok());
  auto loaded = DeserializeSolutionStore(&*rebuilt, text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (int d : store.d_values()) {
    int min_k = store.MinK(d).value();
    for (int k = min_k; k <= store.k_max(); ++k) {
      EXPECT_NEAR(store.Value(d, k).value(), loaded->Value(d, k).value(),
                  1e-12);
      EXPECT_NEAR(store.Retrieve(d, k)->average,
                  loaded->Retrieve(d, k)->average, 1e-12);
    }
  }
}

TEST(StoreIoTest, SerializedFormHasExpectedHeader) {
  Instance inst = MakeInstance(9, 60, 4, 3, 10);
  SolutionStore store = MakeStore(inst, 10);
  std::string text = SerializeSolutionStore(store);
  EXPECT_EQ(text.rfind("qagview-store 1 10 8 4 3", 0), 0u) << text.substr(0, 40);
}

TEST(StoreIoTest, RejectsGarbageAndTruncation) {
  Instance inst = MakeInstance(11, 60, 4, 3, 10);
  SolutionStore store = MakeStore(inst, 10);
  std::string text = SerializeSolutionStore(store);

  EXPECT_FALSE(DeserializeSolutionStore(&inst.u, "").ok());
  EXPECT_FALSE(DeserializeSolutionStore(&inst.u, "hello world").ok());
  // Wrong version.
  std::string wrong_version = text;
  wrong_version.replace(wrong_version.find(" 1 "), 3, " 9 ");
  EXPECT_FALSE(DeserializeSolutionStore(&inst.u, wrong_version).ok());
  // Truncated mid-stream.
  EXPECT_FALSE(
      DeserializeSolutionStore(&inst.u, text.substr(0, text.size() / 2))
          .ok());
  EXPECT_FALSE(DeserializeSolutionStore(nullptr, text).ok());
}

TEST(StoreIoTest, RejectsHostileHeadersBeforeDoingWork) {
  // Untrusted-disk hardening: counts and coordinates are range-checked
  // before any narrowing cast or allocation, so a lying header is a clean
  // InvalidArgument, never unbounded work or a crash.
  Instance inst = MakeInstance(17, 60, 4, 3, 10);
  auto expect_rejected = [&](const std::string& text, const char* label) {
    auto result = DeserializeSolutionStore(&inst.u, text);
    EXPECT_FALSE(result.ok()) << label;
  };
  // Counts far beyond the structural ceilings.
  expect_rejected("qagview-store 1 99999999999 8 4 3\n", "huge L");
  expect_rejected("qagview-store 1 10 99999999999 4 3\n", "huge k_max");
  expect_rejected("qagview-store 1 10 8 99999999 3\n", "huge num_attrs");
  expect_rejected("qagview-store 1 10 8 4 99999999\n", "huge num_d");
  // Negative and zero where impossible.
  expect_rejected("qagview-store 1 -1 8 4 3\n", "negative L");
  expect_rejected("qagview-store 1 0 8 4 3\n", "zero L");
  expect_rejected("qagview-store 1 10 8 4 -1\n", "negative num_d");
  // Per-D block lying about its shape.
  expect_rejected(
      "qagview-store 1 10 8 4 1\nd 2 states 99999999999 intervals 0\n",
      "huge state count");
  expect_rejected(
      "qagview-store 1 10 8 4 1\nd 99 states 1 intervals 0\ns 1 0.5\n",
      "D beyond num_attrs");
  expect_rejected(
      "qagview-store 1 10 8 4 1\nd 2 states 1 intervals 999999999999\n"
      "s 1 0.5\n",
      "huge interval count");
  // Non-finite state values are damage, not data.
  expect_rejected(
      "qagview-store 1 10 8 4 1\nd 2 states 1 intervals 0\ns 1 nan\n",
      "NaN state value");
  expect_rejected(
      "qagview-store 1 10 8 4 1\nd 2 states 1 intervals 0\ns 1 inf\n",
      "infinite state value");
  // Interval coordinates outside [1, k_max ceiling].
  expect_rejected(
      "qagview-store 1 10 8 4 1\nd 2 states 1 intervals 1\ns 1 0.5\n"
      "i 0 5 * * * *\n",
      "zero interval lo");
  expect_rejected(
      "qagview-store 1 10 8 4 1\nd 2 states 1 intervals 1\ns 1 0.5\n"
      "i 1 99999999999 * * * *\n",
      "huge interval hi");
  // Attribute codes must be non-negative int32.
  expect_rejected(
      "qagview-store 1 10 8 4 1\nd 2 states 1 intervals 1\ns 1 0.5\n"
      "i 1 5 -7 * * *\n",
      "negative attribute code");
  expect_rejected(
      "qagview-store 1 10 8 4 1\nd 2 states 1 intervals 1\ns 1 0.5\n"
      "i 1 5 99999999999 * * *\n",
      "overflowing attribute code");
}

TEST(StoreIoTest, BitFlipCorpusNeverCrashesOrCorrupts) {
  // Flip one byte at a spread of positions across a real serialized store.
  // Every variant must either fail cleanly or parse into a store whose
  // retrievable solutions are well-formed — no crash, no partial store.
  Instance inst = MakeInstance(19, 60, 4, 3, 10);
  SolutionStore store = MakeStore(inst, 10);
  const std::string text = SerializeSolutionStore(store);
  const size_t step = text.size() / 97 + 1;
  int parsed = 0, rejected = 0;
  for (size_t pos = 0; pos < text.size(); pos += step) {
    for (char flip : {char(0x01), char(0x10)}) {
      std::string damaged = text;
      damaged[pos] = static_cast<char>(damaged[pos] ^ flip);
      auto loaded = DeserializeSolutionStore(&inst.u, damaged);
      if (!loaded.ok()) {
        ++rejected;
        continue;
      }
      ++parsed;
      // A flip can land in a value digit and still parse; the store must
      // nonetheless be structurally sound end to end.
      for (int d : loaded->d_values()) {
        auto min_k = loaded->MinK(d);
        ASSERT_TRUE(min_k.ok());
        auto solution = loaded->Retrieve(d, *min_k);
        ASSERT_TRUE(solution.ok()) << "pos " << pos;
      }
    }
  }
  EXPECT_GT(rejected, 0) << "corpus too small to hit a structural byte";
  (void)parsed;  // benign flips (value digits) are allowed to parse
}

TEST(StoreIoTest, PeekValidatesVersionAndRange) {
  Instance inst = MakeInstance(23, 60, 4, 3, 10);
  SolutionStore store = MakeStore(inst, 10);
  std::string path = testing::TempDir() + "/qagview_store_peek.txt";
  ASSERT_TRUE(SaveSolutionStore(store, path).ok());
  auto l = PeekSolutionStoreL(path);
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(*l, 10);

  std::ofstream(path, std::ios::trunc) << "qagview-store 9 10 8 4 3\n";
  EXPECT_FALSE(PeekSolutionStoreL(path).ok()) << "wrong version must fail";
  std::ofstream(path, std::ios::trunc)
      << "qagview-store 1 99999999999 8 4 3\n";
  EXPECT_FALSE(PeekSolutionStoreL(path).ok()) << "implausible L must fail";
  EXPECT_FALSE(PeekSolutionStoreL(path + ".absent").ok());
}

TEST(StoreIoTest, RejectsForeignUniverse) {
  Instance inst = MakeInstance(13, 60, 4, 3, 10);
  SolutionStore store = MakeStore(inst, 10);
  std::string text = SerializeSolutionStore(store);

  // Same shape (m, domain) but a different answer set: the patterns in the
  // store are not in this universe's top-L closure.
  Instance other = MakeInstance(999, 60, 4, 3, 10);
  auto loaded = DeserializeSolutionStore(&other.u, text);
  EXPECT_FALSE(loaded.ok());

  // Wrong attribute count fails at the header.
  Instance narrow = MakeInstance(13, 60, 5, 3, 10);
  EXPECT_FALSE(DeserializeSolutionStore(&narrow.u, text).ok());

  // A universe covering a smaller L than the store fails the L check.
  auto small = ClusterUniverse::Build(inst.set.get(), 4);
  ASSERT_TRUE(small.ok());
  EXPECT_FALSE(DeserializeSolutionStore(&*small, text).ok());
}

TEST(StoreIoTest, FileRoundTrip) {
  Instance inst = MakeInstance(17, 60, 4, 3, 10);
  SolutionStore store = MakeStore(inst, 10);
  std::string path = testing::TempDir() + "/qagview_store_io_test.txt";
  ASSERT_TRUE(SaveSolutionStore(store, path).ok());
  auto loaded = LoadSolutionStore(&inst.u, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->d_values(), store.d_values());
  std::remove(path.c_str());

  EXPECT_FALSE(SaveSolutionStore(store, "/nonexistent-dir/x.txt").ok());
  EXPECT_FALSE(LoadSolutionStore(&inst.u, "/nonexistent-dir/x.txt").ok());
}

TEST(StoreFromPartsTest, ValidatesParts) {
  Instance inst = MakeInstance(19, 60, 4, 3, 10);
  EXPECT_FALSE(SolutionStore::FromParts(nullptr, 10, 8, {}).ok());

  // Empty states.
  SolutionStore::PartsPerD empty;
  empty.d = 1;
  EXPECT_FALSE(SolutionStore::FromParts(&inst.u, 10, 8, {empty}).ok());

  // Non-decreasing sizes.
  SolutionStore::PartsPerD bad_sizes;
  bad_sizes.d = 1;
  bad_sizes.size_value = {{3, 1.0}, {3, 1.0}};
  EXPECT_FALSE(SolutionStore::FromParts(&inst.u, 10, 8, {bad_sizes}).ok());

  // Malformed interval (lo > hi).
  SolutionStore::PartsPerD bad_interval;
  bad_interval.d = 1;
  bad_interval.size_value = {{3, 1.0}, {2, 0.9}};
  bad_interval.intervals = {{5, 3, 0}};
  EXPECT_FALSE(
      SolutionStore::FromParts(&inst.u, 10, 8, {bad_interval}).ok());

  // Cluster id out of range.
  SolutionStore::PartsPerD bad_id;
  bad_id.d = 1;
  bad_id.size_value = {{3, 1.0}, {2, 0.9}};
  bad_id.intervals = {{2, 3, inst.u.num_clusters()}};
  EXPECT_FALSE(SolutionStore::FromParts(&inst.u, 10, 8, {bad_id}).ok());

  // Duplicate D blocks.
  SolutionStore::PartsPerD ok_part;
  ok_part.d = 1;
  ok_part.size_value = {{1, 1.0}};
  ok_part.intervals = {{1, 8, 0}};
  EXPECT_FALSE(
      SolutionStore::FromParts(&inst.u, 10, 8, {ok_part, ok_part}).ok());
  EXPECT_TRUE(SolutionStore::FromParts(&inst.u, 10, 8, {ok_part}).ok());
}

}  // namespace
}  // namespace qagview::core
