// End-to-end coverage of the HTTP front end (server/server.h) over a
// loopback socket:
//
//  * bit-identity: every endpoint's payload equals the direct
//    QueryService struct call, doubles included (the serde round-trip
//    contract);
//  * a malformed-request corpus (truncated bodies, bad JSON, oversized
//    headers, hostile request lines) answered with 4xx/501 — the server
//    never crashes, mirroring csv_fuzz_test's posture;
//  * overload: a full admission queue sheds load with 503 + Retry-After
//    at the acceptor, and the server recovers once pressure lifts;
//  * graceful drain: Shutdown() finishes every admitted request — the
//    transport counters balance exactly and every 2xx the server counted
//    was fully received by a client.
//
// Runs under TSan and ASan+UBSan in CI (the sanitize job lists it
// explicitly), so the acceptor/worker handoff and the shutdown path are
// race-checked, not just functionally checked.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/string_util.h"
#include "server/loadgen.h"
#include "server/serde.h"
#include "server/server.h"
#include "service/query_service.h"
#include "test_util.h"

namespace qagview::server {
namespace {

using json::Json;

constexpr char kHost[] = "127.0.0.1";
constexpr char kSql[] =
    "SELECT g0, g1, g2, avg(rating) AS val FROM ratings "
    "GROUP BY g0, g1, g2 HAVING count(*) > 3 ORDER BY val DESC";

/// The response payload with its per-call provenance stripped: RequestStats
/// (latency, cache flags) legitimately differs between the direct call and
/// the HTTP call; everything else must round-trip bit-for-bit.
template <typename Response>
std::string Fingerprint(Response response) {
  response.stats = service::RequestStats();
  return ToJson(response).Dump();
}

Json MustParse(const std::string& text) {
  Result<Json> doc = Json::Parse(text);
  QAG_CHECK_OK(doc.status());
  return *doc;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<service::QueryService>();
    QAG_CHECK_OK(service_->RegisterTable(
        "ratings", testutil::MakeRatingsTable(71, 1500)));
    ServerOptions options;
    options.num_workers = 3;
    server_ = std::make_unique<HttpServer>(service_.get(), options);
    QAG_CHECK_OK(server_->Start());
  }

  void TearDown() override { server_->Shutdown(); }

  Result<HttpClientResponse> Post(const std::string& target,
                                  const Json& body) {
    return HttpFetch(kHost, server_->port(), "POST", target, body.Dump());
  }

  Result<HttpClientResponse> Get(const std::string& target) {
    return HttpFetch(kHost, server_->port(), "GET", target, "");
  }

  service::QueryHandle OpenHandle() {
    service::QueryRequest request;
    request.sql = kSql;
    request.value_column = "val";
    Result<service::QueryResponse> response = service_->Query(request);
    QAG_CHECK_OK(response.status());
    return response->handle;
  }

  std::unique_ptr<service::QueryService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServerTest, QueryIsBitIdenticalToDirectCall) {
  service::QueryRequest request;
  request.sql = kSql;
  request.value_column = "val";

  Result<service::QueryResponse> direct = service_->Query(request);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  Result<HttpClientResponse> http = Post("/query", ToJson(request));
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  ASSERT_EQ(http->status, 200) << http->body;
  Result<service::QueryResponse> parsed =
      QueryResponseFromJson(MustParse(http->body));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(Fingerprint(*direct), Fingerprint(*parsed));
  EXPECT_EQ(parsed->handle, direct->handle);  // same cached session
  // The HTTP repeat of an identical query was a session cache hit.
  EXPECT_TRUE(parsed->stats.cache_hit);
}

TEST_F(ServerTest, SummarizeIsBitIdenticalToDirectCall) {
  service::SummarizeRequest request;
  request.handle = OpenHandle();
  request.params = core::Params{4, 8, 2};

  Result<service::SummarizeResponse> direct = service_->Summarize(request);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  Result<HttpClientResponse> http = Post("/summarize", ToJson(request));
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  ASSERT_EQ(http->status, 200) << http->body;
  Result<service::SummarizeResponse> parsed =
      SummarizeResponseFromJson(MustParse(http->body));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  // Doubles included: covered_sum/average must survive JSON exactly.
  EXPECT_EQ(Fingerprint(*direct), Fingerprint(*parsed));
}

TEST_F(ServerTest, GuidanceAndRetrieveAreBitIdenticalToDirectCalls) {
  service::GuidanceRequest guidance;
  guidance.handle = OpenHandle();
  guidance.top_l = 10;

  Result<service::GuidanceResponse> direct = service_->Guidance(guidance);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  Result<HttpClientResponse> http = Post("/guidance", ToJson(guidance));
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  ASSERT_EQ(http->status, 200) << http->body;
  Result<service::GuidanceResponse> parsed =
      GuidanceResponseFromJson(MustParse(http->body));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(Fingerprint(*direct), Fingerprint(*parsed));
  ASSERT_FALSE(parsed->min_ks.empty());

  service::RetrieveRequest retrieve;
  retrieve.handle = guidance.handle;
  retrieve.top_l = 10;
  retrieve.d = parsed->d_values.front();
  retrieve.k = parsed->min_ks.front();

  Result<service::RetrieveResponse> direct_solution =
      service_->Retrieve(retrieve);
  ASSERT_TRUE(direct_solution.ok()) << direct_solution.status().ToString();
  Result<HttpClientResponse> http_solution =
      Post("/retrieve", ToJson(retrieve));
  ASSERT_TRUE(http_solution.ok()) << http_solution.status().ToString();
  ASSERT_EQ(http_solution->status, 200) << http_solution->body;
  Result<service::RetrieveResponse> parsed_solution =
      RetrieveResponseFromJson(MustParse(http_solution->body));
  ASSERT_TRUE(parsed_solution.ok()) << parsed_solution.status().ToString();
  EXPECT_EQ(Fingerprint(*direct_solution), Fingerprint(*parsed_solution));
}

TEST_F(ServerTest, ExploreAndRefineAreBitIdenticalToDirectCalls) {
  service::ExploreRequest explore;
  explore.handle = OpenHandle();
  explore.params = core::Params{4, 8, 2};
  explore.max_members = 5;

  Result<service::ExploreResponse> direct = service_->Explore(explore);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  Result<HttpClientResponse> http = Post("/explore", ToJson(explore));
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  ASSERT_EQ(http->status, 200) << http->body;
  Result<service::ExploreResponse> parsed =
      ExploreResponseFromJson(MustParse(http->body));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Both rendered display layers travel intact (multi-line strings with
  // escapes are the JSON writer's hardest case).
  EXPECT_EQ(Fingerprint(*direct), Fingerprint(*parsed));
  EXPECT_EQ(parsed->summary, direct->summary);
  EXPECT_EQ(parsed->expanded, direct->expanded);

  service::RefineRequest refine;
  refine.handle = explore.handle;
  Result<service::RefineResponse> direct_refine = service_->Refine(refine);
  ASSERT_TRUE(direct_refine.ok()) << direct_refine.status().ToString();
  Result<HttpClientResponse> http_refine = Post("/refine", ToJson(refine));
  ASSERT_TRUE(http_refine.ok()) << http_refine.status().ToString();
  ASSERT_EQ(http_refine->status, 200) << http_refine->body;
  Result<service::RefineResponse> parsed_refine =
      RefineResponseFromJson(MustParse(http_refine->body));
  ASSERT_TRUE(parsed_refine.ok()) << parsed_refine.status().ToString();
  EXPECT_EQ(Fingerprint(*direct_refine), Fingerprint(*parsed_refine));
  EXPECT_TRUE(parsed_refine->approx.is_exact);
}

TEST_F(ServerTest, AppendRowsPublishesNewVersionAndRefreshesHandles) {
  service::QueryHandle handle = OpenHandle();
  const uint64_t before = service_->catalog_version();

  service::AppendRowsRequest append;
  append.dataset = "ratings";
  append.rows.push_back({storage::Value::Str("g0v0"),
                         storage::Value::Str("g1v0"),
                         storage::Value::Str("g2v0"),
                         storage::Value::Str("g3v0"),
                         storage::Value::Real(4.75)});

  Result<HttpClientResponse> http = Post("/append_rows", ToJson(append));
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  ASSERT_EQ(http->status, 200) << http->body;
  Result<service::AppendRowsResponse> parsed =
      AppendRowsResponseFromJson(MustParse(http->body));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->version, before + 1);
  EXPECT_EQ(service_->catalog_version(), before + 1);

  // The next use of the handle over HTTP refreshes transparently.
  service::SummarizeRequest summarize;
  summarize.handle = handle;
  summarize.params = core::Params{4, 8, 2};
  Result<HttpClientResponse> warm = Post("/summarize", ToJson(summarize));
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->status, 200) << warm->body;
}

TEST_F(ServerTest, StatsAndHealthzEndpoints) {
  Result<HttpClientResponse> health = Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok\n");

  OpenHandle();
  Result<HttpClientResponse> http = Get("/stats");
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  ASSERT_EQ(http->status, 200);
  Json doc = MustParse(http->body);
  const Json* svc = doc.Find("service");
  ASSERT_NE(svc, nullptr);
  Result<service::ServiceStats> stats = ServiceStatsFromJson(*svc);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->queries, 1);
  const Json* transport = doc.Find("server");
  ASSERT_NE(transport, nullptr);
  ASSERT_NE(transport->Find("served_2xx"), nullptr);
  EXPECT_GE(transport->Find("accepted")->AsInt(), 1);
}

TEST_F(ServerTest, ServiceErrorsMapToHttpStatuses) {
  // Unknown handle → NotFound → 404.
  service::SummarizeRequest bad_handle;
  bad_handle.handle = 9999;
  bad_handle.params = core::Params{4, 8, 1};
  Result<HttpClientResponse> http = Post("/summarize", ToJson(bad_handle));
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  EXPECT_EQ(http->status, 404);
  Json error = MustParse(http->body);
  ASSERT_NE(error.Find("error"), nullptr);
  EXPECT_EQ(error.Find("error")->Find("code")->AsString(), "NotFound");

  // Bad SQL → 400 with the error envelope.
  service::QueryRequest bad_sql;
  bad_sql.sql = "SELECT FROM WHERE";
  bad_sql.value_column = "val";
  http = Post("/query", ToJson(bad_sql));
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  EXPECT_EQ(http->status, 400) << http->body;

  // Unknown endpoint → 404; wrong method → 405.
  http = Post("/no_such_endpoint", Json::Object());
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  EXPECT_EQ(http->status, 404);
  http = Get("/query");
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  EXPECT_EQ(http->status, 405);
}

TEST_F(ServerTest, MalformedRequestCorpusNeverCrashesTheServer) {
  struct RawCase {
    std::string raw;
    int expected_status;
  };
  auto with_body = [](const std::string& head, const std::string& body) {
    return StrCat(head, "Content-Length: ", body.size(), "\r\n\r\n", body);
  };
  const std::string post = "POST /query HTTP/1.1\r\n";
  const std::vector<RawCase> corpus = {
      {"\r\n\r\n", 400},                          // empty request line
      {"GET\r\n\r\n", 400},                       // no target/version
      {"GET /\r\n\r\n", 400},                     // no version
      {"GET / HTTP/2\r\n\r\n", 400},              // unsupported version
      {"get / HTTP/1.1\r\n\r\n", 400},            // lowercase method
      {"G@T / HTTP/1.1\r\n\r\n", 400},            // junk method bytes
      {"GET  / HTTP/1.1\r\n\r\n", 400},           // double space
      {"GET / HTTP/1.1\r\nNoColon\r\n\r\n", 400},   // header missing ':'
      {"GET / HTTP/1.1\r\n: anonymous\r\n\r\n", 400},  // empty header name
      {post + "\r\n", 411},                       // POST, no Content-Length
      {post + "Content-Length: -5\r\n\r\n", 400},
      {post + "Content-Length: kilobyte\r\n\r\n", 400},
      {post + "Content-Length: 9999999\r\n\r\n", 413},  // > max_body_bytes
      {post + "Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n", 501},
      {post + "Content-Length: 64\r\n\r\n{\"truncated\":", 400},  // short body
      {post + "Content-Length: 2\r\n\r\n{}{}", 400},  // bytes beyond length
      {with_body(post, "not json at all"), 400},
      {with_body(post, "{}"), 400},                  // missing fields
      {with_body(post, "[1,2,3]"), 400},             // wrong root type
      {with_body(post, "{\"sql\":7,\"value_column\":\"v\"}"), 400},
      {with_body(post, std::string(64, '[')), 400},  // deep-nesting bomb
      {StrCat("GET /healthz HTTP/1.1\r\nX-Pad: ", std::string(20000, 'a'),
              "\r\n\r\n"),
       431},
  };

  for (const RawCase& test_case : corpus) {
    Result<std::string> response =
        HttpExchangeRaw(kHost, server_->port(), test_case.raw);
    ASSERT_TRUE(response.ok())
        << response.status().ToString() << " for: " << test_case.raw;
    const std::string expected_prefix =
        StrCat("HTTP/1.1 ", test_case.expected_status, " ");
    EXPECT_EQ(response->substr(0, expected_prefix.size()), expected_prefix)
        << "request: " << test_case.raw << "\nresponse: " << *response;
  }

  // A peer that connects and says nothing is dropped without a response...
  Result<std::string> silent =
      HttpExchangeRaw(kHost, server_->port(), "");
  ASSERT_TRUE(silent.ok()) << silent.status().ToString();
  EXPECT_TRUE(silent->empty());

  // ... and after the whole corpus the server still serves normally.
  Result<HttpClientResponse> alive = Get("/healthz");
  ASSERT_TRUE(alive.ok()) << alive.status().ToString();
  EXPECT_EQ(alive->status, 200);
  ServerStats stats = server_->stats();
  EXPECT_EQ(stats.served_2xx + stats.client_errors_4xx +
                stats.server_errors_5xx + stats.io_errors,
            stats.admitted);
}

/// Raw connection that connects and deliberately sends nothing — pins a
/// worker (or a queue slot) until the server's read timeout.
int ConnectAndStall(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  QAG_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  QAG_CHECK(::inet_pton(AF_INET, kHost, &addr.sin_addr) == 1);
  QAG_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0);
  return fd;
}

TEST(ServerOverloadTest, FullQueueSheds503WithRetryAfterAndRecovers) {
  service::QueryService service;
  QAG_CHECK_OK(service.RegisterTable("ratings",
                                     testutil::MakeRatingsTable(9, 400)));
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  options.retry_after_seconds = 7;
  options.limits.io_timeout_ms = 2000;
  HttpServer server(&service, options);
  QAG_CHECK_OK(server.Start());

  // Stalled connections until two are *admitted*: with one worker and one
  // queue slot, two simultaneously admitted connections mean the worker is
  // pinned and the queue is full (a stall the acceptor sheds instead does
  // not pin anything, so keep adding).
  std::vector<int> stalls;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (server.stats().admitted < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    stalls.push_back(ConnectAndStall(server.port()));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GE(server.stats().admitted, 2);

  // Probe until admission control sheds one at the door. Probes that slip
  // into a freed queue slot are eventually served — also fine; the queue
  // stays bounded either way.
  bool saw_503 = false;
  std::string retry_after;
  for (int i = 0; i < 50 && !saw_503; ++i) {
    Result<HttpClientResponse> probe =
        HttpFetch(kHost, server.port(), "GET", "/healthz", "");
    if (!probe.ok()) continue;
    if (probe->status == 503) {
      saw_503 = true;
      const std::string* header = probe->FindHeader("Retry-After");
      if (header != nullptr) retry_after = *header;
    }
  }
  EXPECT_TRUE(saw_503);
  EXPECT_EQ(retry_after, "7");
  EXPECT_GE(server.stats().rejected_503, 1);

  // Lift the pressure: the stalled peers hang up, and the server recovers
  // without a restart.
  for (int fd : stalls) ::close(fd);
  bool recovered = false;
  while (!recovered && std::chrono::steady_clock::now() < deadline) {
    Result<HttpClientResponse> probe =
        HttpFetch(kHost, server.port(), "GET", "/healthz", "");
    recovered = probe.ok() && probe->status == 200;
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(recovered);
  server.Shutdown();
}

TEST(ServerDrainTest, ShutdownFinishesEveryAdmittedRequest) {
  service::QueryService service;
  QAG_CHECK_OK(service.RegisterTable("ratings",
                                     testutil::MakeRatingsTable(5, 1200)));
  ServerOptions options;
  options.num_workers = 2;
  HttpServer server(&service, options);
  QAG_CHECK_OK(server.Start());
  const int port = server.port();

  service::QueryRequest query;
  query.sql = kSql;
  query.value_column = "val";
  Result<service::QueryResponse> opened = service.Query(query);
  QAG_CHECK_OK(opened.status());

  service::SummarizeRequest summarize;
  summarize.handle = opened->handle;
  summarize.params = core::Params{4, 8, 2};
  const std::string body = ToJson(summarize).Dump();

  // A swarm of clients races a shutdown that begins mid-burst. Admitted
  // requests must all complete; connections the drain refuses are allowed
  // to fail at the transport level — but never with a torn response.
  constexpr int kClients = 12;
  std::atomic<int> client_2xx{0};
  std::atomic<int> transport_failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      Result<HttpClientResponse> response =
          HttpFetch(kHost, port, "POST", "/summarize", body);
      if (!response.ok()) {
        transport_failures.fetch_add(1);
      } else if (response->status == 200) {
        client_2xx.fetch_add(1);
      }
    });
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (server.stats().admitted < 4 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Shutdown();
  for (std::thread& client : clients) client.join();

  const ServerStats stats = server.stats();
  // Zero-drop: every admitted connection was answered (exactly one
  // response-class counter each), and every 2xx the server recorded was
  // fully received by a client (HttpFetch validates Content-Length).
  EXPECT_EQ(stats.admitted, stats.served_2xx + stats.client_errors_4xx +
                                stats.server_errors_5xx + stats.io_errors);
  EXPECT_EQ(stats.client_errors_4xx, 0);
  EXPECT_EQ(stats.server_errors_5xx, 0);
  EXPECT_EQ(client_2xx.load(), stats.served_2xx);
  EXPECT_GE(stats.served_2xx, 4);
  EXPECT_EQ(client_2xx.load() + transport_failures.load(), kClients);
}

TEST(ServerLoadgenTest, OpenLoopBurstOverLoopbackAllSucceeds) {
  service::QueryService service;
  QAG_CHECK_OK(service.RegisterTable("ratings",
                                     testutil::MakeRatingsTable(3, 1200)));
  ServerOptions options;
  options.num_workers = 3;
  HttpServer server(&service, options);
  QAG_CHECK_OK(server.Start());

  // Warm the session + universe once so the burst measures the warm path.
  service::QueryRequest query;
  query.sql = kSql;
  query.value_column = "val";
  Result<service::QueryResponse> opened = service.Query(query);
  QAG_CHECK_OK(opened.status());
  service::ExploreRequest explore;
  explore.handle = opened->handle;
  explore.params = core::Params{4, 8, 2};
  QAG_CHECK_OK(service.Explore(explore).status());

  service::SummarizeRequest summarize;
  summarize.handle = opened->handle;
  summarize.params = core::Params{4, 8, 2};

  std::vector<LoadgenRequest> script;
  script.push_back({"POST", "/query", ToJson(query).Dump()});
  script.push_back({"POST", "/summarize", ToJson(summarize).Dump()});
  script.push_back({"POST", "/explore", ToJson(explore).Dump()});
  script.push_back({"GET", "/stats", ""});

  LoadgenOptions load;
  load.port = server.port();
  load.rate = 150.0;
  load.total_requests = 90;
  load.num_threads = 4;
  LoadgenResults results = RunOpenLoop(script, load);

  EXPECT_EQ(results.issued, 90);
  EXPECT_EQ(results.ok, 90);
  EXPECT_EQ(results.transport_errors, 0);
  EXPECT_EQ(results.http_503, 0);
  EXPECT_GT(results.achieved_rps, 0.0);
  EXPECT_GT(results.p50_ms, 0.0);
  EXPECT_LE(results.p50_ms, results.p99_ms);
  EXPECT_LE(results.p99_ms, results.p999_ms);
  EXPECT_LE(results.p999_ms, results.max_ms);
  server.Shutdown();
}

}  // namespace
}  // namespace qagview::server
