#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/csv.h"
#include "storage/dictionary.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"

namespace qagview::storage {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::Str("hi").as_string(), "hi");
  EXPECT_EQ(Value::Bool(true).as_int(), 1);
  EXPECT_EQ(Value::Bool(false).as_int(), 0);
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(Value::Int(3).ToDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Real(3.5).ToDouble(), 3.5);
  EXPECT_TRUE(Value::Int(1) == Value::Real(1.0));
  EXPECT_FALSE(Value::Int(1) == Value::Real(1.5));
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value::Null().IsTruthy());
  EXPECT_FALSE(Value::Int(0).IsTruthy());
  EXPECT_TRUE(Value::Int(-2).IsTruthy());
  EXPECT_FALSE(Value::Real(0.0).IsTruthy());
  EXPECT_TRUE(Value::Str("x").IsTruthy());
  EXPECT_FALSE(Value::Str("").IsTruthy());
}

TEST(ValueTest, CompareOrdersNumericsAndStrings) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Real(2.0)), 0);
  EXPECT_GT(Value::Real(2.5).Compare(Value::Int(2)), 0);
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Real(3.0).ToString(), "3");  // integral double
  EXPECT_EQ(Value::Str("abc").ToString(), "abc");
}

TEST(SchemaTest, LookupIsCaseInsensitive) {
  Schema schema({{"Alpha", ValueType::kInt64}, {"beta", ValueType::kString}});
  EXPECT_EQ(schema.num_fields(), 2);
  EXPECT_EQ(schema.FindField("alpha"), 0);
  EXPECT_EQ(schema.FindField("BETA"), 1);
  EXPECT_EQ(schema.FindField("gamma"), -1);
  EXPECT_TRUE(schema.GetFieldIndex("beta").ok());
  EXPECT_FALSE(schema.GetFieldIndex("gamma").ok());
}

TEST(DictionaryTest, InternsAndRoundTrips) {
  Dictionary dict;
  int32_t a = dict.Intern("apple");
  int32_t b = dict.Intern("banana");
  EXPECT_EQ(dict.Intern("apple"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.size(), 2);
  EXPECT_EQ(dict.GetString(a), "apple");
  EXPECT_EQ(dict.GetString(b), "banana");
  EXPECT_EQ(dict.Find("banana").value_or(-1), b);
  EXPECT_FALSE(dict.Find("cherry").has_value());
}

TEST(ColumnTest, TypedStorageAndNulls) {
  Column col(ValueType::kString);
  col.AppendString("x");
  col.AppendNull();
  col.AppendString("x");
  col.AppendString("y");
  EXPECT_EQ(col.size(), 4);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.GetString(0), "x");
  EXPECT_EQ(col.GetStringCode(0), col.GetStringCode(2));
  EXPECT_NE(col.GetStringCode(0), col.GetStringCode(3));
  EXPECT_EQ(col.dictionary().size(), 2);
  EXPECT_TRUE(col.Get(1).is_null());
}

TEST(ColumnTest, IntIntoDoubleColumn) {
  Column col(ValueType::kDouble);
  col.Append(Value::Int(3));
  col.Append(Value::Real(1.5));
  EXPECT_DOUBLE_EQ(col.GetDouble(0), 3.0);
  EXPECT_DOUBLE_EQ(col.GetDouble(1), 1.5);
}

Table MakeSmallTable() {
  Schema schema({{"name", ValueType::kString},
                 {"age", ValueType::kInt64},
                 {"score", ValueType::kDouble}});
  Table t(schema);
  QAG_CHECK_OK(t.AppendRow({Value::Str("ann"), Value::Int(30), Value::Real(3.5)}));
  QAG_CHECK_OK(t.AppendRow({Value::Str("bob"), Value::Int(25), Value::Real(4.0)}));
  QAG_CHECK_OK(t.AppendRow({Value::Str("cat"), Value::Null(), Value::Real(2.0)}));
  return t;
}

TEST(TableTest, AppendAndGet) {
  Table t = MakeSmallTable();
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_EQ(t.Get(0, 0).as_string(), "ann");
  EXPECT_EQ(t.Get(1, 1).as_int(), 25);
  EXPECT_TRUE(t.Get(2, 1).is_null());
  std::vector<Value> row = t.GetRow(1);
  EXPECT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0].as_string(), "bob");
}

TEST(TableTest, AppendRowValidation) {
  Table t = MakeSmallTable();
  EXPECT_FALSE(t.AppendRow({Value::Str("x")}).ok());  // arity
  EXPECT_FALSE(
      t.AppendRow({Value::Int(1), Value::Int(2), Value::Real(3.0)}).ok());
  EXPECT_EQ(t.num_rows(), 3);  // failed appends change nothing
}

TEST(TableTest, ToStringRendersHeader) {
  Table t = MakeSmallTable();
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("ann"), std::string::npos);
}

TEST(CsvTest, ParseWithTypeInference) {
  auto table = ReadCsvString("a,b,c\n1,2.5,x\n2,3,y\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->schema().field(0).type, ValueType::kInt64);
  EXPECT_EQ(table->schema().field(1).type, ValueType::kDouble);
  EXPECT_EQ(table->schema().field(2).type, ValueType::kString);
  EXPECT_EQ(table->Get(1, 2).as_string(), "y");
}

TEST(CsvTest, EmptyCellsBecomeNull) {
  auto table = ReadCsvString("a,b\n1,\n,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->Get(0, 1).is_null());
  EXPECT_TRUE(table->Get(1, 0).is_null());
  EXPECT_EQ(table->Get(1, 1).as_int(), 2);
}

TEST(CsvTest, QuotedCells) {
  auto table = ReadCsvString("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->Get(0, 0).as_string(), "x,y");
  EXPECT_EQ(table->Get(0, 1).as_string(), "he said \"hi\"");
}

TEST(CsvTest, NoHeaderMode) {
  CsvOptions options;
  options.has_header = false;
  auto table = ReadCsvString("1,2\n3,4\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().field(0).name, "c0");
  EXPECT_EQ(table->num_rows(), 2);
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(ReadCsvString("").ok());
  EXPECT_FALSE(ReadCsvString("a,b\n1\n").ok());          // ragged row
  EXPECT_FALSE(ReadCsvString("a\n\"unterminated\n").ok());
}

TEST(CsvTest, RoundTrip) {
  Table t = MakeSmallTable();
  std::string text = WriteCsvString(t);
  auto parsed = ReadCsvString(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), t.num_rows());
  EXPECT_EQ(parsed->Get(0, 0).as_string(), "ann");
  EXPECT_TRUE(parsed->Get(2, 1).is_null());
  EXPECT_DOUBLE_EQ(parsed->Get(1, 2).ToDouble(), 4.0);
}

TEST(CsvTest, FileRoundTrip) {
  Table t = MakeSmallTable();
  std::string path = testing::TempDir() + "/qagview_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto parsed = ReadCsvFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 3);
  EXPECT_FALSE(ReadCsvFile("/nonexistent/nope.csv").ok());
}

}  // namespace
}  // namespace qagview::storage
