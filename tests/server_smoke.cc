// server_smoke: start an in-process HTTP server over a synthetic dataset,
// drive a short open-loop burst through the load generator, and hard-check
// the outcome. Deliberately small — the sanitizer CI step runs this binary
// (plus server_test) so the acceptor/worker/shutdown machinery gets a
// TSan/ASan pass on every change without a long soak.
//
// Not named *_test.cc on purpose: the tests/CMakeLists.txt glob builds
// gtest binaries; this is a plain main() registered explicitly.

#include <cstdio>

#include "common/logging.h"
#include "server/loadgen.h"
#include "server/serde.h"
#include "server/server.h"
#include "service/query_service.h"
#include "test_util.h"

int main() {
  using namespace qagview;

  service::QueryService service;
  QAG_CHECK_OK(service.RegisterTable("ratings",
                                     testutil::MakeRatingsTable(17, 1200)));

  server::ServerOptions options;
  options.num_workers = 3;
  server::HttpServer server(&service, options);
  QAG_CHECK_OK(server.Start());

  // Warm one session so the burst exercises the warm (cache-hit) path.
  service::QueryRequest query;
  query.sql =
      "SELECT g0, g1, g2, avg(rating) AS val FROM ratings "
      "GROUP BY g0, g1, g2 HAVING count(*) > 3 ORDER BY val DESC";
  query.value_column = "val";
  auto opened = service.Query(query);
  QAG_CHECK_OK(opened.status());

  service::ExploreRequest explore;
  explore.handle = opened->handle;
  explore.params = core::Params{4, 8, 2};
  QAG_CHECK_OK(service.Explore(explore).status());

  service::SummarizeRequest summarize;
  summarize.handle = opened->handle;
  summarize.params = core::Params{4, 8, 2};

  std::vector<server::LoadgenRequest> script;
  script.push_back({"POST", "/query", server::ToJson(query).Dump()});
  script.push_back({"POST", "/summarize", server::ToJson(summarize).Dump()});
  script.push_back({"POST", "/explore", server::ToJson(explore).Dump()});
  script.push_back({"GET", "/healthz", ""});

  server::LoadgenOptions load;
  load.port = server.port();
  load.rate = 120.0;
  load.total_requests = 60;
  load.num_threads = 4;
  server::LoadgenResults results = server::RunOpenLoop(script, load);

  QAG_CHECK(results.issued == 60) << "issued " << results.issued;
  QAG_CHECK(results.ok == 60)
      << "ok=" << results.ok << " 503=" << results.http_503
      << " 4xx=" << results.http_4xx << " 5xx=" << results.http_5xx
      << " transport=" << results.transport_errors;
  QAG_CHECK(results.max_ms >= results.p99_ms);

  server.Shutdown();
  const server::ServerStats stats = server.stats();
  QAG_CHECK(stats.admitted == stats.served_2xx + stats.client_errors_4xx +
                                  stats.server_errors_5xx + stats.io_errors)
      << "transport counters do not balance";

  std::printf("server_smoke OK: %lld requests, p50=%.2fms p99=%.2fms "
              "p999=%.2fms achieved=%.1f rps\n",
              static_cast<long long>(results.ok), results.p50_ms,
              results.p99_ms, results.p999_ms, results.achieved_rps);
  return 0;
}
