#include <set>

#include <gtest/gtest.h>

#include "core/answer_set.h"
#include "core/cluster.h"
#include "datagen/answers.h"
#include "datagen/movielens.h"
#include "datagen/store_sales.h"
#include "sql/executor.h"

namespace qagview::datagen {
namespace {

TEST(MovieLensTest, SchemaShapeMatchesPaper) {
  MovieLensOptions options;
  options.num_ratings = 2000;
  options.num_users = 100;
  options.num_movies = 200;
  storage::Table t = MovieLensGenerator(options).GenerateRatingTable();
  EXPECT_EQ(t.num_columns(), 33);  // the paper's 33-attribute RatingTable
  EXPECT_EQ(t.num_rows(), 2000);
  // Key derived attributes exist.
  for (const char* col : {"hdec", "agegrp", "gender", "occupation",
                          "genres_adventure", "rating", "decade"}) {
    EXPECT_GE(t.schema().FindField(col), 0) << col;
  }
}

TEST(MovieLensTest, RatingsInRangeAndDerivedColumnsConsistent) {
  MovieLensOptions options;
  options.num_ratings = 3000;
  storage::Table t = MovieLensGenerator(options).GenerateRatingTable();
  int rating_col = t.schema().FindField("rating");
  int year_col = t.schema().FindField("year");
  int hdec_col = t.schema().FindField("hdec");
  int decade_col = t.schema().FindField("decade");
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    int64_t rating = t.column(rating_col).GetInt(r);
    EXPECT_GE(rating, 1);
    EXPECT_LE(rating, 5);
    int64_t year = t.column(year_col).GetInt(r);
    EXPECT_EQ(t.column(hdec_col).GetInt(r), year / 5 * 5);
    EXPECT_EQ(t.column(decade_col).GetInt(r), year / 10 * 10);
  }
}

TEST(MovieLensTest, DeterministicForSeed) {
  MovieLensOptions options;
  options.num_ratings = 500;
  storage::Table a = MovieLensGenerator(options).GenerateRatingTable();
  storage::Table b = MovieLensGenerator(options).GenerateRatingTable();
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (int64_t r = 0; r < a.num_rows(); r += 37) {
    for (int c = 0; c < a.num_columns(); ++c) {
      EXPECT_TRUE(a.Get(r, c) == b.Get(r, c));
    }
  }
}

TEST(MovieLensTest, PlantedSignalSurfacesInAggregates) {
  // The paper's Example 1.1 query shape: adventure ratings grouped by
  // (hdec, agegrp, gender, occupation) should rank the planted
  // young-male-tech pattern near the top.
  MovieLensOptions options;
  options.num_ratings = 60000;
  storage::Table t = MovieLensGenerator(options).GenerateRatingTable();
  sql::Catalog catalog;
  catalog.Register("RatingTable", &t);
  auto result = sql::ExecuteSql(
      "SELECT agegrp, gender, occupation, avg(rating) AS val "
      "FROM RatingTable WHERE genres_adventure = 1 "
      "GROUP BY agegrp, gender, occupation HAVING count(*) > 30 "
      "ORDER BY val DESC",
      catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result->num_rows(), 5);
  // Among the top 3 groups, expect the planted demographic to appear.
  bool planted_on_top = false;
  for (int64_t r = 0; r < std::min<int64_t>(3, result->num_rows()); ++r) {
    std::string agegrp = result->Get(r, 0).as_string();
    std::string gender = result->Get(r, 1).as_string();
    std::string occ = result->Get(r, 2).as_string();
    bool young = agegrp == "10s" || agegrp == "20s";
    bool tech = occ == "student" || occ == "programmer" || occ == "engineer";
    planted_on_top = planted_on_top || (young && gender == "M" && tech);
  }
  EXPECT_TRUE(planted_on_top);
  // And the spread between top and bottom groups is material.
  double top = result->Get(0, 3).ToDouble();
  double bottom = result->Get(result->num_rows() - 1, 3).ToDouble();
  EXPECT_GT(top - bottom, 0.3);
}

TEST(StoreSalesTest, SchemaShapeMatchesPaper) {
  StoreSalesOptions options;
  options.num_rows = 5000;
  storage::Table t = StoreSalesGenerator(options).Generate();
  EXPECT_EQ(t.num_columns(), 23);  // store_sales attribute count in §7
  EXPECT_EQ(t.num_rows(), 5000);
  EXPECT_GE(t.schema().FindField("net_profit"), 0);
}

TEST(StoreSalesTest, NetProfitHasNegativeTail) {
  StoreSalesOptions options;
  options.num_rows = 20000;
  storage::Table t = StoreSalesGenerator(options).Generate();
  int profit_col = t.schema().FindField("net_profit");
  int negatives = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    negatives += t.column(profit_col).GetDouble(r) < 0.0;
  }
  EXPECT_GT(negatives, 100);            // losses exist (as in TPC-DS)
  EXPECT_LT(negatives, t.num_rows());   // but not everything loses money
}

TEST(StoreSalesTest, AggregationProducesLargeAnswerSets) {
  StoreSalesOptions options;
  options.num_rows = 50000;
  storage::Table t = StoreSalesGenerator(options).Generate();
  sql::Catalog catalog;
  catalog.Register("store_sales", &t);
  auto result = sql::ExecuteSql(
      "SELECT store_state, item_category, customer_agegrp, customer_gender, "
      "avg(net_profit) AS val FROM store_sales "
      "GROUP BY store_state, item_category, customer_agegrp, customer_gender "
      "HAVING count(*) > 10 ORDER BY val DESC",
      catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->num_rows(), 100);
  auto s = core::AnswerSet::FromTable(*result, "val");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_attrs(), 4);
}

TEST(StoreSalesTest, PlantedProfitSignalSurfacesInAggregates) {
  // The generator plants: Electronics in December and Jewelry for the
  // high income band are lucrative; heavy discounting in the low band
  // loses extra money. Grouped coarsely, those patterns must separate.
  StoreSalesOptions options;
  options.num_rows = 100000;
  storage::Table t = StoreSalesGenerator(options).Generate();
  sql::Catalog catalog;
  catalog.Register("store_sales", &t);
  auto result = sql::ExecuteSql(
      "SELECT item_category, sold_month, customer_income_band, "
      "avg(net_profit) AS val FROM store_sales "
      "GROUP BY item_category, sold_month, customer_income_band "
      "HAVING count(*) > 20 ORDER BY val DESC",
      catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result->num_rows(), 50);
  int planted_in_top = 0;
  for (int64_t r = 0; r < std::min<int64_t>(10, result->num_rows()); ++r) {
    std::string category = result->Get(r, 0).as_string();
    bool december_electronics =
        category == "Electronics" && result->Get(r, 1).as_int() == 12;
    bool high_jewelry = category == "Jewelry" &&
                        result->Get(r, 2).as_string() == "high";
    planted_in_top += december_electronics || high_jewelry;
  }
  EXPECT_GE(planted_in_top, 5) << "planted patterns missing from the top-10";
  // And the value spread between extremes is material.
  double top = result->Get(0, 3).ToDouble();
  double bottom = result->Get(result->num_rows() - 1, 3).ToDouble();
  EXPECT_GT(top - bottom, 20.0);
}

TEST(SyntheticAnswersTest, ExactSizeAndUniqueTuples) {
  SyntheticAnswerOptions options;
  options.n = 500;
  options.m = 6;
  core::AnswerSet s = MakeSyntheticAnswers(options);
  EXPECT_EQ(s.size(), 500);
  EXPECT_EQ(s.num_attrs(), 6);
  std::set<std::vector<int32_t>> unique;
  for (int e = 0; e < s.size(); ++e) unique.insert(s.element(e).attrs);
  EXPECT_EQ(unique.size(), 500u);
  // Sorted descending.
  for (int e = 1; e < s.size(); ++e) {
    EXPECT_GE(s.value(e - 1), s.value(e));
  }
}

TEST(SyntheticAnswersTest, TopSharesPatternsMoreThanBottom) {
  SyntheticAnswerOptions options;
  options.n = 1000;
  options.m = 6;
  options.seed = 3;
  core::AnswerSet s = MakeSyntheticAnswers(options);
  // Average pairwise distance among top-20 should be below that of a
  // same-size random slice from the middle: top answers share structure.
  auto avg_distance = [&s](int begin) {
    double total = 0.0;
    int pairs = 0;
    for (int i = begin; i < begin + 20; ++i) {
      for (int j = i + 1; j < begin + 20; ++j) {
        total += core::ElementDistance(s.element(i).attrs, s.element(j).attrs);
        ++pairs;
      }
    }
    return total / pairs;
  };
  EXPECT_LT(avg_distance(0), avg_distance(500));
}

TEST(SyntheticAnswersTest, RejectsImpossibleDomains) {
  SyntheticAnswerOptions options;
  options.n = 1000;
  options.m = 2;
  options.domain = 3;  // only 9 distinct tuples possible
  EXPECT_DEATH(MakeSyntheticAnswers(options), "distinct");
}

}  // namespace
}  // namespace qagview::datagen
