// Figure 2 + §7.2 "Timing for Guidance Visualization": the
// parameter-selection view — objective value per k, one series per D, at a
// fixed L — plus its generation time across attribute counts.

#include <cstdio>

#include "bench_util.h"
#include "core/precompute.h"
#include "viz/param_grid.h"

int main() {
  using namespace qagview;
  benchutil::PrintHeader(
      "Figure 2: value-vs-k curves per D at L=15 (parameter-selection "
      "guide)",
      "curves mostly rise with k, with knee points marking good parameter "
      "choices; larger D gives lower curves (diversity costs value); some D "
      "curves overlap and can be bundled");

  core::AnswerSet s = benchutil::MakeAnswers(2087, 8, /*seed=*/2);
  auto universe = core::ClusterUniverse::Build(&s, /*top_l=*/15);
  QAG_CHECK(universe.ok());
  core::PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 14;
  options.d_values = {1, 2, 3, 4};
  auto store = core::Precompute::Run(*universe, 15, options);
  QAG_CHECK(store.ok());
  auto grid = viz::BuildParamGrid(*store, 2, 14);
  QAG_CHECK(grid.ok());

  std::printf("%s\n", grid->ToCsv().c_str());
  for (size_t di = 0; di < grid->d_values.size(); ++di) {
    std::printf("knee points D=%d:", grid->d_values[di]);
    for (int k : grid->KneePoints(static_cast<int>(di))) {
      std::printf(" k=%d", k);
    }
    std::printf("\n");
  }
  auto redundant = grid->RedundantDValues(0.02);
  std::printf("bundleable D values (near-identical curves):");
  for (int d : redundant) std::printf(" D=%d", d);
  std::printf("%s\n", redundant.empty() ? " none" : "");

  benchutil::PrintHeader(
      "§7.2 guidance-visualization generation time (N=2087, m=4..10)",
      "generation stays interactive — the paper reports 20-40ms across "
      "attribute counts; the pure view-building step on top of the "
      "precomputed store is far below that");
  std::printf("%-4s %18s %22s\n", "m", "precompute(ms)", "grid build(ms)");
  for (int m : {4, 6, 8, 10}) {
    core::AnswerSet sm = benchutil::MakeAnswers(2087, m, /*seed=*/20 + m,
                                                /*domain=*/m >= 8 ? 9 : 16);
    auto um = core::ClusterUniverse::Build(&sm, 15);
    QAG_CHECK(um.ok());
    core::PrecomputeOptions po;
    po.k_min = 2;
    po.k_max = 14;
    po.d_values = {1, 2, 3};
    double precompute_ms = 0.0;
    core::SolutionStore* store_ptr = nullptr;
    static std::vector<core::SolutionStore> keep_alive;
    precompute_ms = benchutil::TimeMillis(
        [&] {
          auto st = core::Precompute::Run(*um, 15, po);
          QAG_CHECK(st.ok());
          keep_alive.push_back(std::move(st).value());
          store_ptr = &keep_alive.back();
        },
        1);
    double grid_ms = benchutil::TimeMillis([&] {
      auto g = viz::BuildParamGrid(*store_ptr, 2, 14);
      QAG_CHECK(g.ok());
    });
    std::printf("%-4d %18.2f %22.4f\n", m, precompute_ms, grid_ms);
  }
  return 0;
}
