// Prefetch & warm-start driver: what the background scheduler buys at the
// service boundary.
//
//   * cold_first_response: a fresh service pays Query + Guidance from
//     scratch — the baseline every speculative mechanism is judged against;
//   * warm_first_response: same request sequence against a service whose
//     snapshot directory holds a fingerprint-validated guidance snapshot
//     from a previous lifetime — the warm-start load replaces the grid
//     precompute with a disk read + pattern re-resolution;
//   * session_foreground_wait: a simulated exploration session (the
//     src/study/ trajectory shapes the prefetch predictor is trained on)
//     replayed against the service with prefetch off vs on. The measured
//     quantity is the *foreground* wait only: background speculation is
//     drained outside the clock before every move, so the row isolates
//     what the user experiences — predicted moves served as warm RCU
//     reads. The prefetch hit rate rides along as extras.
//
// Every timed response is produced by the same public API calls in both
// variants, so the bit-identity invariants the test battery pins (warm ==
// cold, prefetched == built-on-demand) hold here by construction.
//
// Emits BENCH_prefetch.json (schema in bench/README.md); the CI smoke run
// gates it against bench/baselines/.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "service/query_service.h"
#include "study/trajectory.h"
#include "test_util.h"

namespace {

using namespace qagview;

struct Workload {
  int base_rows = 0;
  int having_min = 0;
  int top_l = 0;
  int k_max = 0;

  std::string Sql() const {
    return "SELECT g0, g1, g2, g3, avg(rating) AS val FROM ratings "
           "GROUP BY g0, g1, g2, g3 HAVING count(*) > " +
           std::to_string(having_min) + " ORDER BY val DESC";
  }
};

core::PrecomputeOptions Grid(const Workload& w) {
  core::PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = w.k_max;
  options.d_values = {1, 2, 3, 4};
  return options;
}

/// A fresh service over the workload table, built outside the clock.
std::unique_ptr<service::QueryService> MakeService(
    const testutil::RandomTableSpec& spec, uint64_t seed, const Workload& w,
    service::ServiceOptions options) {
  auto svc = std::make_unique<service::QueryService>(std::move(options));
  QAG_CHECK_OK(svc->RegisterTable(
      "ratings", testutil::MakeRandomTable(spec, seed, w.base_rows)));
  return svc;
}

/// An empty scratch directory for warm-start snapshots, emptied on every
/// call so a stale snapshot from a previous bench run never warms a
/// supposedly cold service.
std::string ScratchSnapshotDir() {
  const std::string dir = "bench_prefetch_snapshots";
  ::mkdir(dir.c_str(), 0755);
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  return dir;
}

/// One simulated exploration session: the Query that opens it, then the
/// trajectory's moves. `foreground_wait_ms` accumulates only the public
/// API calls; when `drain` is set, background work (speculation, snapshot
/// writes) is quiesced outside the clock before each move.
double ReplaySession(service::QueryService& svc, const Workload& w,
                     const std::string& sql,
                     const std::vector<study::Move>& moves, bool drain) {
  double wait_ms = 0.0;
  service::QueryHandle handle;
  {
    WallTimer timer;
    auto info = svc.Query(sql, "val");
    QAG_CHECK(info.ok()) << info.status().ToString();
    handle = info->handle;
  }
  for (size_t i = 1; i < moves.size(); ++i) {
    if (drain) svc.DrainBackgroundWork();
    const study::Move& move = moves[i];
    const int top_l = std::min(move.top_l, w.top_l);
    WallTimer timer;
    switch (move.kind) {
      case study::MoveKind::kSummarize: {
        auto s = svc.Summarize(handle, {4, top_l, 2});
        QAG_CHECK(s.ok()) << s.status().ToString();
        break;
      }
      case study::MoveKind::kExplore: {
        auto e = svc.Explore(handle, {4, top_l, 2});
        QAG_CHECK(e.ok()) << e.status().ToString();
        break;
      }
      case study::MoveKind::kGuidance: {
        auto g = svc.Guidance(handle, top_l, Grid(w));
        QAG_CHECK(g.ok()) << g.status().ToString();
        break;
      }
      case study::MoveKind::kQuery:
        break;  // one query per session, already issued
    }
    wait_ms += timer.ElapsedMillis();
  }
  return wait_ms;
}

}  // namespace

int main() {
  const bool smoke = benchutil::SmokeMode();
  Workload w;
  w.base_rows = smoke ? 4000 : 40000;
  w.having_min = smoke ? 1 : 6;
  w.top_l = 64;
  w.k_max = 32;
  const int reps = smoke ? 5 : 7;
  const uint64_t seed = 29;
  testutil::RandomTableSpec spec;
  spec.domains = {14, 10, 8, 6};
  const std::string sql = w.Sql();

  benchutil::PrintHeader(
      "Prefetch & warm start: speculation on the background scheduler",
      "warm-started sessions skip the grid precompute; predicted moves in "
      "an exploration session are served as warm RCU reads");
  benchutil::JsonReporter json("prefetch");

  // --- Cold vs warm-started first response ------------------------------
  // First response = Query + Guidance(top_l): the point at which the
  // client can scrub the (k, D) grid interactively.
  double cold_first = 0.0;
  double cold_first_min = 0.0;
  {
    std::vector<std::unique_ptr<service::QueryService>> services;
    for (int r = 0; r < reps; ++r) {
      services.push_back(
          MakeService(spec, seed, w, service::ServiceOptions()));
    }
    size_t next = 0;
    benchutil::TimingStats cold = benchutil::TimeStats(
        [&] {
          service::QueryService& svc = *services[next++];
          auto info = svc.Query(sql, "val");
          QAG_CHECK(info.ok()) << info.status().ToString();
          auto store = svc.Guidance(info->handle, w.top_l, Grid(w));
          QAG_CHECK(store.ok()) << store.status().ToString();
        },
        reps);
    cold_first = cold.median_ms;
    cold_first_min = cold.min_ms;
    std::printf("\ncold first response (Query + Guidance): %.2f ms median\n",
                cold.median_ms);
    json.Add("cold_first_response",
             {{"N", w.base_rows}, {"L", w.top_l}, {"k_max", w.k_max}}, cold);
  }

  double warm_first_min = 0.0;
  {
    service::ServiceOptions with_snapshots;
    with_snapshots.snapshot_dir = ScratchSnapshotDir();
    // Previous lifetime: build the grid once and let the background
    // snapshot write land before "shutdown".
    {
      auto builder = MakeService(spec, seed, w, with_snapshots);
      auto info = builder->Query(sql, "val");
      QAG_CHECK(info.ok()) << info.status().ToString();
      auto store = builder->Guidance(info->handle, w.top_l, Grid(w));
      QAG_CHECK(store.ok()) << store.status().ToString();
      builder->DrainBackgroundWork();
    }
    std::vector<std::unique_ptr<service::QueryService>> services;
    for (int r = 0; r < reps; ++r) {
      services.push_back(MakeService(spec, seed, w, with_snapshots));
    }
    size_t next = 0;
    int64_t warm_loads = 0;
    benchutil::TimingStats warm = benchutil::TimeStats(
        [&] {
          service::QueryService& svc = *services[next++];
          auto info = svc.Query(sql, "val");
          QAG_CHECK(info.ok()) << info.status().ToString();
          // The snapshot reload rides the foreground-build lane; waiting
          // it out is part of reaching the first grid response.
          svc.DrainBackgroundWork();
          service::RequestStats rs;
          auto store = svc.Guidance(info->handle, w.top_l, Grid(w), &rs);
          QAG_CHECK(store.ok()) << store.status().ToString();
          QAG_CHECK(!rs.built)
              << "warm-started Guidance rebuilt the grid from scratch";
          warm_loads += svc.stats().warm_start_loads;
        },
        reps);
    warm_first_min = warm.min_ms;
    QAG_CHECK(warm_loads == reps)
        << "expected one warm-start load per lifetime, got " << warm_loads;
    std::printf("warm first response (snapshot reload):  %.2f ms median "
                "(%.2fx vs cold)\n",
                warm.median_ms, cold_first / warm.median_ms);
    json.Add("warm_first_response",
             {{"N", w.base_rows}, {"L", w.top_l}, {"k_max", w.k_max}}, warm,
             {{"warm_start_loads", static_cast<double>(warm_loads)}});
  }

  // --- Exploration-session foreground wait, prefetch off vs on ----------
  study::TrajectoryOptions traj_options;
  traj_options.num_sessions = 1;
  traj_options.moves_per_session = smoke ? 8 : 12;
  traj_options.l_max = w.top_l / 2;
  const std::vector<study::Move> moves =
      study::SimulateTrajectories(traj_options)[0];

  double off_wait = 0.0;
  double on_wait = 0.0;
  double hit_rate = 0.0;
  for (const bool prefetch : {false, true}) {
    service::ServiceOptions options;
    options.prefetch = prefetch;
    std::vector<std::unique_ptr<service::QueryService>> services;
    for (int r = 0; r < reps; ++r) {
      services.push_back(MakeService(spec, seed, w, options));
    }
    int64_t issued = 0;
    int64_t hits = 0;
    // The recorded row is the foreground wait alone (drains between moves
    // are excluded by ReplaySession's per-call clocks), median over reps.
    std::vector<double> waits;
    waits.reserve(static_cast<size_t>(reps));
    for (int r = 0; r < reps; ++r) {
      service::QueryService& svc = *services[static_cast<size_t>(r)];
      waits.push_back(ReplaySession(svc, w, sql, moves, /*drain=*/prefetch));
      svc.DrainBackgroundWork();
      issued += svc.stats().prefetch_issued;
      hits += svc.stats().prefetch_hits;
    }
    std::sort(waits.begin(), waits.end());
    const double wait_ms = waits[waits.size() / 2];
    if (prefetch) {
      on_wait = wait_ms;
      hit_rate = issued > 0 ? static_cast<double>(hits) /
                                  static_cast<double>(issued)
                            : 0.0;
      std::printf("exploration session, prefetch on:  %8.2f ms foreground "
                  "wait (%lld speculative builds, %lld hits, %.0f%% hit "
                  "rate)\n",
                  wait_ms, static_cast<long long>(issued / reps),
                  static_cast<long long>(hits / reps), 100.0 * hit_rate);
    } else {
      off_wait = wait_ms;
      std::printf("\nexploration session (%d moves), prefetch off: %.2f ms "
                  "foreground wait\n",
                  static_cast<int>(moves.size()), wait_ms);
    }
    benchutil::TimingStats wait_stats;
    wait_stats.median_ms = wait_ms;
    wait_stats.min_ms = waits.front();
    wait_stats.reps = reps;
    json.Add("session_foreground_wait",
             {{"prefetch", prefetch ? 1.0 : 0.0},
              {"moves", static_cast<double>(moves.size())},
              {"N", w.base_rows},
              {"L", w.top_l}},
             wait_stats,
             {{"prefetch_issued", static_cast<double>(issued) / reps},
              {"prefetch_hits", static_cast<double>(hits) / reps},
              {"hit_rate", hit_rate}});
  }

  // Acceptance bars (smoke): warm start must beat the cold first response,
  // and speculation must land — some predicted moves served warm. The
  // speed bar compares min times: shared-runner preemption only ever
  // inflates a rep, so the min is the clean measurement of the
  // deterministic work each side does.
  if (smoke) {
    QAG_CHECK(cold_first_min >= 1.5 * warm_first_min)
        << "warm-started first response (min " << warm_first_min
        << " ms) is not 1.5x faster than cold (min " << cold_first_min
        << " ms)";
    QAG_CHECK(hit_rate > 0.0) << "no prefetch ever paid off";
    std::printf("\nwarm start %.2fx vs cold on min times (>= 1.5x bar: "
                "PASS); prefetch hit rate %.0f%% (> 0 bar: PASS)\n",
                cold_first_min / warm_first_min, 100.0 * hit_rate);
    QAG_CHECK(on_wait <= 2.0 * off_wait)
        << "prefetch-on foreground wait (" << on_wait
        << " ms) regressed far past prefetch-off (" << off_wait << " ms)";
  }

  json.WriteFile();
  return 0;
}
