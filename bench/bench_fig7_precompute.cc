// Figure 7: cost and benefit of precomputation (§7.2): initialization,
// single-run, and precomputation times while varying k, L, and N, plus the
// single-vs-precompute cumulative comparison over six runs.

#include <cstdio>

#include "bench_util.h"
#include "core/hybrid.h"
#include "core/precompute.h"

namespace {

using namespace qagview;

struct Timings {
  double init_ms = 0.0;
  double algo_ms = 0.0;
  double retrieval_ms = 0.0;
};

Timings SingleRun(const core::AnswerSet& s, int k, int top_l, int d) {
  Timings t;
  WallTimer timer;
  auto universe = core::ClusterUniverse::Build(&s, top_l);
  QAG_CHECK(universe.ok());
  t.init_ms = timer.ElapsedMillis();
  timer.Restart();
  auto solution = core::Hybrid::Run(*universe, {k, top_l, d});
  QAG_CHECK(solution.ok()) << solution.status().ToString();
  t.algo_ms = timer.ElapsedMillis();
  return t;
}

Timings PrecomputeRun(const core::AnswerSet& s, int k_max, int top_l,
                      const std::vector<int>& d_values, int retrievals = 1,
                      int k_min = 2) {
  Timings t;
  WallTimer timer;
  auto universe = core::ClusterUniverse::Build(&s, top_l);
  QAG_CHECK(universe.ok());
  t.init_ms = timer.ElapsedMillis();

  core::PrecomputeOptions options;
  options.k_min = k_min;
  options.k_max = k_max;
  options.d_values = d_values;
  timer.Restart();
  auto store = core::Precompute::Run(*universe, top_l, options);
  QAG_CHECK(store.ok()) << store.status().ToString();
  t.algo_ms = timer.ElapsedMillis();

  timer.Restart();
  for (int r = 0; r < retrievals; ++r) {
    int d = d_values[static_cast<size_t>(r) % d_values.size()];
    int k = 2 + (r * 3) % (k_max - 1);
    auto solution = store->Retrieve(d, std::max(k, store->MinK(d).value()));
    QAG_CHECK(solution.ok()) << solution.status().ToString();
  }
  t.retrieval_ms = timer.ElapsedMillis();
  return t;
}

}  // namespace

int main() {
  benchutil::PrintHeader(
      "Figure 7a: precompute runtime vs k (L=1000, D=2, N=2087)",
      "initialization flat in k; the algorithm (Hybrid precompute) time "
      "trends down as k grows (fewer Bottom-Up merges from the shared "
      "Fixed-Order pool down to the target k)");
  core::AnswerSet s2087 = benchutil::MakeAnswers(2087, 8, /*seed=*/7);
  std::printf("%-6s %12s %12s\n", "k", "init(ms)", "algo(ms)");
  for (int k : {5, 10, 20, 50, 100}) {
    // Fixed pool (k_max=100 as the grid maximum); merge down to k.
    Timings t = PrecomputeRun(s2087, /*k_max=*/100, /*top_l=*/1000, {2},
                              /*retrievals=*/1, /*k_min=*/k);
    std::printf("%-6d %12.2f %12.2f\n", k, t.init_ms, t.algo_ms);
  }

  benchutil::PrintHeader(
      "Figure 7b: cumulative runtime, single runs vs precomputation "
      "(N~7000, L=500, k=20, D in {1,2,3})",
      "a single run is cheaper once, but precomputation already wins by "
      "about the third retrieval; after six runs the single version costs "
      "~2x the precompute version");
  core::AnswerSet s7000 = benchutil::MakeAnswers(6955, 8, /*seed=*/8);
  {
    // Six (k, D) requests.
    const int ks[6] = {20, 10, 5, 15, 8, 12};
    const int ds[6] = {1, 2, 3, 1, 2, 3};
    WallTimer timer;
    auto universe = core::ClusterUniverse::Build(&s7000, 500);
    QAG_CHECK(universe.ok());
    double single_cum = timer.ElapsedMillis();  // init shared
    std::printf("%-28s", "single runs cumulative(ms):");
    for (int r = 0; r < 6; ++r) {
      timer.Restart();
      auto solution =
          core::Hybrid::Run(*universe, {ks[r], 500, ds[r]});
      QAG_CHECK(solution.ok());
      single_cum += timer.ElapsedMillis();
      std::printf(" run%d=%.1f", r + 1, single_cum);
    }
    std::printf("\n");

    timer.Restart();
    core::PrecomputeOptions options;
    options.k_min = 2;
    options.k_max = 20;
    options.d_values = {1, 2, 3};
    auto store = core::Precompute::Run(*universe, 500, options);
    QAG_CHECK(store.ok());
    double pre_cum = timer.ElapsedMillis();
    std::printf("%-28s", "precompute cumulative(ms):");
    for (int r = 0; r < 6; ++r) {
      timer.Restart();
      auto solution = store->Retrieve(ds[r], ks[r]);
      QAG_CHECK(solution.ok());
      pre_cum += timer.ElapsedMillis();
      std::printf(" run%d=%.1f", r + 1, pre_cum);
    }
    std::printf("\n");
  }

  benchutil::PrintHeader(
      "Figure 7c/7d: runtime vs L (k=20, D=2, N=2087), single vs precompute",
      "both versions grow with L; the precompute algorithm phase costs ~3-4x "
      "a single run, but retrieval is near-free");
  std::printf("%-6s | %10s %10s | %10s %10s %12s\n", "L", "sgl.init",
              "sgl.algo", "pre.init", "pre.algo", "pre.retrieve");
  for (int l : {200, 500, 1000}) {
    Timings single = SingleRun(s2087, 20, l, 2);
    Timings pre = PrecomputeRun(s2087, 20, l, {1, 2, 3}, /*retrievals=*/3);
    std::printf("%-6d | %10.2f %10.2f | %10.2f %10.2f %12.4f\n", l,
                single.init_ms, single.algo_ms, pre.init_ms, pre.algo_ms,
                pre.retrieval_ms);
  }

  benchutil::PrintHeader(
      "Figure 7e/7f: runtime vs N (k=20, L=500, D=2), single vs precompute",
      "initialization grows markedly with N (more tuples to map to "
      "clusters); algorithm times grow mildly");
  std::printf("%-6s | %10s %10s | %10s %10s %12s\n", "N", "sgl.init",
              "sgl.algo", "pre.init", "pre.algo", "pre.retrieve");
  for (int n : {927, 2087, 6955}) {
    core::AnswerSet s = benchutil::MakeAnswers(n, 8, /*seed=*/70 + n);
    Timings single = SingleRun(s, 20, 500, 2);
    Timings pre = PrecomputeRun(s, 20, 500, {1, 2, 3}, /*retrievals=*/3);
    std::printf("%-6d | %10.2f %10.2f | %10.2f %10.2f %12.4f\n", n,
                single.init_ms, single.algo_ms, pre.init_ms, pre.algo_ms,
                pre.retrieval_ms);
  }
  return 0;
}
