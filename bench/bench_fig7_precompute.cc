// Figure 7: cost and benefit of precomputation (§7.2): initialization,
// single-run, and precomputation times while varying k, L, and N, plus the
// single-vs-precompute cumulative comparison over six runs, plus the
// thread-scaling curve of the parallel (k, D) precompute (one Bottom-Up
// replay per D distributed over a ThreadPool) and the sharded universe
// build.
//
// Emits BENCH_fig7_precompute.json next to the text output; see
// bench/README.md for the schema. QAGVIEW_BENCH_SMOKE=1 shrinks the
// instances for the CI smoke run.

#include <algorithm>
#include <cstdio>
#include <optional>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "core/hybrid.h"
#include "core/precompute.h"

namespace {

using namespace qagview;

struct Timings {
  double init_ms = 0.0;
  double algo_ms = 0.0;
  double retrieval_ms = 0.0;
};

benchutil::TimingStats Once(double ms) { return {ms, ms, 1}; }

Timings SingleRun(const core::AnswerSet& s, int k, int top_l, int d) {
  Timings t;
  WallTimer timer;
  auto universe = core::ClusterUniverse::Build(&s, top_l);
  QAG_CHECK(universe.ok());
  t.init_ms = timer.ElapsedMillis();
  timer.Restart();
  auto solution = core::Hybrid::Run(*universe, {k, top_l, d});
  QAG_CHECK(solution.ok()) << solution.status().ToString();
  t.algo_ms = timer.ElapsedMillis();
  return t;
}

Timings PrecomputeRun(const core::AnswerSet& s, int k_max, int top_l,
                      const std::vector<int>& d_values, int retrievals = 1,
                      int k_min = 2) {
  Timings t;
  WallTimer timer;
  auto universe = core::ClusterUniverse::Build(&s, top_l);
  QAG_CHECK(universe.ok());
  t.init_ms = timer.ElapsedMillis();

  core::PrecomputeOptions options;
  options.k_min = k_min;
  options.k_max = k_max;
  options.d_values = d_values;
  timer.Restart();
  auto store = core::Precompute::Run(*universe, top_l, options);
  QAG_CHECK(store.ok()) << store.status().ToString();
  t.algo_ms = timer.ElapsedMillis();

  timer.Restart();
  for (int r = 0; r < retrievals; ++r) {
    int d = d_values[static_cast<size_t>(r) % d_values.size()];
    int k = 2 + (r * 3) % (k_max - 1);
    auto solution = store->Retrieve(d, std::max(k, store->MinK(d).value()));
    QAG_CHECK(solution.ok()) << solution.status().ToString();
  }
  t.retrieval_ms = timer.ElapsedMillis();
  return t;
}

// Exact (bit-level) equality of two stores: same D rows, same (size, value)
// ladders, same interval sets. The parallel precompute must pass this
// against the serial one for every thread count.
bool StoresIdentical(const core::SolutionStore& a,
                     const core::SolutionStore& b) {
  if (a.l() != b.l() || a.k_max() != b.k_max() ||
      a.d_values() != b.d_values()) {
    return false;
  }
  auto sorted_intervals = [](const core::SolutionStore& s, int d) {
    auto recs = s.Intervals(d);
    QAG_CHECK(recs.ok());
    std::vector<std::tuple<int, int, int>> out;
    for (const auto& r : *recs) out.emplace_back(r.lo, r.hi, r.cluster_id);
    std::sort(out.begin(), out.end());
    return out;
  };
  for (int d : a.d_values()) {
    auto sa = a.SizeValues(d);
    auto sb = b.SizeValues(d);
    QAG_CHECK(sa.ok() && sb.ok());
    if (*sa != *sb) return false;
    if (sorted_intervals(a, d) != sorted_intervals(b, d)) return false;
  }
  return true;
}

}  // namespace

int main() {
  const bool smoke = benchutil::SmokeMode();
  benchutil::JsonReporter reporter("fig7_precompute");

  // Paper-scale instances, shrunk in smoke mode so CI finishes in seconds.
  const int n_small = smoke ? 600 : 2087;
  const int n_large = smoke ? 1500 : 6955;
  const int big_l = smoke ? 200 : 1000;
  const int mid_l = smoke ? 120 : 500;
  const int grid_k_max = smoke ? 20 : 100;

  benchutil::PrintHeader(
      "Figure 7a: precompute runtime vs k (L=" + std::to_string(big_l) +
          ", D=2, N=" + std::to_string(n_small) + ")",
      "initialization flat in k; the algorithm (Hybrid precompute) time "
      "trends down as k grows (fewer Bottom-Up merges from the shared "
      "Fixed-Order pool down to the target k)");
  core::AnswerSet s2087 = benchutil::MakeAnswers(n_small, 8, /*seed=*/7);
  std::printf("%-6s %12s %12s\n", "k", "init(ms)", "algo(ms)");
  for (int k : {5, 10, 20, 50, 100}) {
    if (k > grid_k_max) continue;
    // Fixed pool (k_max as the grid maximum); merge down to k.
    Timings t = PrecomputeRun(s2087, grid_k_max, big_l, {2},
                              /*retrievals=*/1, /*k_min=*/k);
    std::printf("%-6d %12.2f %12.2f\n", k, t.init_ms, t.algo_ms);
    reporter.Add("7a_precompute_vs_k",
                 {{"k", k}, {"L", big_l}, {"N", n_small}, {"D", 2}},
                 Once(t.algo_ms));
  }

  benchutil::PrintHeader(
      "Figure 7b: cumulative runtime, single runs vs precomputation "
      "(N=" + std::to_string(n_large) + ", L=" + std::to_string(mid_l) +
          ", k=20, D in {1,2,3})",
      "a single run is cheaper once, but precomputation already wins by "
      "about the third retrieval; after six runs the single version costs "
      "~2x the precompute version");
  core::AnswerSet s7000 = benchutil::MakeAnswers(n_large, 8, /*seed=*/8);
  {
    // Six (k, D) requests.
    const int ks[6] = {20, 10, 5, 15, 8, 12};
    const int ds[6] = {1, 2, 3, 1, 2, 3};
    WallTimer timer;
    auto universe = core::ClusterUniverse::Build(&s7000, mid_l);
    QAG_CHECK(universe.ok());
    double single_cum = timer.ElapsedMillis();  // init shared
    std::printf("%-28s", "single runs cumulative(ms):");
    for (int r = 0; r < 6; ++r) {
      timer.Restart();
      auto solution =
          core::Hybrid::Run(*universe, {ks[r], mid_l, ds[r]});
      QAG_CHECK(solution.ok());
      single_cum += timer.ElapsedMillis();
      std::printf(" run%d=%.1f", r + 1, single_cum);
    }
    std::printf("\n");

    timer.Restart();
    core::PrecomputeOptions options;
    options.k_min = 2;
    options.k_max = 20;
    options.d_values = {1, 2, 3};
    auto store = core::Precompute::Run(*universe, mid_l, options);
    QAG_CHECK(store.ok());
    double pre_cum = timer.ElapsedMillis();
    std::printf("%-28s", "precompute cumulative(ms):");
    for (int r = 0; r < 6; ++r) {
      timer.Restart();
      auto solution = store->Retrieve(ds[r], ks[r]);
      QAG_CHECK(solution.ok());
      pre_cum += timer.ElapsedMillis();
      std::printf(" run%d=%.1f", r + 1, pre_cum);
    }
    std::printf("\n");
    reporter.Add("7b_six_runs_single",
                 {{"N", n_large}, {"L", mid_l}, {"k", 20}},
                 Once(single_cum));
    reporter.Add("7b_six_runs_precompute",
                 {{"N", n_large}, {"L", mid_l}, {"k", 20}}, Once(pre_cum));
  }

  benchutil::PrintHeader(
      "Figure 7c/7d: runtime vs L (k=20, D=2, N=" + std::to_string(n_small) +
          "), single vs precompute",
      "both versions grow with L; the precompute algorithm phase costs ~3-4x "
      "a single run, but retrieval is near-free");
  std::printf("%-6s | %10s %10s | %10s %10s %12s\n", "L", "sgl.init",
              "sgl.algo", "pre.init", "pre.algo", "pre.retrieve");
  for (int l : {200, 500, 1000}) {
    int use_l = smoke ? l / 5 : l;
    Timings single = SingleRun(s2087, 20, use_l, 2);
    Timings pre =
        PrecomputeRun(s2087, 20, use_l, {1, 2, 3}, /*retrievals=*/3);
    std::printf("%-6d | %10.2f %10.2f | %10.2f %10.2f %12.4f\n", use_l,
                single.init_ms, single.algo_ms, pre.init_ms, pre.algo_ms,
                pre.retrieval_ms);
    reporter.Add("7c_single_vs_L",
                 {{"L", use_l}, {"N", n_small}, {"k", 20}, {"D", 2}},
                 Once(single.algo_ms));
    reporter.Add("7d_precompute_vs_L",
                 {{"L", use_l}, {"N", n_small}, {"k", 20}},
                 Once(pre.algo_ms));
  }

  benchutil::PrintHeader(
      "Figure 7e/7f: runtime vs N (k=20, L=" + std::to_string(mid_l) +
          ", D=2), single vs precompute",
      "initialization grows markedly with N (more tuples to map to "
      "clusters); algorithm times grow mildly");
  std::printf("%-6s | %10s %10s | %10s %10s %12s\n", "N", "sgl.init",
              "sgl.algo", "pre.init", "pre.algo", "pre.retrieve");
  for (int n : {927, 2087, 6955}) {
    int use_n = smoke ? n / 5 : n;
    core::AnswerSet s = benchutil::MakeAnswers(use_n, 8, /*seed=*/70 + n);
    Timings single = SingleRun(s, 20, mid_l, 2);
    Timings pre = PrecomputeRun(s, 20, mid_l, {1, 2, 3}, /*retrievals=*/3);
    std::printf("%-6d | %10.2f %10.2f | %10.2f %10.2f %12.4f\n", use_n,
                single.init_ms, single.algo_ms, pre.init_ms, pre.algo_ms,
                pre.retrieval_ms);
    reporter.Add("7e_single_init_vs_N",
                 {{"N", use_n}, {"L", mid_l}, {"k", 20}, {"D", 2}},
                 Once(single.init_ms));
    reporter.Add("7f_precompute_vs_N",
                 {{"N", use_n}, {"L", mid_l}, {"k", 20}},
                 Once(pre.algo_ms));
  }

  benchutil::PrintHeader(
      "Parallel precompute scaling: full (k, D) grid, threads in {1,2,4,8} "
      "(N=" + std::to_string(n_large) + ", L=" + std::to_string(big_l) +
          ", D=1..8, k_max=" + std::to_string(grid_k_max) + ")",
      "the per-D Bottom-Up replays are independent, so wall clock drops "
      "with threads while the resulting store stays bit-identical; the "
      "sharded universe build scales with N the same way");
  {
    auto universe = core::ClusterUniverse::Build(&s7000, big_l);
    QAG_CHECK(universe.ok());
    core::PrecomputeOptions options;
    options.k_min = 2;
    options.k_max = grid_k_max;
    // Default d_values: the full 1..m grid, m=8 independent replays.

    options.num_threads = 1;
    auto reference = core::Precompute::Run(*universe, big_l, options);
    QAG_CHECK(reference.ok());

    const int reps = smoke ? 2 : 3;
    double serial_ms = 0.0;
    std::printf("%-10s %14s %14s %10s %12s\n", "threads", "median(ms)",
                "min(ms)", "speedup", "identical?");
    for (int threads : {1, 2, 4, 8}) {
      options.num_threads = threads;
      std::optional<core::SolutionStore> store;
      benchutil::TimingStats t = benchutil::TimeStats(
          [&] {
            auto run = core::Precompute::Run(*universe, big_l, options);
            QAG_CHECK(run.ok());
            store.emplace(std::move(run).value());
          },
          reps);
      bool identical = StoresIdentical(*reference, *store);
      QAG_CHECK(identical)
          << "parallel precompute diverged at " << threads << " threads";
      if (threads == 1) serial_ms = t.median_ms;
      std::printf("%-10d %14.2f %14.2f %9.2fx %12s\n", threads, t.median_ms,
                  t.min_ms, serial_ms / t.median_ms,
                  identical ? "yes" : "NO");
      reporter.Add("scaling_precompute_grid",
                   {{"threads", threads},
                    {"N", n_large},
                    {"L", big_l},
                    {"k_max", grid_k_max},
                    {"num_d", 8}},
                   t);
    }

    std::printf("\nuniverse build (inverse coverage scan), same instance:\n");
    std::printf("%-10s %14s %14s %10s\n", "threads", "median(ms)", "min(ms)",
                "speedup");
    double serial_build_ms = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      core::UniverseOptions u_options;
      u_options.num_threads = threads;
      benchutil::TimingStats t = benchutil::TimeStats(
          [&] {
            auto u = core::ClusterUniverse::Build(&s7000, big_l, u_options);
            QAG_CHECK(u.ok());
          },
          reps);
      if (threads == 1) serial_build_ms = t.median_ms;
      std::printf("%-10d %14.2f %14.2f %9.2fx\n", threads, t.median_ms,
                  t.min_ms, serial_build_ms / t.median_ms);
      reporter.Add("scaling_universe_build",
                   {{"threads", threads}, {"N", n_large}, {"L", big_l}}, t);
    }
  }

  reporter.WriteFile();
  return 0;
}
