// Tables 1 and 2: the §8 user study, reproduced over simulated subjects
// (see DESIGN.md: response time and correctness are driven by pattern
// complexity with memory decay — the mechanism the paper identifies).
// Three task groups: varying-method (ours vs decision tree), varying-k
// (5 vs 10), varying-D (1 vs 3).

#include <cstdio>

#include "baselines/decision_tree.h"
#include "bench_util.h"
#include "core/hybrid.h"
#include "study/study.h"

namespace {

using namespace qagview;

core::Solution Summarize(const core::ClusterUniverse& u, int k, int l,
                         int d) {
  auto sol = core::Hybrid::Run(u, {k, l, d});
  QAG_CHECK(sol.ok()) << sol.status().ToString();
  return std::move(sol).value();
}

}  // namespace

int main() {
  benchutil::PrintHeader(
      "Table 1: user study (simulated subjects; 16 per cell)",
      "ours beats decision trees on time and TH-accuracy and degrades far "
      "less from patterns-only to memory-only; bigger k helps accuracy with "
      "patterns visible but hurts memory; bigger D is faster and holds up "
      "in memory; patterns+members is near-perfect everywhere");

  core::AnswerSet s = benchutil::MakeAnswers(420, 5, /*seed=*/2018,
                                             /*domain=*/8);
  study::StudyConfig config;
  config.num_subjects = 16;
  study::UserStudySimulator sim(&s, config);
  std::vector<study::ConditionResult> results;

  // --- Varying-method: L=50, k=10, D=1 vs decision tree (k=10). ---
  {
    auto universe = core::ClusterUniverse::Build(&s, 50);
    QAG_CHECK(universe.ok());
    core::Solution ours = Summarize(*universe, 10, 50, 1);
    baselines::DecisionTree tree =
        baselines::DecisionTree::TrainTuned(s, 50, 10);
    std::printf("decision tree: height=%d positive leaves=%d\n",
                tree.height(), tree.PositiveLeafCount());
    results.push_back(sim.RunCondition(
        study::PatternsFromDecisionTree(s, tree), 50, "DecisionTree"));
    results.push_back(sim.RunCondition(
        study::PatternsFromSolution(*universe, ours), 50, "Ours(k10,D1)"));
  }

  // --- Varying-k: L=30, D=1, k=5 vs k=10. ---
  {
    auto universe = core::ClusterUniverse::Build(&s, 30);
    QAG_CHECK(universe.ok());
    for (int k : {5, 10}) {
      core::Solution sol = Summarize(*universe, k, 30, 1);
      results.push_back(
          sim.RunCondition(study::PatternsFromSolution(*universe, sol), 30,
                           k == 5 ? "k=5" : "k=10"));
    }
  }

  // --- Varying-D: L=10, k=7, D=1 vs D=3. ---
  {
    auto universe = core::ClusterUniverse::Build(&s, 10);
    QAG_CHECK(universe.ok());
    for (int d : {1, 3}) {
      core::Solution sol = Summarize(*universe, 7, 10, d);
      results.push_back(
          sim.RunCondition(study::PatternsFromSolution(*universe, sol), 10,
                           d == 1 ? "D=1" : "D=3"));
    }
  }

  std::printf("\n%s\n", study::UserStudySimulator::RenderTable(results).c_str());

  // --- Table 2: the fixed task-order cohort (a different subject draw). ---
  benchutil::PrintHeader(
      "Table 2: varying-method-first cohort (different subject seeds)",
      "same directional findings as Table 1 — the ordering/learning effect "
      "does not change which approach leads");
  study::StudyConfig cohort2 = config;
  cohort2.seed = 8102;
  cohort2.num_subjects = 8;
  study::UserStudySimulator sim2(&s, cohort2);
  std::vector<study::ConditionResult> results2;
  {
    auto universe = core::ClusterUniverse::Build(&s, 50);
    QAG_CHECK(universe.ok());
    core::Solution ours = Summarize(*universe, 10, 50, 1);
    baselines::DecisionTree tree =
        baselines::DecisionTree::TrainTuned(s, 50, 10);
    results2.push_back(sim2.RunCondition(
        study::PatternsFromDecisionTree(s, tree), 50, "DecisionTree"));
    results2.push_back(sim2.RunCondition(
        study::PatternsFromSolution(*universe, ours), 50, "Ours(k10,D1)"));
  }
  std::printf("\n%s\n",
              study::UserStudySimulator::RenderTable(results2).c_str());
  return 0;
}
