// Approximate-first serving driver: cold-to-first-answer latency, exact
// refinement completion, and sample-maintenance overhead — the two-phase
// serve path measured at the service boundary.
//
// For each table scale (100k / 1M / 4M rows; 20k / 100k in smoke mode)
// the driver times
//
//   * approx_first_answer: a cold Query in an approximate mode answers
//     from the dataset's reservoir sample — cost proportional to the
//     sample, independent of the table;
//   * exact_first_answer: a cold Query in exact-only mode pays the full
//     scan before the first byte of response;
//   * refinement: Refine() upgrades the approximate set to exact — the
//     background phase-two build, timed in the foreground for a
//     deterministic clock.
//
// The cold approximate point is timed under kApproxOnly, whose phase one
// is the identical code path to kApproxFirst (same sample, same bounds);
// it just keeps the background exact build of earlier reps from sharing
// cores with later reps' clocks. The two-phase composition itself is
// checked per scale: a kApproxFirst query must answer approximately, and
// the refined generation must fingerprint bit-identical to a cold
// exact-only service over the same table (the differential invariant).
// Acceptance bar, QAG_CHECKed: approximate first answer at least 10x
// faster than exact at the 1M-row point (3x at the largest smoke scale —
// smoke tables are small enough that the exact scan is itself cheap).
//
// Sample maintenance: AppendRows timed against two otherwise identical
// services, sampling enabled vs disabled (sample_capacity = 0) — the
// per-append cost of keeping the reservoir incremental.
//
// Emits BENCH_approx.json (schema in bench/README.md); the CI smoke run
// gates it against bench/baselines/.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "service/query_service.h"
#include "test_util.h"

namespace {

using namespace qagview;

constexpr char kSql[] =
    "SELECT g0, g1, g2, avg(rating) AS val FROM ratings "
    "GROUP BY g0, g1, g2 HAVING count(*) > 2 ORDER BY val DESC";
constexpr double kConfidence = 0.95;

service::ServiceOptions Sampled() {
  service::ServiceOptions options;
  options.sample_capacity = 4096;
  return options;
}

/// Chunked table build so the transient row buffers stay bounded at the
/// 4M-row scale (the columnar table itself is dictionary-compact).
storage::Table BuildTable(const testutil::RandomTableSpec& spec,
                          uint64_t seed, int64_t rows) {
  storage::Table table(spec.MakeSchema());
  constexpr int64_t kChunk = 100000;
  uint64_t chunk_seed = seed;
  for (int64_t done = 0; done < rows;) {
    const int64_t n = std::min(kChunk, rows - done);
    QAG_CHECK_OK(table.AppendRows(testutil::MakeRandomRows(
        spec, chunk_seed++, static_cast<int>(n))));
    done += n;
  }
  return table;
}

benchutil::TimingStats Stats(std::vector<double> times) {
  std::sort(times.begin(), times.end());
  return {times[times.size() / 2], times.front(),
          static_cast<int>(times.size())};
}

}  // namespace

int main() {
  const bool smoke = benchutil::SmokeMode();
  const int reps = smoke ? 5 : 3;
  const uint64_t seed = 71;
  testutil::RandomTableSpec spec;
  const std::vector<int64_t> scales =
      smoke ? std::vector<int64_t>{20000, 100000}
            : std::vector<int64_t>{100000, 1000000, 4000000};
  service::QueryOptions approx_only;
  approx_only.mode = service::QueryMode::kApproxOnly;
  approx_only.confidence = kConfidence;

  benchutil::PrintHeader(
      "Approximate-first serving: cold-to-first-answer and refinement",
      "the approximate first answer costs the sample, not the table: flat "
      "across scales while the exact cold path grows linearly");
  benchutil::JsonReporter json("approx");

  std::printf("\n%-10s %14s %14s %14s %9s\n", "rows", "approx", "exact",
              "refine", "speedup");
  for (const int64_t rows : scales) {
    storage::Table table = BuildTable(spec, seed, rows);

    // Cold approximate first answer + foreground-timed refinement. One
    // fresh service per rep (register/clone outside the clock).
    std::vector<double> approx_times;
    std::vector<double> refine_times;
    uint64_t refined_fp = 0;
    for (int r = 0; r < reps; ++r) {
      service::QueryService svc(Sampled());
      QAG_CHECK_OK(svc.RegisterTable("ratings", table.Clone()));
      WallTimer cold_timer;
      auto info = svc.Query(kSql, "val", approx_only);
      approx_times.push_back(cold_timer.ElapsedMillis());
      QAG_CHECK(info.ok()) << info.status().ToString();
      QAG_CHECK(!info->is_exact) << "approximate query served exact";
      QAG_CHECK(info->max_bound > 0.0);
      WallTimer refine_timer;
      QAG_CHECK_OK(svc.Refine(info->handle));
      refine_times.push_back(refine_timer.ElapsedMillis());
      auto answers = svc.Answers(info->handle);
      QAG_CHECK(answers.ok()) << answers.status().ToString();
      refined_fp = (*answers)->content_fingerprint();
    }

    // Cold exact first answer.
    std::vector<double> exact_times;
    uint64_t exact_fp = 0;
    for (int r = 0; r < reps; ++r) {
      service::QueryService svc;
      QAG_CHECK_OK(svc.RegisterTable("ratings", table.Clone()));
      WallTimer cold_timer;
      auto info = svc.Query(kSql, "val");
      exact_times.push_back(cold_timer.ElapsedMillis());
      QAG_CHECK(info.ok()) << info.status().ToString();
      QAG_CHECK(info->is_exact);
      auto answers = svc.Answers(info->handle);
      QAG_CHECK(answers.ok()) << answers.status().ToString();
      exact_fp = (*answers)->content_fingerprint();
    }

    // The differential invariant, re-checked in the bench itself: the
    // refined generation is bit-identical to a cold exact rebuild.
    QAG_CHECK(refined_fp == exact_fp)
        << "refined generation diverged from cold exact rebuild at "
        << rows << " rows";

    // Two-phase composition end to end: approx-first answers
    // approximately, and its refinement (coalescing with the background
    // build it scheduled) lands on the same exact generation.
    {
      service::QueryService svc(Sampled());
      QAG_CHECK_OK(svc.RegisterTable("ratings", table.Clone()));
      service::QueryOptions approx_first;
      approx_first.mode = service::QueryMode::kApproxFirst;
      approx_first.confidence = kConfidence;
      auto info = svc.Query(kSql, "val", approx_first);
      QAG_CHECK(info.ok()) << info.status().ToString();
      QAG_CHECK(!info->is_exact) << "approx-first cold query served exact";
      QAG_CHECK_OK(svc.Refine(info->handle));
      auto answers = svc.Answers(info->handle);
      QAG_CHECK(answers.ok()) << answers.status().ToString();
      QAG_CHECK((*answers)->content_fingerprint() == exact_fp)
          << "approx-first refinement diverged at " << rows << " rows";
    }

    benchutil::TimingStats approx = Stats(approx_times);
    benchutil::TimingStats exact = Stats(exact_times);
    benchutil::TimingStats refine = Stats(refine_times);
    const double speedup = exact.median_ms / approx.median_ms;
    std::printf("%-10lld %11.2f ms %11.2f ms %11.2f ms %8.1fx\n",
                static_cast<long long>(rows), approx.median_ms,
                exact.median_ms, refine.median_ms, speedup);
    json.Add("approx_first_answer", {{"N", static_cast<double>(rows)}},
             approx);
    json.Add("exact_first_answer", {{"N", static_cast<double>(rows)}},
             exact);
    json.Add("refinement", {{"N", static_cast<double>(rows)}}, refine);

    // Acceptance bar: 10x at the 1M-row point; 3x at the largest smoke
    // scale, where the exact scan is itself only a few milliseconds.
    if (!smoke && rows == 1000000) {
      QAG_CHECK(speedup >= 10.0)
          << "approximate first answer (" << approx.median_ms
          << " ms) is not 10x faster than exact (" << exact.median_ms
          << " ms) at 1M rows";
    }
    if (smoke && rows == scales.back()) {
      QAG_CHECK(speedup >= 3.0)
          << "approximate first answer (" << approx.median_ms
          << " ms) is not 3x faster than exact (" << exact.median_ms
          << " ms) at the smoke scale";
    }
  }

  // Sample maintenance: per-append cost with the reservoir incremental
  // versus sampling disabled. Identical services and batches otherwise;
  // the delta is the sampler's Add loop plus the snapshot rebuild.
  {
    const int64_t base_rows = smoke ? 20000 : 100000;
    const int batch_rows = 100;
    const int cycles = smoke ? 30 : 100;
    storage::Table table = BuildTable(spec, seed ^ 0xAAAAu, base_rows);

    struct Variant {
      const char* name;
      int capacity;
    };
    const Variant kVariants[] = {{"append_with_sampling", 4096},
                                 {"append_no_sampling", 0}};
    std::printf("\nsample maintenance (+%d rows per append, %d cycles):\n",
                batch_rows, cycles);
    for (const Variant& variant : kVariants) {
      service::ServiceOptions options;
      options.sample_capacity = variant.capacity;
      service::QueryService svc(options);
      QAG_CHECK_OK(svc.RegisterTable("ratings", table.Clone()));
      std::vector<double> times;
      times.reserve(static_cast<size_t>(cycles));
      uint64_t cycle = 0;
      for (int c = 0; c < cycles; ++c) {
        auto batch = testutil::MakeRandomRows(
            spec, seed ^ (0xBBBBu + ++cycle), batch_rows);
        WallTimer timer;
        QAG_CHECK_OK(svc.AppendRows("ratings", batch).status());
        times.push_back(timer.ElapsedMillis());
      }
      benchutil::TimingStats stats = Stats(times);
      std::printf("  %-22s median %8.3f ms/append\n", variant.name,
                  stats.median_ms);
      json.Add(variant.name,
               {{"N", static_cast<double>(base_rows)},
                {"delta_rows", batch_rows},
                {"cycles", cycles}},
               stats);
    }
  }

  json.WriteFile();
  return 0;
}
