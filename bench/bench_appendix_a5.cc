// Appendix A.5: qualitative comparison with smart drill-down, diversified
// top-k, DisC diversity, and MMR on the running-example workload
// (k=4, D=2, L=10). The point being reproduced: only QAGView summarizes
// with '*'-patterns whose covered averages stay high; the baselines either
// prefer prevalent-but-mixed patterns (drill-down) or return individual
// representatives whose implicit neighborhoods include low-valued tuples.

#include <cstdio>

#include "baselines/disc_diversity.h"
#include "baselines/diversified_topk.h"
#include "baselines/mmr.h"
#include "baselines/smart_drilldown.h"
#include "bench_util.h"
#include "core/explore.h"
#include "core/hybrid.h"

namespace {

using namespace qagview;

void PrintElements(const core::AnswerSet& s, const std::vector<int>& ids) {
  for (int e : ids) {
    std::printf("  rank %-3d ", e + 1);
    const core::Element& el = s.element(e);
    for (int a = 0; a < s.num_attrs(); ++a) {
      std::printf("%s%s", a ? ", " : "",
                  s.ValueName(a, el.attrs[static_cast<size_t>(a)]).c_str());
    }
    std::printf("  score=%.3f\n", s.value(e));
  }
}

}  // namespace

int main() {
  benchutil::PrintHeader(
      "Appendix A.5: qualitative baseline comparison (k=4, L=10, D=2)",
      "QAGView clusters carry the highest covered averages; smart "
      "drill-down picks prevalent patterns mixing high and low tuples; "
      "diversified top-k / DisC / MMR return representatives, not "
      "summaries, and their represented averages sit below QAGView's");

  core::AnswerSet s = benchutil::MakeAnswers(50, 4, /*seed=*/14,
                                             /*domain=*/6);
  const int kK = 4;
  const int kTopL = 10;
  const int kD = 2;

  auto universe = core::ClusterUniverse::Build(&s, kTopL);
  QAG_CHECK(universe.ok());
  auto ours = core::Hybrid::Run(*universe, {kK, kTopL, kD});
  QAG_CHECK(ours.ok());
  std::printf("--- QAGView ---\n%s\n",
              core::RenderSummary(*universe, *ours).c_str());
  double our_avg = ours->average;

  // Smart drill-down, on top-L and on all elements (value-weighted score).
  auto print_drilldown = [&](const core::ClusterUniverse& u,
                             const char* label) {
    baselines::SmartDrilldownResult r = baselines::SmartDrilldown(u, kK);
    std::printf("--- Smart drill-down (%s) ---\n", label);
    double weighted_avg_sum = 0.0;
    for (const auto& rule : r.rules) {
      std::printf("  %-28s mcount=%-4d weight=%d avg=%.3f\n",
                  u.cluster(rule.cluster_id).ToString(s).c_str(),
                  rule.marginal_count, rule.weight, rule.marginal_avg);
      weighted_avg_sum += rule.marginal_avg;
    }
    if (!r.rules.empty()) {
      std::printf("  mean rule avg = %.3f (QAGView solution avg = %.3f)\n\n",
                  weighted_avg_sum / r.rules.size(), our_avg);
    }
  };
  print_drilldown(*universe, "top-10 elements");
  auto full_universe = core::ClusterUniverse::Build(&s, s.size());
  QAG_CHECK(full_universe.ok());
  print_drilldown(*full_universe, "all elements");

  // Diversified top-k.
  auto div = baselines::DiversifiedTopKExact(s, kK, kTopL, kD);
  QAG_CHECK(div.ok());
  std::printf("--- Diversified top-k ---\n");
  PrintElements(s, div->element_ids);
  std::printf("  represented avg (radius D-1) = %.3f vs QAGView %.3f\n\n",
              baselines::RepresentedAverage(s, div->element_ids, kD - 1),
              our_avg);

  // DisC diversity.
  baselines::DiscResult disc = baselines::DiscDiversity(s, kTopL, kD);
  std::printf("--- DisC diversity (r=%d) ---\n", kD);
  PrintElements(s, disc.element_ids);
  std::printf("  represented avg (radius %d) = %.3f\n\n", kD,
              baselines::RepresentedAverage(s, disc.element_ids, kD));

  // MMR across lambda.
  for (double lambda : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    std::printf("--- MMR lambda=%.1f ---\n", lambda);
    PrintElements(s, baselines::Mmr(s, kK, kTopL, lambda));
  }
  return 0;
}
