// §6.2 storage efficiency and persistence: the interval-tree store keeps
// one (cluster, k-interval) record per cluster per D instead of a cluster
// list per (k, D) combination, and a serialized store reloads orders of
// magnitude faster than recomputing the grid.

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/precompute.h"
#include "core/solution_store_io.h"

int main() {
  using namespace qagview;

  benchutil::PrintHeader(
      "S6.2 interval-tree storage: records stored vs naive per-(k,D) lists",
      "continuity (Prop 6.1) keeps one contiguous k-interval per cluster, "
      "so stored records are a small fraction of the naive copies");
  std::printf("%-6s %-8s %14s %14s %10s\n", "L", "N", "intervals",
              "naive entries", "ratio");
  for (int l : {100, 300, 600}) {
    core::AnswerSet s = benchutil::MakeAnswers(2087, 8, /*seed=*/31);
    auto universe = core::ClusterUniverse::Build(&s, l);
    QAG_CHECK(universe.ok());
    core::PrecomputeOptions options;
    options.k_min = 2;
    options.k_max = 50;
    options.d_values = {1, 2, 3, 4};
    auto store = core::Precompute::Run(*universe, l, options);
    QAG_CHECK(store.ok());
    std::printf("%-6d %-8d %14lld %14lld %9.1fx\n", l, s.size(),
                static_cast<long long>(store->num_intervals()),
                static_cast<long long>(store->naive_entries()),
                static_cast<double>(store->naive_entries()) /
                    static_cast<double>(store->num_intervals()));
  }

  benchutil::PrintHeader(
      "Persistence: precompute vs save + reload of the guidance grid",
      "reloading a persisted grid replaces the precompute cost with a "
      "parse that is far cheaper, while retrieval stays identical");
  std::printf("%-6s %12s %12s %12s %12s %10s\n", "L", "precompute",
              "serialize", "load", "retrieve", "bytes");
  for (int l : {100, 300, 600}) {
    core::AnswerSet s = benchutil::MakeAnswers(2087, 8, /*seed=*/31);
    auto universe = core::ClusterUniverse::Build(&s, l);
    QAG_CHECK(universe.ok());
    core::PrecomputeOptions options;
    options.k_min = 2;
    options.k_max = 50;
    options.d_values = {1, 2, 3, 4};

    core::SolutionStore store = [&] {
      auto result = core::Precompute::Run(*universe, l, options);
      QAG_CHECK(result.ok());
      return std::move(result).value();
    }();
    double precompute_ms = benchutil::TimeMillis([&] {
      QAG_CHECK(core::Precompute::Run(*universe, l, options).ok());
    });

    std::string text;
    double serialize_ms = benchutil::TimeMillis(
        [&] { text = core::SerializeSolutionStore(store); });
    double load_ms = benchutil::TimeMillis([&] {
      auto loaded = core::DeserializeSolutionStore(&*universe, text);
      QAG_CHECK(loaded.ok()) << loaded.status().ToString();
    });
    auto loaded = core::DeserializeSolutionStore(&*universe, text);
    QAG_CHECK(loaded.ok());
    double retrieve_ms = benchutil::TimeMillis([&] {
      QAG_CHECK(loaded->Retrieve(2, 20).ok());
    });
    // Reload must reproduce the original store's solutions bit-for-bit.
    QAG_CHECK(std::abs(loaded->Retrieve(2, 20)->average -
                       store.Retrieve(2, 20)->average) < 1e-12);
    std::printf("%-6d %10.1fms %10.2fms %10.2fms %10.3fms %10zu\n", l,
                precompute_ms, serialize_ms, load_ms, retrieve_ms,
                text.size());
  }
  return 0;
}
