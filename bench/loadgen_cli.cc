// qagview_loadgen: standalone open-loop load generator for qagview_server.
//
//   qagview_loadgen --port 8080 --rate 200 --requests 2000 --threads 4
//       --get /healthz --post /summarize@req.json
//
// Each --get/--post adds one entry to the replay script (round-robin);
// --post targets take their JSON body from a file after '@', or send an
// empty object when omitted. The offered rate is open loop: request i is
// due at start + i/rate no matter how long earlier requests take, and
// latency is measured from that due time (see server/loadgen.h on
// coordinated omission). Exit status is non-zero when any request failed,
// so the binary doubles as a smoke probe in scripts.
//
// Not named bench_*.cc: this is a tool, not a figure driver, and is
// registered explicitly in bench/CMakeLists.txt.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "server/loadgen.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--rate R] [--requests N]\n"
               "          [--threads N] (--get TARGET | --post TARGET[@body.json])...\n",
               argv0);
}

bool ReadFileTo(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qagview;

  server::LoadgenOptions options;
  options.port = 8080;
  std::vector<server::LoadgenRequest> script;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      options.port = std::atoi(next());
    } else if (arg == "--rate") {
      options.rate = std::atof(next());
    } else if (arg == "--requests") {
      options.total_requests = std::atoi(next());
    } else if (arg == "--threads") {
      options.num_threads = std::atoi(next());
    } else if (arg == "--get") {
      script.push_back({"GET", next(), ""});
    } else if (arg == "--post") {
      const std::string spec = next();
      const size_t at = spec.find('@');
      server::LoadgenRequest req;
      req.method = "POST";
      req.target = spec.substr(0, at);
      req.body = "{}";
      if (at != std::string::npos &&
          !ReadFileTo(spec.substr(at + 1), &req.body)) {
        std::fprintf(stderr, "cannot read body file %s\n",
                     spec.substr(at + 1).c_str());
        return 2;
      }
      script.push_back(std::move(req));
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (script.empty()) script.push_back({"GET", "/healthz", ""});

  std::fprintf(stderr,
               "open loop: %d requests at %.0f/s over %d threads "
               "against %s:%d (%zu script entries)\n",
               options.total_requests, options.rate, options.num_threads,
               options.host.c_str(), options.port, script.size());
  server::LoadgenResults r = server::RunOpenLoop(script, options);

  std::printf("issued            %lld\n", (long long)r.issued);
  std::printf("ok (2xx)          %lld\n", (long long)r.ok);
  std::printf("shed (503)        %lld\n", (long long)r.http_503);
  std::printf("client errors 4xx %lld\n", (long long)r.http_4xx);
  std::printf("server errors 5xx %lld\n", (long long)r.http_5xx);
  std::printf("transport errors  %lld\n", (long long)r.transport_errors);
  std::printf("duration          %.3f s\n", r.duration_s);
  std::printf("achieved          %.1f resp/s\n", r.achieved_rps);
  std::printf("latency p50       %.3f ms\n", r.p50_ms);
  std::printf("latency p90       %.3f ms\n", r.p90_ms);
  std::printf("latency p99       %.3f ms\n", r.p99_ms);
  std::printf("latency p999      %.3f ms\n", r.p999_ms);
  std::printf("latency max       %.3f ms\n", r.max_ms);
  return r.ok == r.issued ? 0 : 1;
}
