// Service stress driver: serving-layer latency and multi-client
// throughput of service::QueryService over a MovieLens-like workload —
// the Appendix A.3 "interactive re-parameterization" claim measured at
// the service boundary instead of the algorithm boundary.
//
// Sections:
//   1. per-op serving latency, cold (first client pays the build) vs warm
//      (everything cached — the paper's interactive regime);
//   2. mixed-workload throughput with 1/2/4/8/16/32 concurrent clients on
//      one shared session, reporting aggregate ops/sec plus per-op p50/p99
//      latency, asserting on every run that the concurrent results are
//      bit-identical to the single-client run (the determinism invariant
//      the service layer guarantees), and that adding clients never
//      collapses aggregate throughput below half the single-client rate
//      (the anti-regression guard for the lock-free warm read path — the
//      old shared-mutex path collapsed to ~0.5x at 2+ clients). Absolute
//      scaling depends on the machine: ~1x flat on a single hardware
//      thread, approaching the core count on multi-core; the recorded
//      ops_per_sec / p50_ms / p99_ms extras are gated per-machine-class
//      against bench/baselines by check_regression.py.
//
// Emits BENCH_service_stress.json next to the text output; see
// bench/README.md for the schema. QAGVIEW_BENCH_SMOKE=1 shrinks the
// instances for the CI smoke run and the regression gate.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/explore.h"
#include "datagen/movielens.h"
#include "service/query_service.h"

namespace {

using namespace qagview;

struct Workload {
  int num_ratings = 0;
  int having_min = 0;  // HAVING count(*) > having_min (smoke keeps more)
  int top_l = 0;
  int k_max = 0;

  std::string Sql() const {
    return "SELECT hdec, agegrp, gender, occupation, avg(rating) AS val "
           "FROM RatingTable WHERE genres_adventure = 1 "
           "GROUP BY hdec, agegrp, gender, occupation "
           "HAVING count(*) > " +
           std::to_string(having_min) + " ORDER BY val DESC";
  }
};

storage::Table MakeRatings(const Workload& w) {
  datagen::MovieLensOptions options;
  options.num_ratings = w.num_ratings;
  return datagen::MovieLensGenerator(options).GenerateRatingTable();
}

std::unique_ptr<service::QueryService> MakeService(storage::Table table) {
  auto svc = std::make_unique<service::QueryService>();
  QAG_CHECK_OK(svc->RegisterTable("RatingTable", std::move(table)));
  return svc;
}

core::PrecomputeOptions Grid(const Workload& w) {
  core::PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = w.k_max;
  return options;
}

/// Comparable footprint of one request's result.
struct Footprint {
  std::vector<int> ids;
  double average = 0.0;

  bool operator==(const Footprint& other) const {
    return ids == other.ids && average == other.average;
  }
  bool operator!=(const Footprint& other) const { return !(*this == other); }
};

/// The rotating mixed op a client issues; every op serves from cache once
/// the session is warm. Returns the result footprint for the bit-identity
/// check.
Footprint RunOp(service::QueryService& svc, service::QueryHandle handle,
                const Workload& w, int op) {
  switch (op % 3) {
    case 0: {
      auto s = svc.Summarize(handle, {4, w.top_l, 2});
      QAG_CHECK(s.ok()) << s.status().ToString();
      return {s->cluster_ids, s->average};
    }
    case 1: {
      int k = 2 + op % (w.k_max - 1);
      auto s = svc.Retrieve(handle, w.top_l, 1 + op % 2, k);
      QAG_CHECK(s.ok()) << s.status().ToString();
      return {s->cluster_ids, s->average};
    }
    default: {
      auto e = svc.Explore(handle, {5, w.top_l, 1}, /*max_members=*/4);
      QAG_CHECK(e.ok()) << e.status().ToString();
      return {e->solution.cluster_ids, e->solution.average};
    }
  }
}

}  // namespace

int main() {
  const bool smoke = benchutil::SmokeMode();
  Workload w;
  w.num_ratings = smoke ? 20000 : 100000;
  w.having_min = smoke ? 5 : 25;
  w.top_l = 10;
  w.k_max = 8;
  const int reps = smoke ? 3 : 5;
  const int ops_per_client = smoke ? 60 : 400;
  const std::string sql = w.Sql();

  benchutil::PrintHeader(
      "Service stress: multi-client QueryService serving latency",
      "once the (k, D) grid is precomputed, re-parameterization answers in "
      "milliseconds, for any number of concurrent clients (A.3 / §7.2)");
  benchutil::JsonReporter json("service_stress");

  // The shared service every warm section runs against; also pins the
  // answer-set size so L stays in range at every instance scale.
  auto svc = MakeService(MakeRatings(w));
  auto info = svc->Query(sql, "val");
  QAG_CHECK(info.ok()) << info.status().ToString();
  const service::QueryHandle handle = info->handle;
  w.top_l = std::min(w.top_l, info->num_answers);
  QAG_CHECK(w.top_l >= 2) << "answer set too small: " << info->num_answers;

  // --- Section 1: per-op serving latency, cold vs warm. -----------------
  std::printf("\n-- per-op latency (ms), N=%d ratings, n=%d answers --\n",
              w.num_ratings, info->num_answers);

  // Cold rows time the service paths only: table generation happens
  // outside the clock, then one rep = fresh service + the cold request.
  auto time_cold = [&](const std::function<void(service::QueryService&)>& fn) {
    std::vector<storage::Table> tables;
    for (int r = 0; r < reps; ++r) tables.push_back(MakeRatings(w));
    size_t next = 0;
    return benchutil::TimeStats(
        [&] {
          auto fresh = MakeService(std::move(tables[next++]));
          fn(*fresh);
        },
        reps);
  };

  benchutil::TimingStats query_cold = time_cold([&](service::QueryService& s) {
    auto i = s.Query(sql, "val");
    QAG_CHECK(i.ok()) << i.status().ToString();
  });
  json.Add("query_cold", {{"N", w.num_ratings}}, query_cold);
  std::printf("%-22s median %8.2f  (SQL + answer-set materialization)\n",
              "query (cold)", query_cold.median_ms);

  benchutil::TimingStats guidance_cold =
      time_cold([&](service::QueryService& s) {
        auto i = s.Query(sql, "val");
        QAG_CHECK(i.ok());
        auto store = s.Guidance(i->handle, w.top_l, Grid(w));
        QAG_CHECK(store.ok()) << store.status().ToString();
      });
  json.Add("guidance_cold",
           {{"N", w.num_ratings}, {"L", w.top_l}, {"k_max", w.k_max}},
           guidance_cold);
  std::printf("%-22s median %8.2f  (includes query + universe + grid)\n",
              "guidance (cold)", guidance_cold.median_ms);

  // Warm the shared service once; every op below serves from cache.
  QAG_CHECK_OK(svc->Guidance(handle, w.top_l, Grid(w)).status());
  const struct {
    const char* name;
    int op;
  } kWarmOps[] = {{"summarize_warm", 0}, {"retrieve_warm", 1},
                  {"explore_warm", 2}};
  for (const auto& [name, op] : kWarmOps) {
    benchutil::TimingStats t = benchutil::TimeStats(
        [&, op = op] { RunOp(*svc, handle, w, op); }, reps * 3);
    json.Add(name, {{"N", w.num_ratings}, {"L", w.top_l}}, t);
    std::printf("%-22s median %8.3f\n", name, t.median_ms);
  }

  // --- Section 2: mixed-workload throughput, 1..32 clients. -------------
  std::printf(
      "\n-- mixed throughput: %d ops/client, shared session, warm --\n",
      ops_per_client);
  std::vector<Footprint> serial_footprints;
  double single_client_ops_per_sec = 0.0;
  for (int threads : {1, 2, 4, 8, 16, 32}) {
    std::vector<std::vector<Footprint>> per_client(
        static_cast<size_t>(threads));
    // Per-op wall times, pooled across clients and reps → p50/p99.
    std::vector<std::vector<double>> per_client_ms(
        static_cast<size_t>(threads));
    benchutil::TimingStats t = benchutil::TimeStats(
        [&] {
          for (auto& v : per_client) v.clear();
          std::vector<std::thread> clients;
          for (int c = 0; c < threads; ++c) {
            clients.emplace_back([&, c] {
              auto& mine = per_client[static_cast<size_t>(c)];
              auto& mine_ms = per_client_ms[static_cast<size_t>(c)];
              mine.reserve(static_cast<size_t>(ops_per_client));
              for (int op = 0; op < ops_per_client; ++op) {
                WallTimer op_timer;
                mine.push_back(RunOp(*svc, handle, w, op));
                mine_ms.push_back(op_timer.ElapsedMillis());
              }
            });
          }
          for (auto& c : clients) c.join();
        },
        reps);
    if (threads == 1) {
      serial_footprints = per_client[0];
    } else {
      // Bit-identity: every client's op sequence matches the 1-client run.
      for (const auto& client : per_client) {
        for (size_t i = 0; i < client.size(); ++i) {
          QAG_CHECK(client[i] == serial_footprints[i])
              << "concurrent result diverged from serial at op " << i;
        }
      }
    }
    std::vector<double> latencies;
    for (const auto& client_ms : per_client_ms) {
      latencies.insert(latencies.end(), client_ms.begin(), client_ms.end());
    }
    std::sort(latencies.begin(), latencies.end());
    auto percentile = [&latencies](double q) {
      size_t idx = static_cast<size_t>(q *
                                       static_cast<double>(latencies.size() - 1));
      return latencies[idx];
    };
    const double p50_ms = percentile(0.50);
    const double p99_ms = percentile(0.99);
    const double total_ops = static_cast<double>(threads) * ops_per_client;
    const double ops_per_sec = total_ops / (t.median_ms / 1e3);
    if (threads == 1) single_client_ops_per_sec = ops_per_sec;
    std::printf(
        "clients %2d: median %8.2f ms  %8.0f ops/s  (%5.2fx vs 1)  "
        "p50 %7.3f ms  p99 %7.3f ms\n",
        threads, t.median_ms, ops_per_sec,
        ops_per_sec / single_client_ops_per_sec, p50_ms, p99_ms);
    json.Add("mixed_throughput",
             {{"threads", threads},
              {"ops_per_client", ops_per_client},
              {"N", w.num_ratings},
              {"L", w.top_l}},
             t,
             {{"ops_per_sec", ops_per_sec},
              {"p50_ms", p50_ms},
              {"p99_ms", p99_ms}});
    // Collapse guard: the warm read path is lock-free, so piling on
    // clients must never push aggregate throughput below half the
    // single-client rate — the failure signature of a shared lock on the
    // hot path (which this workload exhibited before the RCU read path:
    // ~0.5x from 2 clients on). Machine-independent by design; the
    // machine-dependent scaling *gain* is gated via the recorded
    // ops_per_sec baselines instead.
    QAG_CHECK(ops_per_sec >= 0.5 * single_client_ops_per_sec)
        << "aggregate throughput collapsed at " << threads << " clients: "
        << ops_per_sec << " ops/s vs " << single_client_ops_per_sec
        << " ops/s single-client";
  }
  std::printf("bit-identity: concurrent results match the serial run\n");

  service::QueryService::Stats stats = svc->stats();
  std::printf(
      "\nservice totals: %lld requests, %lld cache hits, %lld coalesced "
      "waits, %lld builds\n",
      static_cast<long long>(stats.requests()),
      static_cast<long long>(stats.cache_hits),
      static_cast<long long>(stats.coalesced_waits),
      static_cast<long long>(stats.builds));
  json.WriteFile();
  return 0;
}
