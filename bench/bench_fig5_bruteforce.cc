// Figure 5: comparison with the brute-force optimum and the Fixed-Order
// variants at L=5, D=3, k=2..4.
//
// Deviation from the paper: we use m=6 instead of m=8 so the exact search
// finishes in seconds rather than hours; the *shape* — brute force exploding
// by orders of magnitude while all heuristics stay in the micro/millisecond
// range with near-optimal values — is what Figure 5 demonstrates.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/bottom_up.h"
#include "core/brute_force.h"
#include "core/fixed_order.h"
#include "core/hybrid.h"

int main() {
  using namespace qagview;
  benchutil::PrintHeader(
      "Figure 5a/5b: runtime and value vs k (L=5, D=3), brute force vs "
      "heuristics",
      "BF runtime grows by orders of magnitude with k (2.5h at k=4 in the "
      "paper); heuristics answer in ~ms with values close to BF and far "
      "above the trivial lower bound; random/k-means variants do not beat "
      "plain Fixed-Order");
  benchutil::JsonReporter reporter("fig5_bruteforce");
  const bool smoke = benchutil::SmokeMode();
  const int max_k = smoke ? 3 : 4;
  const int variant_seeds = smoke ? 20 : 100;

  core::AnswerSet s = benchutil::MakeAnswers(/*n=*/50, /*m=*/6, /*seed=*/5);
  auto universe = core::ClusterUniverse::Build(&s, /*top_l=*/5);
  if (!universe.ok()) {
    std::fprintf(stderr, "%s\n", universe.status().ToString().c_str());
    return 1;
  }
  std::printf("instance: n=%d m=%d, %d candidate clusters, trivial lower "
              "bound %.4f\n\n",
              s.size(), s.num_attrs(), universe->num_clusters(),
              s.TrivialAverage());

  std::printf("%-4s %14s %14s %14s %14s %14s %14s\n", "k", "BF(ms)",
              "BottomUp(ms)", "FixedOrd(ms)", "Hybrid(ms)", "Random(ms)",
              "KMeans(ms)");
  struct ValueRow {
    int k;
    double bf, bu, fo, hy, random, kmeans;
    bool bf_exact;
  };
  std::vector<ValueRow> values;

  for (int k = 2; k <= max_k; ++k) {
    core::Params params{k, 5, 3};

    core::BruteForceOptions bf_options;
    bf_options.time_budget_seconds = 300.0;
    double bf_value = 0.0;
    bool bf_exact = false;
    benchutil::TimingStats bf_t = benchutil::TimeStats(
        [&] {
          auto bf = core::BruteForce::Run(*universe, params, bf_options);
          bf_value = bf->solution.average;
          bf_exact = bf->exact;
        },
        1);

    double bu_value = 0.0;
    benchutil::TimingStats bu_t = benchutil::TimeStats([&] {
      bu_value = core::BottomUp::Run(*universe, params)->average;
    });
    double fo_value = 0.0;
    benchutil::TimingStats fo_t = benchutil::TimeStats([&] {
      fo_value = core::FixedOrder::Run(*universe, params)->average;
    });
    double hy_value = 0.0;
    benchutil::TimingStats hy_t = benchutil::TimeStats([&] {
      hy_value = core::Hybrid::Run(*universe, params)->average;
    });

    // Randomized variants: average value over many seeds (as in §7.1).
    double random_value = 0.0;
    double kmeans_value = 0.0;
    WallTimer rand_timer;
    for (int seed = 0; seed < variant_seeds; ++seed) {
      core::FixedOrderOptions options;
      options.seeding = core::FixedOrderOptions::Seeding::kRandom;
      options.seed = static_cast<uint64_t>(seed);
      random_value +=
          core::FixedOrder::Run(*universe, params, options)->average;
    }
    double random_ms = rand_timer.ElapsedMillis() / variant_seeds;
    random_value /= variant_seeds;
    WallTimer kmeans_timer;
    for (int seed = 0; seed < variant_seeds; ++seed) {
      core::FixedOrderOptions options;
      options.seeding = core::FixedOrderOptions::Seeding::kKMeans;
      options.seed = static_cast<uint64_t>(seed);
      kmeans_value +=
          core::FixedOrder::Run(*universe, params, options)->average;
    }
    double kmeans_ms = kmeans_timer.ElapsedMillis() / variant_seeds;
    kmeans_value /= variant_seeds;

    std::printf("%-4d %14.2f %14.4f %14.4f %14.4f %14.4f %14.4f\n", k,
                bf_t.median_ms, bu_t.median_ms, fo_t.median_ms, hy_t.median_ms,
                random_ms, kmeans_ms);
    values.push_back({k, bf_value, bu_value, fo_value, hy_value, random_value,
                      kmeans_value, bf_exact});

    const std::vector<std::pair<std::string, double>> row_params = {
        {"k", k}, {"L", 5}, {"D", 3}, {"n", 50}, {"m", 6}};
    reporter.Add("brute_force", row_params, bf_t);
    reporter.Add("bottom_up", row_params, bu_t);
    reporter.Add("fixed_order", row_params, fo_t);
    reporter.Add("hybrid", row_params, hy_t);
    // Per-seed mean over the whole batch — one measurement, not a
    // median/min over repeats, hence reps = 1 (see bench/README.md).
    reporter.Add("random_fixed_order_per_seed_mean", row_params,
                 {random_ms, random_ms, 1});
    reporter.Add("kmeans_fixed_order_per_seed_mean", row_params,
                 {kmeans_ms, kmeans_ms, 1});
  }

  std::printf("\nFigure 5b: average value (LowerBound = %.4f)\n",
              s.TrivialAverage());
  std::printf("%-4s %10s %10s %10s %10s %10s %10s\n", "k", "BF", "BottomUp",
              "FixedOrd", "Hybrid", "Random", "KMeans");
  for (const ValueRow& row : values) {
    std::printf("%-4d %9.4f%s %10.4f %10.4f %10.4f %10.4f %10.4f\n", row.k,
                row.bf, row.bf_exact ? "" : "~", row.bu, row.fo, row.hy,
                row.random, row.kmeans);
  }
  std::printf("('~' marks a time-capped, possibly inexact BF value)\n");
  reporter.WriteFile();
  return 0;
}
