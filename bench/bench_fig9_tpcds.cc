// Figure 9: scalability on the TPC-DS store_sales workload (§7.4):
// N = 47361 answer tuples, k=20, D=2, L in {500, 1000, 2000}, single runs
// and the precompute pipeline.
//
// Substitution note: the paper materializes store_sales (2.88M rows) in
// PostgreSQL and takes the aggregate query's 47361 output rows; we
// synthesize an answer set of exactly that size and shape (m=8) — the
// summarization layer is identical either way. The SQL path over the
// generated store_sales table is exercised end-to-end by
// examples/tpcds_scalability.

#include <cstdio>

#include "bench_util.h"
#include "core/hybrid.h"
#include "core/precompute.h"

int main() {
  using namespace qagview;
  benchutil::PrintHeader(
      "Figure 9a/9b: TPC-DS-scale runtime vs L (k=20, D=2, N=47361)",
      "initialization stays interactive (~1s at L=2000); single-run "
      "algorithm time exceeds the MovieLens-scale runs; precompute "
      "(init+algo+retrieval) stays within interactive bounds (~seconds)");

  core::AnswerSet s = benchutil::MakeAnswers(47361, 8, /*seed=*/10,
                                             /*domain=*/14);
  std::printf("answer set: n=%d m=%d trivial-average=%.2f\n\n", s.size(),
              s.num_attrs(), s.TrivialAverage());

  std::printf("%-6s | %10s %10s | %10s %10s %12s\n", "L", "sgl.init",
              "sgl.algo", "pre.init", "pre.algo", "pre.retrieve");
  for (int l : {500, 1000, 2000}) {
    WallTimer timer;
    auto universe = core::ClusterUniverse::Build(&s, l);
    QAG_CHECK(universe.ok()) << universe.status().ToString();
    double init_ms = timer.ElapsedMillis();

    timer.Restart();
    auto single = core::Hybrid::Run(*universe, {20, l, 2});
    QAG_CHECK(single.ok()) << single.status().ToString();
    double single_ms = timer.ElapsedMillis();

    core::PrecomputeOptions options;
    options.k_min = 2;
    options.k_max = 20;
    options.d_values = {1, 2, 3};
    timer.Restart();
    auto store = core::Precompute::Run(*universe, l, options);
    QAG_CHECK(store.ok()) << store.status().ToString();
    double precompute_ms = timer.ElapsedMillis();

    timer.Restart();
    for (int d : {1, 2, 3}) {
      auto retrieved = store->Retrieve(d, 20);
      QAG_CHECK(retrieved.ok());
    }
    double retrieval_ms = timer.ElapsedMillis();

    std::printf("%-6d | %10.2f %10.2f | %10.2f %10.2f %12.4f\n", l, init_ms,
                single_ms, init_ms, precompute_ms, retrieval_ms);
  }
  return 0;
}
