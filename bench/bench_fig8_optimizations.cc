// Figure 8 + §6.3: effect of the three systems optimizations.
//   8a  cluster generation & tuple mapping (optimized vs naive init)
//   8b  delta judgment (optimized vs naive merge-candidate evaluation)
//   §6.3 hash/dictionary-encoded fields (int32 codes vs raw strings),
//        as a google-benchmark microbenchmark.

#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/hash.h"
#include "common/random.h"
#include "core/hybrid.h"

namespace {

using namespace qagview;

int InstanceSize() { return benchutil::SmokeMode() ? 600 : 2087; }

core::AnswerSet& Instance() {
  static core::AnswerSet* s = new core::AnswerSet(
      benchutil::MakeAnswers(InstanceSize(), 8, /*seed=*/9));
  return *s;
}

// --- §6.3 hash-values-for-fields microbenchmark: probing a pattern index
// keyed by int32 codes vs by strings. ---

constexpr int kPatterns = 4096;
constexpr int kAttrs = 8;

std::vector<std::vector<int32_t>> MakeCodePatterns() {
  qagview::Rng rng(11);
  std::vector<std::vector<int32_t>> out;
  for (int i = 0; i < kPatterns; ++i) {
    std::vector<int32_t> p(kAttrs);
    for (int a = 0; a < kAttrs; ++a) {
      p[static_cast<size_t>(a)] = static_cast<int32_t>(rng.Index(9));
    }
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<std::string> CodeToString(const std::vector<int32_t>& codes) {
  std::vector<std::string> out;
  for (int32_t c : codes) {
    out.push_back("attribute_value_" + std::to_string(c));
  }
  return out;
}

void BM_PatternProbe_IntCodes(benchmark::State& state) {
  auto patterns = MakeCodePatterns();
  std::unordered_map<std::vector<int32_t>, int, qagview::VectorHash<int32_t>>
      index;
  for (size_t i = 0; i < patterns.size(); ++i) {
    index.emplace(patterns[i], static_cast<int>(i));
  }
  size_t cursor = 0;
  for (auto _ : state) {
    auto it = index.find(patterns[cursor % patterns.size()]);
    benchmark::DoNotOptimize(it);
    ++cursor;
  }
}
BENCHMARK(BM_PatternProbe_IntCodes);

void BM_PatternProbe_Strings(benchmark::State& state) {
  auto patterns = MakeCodePatterns();
  std::unordered_map<std::vector<std::string>, int, VectorHash<std::string>>
      index;
  std::vector<std::vector<std::string>> keys;
  for (size_t i = 0; i < patterns.size(); ++i) {
    keys.push_back(CodeToString(patterns[i]));
    index.emplace(keys.back(), static_cast<int>(i));
  }
  size_t cursor = 0;
  for (auto _ : state) {
    auto it = index.find(keys[cursor % keys.size()]);
    benchmark::DoNotOptimize(it);
    ++cursor;
  }
}
BENCHMARK(BM_PatternProbe_Strings);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::SmokeMode();
  benchutil::JsonReporter reporter("fig8_optimizations");
  const int n = InstanceSize();
  benchutil::PrintHeader(
      "Figure 8a: initialization with vs without the cluster-generation / "
      "tuple-mapping optimizations (k=20, D=2, N=" + std::to_string(n) + ")",
      "the optimized path (tuples probe the generated-cluster index) beats "
      "the naive per-cluster scan by 2-3 orders of magnitude, growing with L"
      " (paper: >100s -> 0.5s at L=1000)");
  core::AnswerSet& s = Instance();
  std::printf("%-6s %16s %16s %10s\n", "L", "with opt(ms)", "without(ms)",
              "speedup");
  for (int l : {200, 500, 1000}) {
    int use_l = smoke ? l / 5 : l;
    benchutil::TimingStats with_t = benchutil::TimeStats(
        [&] {
          auto u = core::ClusterUniverse::Build(&s, use_l);
          QAG_CHECK(u.ok());
        },
        1);
    core::UniverseOptions naive;
    naive.naive_mapping = true;
    benchutil::TimingStats without_t = benchutil::TimeStats(
        [&] {
          auto u = core::ClusterUniverse::Build(&s, use_l, naive);
          QAG_CHECK(u.ok());
        },
        1);
    std::printf("%-6d %16.2f %16.2f %9.1fx\n", use_l, with_t.median_ms,
                without_t.median_ms, without_t.median_ms / with_t.median_ms);
    reporter.Add("8a_init_optimized", {{"L", use_l}, {"N", n}}, with_t);
    reporter.Add("8a_init_naive", {{"L", use_l}, {"N", n}}, without_t);
  }

  benchutil::PrintHeader(
      "Figure 8b: algorithm runtime with vs without delta judgment "
      "(k=20, D=2, N=" + std::to_string(n) + ")",
      "delta judgment cuts the greedy merge loop by an order of magnitude "
      "or more at large L (paper: 4.6s -> 0.15s at L=1000)");
  std::printf("%-6s %16s %16s %10s\n", "L", "with delta(ms)",
              "without(ms)", "speedup");
  for (int l : {200, 500, 1000}) {
    int use_l = smoke ? l / 5 : l;
    auto u = core::ClusterUniverse::Build(&s, use_l);
    QAG_CHECK(u.ok());
    core::HybridOptions with;
    with.use_delta_judgment = true;
    core::HybridOptions without;
    without.use_delta_judgment = false;
    // Warm the shared LCA cache so neither variant pays one-time costs.
    QAG_CHECK(core::Hybrid::Run(*u, {20, use_l, 2}, with).ok());
    benchutil::TimingStats with_t = benchutil::TimeStats(
        [&] { QAG_CHECK(core::Hybrid::Run(*u, {20, use_l, 2}, with).ok()); },
        5);
    benchutil::TimingStats without_t = benchutil::TimeStats(
        [&] {
          QAG_CHECK(core::Hybrid::Run(*u, {20, use_l, 2}, without).ok());
        },
        5);
    std::printf("%-6d %16.2f %16.2f %9.1fx\n", use_l, with_t.median_ms,
                without_t.median_ms, without_t.median_ms / with_t.median_ms);
    reporter.Add("8b_hybrid_delta_judgment",
                 {{"L", use_l}, {"N", n}, {"k", 20}, {"D", 2}}, with_t);
    reporter.Add("8b_hybrid_naive_judgment",
                 {{"L", use_l}, {"N", n}, {"k", 20}, {"D", 2}}, without_t);
  }

  benchutil::PrintHeader(
      "§6.3 'hash values for fields': dictionary-coded vs string patterns",
      "integer-coded pattern probes are ~an order of magnitude cheaper "
      "(the paper reports ~50x end-to-end)");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  reporter.WriteFile();
  return 0;
}
