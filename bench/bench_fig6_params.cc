// Figure 6: runtime and solution value of the three algorithms while
// varying k (6a/6b), L (6c/6d), D (6e/6f), and the number of group-by
// attributes m (6g: initialization, 6h: runtime).

#include <cstdio>

#include "bench_util.h"
#include "core/bottom_up.h"
#include "core/fixed_order.h"
#include "core/hybrid.h"

namespace {

using namespace qagview;

struct Row {
  double bu_ms, fo_ms, hy_ms;
  double bu_v, fo_v, hy_v;
};

Row RunAll(const core::ClusterUniverse& u, const core::Params& params) {
  Row row;
  row.bu_ms = benchutil::TimeMillis(
      [&] { row.bu_v = core::BottomUp::Run(u, params)->average; });
  row.fo_ms = benchutil::TimeMillis(
      [&] { row.fo_v = core::FixedOrder::Run(u, params)->average; });
  row.hy_ms = benchutil::TimeMillis(
      [&] { row.hy_v = core::Hybrid::Run(u, params)->average; });
  return row;
}

void PrintRow(const char* param_name, int param_value, const Row& row,
              double lower_bound) {
  std::printf("%s=%-4d %12.4f %12.4f %12.4f   | %8.4f %8.4f %8.4f %8.4f\n",
              param_name, param_value, row.bu_ms, row.fo_ms, row.hy_ms,
              row.bu_v, row.fo_v, row.hy_v, lower_bound);
}

void PrintColumns() {
  std::printf("%-7s %12s %12s %12s   | %8s %8s %8s %8s\n", "param",
              "BottomUp(ms)", "FixedOrd(ms)", "Hybrid(ms)", "BU val",
              "FO val", "HY val", "LowerBd");
}

}  // namespace

int main() {
  // The paper's defaults: m=8, k=3, L=40, D=3 on the MovieLens answer set
  // (input size 140-280 tuples).
  core::AnswerSet s = benchutil::MakeAnswers(/*n=*/260, /*m=*/8, /*seed=*/6);
  auto universe = core::ClusterUniverse::Build(&s, /*top_l=*/81);
  if (!universe.ok()) {
    std::fprintf(stderr, "%s\n", universe.status().ToString().c_str());
    return 1;
  }

  benchutil::PrintHeader(
      "Figure 6a/6b: vary k (L=40, D=3, m=8)",
      "Fixed-Order fastest, Bottom-Up slowest but best value, Hybrid in "
      "between; runtimes fall with larger k (fewer merges), values rise");
  PrintColumns();
  for (int k : {5, 10, 20, 40}) {
    PrintRow("k", k, RunAll(*universe, {k, 40, 3}), s.TrivialAverage());
  }

  benchutil::PrintHeader(
      "Figure 6c/6d: vary L (k=3, D=3, m=8)",
      "runtimes grow with L (quadratically for Bottom-Up, linearly for "
      "Fixed-Order); values shrink as more coverage is forced");
  PrintColumns();
  for (int l : {3, 9, 27, 81}) {
    PrintRow("L", l, RunAll(*universe, {3, l, 3}), s.TrivialAverage());
  }

  benchutil::PrintHeader(
      "Figure 6e/6f: vary D (k=10, L=40, m=8)",
      "Fixed-Order and Hybrid roughly flat in D; Bottom-Up dips then climbs; "
      "value is highest at D=1 and falls as diversity is forced");
  PrintColumns();
  for (int d = 1; d <= 6; ++d) {
    PrintRow("D", d, RunAll(*universe, {10, 40, d}), s.TrivialAverage());
  }

  benchutil::PrintHeader(
      "Figure 6g/6h: vary m (k=L=20, D=3); input size grows with m "
      "(n = 35m as in the paper's 140-280 range)",
      "initialization grows steeply with m (2^m generalizations; ~10ms at "
      "m=4 to ~1s at m=10); the algorithms themselves stay in single-digit "
      "ms after initialization");
  std::printf("%-7s %10s %14s | %12s %12s %12s\n", "param", "n", "init(ms)",
              "BottomUp(ms)", "FixedOrd(ms)", "Hybrid(ms)");
  for (int m : {4, 6, 8, 10}) {
    core::AnswerSet sm =
        benchutil::MakeAnswers(35 * m, m, /*seed=*/60 + m);
    double init_ms = benchutil::TimeMillis(
        [&] {
          auto um = core::ClusterUniverse::Build(&sm, 20);
          QAG_CHECK(um.ok());
        },
        1);
    auto um = core::ClusterUniverse::Build(&sm, 20);
    QAG_CHECK(um.ok());
    Row row = RunAll(*um, {20, 20, 3});
    std::printf("m=%-5d %10d %14.2f | %12.4f %12.4f %12.4f\n", m, sm.size(),
                init_ms, row.bu_ms, row.fo_ms, row.hy_ms);
  }
  return 0;
}
