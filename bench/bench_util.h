#ifndef QAGVIEW_BENCH_BENCH_UTIL_H_
#define QAGVIEW_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/answer_set.h"
#include "datagen/answers.h"

namespace qagview::benchutil {

/// Synthesizes a MovieLens-answer-shaped instance with exact n and m (see
/// DESIGN.md: the benches substitute direct answer-set synthesis for the
/// PostgreSQL-backed queries; the algorithms only ever see the answer set).
inline core::AnswerSet MakeAnswers(int n, int m, uint64_t seed = 1,
                                   int domain = 9) {
  datagen::SyntheticAnswerOptions options;
  options.n = n;
  options.m = m;
  options.domain = domain;
  options.seed = seed;
  return datagen::MakeSyntheticAnswers(options);
}

/// Prints the figure banner: what is being reproduced and what shape the
/// paper reports (absolute numbers differ; see EXPERIMENTS.md).
inline void PrintHeader(const std::string& figure,
                        const std::string& paper_expectation) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper expectation: %s\n", paper_expectation.c_str());
  std::printf("================================================================\n");
}

/// Median wall time in milliseconds over `reps` runs of fn().
inline double TimeMillis(const std::function<void()>& fn, int reps = 3) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    times.push_back(timer.ElapsedMillis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace qagview::benchutil

#endif  // QAGVIEW_BENCH_BENCH_UTIL_H_
