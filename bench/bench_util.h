#ifndef QAGVIEW_BENCH_BENCH_UTIL_H_
#define QAGVIEW_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/answer_set.h"
#include "datagen/answers.h"

// Baked in by bench/CMakeLists.txt (git describe at configure time) so a
// recorded BENCH_*.json names the code state it measured.
#ifndef QAGVIEW_GIT_DESCRIBE
#define QAGVIEW_GIT_DESCRIBE "unknown"
#endif

namespace qagview::benchutil {

/// Synthesizes a MovieLens-answer-shaped instance with exact n and m (see
/// DESIGN.md: the benches substitute direct answer-set synthesis for the
/// PostgreSQL-backed queries; the algorithms only ever see the answer set).
inline core::AnswerSet MakeAnswers(int n, int m, uint64_t seed = 1,
                                   int domain = 9) {
  datagen::SyntheticAnswerOptions options;
  options.n = n;
  options.m = m;
  options.domain = domain;
  options.seed = seed;
  return datagen::MakeSyntheticAnswers(options);
}

/// Prints the figure banner: what is being reproduced and what shape the
/// paper reports (absolute numbers differ; see EXPERIMENTS.md).
inline void PrintHeader(const std::string& figure,
                        const std::string& paper_expectation) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper expectation: %s\n", paper_expectation.c_str());
  std::printf("================================================================\n");
}

/// Wall-time summary of repeated runs, as recorded in BENCH_*.json.
struct TimingStats {
  double median_ms = 0.0;
  double min_ms = 0.0;
  int reps = 0;
};

/// Median and min wall time over `reps` runs of fn().
inline TimingStats TimeStats(const std::function<void()>& fn, int reps = 3) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    times.push_back(timer.ElapsedMillis());
  }
  std::sort(times.begin(), times.end());
  return {times[times.size() / 2], times.front(), reps};
}

/// Median wall time in milliseconds over `reps` runs of fn().
inline double TimeMillis(const std::function<void()>& fn, int reps = 3) {
  return TimeStats(fn, reps).median_ms;
}

/// CI smoke mode (QAGVIEW_BENCH_SMOKE=1): drivers shrink their instances so
/// the whole run takes seconds; the JSON marks the rows as smoke-sized so a
/// baseline comparison never mixes the two scales.
inline bool SmokeMode() {
  const char* v = std::getenv("QAGVIEW_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// \brief Machine-readable bench output: one BENCH_<figure>.json per
/// driver, accumulating rows of (name, numeric params, median/min ms,
/// reps) plus the figure id, git-describe string, and smoke flag.
///
/// The schema is documented in bench/README.md; CI runs the JSON-emitting
/// drivers in smoke mode and uploads the files as artifacts, so the perf
/// trajectory of the repo accumulates per PR.
class JsonReporter {
 public:
  explicit JsonReporter(std::string figure) : figure_(std::move(figure)) {}

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() {
    if (!written_) WriteFile();
  }

  /// Records one timed row. Params are numeric by design (k, L, N, D,
  /// threads, ...) and form the regression gate's join key; variant names
  /// belong in `name`. `extras` are measured outputs reported alongside
  /// (e.g. memory/occupancy counters) — deliberately outside the join key
  /// so their run-to-run variation never un-gates the timing comparison.
  void Add(const std::string& name,
           const std::vector<std::pair<std::string, double>>& params,
           const TimingStats& t,
           const std::vector<std::pair<std::string, double>>& extras = {}) {
    std::string row = "    {\"name\": \"" + name + "\", \"params\": {";
    for (size_t i = 0; i < params.size(); ++i) {
      if (i > 0) row += ", ";
      row += "\"" + params[i].first + "\": " + Num(params[i].second);
    }
    row += "}";
    if (!extras.empty()) {
      row += ", \"extras\": {";
      for (size_t i = 0; i < extras.size(); ++i) {
        if (i > 0) row += ", ";
        row += "\"" + extras[i].first + "\": " + Num(extras[i].second);
      }
      row += "}";
    }
    row += ", \"median_ms\": " + Num(t.median_ms) +
           ", \"min_ms\": " + Num(t.min_ms) +
           ", \"reps\": " + std::to_string(t.reps) + "}";
    rows_.push_back(std::move(row));
  }

  /// Writes BENCH_<figure>.json into the current directory (where CI picks
  /// it up). Returns false on I/O failure.
  bool WriteFile() {
    written_ = true;
    std::string path = "BENCH_" + figure_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReporter: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"figure\": \"%s\",\n  \"git\": \"%s\",\n"
                    "  \"smoke\": %s,\n  \"entries\": [\n",
                 figure_.c_str(), QAGVIEW_GIT_DESCRIBE,
                 SmokeMode() ? "true" : "false");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu entries)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  static std::string Num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  std::string figure_;
  std::vector<std::string> rows_;
  bool written_ = false;
};

}  // namespace qagview::benchutil

#endif  // QAGVIEW_BENCH_BENCH_UTIL_H_
