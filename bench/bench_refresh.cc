// Refresh driver: incremental dataset updates vs cold rebuild across delta
// sizes — the versioned-update pipeline measured at the service boundary.
//
// For each delta size (1 quiet row, 1%, 10%, 100% of the base table) the
// driver times
//
//   * incremental: a warm service absorbs AppendRows, then the next
//     Query + Guidance transparently refreshes the stale handle
//     (core::Session::Refresh reuses every cache whose input fingerprint
//     is provably unchanged);
//   * cold: a fresh service over the final table state pays
//     Query + Guidance from scratch.
//
// The 1-row delta lands in a group that stays under the HAVING threshold,
// so the re-executed answer set is bit-identical and the refresh proves
// "unchanged" — the realistic fast path for small appends (most rows touch
// groups outside the served answer set). Larger random deltas change the
// answer set and force rebuilds, tracing the honest reuse-decay curve.
// Every incremental result is asserted bit-identical to the cold rebuild
// of the same final state (the differential-refresh invariant), and in
// smoke mode the 1-row incremental point must beat cold rebuild >= 2x.
//
// Emits BENCH_refresh.json (schema in bench/README.md); the CI smoke run
// gates it against bench/baselines/.

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "service/query_service.h"
#include "test_util.h"

namespace {

using namespace qagview;

struct Workload {
  int base_rows = 0;
  int having_min = 0;
  int top_l = 0;
  int k_max = 0;

  std::string Sql() const {
    return "SELECT g0, g1, g2, g3, avg(rating) AS val FROM ratings "
           "GROUP BY g0, g1, g2, g3 HAVING count(*) > " +
           std::to_string(having_min) + " ORDER BY val DESC";
  }
};

core::PrecomputeOptions Grid(const Workload& w) {
  core::PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = w.k_max;
  options.d_values = {1, 2, 3, 4};
  return options;
}

/// Query + Guidance + one Summarize through the public API; returns the
/// summarize average as the bit-identity footprint.
double Pipeline(service::QueryService& svc, const Workload& w,
                const std::string& sql) {
  auto info = svc.Query(sql, "val");
  QAG_CHECK(info.ok()) << info.status().ToString();
  const int top_l = std::min(w.top_l, info->num_answers);
  auto store = svc.Guidance(info->handle, top_l, Grid(w));
  QAG_CHECK(store.ok()) << store.status().ToString();
  auto solution = svc.Summarize(info->handle, {4, top_l, 2});
  QAG_CHECK(solution.ok()) << solution.status().ToString();
  return solution->average;
}

/// A fresh service over base(seed) + extra, fully warmed.
std::unique_ptr<service::QueryService> WarmService(
    const testutil::RandomTableSpec& spec, uint64_t seed, const Workload& w,
    const std::string& sql,
    const std::vector<std::vector<storage::Value>>& extra) {
  auto svc = std::make_unique<service::QueryService>();
  storage::Table table = testutil::MakeRandomTable(spec, seed, w.base_rows);
  QAG_CHECK_OK(table.AppendRows(extra));
  QAG_CHECK_OK(svc->RegisterTable("ratings", std::move(table)));
  Pipeline(*svc, w, sql);
  return svc;
}

}  // namespace

int main() {
  const bool smoke = benchutil::SmokeMode();
  Workload w;
  w.base_rows = smoke ? 4000 : 40000;
  w.having_min = smoke ? 1 : 6;
  w.top_l = 64;
  w.k_max = 32;
  const int reps = smoke ? 5 : 7;
  const uint64_t seed = 23;
  // Wider domains than the test default: a serving-sized answer set whose
  // universe + grid precompute dominate the SQL re-execution, as in the
  // paper's workloads.
  testutil::RandomTableSpec spec;
  spec.domains = {14, 10, 8, 6};
  const std::string sql = w.Sql();

  benchutil::PrintHeader(
      "Refresh: incremental dataset updates vs cold rebuild",
      "small deltas refresh in SQL-re-execution time (caches provably "
      "reusable); large deltas decay toward the cold-rebuild cost");
  benchutil::JsonReporter json("refresh");

  // The quiet single row: a group far outside the served answer set (its
  // count never crosses HAVING), so the refresh proves the answer set
  // unchanged. Delta batches of n rows: random rows over the same spec.
  const std::vector<storage::Value> quiet_row = {
      storage::Value::Str("g0tail"), storage::Value::Str("g1tail"),
      storage::Value::Str("g2tail"), storage::Value::Str("g3v0"),
      storage::Value::Real(1.0)};

  struct DeltaPoint {
    const char* name;
    int rows;  // 0 = the single quiet row
  };
  const DeltaPoint kDeltas[] = {
      {"1 quiet row", 0},
      {"1%", w.base_rows / 100},
      {"10%", w.base_rows / 10},
      {"100%", w.base_rows},
  };

  std::printf("\n-- %d base rows, L=%d, k_max=%d, reps=%d --\n",
              w.base_rows, w.top_l, w.k_max, reps);
  std::printf("%-12s %14s %14s %9s\n", "delta", "incremental", "cold", "speedup");

  double incremental_1row = 0.0;
  double cold_1row = 0.0;
  for (const DeltaPoint& delta : kDeltas) {
    const int delta_rows = delta.rows == 0 ? 1 : delta.rows;
    std::vector<std::vector<storage::Value>> extra =
        delta.rows == 0
            ? std::vector<std::vector<storage::Value>>{quiet_row}
            : testutil::MakeRandomRows(spec, seed ^ 0xD1D1u, delta.rows);

    // Incremental: warm services built outside the clock; one rep times
    // AppendRows + the refreshing Query + Guidance.
    std::vector<std::unique_ptr<service::QueryService>> warmed;
    for (int r = 0; r < reps; ++r) {
      warmed.push_back(WarmService(spec, seed, w, sql, {}));
    }
    size_t next = 0;
    double live_footprint = 0.0;
    benchutil::TimingStats incremental = benchutil::TimeStats(
        [&] {
          service::QueryService& svc = *warmed[next++];
          QAG_CHECK_OK(svc.AppendRows("ratings", extra).status());
          live_footprint = Pipeline(svc, w, sql);
        },
        reps);

    // Cold: services over the final state built outside the clock; one
    // rep times Query + Guidance from scratch.
    std::vector<std::unique_ptr<service::QueryService>> cold_services;
    for (int r = 0; r < reps; ++r) {
      auto svc = std::make_unique<service::QueryService>();
      storage::Table table =
          testutil::MakeRandomTable(spec, seed, w.base_rows);
      QAG_CHECK_OK(table.AppendRows(extra));
      QAG_CHECK_OK(svc->RegisterTable("ratings", std::move(table)));
      cold_services.push_back(std::move(svc));
    }
    next = 0;
    double cold_footprint = 0.0;
    benchutil::TimingStats cold = benchutil::TimeStats(
        [&] { cold_footprint = Pipeline(*cold_services[next++], w, sql); },
        reps);

    // The differential-refresh invariant, re-checked in the bench itself.
    QAG_CHECK(live_footprint == cold_footprint)
        << "incremental refresh diverged from cold rebuild at delta "
        << delta.name;

    const double speedup = cold.median_ms / incremental.median_ms;
    std::printf("%-12s %11.2f ms %11.2f ms %8.2fx\n", delta.name,
                incremental.median_ms, cold.median_ms, speedup);
    json.Add("incremental_refresh",
             {{"delta_rows", delta_rows},
              {"N", w.base_rows},
              {"L", w.top_l},
              {"k_max", w.k_max}},
             incremental);
    json.Add("cold_rebuild",
             {{"delta_rows", delta_rows},
              {"N", w.base_rows},
              {"L", w.top_l},
              {"k_max", w.k_max}},
             cold);
    if (delta.rows == 0) {
      incremental_1row = incremental.median_ms;
      cold_1row = cold.median_ms;
    }
  }

  // Sustained updates: one warm service absorbs N append+refresh cycles
  // while clients drop their handles after each use — the serving pattern
  // that used to leak a generation per refresh. The memory column is the
  // generation census after the last cycle: with every reader drained the
  // graveyard must be empty (drain-then-evict), so resident generations
  // stay at one per session no matter how many refreshes ran.
  {
    const int cycles = smoke ? 20 : 100;
    const int delta_rows = std::max(1, w.base_rows / 200);
    auto svc = WarmService(spec, seed, w, sql, {});
    uint64_t cycle = 0;
    benchutil::TimingStats sustained = benchutil::TimeStats(
        [&] {
          QAG_CHECK_OK(
              svc->AppendRows("ratings",
                              testutil::MakeRandomRows(
                                  spec, seed ^ (0xBEEFu + ++cycle),
                                  delta_rows))
                  .status());
          Pipeline(*svc, w, sql);  // handles dropped on return
        },
        cycles);
    service::QueryService::Stats stats = svc->stats();
    // Strict: with every handle dropped, nothing may remain retained —
    // the bound is live readers (+1 live generation), and readers are 0.
    QAG_CHECK(stats.graveyard_size == 0)
        << "graveyard grew under sustained updates with no live readers: "
        << stats.graveyard_size << " generations retained";
    std::printf(
        "\nsustained updates: %d cycles of +%d rows, median %.2f ms/cycle; "
        "generations: live %lld, graveyard %lld, evicted %lld\n",
        cycles, delta_rows, sustained.median_ms,
        static_cast<long long>(stats.live_generations),
        static_cast<long long>(stats.graveyard_size),
        static_cast<long long>(stats.generations_evicted));
    // The generation census rides along as extras (measured outputs), not
    // params: params are the regression gate's join key, and a benign
    // census wobble must not detach this entry from its baseline.
    json.Add("sustained_updates",
             {{"cycles", cycles},
              {"delta_rows", delta_rows},
              {"N", w.base_rows},
              {"L", w.top_l}},
             sustained,
             {{"graveyard_size", static_cast<double>(stats.graveyard_size)},
              {"live_generations",
               static_cast<double>(stats.live_generations)},
              {"generations_evicted",
               static_cast<double>(stats.generations_evicted)}});
  }

  // Acceptance bar: at the 1-row delta, the provably-unchanged refresh
  // must beat the cold rebuild at least 2x on the smoke workload.
  if (smoke) {
    QAG_CHECK(cold_1row >= 2.0 * incremental_1row)
        << "1-row incremental refresh (" << incremental_1row
        << " ms) is not 2x faster than cold rebuild (" << cold_1row
        << " ms)";
    std::printf("\n1-row delta: incremental %.2f ms vs cold %.2f ms "
                "(>= 2x bar: PASS)\n",
                incremental_1row, cold_1row);
  }

  json.WriteFile();
  return 0;
}
