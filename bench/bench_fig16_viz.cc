// Figure 16 + Appendix A.7.3: quality and speed of the comparison
// visualization's placement optimization — total band distance and
// crossing counts for matched (bipartite matching) vs default placement
// at k in {5, 10, 20}, plus Hungarian-vs-brute-force timing at k=10.

#include <cstdio>
#include <numeric>

#include "bench_util.h"
#include "core/hybrid.h"
#include "viz/height_placement.h"
#include "viz/sankey.h"

int main() {
  using namespace qagview;
  benchutil::PrintHeader(
      "Figure 16a/16b: matched vs default placement (D=2; (k,(L1,L2)) = "
      "(5,(8,10)), (10,(15,20)), (20,(30,40)))",
      "matched placement has lower total distance and fewer crossings at "
      "every k; the gap widens with k");

  core::AnswerSet s = benchutil::MakeAnswers(2087, 8, /*seed=*/12);
  struct Config {
    int k, l1, l2;
  };
  const Config configs[] = {{5, 8, 10}, {10, 15, 20}, {20, 30, 40}};
  std::printf("%-4s %16s %16s | %14s %14s\n", "k", "dist(matched)",
              "dist(default)", "cross(matched)", "cross(default)");
  viz::SankeyDiagram k10_diagram;  // saved for the timing experiment
  std::vector<int> k10_left;
  for (const Config& config : configs) {
    auto universe = core::ClusterUniverse::Build(&s, config.l2);
    QAG_CHECK(universe.ok());
    auto old_solution =
        core::Hybrid::Run(*universe, {config.k, config.l1, 2});
    auto new_solution =
        core::Hybrid::Run(*universe, {config.k, config.l2, 2});
    QAG_CHECK(old_solution.ok() && new_solution.ok());

    viz::SankeyDiagram diagram =
        viz::BuildSankey(*universe, *old_solution, *new_solution);
    std::vector<int> left = viz::IdentityPositions(diagram.num_left());
    std::vector<int> default_right =
        viz::IdentityPositions(diagram.num_right());
    auto matched = viz::OptimizeRightPositions(diagram, left);
    QAG_CHECK(matched.ok());

    std::printf("%-4d %16.1f %16.1f | %14d %14d\n", config.k,
                viz::PlacementDistance(diagram, left, *matched),
                viz::PlacementDistance(diagram, left, default_right),
                viz::CountCrossings(diagram, left, *matched),
                viz::CountCrossings(diagram, left, default_right));
    if (config.k == 10) {
      k10_diagram = diagram;
      k10_left = left;
    }
  }

  benchutil::PrintHeader(
      "Appendix A.7.3: placement computation time at k=10",
      "bipartite matching takes <10ms while brute force takes seconds "
      "(same optimal distance)");
  double hungarian_ms = benchutil::TimeMillis(
      [&] {
        auto r = viz::OptimizeRightPositions(k10_diagram, k10_left);
        QAG_CHECK(r.ok());
      },
      3);
  double brute_ms = benchutil::TimeMillis(
      [&] {
        auto r =
            viz::OptimizeRightPositionsBruteForce(k10_diagram, k10_left);
        QAG_CHECK(r.ok());
      },
      1);
  auto fast = viz::OptimizeRightPositions(k10_diagram, k10_left);
  auto slow = viz::OptimizeRightPositionsBruteForce(k10_diagram, k10_left);
  std::printf("hungarian: %.3f ms   brute force: %.1f ms   distances: "
              "%.1f vs %.1f\n",
              hungarian_ms, brute_ms,
              viz::PlacementDistance(k10_diagram, k10_left, *fast),
              viz::PlacementDistance(k10_diagram, k10_left, *slow));

  benchutil::PrintHeader(
      "Appendix A.7.2 alternative formulation: height-proportional boxes",
      "the variant is NP-hard; the barycenter + local-search heuristic "
      "should land at or near the exhaustive optimum while the default "
      "(value-ordered) placement is clearly worse");
  std::printf("%-4s %14s %14s %14s %12s\n", "k", "cost(default)",
              "cost(heuristic)", "cost(optimal)", "heur ms");
  for (const Config& config : configs) {
    auto universe = core::ClusterUniverse::Build(&s, config.l2);
    QAG_CHECK(universe.ok());
    auto old_solution =
        core::Hybrid::Run(*universe, {config.k, config.l1, 2});
    auto new_solution =
        core::Hybrid::Run(*universe, {config.k, config.l2, 2});
    QAG_CHECK(old_solution.ok() && new_solution.ok());
    viz::SankeyDiagram diagram =
        viz::BuildSankey(*universe, *old_solution, *new_solution);
    viz::HeightPlacementProblem problem = viz::FromSankey(diagram);

    std::vector<int> left(static_cast<size_t>(problem.num_left()));
    std::iota(left.begin(), left.end(), 0);
    std::vector<int> default_right(static_cast<size_t>(problem.num_right()));
    std::iota(default_right.begin(), default_right.end(), 0);

    double default_cost =
        viz::HeightPlacementCost(problem, left, default_right).value();
    std::vector<int> heuristic;
    double heur_ms = benchutil::TimeMillis([&] {
      heuristic = viz::OptimizeHeightPlacement(problem, left).value();
    });
    double heur_cost =
        viz::HeightPlacementCost(problem, left, heuristic).value();
    double optimal_cost = -1.0;
    if (problem.num_right() <= 10) {
      auto optimal = viz::OptimizeHeightPlacementBruteForce(problem, left);
      QAG_CHECK(optimal.ok());
      optimal_cost = viz::HeightPlacementCost(problem, left, *optimal).value();
    }
    if (optimal_cost >= 0.0) {
      std::printf("%-4d %14.1f %14.1f %14.1f %12.3f\n", config.k,
                  default_cost, heur_cost, optimal_cost, heur_ms);
    } else {
      std::printf("%-4d %14.1f %14.1f %14s %12.3f\n", config.k, default_cost,
                  heur_cost, "(n > 10)", heur_ms);
    }
  }
  return 0;
}
