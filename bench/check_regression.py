#!/usr/bin/env python3
"""Bench-regression gate over the BENCH_*.json files.

Compares freshly produced bench JSONs (see bench/README.md for the schema)
against the checked-in snapshots under bench/baselines/ and fails when any
entry's median regresses beyond the threshold. Entries are join-keyed by
(figure, name, params); the `git` stamp is informational and ignored.

Design choices, tuned for a CI gate rather than a lab notebook:

  * smoke flags must match — a smoke run is never compared against a
    full-size baseline (the instances differ by construction);
  * entries where baseline and current both sit under the --min-ms noise
    floor are reported but never fail the gate: sub-millisecond medians on
    shared CI runners are noise (a tiny entry that balloons past the floor
    is still gated);
  * entries missing from the baseline (new benches) warn instead of fail,
    so adding a bench does not require touching the gate; --strict upgrades
    every warning to a failure;
  * measured `extras` present in both runs are gated too, not just the
    median: latency extras (keys ending in `_ms`, e.g. p50_ms/p99_ms) fail
    when they grow past the threshold, with the same noise floor as
    medians; throughput extras (`ops_per_sec`) fail when they *drop* past
    the threshold — this is how the multi-client scaling of the service
    stress bench is held, per machine class, without hardcoding a speedup
    a 1-core runner could never reproduce. Extras present on only one side
    are informational (schema evolution must not fail the gate) — but a
    *gateable* extra (`_ms` / `ops_per_sec`) missing from the baseline is
    surfaced as a warning, once per figure and key, instead of being
    silently skipped: an ungated measurement should be a visible state,
    cleared by refreshing the baseline with --update;
  * --update rewrites the baseline files from the current JSONs — the
    documented refresh workflow after an intentional perf change.

Usage (from the build directory, after the smoke bench step):

    python3 ../bench/check_regression.py --baseline-dir ../bench/baselines \
        BENCH_*.json

Exit status: 0 = no regression, 1 = regression (or warning under
--strict), 2 = usage/parse error.
"""

import argparse
import json
import os
import shutil
import sys

DEFAULT_THRESHOLD = 0.25  # fail on >25% median regression
DEFAULT_MIN_MS = 5.0


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def entry_key(entry):
    """Stable join key: name plus the sorted numeric params."""
    params = entry.get("params", {})
    return (entry.get("name", "?"),
            tuple(sorted((k, float(v)) for k, v in params.items())))


def fmt_key(key):
    name, params = key
    inner = ", ".join(f"{k}={v:g}" for k, v in params)
    return f"{name}({inner})" if inner else name


def compare_extras(label, figure, entry, base, args, seen_ungated):
    """Gates the measured extras shared by both runs.

    Returns (regressions, warnings) for one entry. Latency extras (keys
    ending in `_ms`) regress upward and respect the --min-ms noise floor;
    throughput extras (`ops_per_sec`) regress downward and have no floor
    (an absolute rate is already an average over many ops). A gateable
    extra present in the current run but absent from the baseline warns
    once per (figure, key) — recorded in `seen_ungated` — so a new
    measurement is visibly informational rather than silently skipped.
    """
    regressions, warnings = [], []
    cur_extras = entry.get("extras", {}) or {}
    base_extras = base.get("extras", {}) or {}
    for key in sorted(set(cur_extras) - set(base_extras)):
        if not key.endswith("_ms") and key != "ops_per_sec":
            continue
        if (figure, key) not in seen_ungated:
            seen_ungated.add((figure, key))
            warnings.append(
                f"{figure}.{key}: gateable extra not in baseline — "
                f"informational until the baseline is refreshed (--update)")
    for key in sorted(set(cur_extras) & set(base_extras)):
        # Only measured performance extras are gated; counters and sizes
        # (graveyard_size, live_generations, ...) stay informational.
        if not key.endswith("_ms") and key != "ops_per_sec":
            continue
        try:
            cur = float(cur_extras[key])
            base_v = float(base_extras[key])
        except (TypeError, ValueError):
            warnings.append(f"{label}.{key}: non-numeric extra — skipped")
            continue
        if base_v <= 0.0:
            warnings.append(f"{label}.{key}: baseline is {base_v} — skipped")
            continue
        ratio = cur / base_v
        if key.endswith("_ms"):
            verdict = f"{base_v:.3f} -> {cur:.3f} ms ({ratio - 1.0:+.1%})"
            if base_v < args.min_ms and cur < args.min_ms:
                if ratio > 1.0 + args.threshold:
                    warnings.append(
                        f"{label}.{key}: {verdict} — under the "
                        f"{args.min_ms}ms noise floor, not gated")
                continue
            if ratio > 1.0 + args.threshold:
                regressions.append(f"{label}.{key}: REGRESSION {verdict}")
        elif key == "ops_per_sec":
            verdict = f"{base_v:.0f} -> {cur:.0f} ops/s ({ratio - 1.0:+.1%})"
            if ratio < 1.0 - args.threshold:
                regressions.append(f"{label}.{key}: REGRESSION {verdict}")
            elif ratio > 1.0 + args.threshold:
                print(f"  improvement  {label}.{key}: {verdict}")
        # Other extras (occupancy counters, sizes, ...) are informational.
    return regressions, warnings


def compare_file(current_path, baseline_path, args):
    """Returns (regressions, warnings) message lists for one figure."""
    current = load(current_path)
    figure = current.get("figure", os.path.basename(current_path))
    if not os.path.exists(baseline_path):
        return [], [f"{figure}: no baseline at {baseline_path} "
                    f"(new bench? seed it with --update)"]

    baseline = load(baseline_path)
    regressions, warnings = [], []
    if bool(current.get("smoke")) != bool(baseline.get("smoke")):
        # Different instance scales are incomparable by construction.
        return [], [f"{figure}: smoke={current.get('smoke')} vs baseline "
                    f"smoke={baseline.get('smoke')} — skipped (never mix "
                    f"smoke and full-size runs)"]

    base_entries = {entry_key(e): e for e in baseline.get("entries", [])}
    seen_ungated = set()
    for entry in current.get("entries", []):
        key = entry_key(entry)
        base = base_entries.pop(key, None)
        label = f"{figure}:{fmt_key(key)}"
        if base is None:
            warnings.append(f"{label}: not in baseline (new entry)")
            continue
        cur_ms = float(entry.get("median_ms", 0.0))
        base_ms = float(base.get("median_ms", 0.0))
        if base_ms <= 0.0:
            warnings.append(f"{label}: baseline median is {base_ms} — skipped")
            continue
        ratio = cur_ms / base_ms
        verdict = f"{base_ms:.3f} -> {cur_ms:.3f} ms ({ratio - 1.0:+.1%})"
        extra_regs, extra_warns = compare_extras(label, figure, entry, base,
                                                 args, seen_ungated)
        regressions.extend(extra_regs)
        warnings.extend(extra_warns)
        if base_ms < args.min_ms and cur_ms < args.min_ms:
            if ratio > 1.0 + args.threshold:
                warnings.append(
                    f"{label}: {verdict} — under the {args.min_ms}ms noise "
                    f"floor, not gated")
            continue
        if ratio > 1.0 + args.threshold:
            regressions.append(f"{label}: REGRESSION {verdict}")
        elif ratio < 1.0 - args.threshold:
            print(f"  improvement  {label}: {verdict}")
        else:
            print(f"  ok           {label}: {verdict}")
    for key in base_entries:
        warnings.append(
            f"{figure}:{fmt_key(key)}: in baseline but missing from the "
            f"current run")
    return regressions, warnings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsons", nargs="+", metavar="BENCH_*.json",
                        help="freshly produced bench JSON files")
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory holding the checked-in snapshots")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="fail when median_ms grows by more than this "
                             "fraction (default %(default)s)")
    parser.add_argument("--min-ms", type=float, default=DEFAULT_MIN_MS,
                        help="baseline medians below this are noise, never "
                             "gated (default %(default)s)")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings (missing baselines/entries) as "
                             "failures")
    parser.add_argument("--update", action="store_true",
                        help="copy the current JSONs over the baselines "
                             "instead of comparing")
    args = parser.parse_args()

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in args.jsons:
            dest = os.path.join(args.baseline_dir, os.path.basename(path))
            shutil.copyfile(path, dest)
            print(f"baseline updated: {dest}")
        return 0

    all_regressions, all_warnings = [], []
    for path in args.jsons:
        baseline_path = os.path.join(args.baseline_dir,
                                     os.path.basename(path))
        regressions, warnings = compare_file(path, baseline_path, args)
        all_regressions.extend(regressions)
        all_warnings.extend(warnings)

    for msg in all_warnings:
        print(f"  warning      {msg}")
    for msg in all_regressions:
        print(f"  FAIL         {msg}")
    if all_regressions or (args.strict and all_warnings):
        print(f"\nbench-regression gate: FAILED "
              f"({len(all_regressions)} regression(s), "
              f"{len(all_warnings)} warning(s), "
              f"threshold {args.threshold:.0%})")
        return 1
    print(f"\nbench-regression gate: OK ({len(all_warnings)} warning(s), "
          f"threshold {args.threshold:.0%}, noise floor {args.min_ms}ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
