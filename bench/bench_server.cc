// Network front end under open-loop load (DESIGN.md "Serving over HTTP").
//
// The paper's interactivity claim (§7.2: warm re-parameterization answers
// in milliseconds) has to survive the transport: this driver starts the
// in-process HTTP server on a loopback ephemeral port and replays a mixed
// exploration session through the open-loop load generator. Latency is
// measured from each request's *scheduled* arrival (bench/README.md:
// coordinated omission), so queueing behind a slow response counts against
// the server exactly as it would for a real newly-arriving client.
//
// Sections:
//   1. mixed_open_loop @ rate — warm mixed workload (query / summarize /
//      explore / retrieve / healthz) at fixed offered rates. The row's
//      median_ms is the burst wall time (schedule-determined, so stable);
//      the measured signal is in the gated extras: p50_ms / p99_ms /
//      p999_ms and ops_per_sec (achieved throughput).
//   2. overload shed — a deliberately tiny server (1 worker, queue of 2)
//      is pinned by stalled connections; admission control must answer
//      503 + Retry-After immediately (not time out, not crash), and the
//      server must recover the moment the stalls disappear. Asserted with
//      QAG_CHECK; the 503 counters are reported as informational extras.
//
// Emits BENCH_server.json (schema in bench/README.md); smoke mode
// (QAGVIEW_BENCH_SMOKE=1) shrinks the dataset and burst sizes.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "server/loadgen.h"
#include "server/serde.h"
#include "server/server.h"
#include "service/query_service.h"
#include "test_util.h"

namespace {

using namespace qagview;

/// Connects to the server and goes silent: the accepted fd occupies a
/// worker (or a queue slot) until the read timeout fires. This is how the
/// overload section pins a 1-worker server deterministically — offered
/// rate alone cannot guarantee a full queue at any instant.
int ConnectAndStall(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  QAG_CHECK(fd >= 0) << "socket() failed";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  QAG_CHECK(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) == 1);
  QAG_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0)
      << "connect() failed";
  return fd;
}

/// The mixed warm session replayed by every burst: one of each interaction
/// class, all serving from the session cache after the warm-up.
std::vector<server::LoadgenRequest> MakeScript(
    const service::QueryRequest& query, service::QueryHandle handle) {
  service::SummarizeRequest summarize;
  summarize.handle = handle;
  summarize.params = core::Params{4, 8, 2};

  service::ExploreRequest explore;
  explore.handle = handle;
  explore.params = core::Params{4, 8, 2};
  explore.max_members = 4;

  service::RetrieveRequest retrieve;
  retrieve.handle = handle;
  retrieve.top_l = 8;
  retrieve.d = 1;
  retrieve.k = 4;

  std::vector<server::LoadgenRequest> script;
  script.push_back({"POST", "/query", server::ToJson(query).Dump()});
  script.push_back({"POST", "/summarize", server::ToJson(summarize).Dump()});
  script.push_back({"POST", "/explore", server::ToJson(explore).Dump()});
  script.push_back({"POST", "/retrieve", server::ToJson(retrieve).Dump()});
  script.push_back({"GET", "/healthz", ""});
  return script;
}

}  // namespace

int main() {
  const bool smoke = benchutil::SmokeMode();
  const int num_rows = smoke ? 2000 : 20000;

  benchutil::PrintHeader(
      "Server: HTTP front end under open-loop load",
      "warm re-parameterization stays interactive through the transport "
      "(§7.2); overload sheds with 503, never queues unboundedly");
  benchutil::JsonReporter json("server");

  service::QueryService service;
  QAG_CHECK_OK(service.RegisterTable(
      "ratings", testutil::MakeRatingsTable(29, num_rows)));

  service::QueryRequest query;
  query.sql =
      "SELECT g0, g1, g2, avg(rating) AS val FROM ratings "
      "GROUP BY g0, g1, g2 HAVING count(*) > 3 ORDER BY val DESC";
  query.value_column = "val";

  // --- Section 1: warm mixed workload at fixed offered rates. -----------
  {
    server::ServerOptions options;
    options.num_workers = 4;
    server::HttpServer http(&service, options);
    QAG_CHECK_OK(http.Start());

    auto opened = service.Query(query);
    QAG_CHECK_OK(opened.status());
    service::ExploreRequest warm;
    warm.handle = opened->handle;
    warm.params = core::Params{4, 8, 2};
    QAG_CHECK_OK(service.Explore(warm).status());
    core::PrecomputeOptions grid;
    grid.k_min = 2;
    grid.k_max = 8;
    QAG_CHECK_OK(service.Guidance(opened->handle, /*top_l=*/8, grid).status());
    QAG_CHECK_OK(
        service.Retrieve(opened->handle, /*top_l=*/8, /*d=*/1, /*k=*/4)
            .status());

    const std::vector<server::LoadgenRequest> script =
        MakeScript(query, opened->handle);

    std::printf("\n-- open-loop mixed workload, N=%d rows, 4 workers --\n",
                num_rows);
    std::printf("%8s %8s %9s %9s %9s %9s %10s\n", "rate", "reqs", "p50",
                "p99", "p999", "max", "achieved");
    for (const double rate : smoke ? std::vector<double>{100.0, 200.0}
                                   : std::vector<double>{100.0, 250.0,
                                                         500.0}) {
      server::LoadgenOptions load;
      load.port = http.port();
      load.rate = rate;
      // ~1s of offered load per burst (0.5s in smoke) keeps the whole
      // driver inside the CI smoke budget while still sampling >=50
      // latencies per row.
      load.total_requests =
          static_cast<int>(rate * (smoke ? 0.5 : 1.0));
      load.num_threads = 4;

      // One burst's tail percentile on a shared 1-core runner is scheduler
      // noise; the gated extras record the median over `reps` bursts, so a
      // spurious gate trip needs a majority of spiked bursts, not one.
      const int reps = 5;
      std::vector<double> p50s, p99s, p999s, rps, durations;
      double max_ms = 0.0;
      for (int r = 0; r < reps; ++r) {
        server::LoadgenResults results = server::RunOpenLoop(script, load);
        QAG_CHECK(results.issued == load.total_requests);
        QAG_CHECK(results.ok == results.issued)
            << "burst @" << rate << ": ok=" << results.ok
            << " 503=" << results.http_503 << " 4xx=" << results.http_4xx
            << " 5xx=" << results.http_5xx
            << " transport=" << results.transport_errors;
        p50s.push_back(results.p50_ms);
        p99s.push_back(results.p99_ms);
        p999s.push_back(results.p999_ms);
        rps.push_back(results.achieved_rps);
        durations.push_back(results.duration_s * 1000.0);
        max_ms = std::max(max_ms, results.max_ms);
      }
      auto median = [](std::vector<double>& v) {
        std::sort(v.begin(), v.end());
        return v[v.size() / 2];
      };

      // The wall time of an open-loop burst is fixed by its schedule, so
      // median_ms is stable by construction; the gate's real teeth are
      // the latency and throughput extras.
      benchutil::TimingStats t;
      t.median_ms = median(durations);
      t.min_ms = durations.front();
      t.reps = reps;
      const double p50 = median(p50s), p99 = median(p99s),
                   p999 = median(p999s), achieved = median(rps);
      json.Add("mixed_open_loop",
               {{"rate", rate},
                {"requests", static_cast<double>(load.total_requests)},
                {"workers", 4.0},
                {"N", static_cast<double>(num_rows)}},
               t,
               {{"p50_ms", p50},
                {"p99_ms", p99},
                {"p999_ms", p999},
                {"ops_per_sec", achieved}});
      std::printf("%8.0f %8d %8.2fms %8.2fms %8.2fms %8.2fms %9.1f/s\n",
                  rate, load.total_requests, p50, p99, p999, max_ms,
                  achieved);
    }
    http.Shutdown();
  }

  // --- Section 2: overload sheds with 503 and recovers. ------------------
  {
    server::ServerOptions options;
    options.num_workers = 1;
    options.max_queue = 2;
    options.retry_after_seconds = 1;
    options.limits.io_timeout_ms = 3000;
    server::HttpServer http(&service, options);
    QAG_CHECK_OK(http.Start());

    // Pin the single worker and fill both queue slots with silent
    // connections; keep adding until the server has demonstrably admitted
    // three (worker busy + queue full), so the shed below is guaranteed.
    std::vector<int> stalls;
    while (http.stats().admitted < 3) {
      stalls.push_back(ConnectAndStall(http.port()));
      // Let the acceptor catch up before re-checking: connect() returns on
      // the SYN backlog, ahead of admission.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      QAG_CHECK(stalls.size() < 64) << "server never filled its queue";
    }

    std::printf("\n-- overload: 1 worker, queue=2, pinned by %zu stalls --\n",
                stalls.size());
    server::LoadgenOptions load;
    load.port = http.port();
    const double shed_rate = smoke ? 100.0 : 200.0;
    load.rate = shed_rate;
    load.total_requests = smoke ? 30 : 100;
    load.num_threads = 2;
    server::LoadgenResults shed =
        server::RunOpenLoop({{"GET", "/healthz", ""}}, load);
    QAG_CHECK(shed.http_503 > 0)
        << "full queue produced no 503s (ok=" << shed.ok << ")";
    QAG_CHECK(shed.http_5xx == 0 && shed.http_4xx == 0);

    for (int fd : stalls) ::close(fd);
    // Recovery: once the stalls drain, a fresh burst must fully succeed.
    load.rate = 50.0;
    load.total_requests = 20;
    server::LoadgenResults recovered = {};
    for (int attempt = 0; attempt < 50; ++attempt) {
      recovered = server::RunOpenLoop({{"GET", "/healthz", ""}}, load);
      if (recovered.ok == recovered.issued) break;
    }
    QAG_CHECK(recovered.ok == recovered.issued)
        << "server did not recover after overload: ok=" << recovered.ok
        << " 503=" << recovered.http_503;

    benchutil::TimingStats t;
    t.median_ms = shed.duration_s * 1000.0;
    t.min_ms = t.median_ms;
    t.reps = 1;
    // Only the informational counter goes into the JSON: the shed-latency
    // tail (p99 of a deliberately overloaded 30-request probe) is max-of-
    // samples scheduler noise, not a gateable `_ms` signal — it is printed
    // below but kept out of the recorded extras.
    json.Add("overload_shed",
             {{"workers", 1.0}, {"queue", 2.0}, {"rate", shed_rate}},
             t, {{"http_503", static_cast<double>(shed.http_503)}});
    std::printf("shed %lld/%lld with 503 (p99 %.2fms), recovered cleanly\n",
                static_cast<long long>(shed.http_503),
                static_cast<long long>(shed.issued), shed.p99_ms);
    http.Shutdown();
  }

  QAG_CHECK(json.WriteFile());
  return 0;
}
