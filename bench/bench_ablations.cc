// Ablations over the design choices DESIGN.md calls out (§5.1/§5.2/§5.3
// variants, the footnote-5 Min-Size objective, and Hybrid's c multiplier).
// The paper evaluated the variants and found none beat the basic
// algorithms (§5.1, §7.1); this bench regenerates that evidence.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/bottom_up.h"
#include "core/fixed_order.h"
#include "core/hybrid.h"

int main() {
  using namespace qagview;
  core::AnswerSet s = benchutil::MakeAnswers(500, 8, /*seed=*/21);
  auto universe = core::ClusterUniverse::Build(&s, 40);
  QAG_CHECK(universe.ok());
  // k=10/L=30 keeps the solution away from total collapse so the merge-rule
  // variants actually differentiate (at k<=8 every rule converges to the
  // same heavily generalized solution on this instance).
  core::Params params{10, 30, 2};

  benchutil::PrintHeader(
      "Ablation: Bottom-Up start point and merge rule (§5.1 variants)",
      "the level-(D-1) start and the LCA-average merge rule are comparable "
      "or worse than the basic algorithm in both time and value");
  struct BuCase {
    const char* name;
    core::BottomUpOptions options;
  };
  core::BottomUpOptions level_start;
  level_start.start = core::BottomUpOptions::Start::kLevelDMinus1;
  core::BottomUpOptions lca_rule;
  lca_rule.merge_rule = core::BottomUpOptions::MergeRule::kLcaAverage;
  core::BottomUpOptions min_size;
  min_size.merge_rule = core::BottomUpOptions::MergeRule::kMinRedundant;
  core::BottomUpOptions max_min;
  max_min.merge_rule = core::BottomUpOptions::MergeRule::kMaxMin;
  const BuCase cases[] = {
      {"basic (top-L singletons, solution-avg)", core::BottomUpOptions()},
      {"variant (i): start at level D-1", level_start},
      {"variant (ii): merge by LCA average", lca_rule},
      {"footnote 5: Min-Size objective", min_size},
      {"S9: Max-Min objective", max_min},
  };
  std::printf("%-42s %10s %10s %10s %10s %10s\n", "variant", "ms", "avg",
              "min", "covered", "redundant");
  for (const BuCase& c : cases) {
    core::Solution solution;
    double ms = benchutil::TimeMillis([&] {
      solution = core::BottomUp::Run(*universe, params, c.options).value();
    });
    int top_covered = 0;
    for (int id : solution.cluster_ids) {
      (void)id;
    }
    // Redundant = covered elements outside the top L.
    std::vector<char> top(static_cast<size_t>(s.size()), 0);
    int redundant = 0;
    {
      std::vector<char> seen(static_cast<size_t>(s.size()), 0);
      for (int id : solution.cluster_ids) {
        for (int32_t e : universe->covered(id)) {
          if (!seen[static_cast<size_t>(e)]) {
            seen[static_cast<size_t>(e)] = 1;
            if (e >= params.L) ++redundant;
            else ++top_covered;
          }
        }
      }
    }
    std::printf("%-42s %10.3f %10.4f %10.4f %10d %10d\n", c.name, ms,
                solution.average, solution.covered_min,
                solution.covered_count, redundant);
  }

  benchutil::PrintHeader(
      "Ablation: Fixed-Order seeding (§5.2 variants, 50 seeds each)",
      "random and k-means seeding add variance and cost without improving "
      "the plain Fixed-Order value");
  std::printf("%-24s %12s %12s %12s\n", "seeding", "mean avg", "stddev",
              "ms/run");
  for (auto seeding : {core::FixedOrderOptions::Seeding::kNone,
                       core::FixedOrderOptions::Seeding::kRandom,
                       core::FixedOrderOptions::Seeding::kKMeans}) {
    const char* name =
        seeding == core::FixedOrderOptions::Seeding::kNone
            ? "plain"
            : (seeding == core::FixedOrderOptions::Seeding::kRandom
                   ? "random"
                   : "k-means");
    double sum = 0.0;
    double sq = 0.0;
    const int kRuns = 50;
    WallTimer timer;
    for (int seed = 0; seed < kRuns; ++seed) {
      core::FixedOrderOptions options;
      options.seeding = seeding;
      options.seed = static_cast<uint64_t>(seed);
      double v = core::FixedOrder::Run(*universe, params, options)->average;
      sum += v;
      sq += v * v;
    }
    double mean = sum / kRuns;
    double var = sq / kRuns - mean * mean;
    std::printf("%-24s %12.4f %12.4f %12.4f\n", name, mean,
                var > 0 ? std::sqrt(var) : 0.0,
                timer.ElapsedMillis() / kRuns);
  }

  benchutil::PrintHeader(
      "Ablation: Hybrid pool multiplier c (§5.3)",
      "larger c approaches Bottom-Up quality at Bottom-Up-like cost; small "
      "c approaches Fixed-Order speed");
  std::printf("%-8s %12s %12s\n", "c", "ms", "avg");
  for (int c : {2, 3, 4, 6, 8}) {
    core::HybridOptions options;
    options.c = c;
    core::Solution solution;
    double ms = benchutil::TimeMillis([&] {
      solution = core::Hybrid::Run(*universe, params, options).value();
    });
    std::printf("%-8d %12.4f %12.4f\n", c, ms, solution.average);
  }
  double bu_ms = benchutil::TimeMillis([&] {
    QAG_CHECK(core::BottomUp::Run(*universe, params).ok());
  });
  auto bu = core::BottomUp::Run(*universe, params);
  std::printf("%-8s %12.4f %12.4f  (reference)\n", "BottomUp", bu_ms,
              bu->average);
  return 0;
}
