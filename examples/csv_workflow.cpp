// The adoption path for a user with their own data: write a ratings CSV to
// disk, read it back (type inference included), run the aggregate query
// through the SQL engine, summarize with QAGView, and persist the
// precomputed guidance grid for the next session.
//
//   generate -> ratings.csv -> ReadCsvFile -> SQL -> Session -> summary
//                                            guidance grid -> store file

#include <cstdio>
#include <iostream>
#include <string>

#include "common/timer.h"
#include "core/explore.h"
#include "core/session.h"
#include "datagen/movielens.h"
#include "sql/executor.h"
#include "storage/csv.h"
#include "viz/param_grid.h"

int main() {
  using namespace qagview;
  const std::string csv_path = "/tmp/qagview_ratings.csv";
  const std::string grid_path = "/tmp/qagview_guidance.store";

  // --- 1. Produce a CSV, as if exported from the user's own system. ---
  datagen::MovieLensOptions gen;
  gen.num_ratings = 80000;
  storage::Table generated =
      datagen::MovieLensGenerator(gen).GenerateRatingTable();
  Status written = storage::WriteCsvFile(generated, csv_path);
  if (!written.ok()) {
    std::cerr << written.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << generated.num_rows() << " rows x "
            << generated.num_columns() << " columns to " << csv_path << "\n";

  // --- 2. Load it back; column types are re-inferred from the text. ---
  WallTimer timer;
  auto table = storage::ReadCsvFile(csv_path);
  if (!table.ok()) {
    std::cerr << table.status().ToString() << "\n";
    return 1;
  }
  std::cout << "read back " << table->num_rows() << " rows in "
            << timer.ElapsedMillis() << " ms\n";

  // --- 3. The paper's aggregate query template over the loaded table. ---
  sql::Catalog catalog;
  catalog.Register("ratings", &*table);
  auto result = sql::ExecuteSql(
      "SELECT hdec, agegrp, gender, occupation, avg(rating) AS val "
      "FROM ratings WHERE genres_adventure = 1 "
      "GROUP BY hdec, agegrp, gender, occupation "
      "HAVING count(*) > 10 ORDER BY val DESC",
      catalog);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  auto session = core::Session::FromTable(*result, "val");
  if (!session.ok()) {
    std::cerr << session.status().ToString() << "\n";
    return 1;
  }
  std::cout << "answer set: n=" << (*session)->answers()->size() << "\n\n";

  // --- 4. Summarize (Figure 1b). ---
  core::Params params{4, 8, 2};
  auto solution = (*session)->Summarize(params);
  if (!solution.ok()) {
    std::cerr << solution.status().ToString() << "\n";
    return 1;
  }
  auto universe = (*session)->UniverseFor(params.L);
  std::cout << "summary at " << params.ToString() << ":\n"
            << core::RenderSummary(**universe, *solution) << "\n";

  // --- 5. Precompute the guidance grid and persist it for next time. ---
  core::PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 10;
  options.d_values = {1, 2};
  auto store = (*session)->Guidance(params.L, options);
  if (!store.ok()) {
    std::cerr << store.status().ToString() << "\n";
    return 1;
  }
  Status saved = (*session)->SaveGuidance(params.L, grid_path);
  if (!saved.ok()) {
    std::cerr << saved.ToString() << "\n";
    return 1;
  }

  // A fresh session over the same answers loads the grid instead of
  // recomputing it.
  auto next_session = core::Session::FromTable(*result, "val");
  if (!next_session.ok()) {
    std::cerr << next_session.status().ToString() << "\n";
    return 1;
  }
  timer.Restart();
  Status loaded = (*next_session)->LoadGuidance(params.L, grid_path);
  if (!loaded.ok()) {
    std::cerr << loaded.ToString() << "\n";
    return 1;
  }
  auto retrieved = (*next_session)->Retrieve(params.L, /*d=*/2, /*k=*/4);
  if (!retrieved.ok()) {
    std::cerr << retrieved.status().ToString() << "\n";
    return 1;
  }
  std::cout << "reloaded guidance in " << timer.ElapsedMillis()
            << " ms; retrieved (k=4, D=2) avg=" << retrieved->average
            << " (direct run avg=" << solution->average << ")\n";

  std::remove(csv_path.c_str());
  std::remove(grid_path.c_str());
  return 0;
}
