// The GUI workflow of Appendix A.3 as a terminal REPL: load a dataset, run
// an aggregate query, then iterate on (k, L, D) — summarize, expand
// clusters, consult the Figure-2 parameter grid, compare consecutive
// solutions (Figure 13), and persist/reload precomputed guidance.
//
// Run interactively (binary name is example_interactive_explorer):
//   ./build/example_interactive_explorer
// Run a scripted session:
//   printf "load movielens\nshow\n" | ./build/example_interactive_explorer
// With no input, a canned demo session runs.

#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/explore.h"
#include "core/session.h"
#include "datagen/movielens.h"
#include "datagen/store_sales.h"
#include "sql/executor.h"
#include "viz/param_grid.h"
#include "viz/sankey.h"

namespace {

using namespace qagview;

constexpr const char* kHelp = R"(commands:
  load movielens [ratings]   generate MovieLens-like data + Example 1.1 query
  load tpcds [rows]          generate store_sales data + the A.8 query
  sql <SELECT ...>           run your own aggregate query on the loaded table
  params <k> <L> <D>         set the summarization parameters
  show                       summarize under the current parameters (Fig 1b)
  expand                     show clusters with their member tuples (Fig 1c)
  top [n]                    show the top/bottom n original answers (Fig 1a)
  grid [kmin kmax D...]      parameter-selection chart + knee points (Fig 2)
  compare <k> <L> <D>        diff current vs new parameters (Fig 13)
  save <path>                persist the precomputed guidance grid
  loadgrid <path>            reload a persisted guidance grid
  stats                      session cache statistics
  help                       this text
  quit                       exit
)";

class Explorer {
 public:
  int RunScript(std::istream& in, bool echo) {
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      ++commands_;
      if (echo) std::cout << "qagview> " << line << "\n";
      if (!Dispatch(line)) return 0;  // quit
    }
    return 0;
  }

  int commands() const { return commands_; }

 private:
  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command == "quit" || command == "exit") return false;
    if (command == "help") {
      std::cout << kHelp;
    } else if (command == "load") {
      Load(in);
    } else if (command == "sql") {
      std::string query;
      std::getline(in, query);
      Sql(query);
    } else if (command == "params") {
      int k, l, d;
      if (in >> k >> l >> d) {
        params_ = core::Params{k, l, d};
        std::cout << "params set: " << params_.ToString() << "\n";
      } else {
        std::cout << "usage: params <k> <L> <D>\n";
      }
    } else if (command == "show") {
      Show(/*expanded=*/false);
    } else if (command == "expand") {
      Show(/*expanded=*/true);
    } else if (command == "top") {
      int n = 8;
      in >> n;
      if (RequireSession()) std::cout << session_->answers()->ToString(n);
    } else if (command == "grid") {
      Grid(in);
    } else if (command == "compare") {
      Compare(in);
    } else if (command == "save") {
      std::string path;
      if (in >> path && RequireSession()) {
        if (session_->Guidance(params_.L).ok()) {
          ReportStatus(session_->SaveGuidance(params_.L, path),
                       StrCat("guidance for L=", params_.L, " saved to ",
                              path));
        }
      }
    } else if (command == "loadgrid") {
      std::string path;
      if (in >> path && RequireSession()) {
        ReportStatus(session_->LoadGuidance(params_.L, path),
                     StrCat("guidance for L=", params_.L, " loaded from ",
                            path));
      }
    } else if (command == "stats") {
      if (RequireSession()) {
        core::Session::CacheStats stats = session_->cache_stats();
        std::cout << "universes cached: " << stats.universes
                  << "  stores cached: " << stats.stores
                  << "  universe hits/misses: " << stats.universe_hits << "/"
                  << stats.universe_misses << "\n";
      }
    } else {
      std::cout << "unknown command '" << command << "' (try 'help')\n";
    }
    return true;
  }

  void Load(std::istream& in) {
    std::string which;
    in >> which;
    if (which == "movielens") {
      datagen::MovieLensOptions options;
      options.num_ratings = 100000;
      int64_t ratings = 0;
      if (in >> ratings && ratings > 0) options.num_ratings = ratings;
      table_ = datagen::MovieLensGenerator(options).GenerateRatingTable();
      std::cout << "generated " << table_->num_rows()
                << " MovieLens-like ratings\n";
      Sql("SELECT hdec, agegrp, gender, occupation, avg(rating) AS val "
          "FROM t WHERE genres_adventure = 1 "
          "GROUP BY hdec, agegrp, gender, occupation "
          "HAVING count(*) > 10 ORDER BY val DESC");
    } else if (which == "tpcds") {
      datagen::StoreSalesOptions options;
      options.num_rows = 100000;
      int64_t rows = 0;
      if (in >> rows && rows > 0) options.num_rows = rows;
      table_ = datagen::StoreSalesGenerator(options).Generate();
      std::cout << "generated " << table_->num_rows()
                << " store_sales rows\n";
      Sql("SELECT sold_year, sold_month, store_state, item_category, "
          "customer_income_band, channel, avg(net_profit) AS val FROM t "
          "GROUP BY sold_year, sold_month, store_state, item_category, "
          "customer_income_band, channel HAVING count(*) > 2 "
          "ORDER BY val DESC");
    } else {
      std::cout << "usage: load movielens|tpcds [size]\n";
    }
  }

  void Sql(const std::string& query) {
    if (!table_.has_value()) {
      std::cout << "load a dataset first\n";
      return;
    }
    sql::Catalog catalog;
    catalog.Register("t", &*table_);
    auto result = sql::ExecuteSql(query, catalog);
    if (!result.ok()) {
      std::cout << "SQL error: " << result.status().ToString() << "\n";
      return;
    }
    auto session = core::Session::FromTable(*result, "val");
    if (!session.ok()) {
      std::cout << session.status().ToString() << "\n";
      return;
    }
    session_ = std::move(session).value();
    std::cout << "answer set: n=" << session_->answers()->size() << " over m="
              << session_->answers()->num_attrs() << " attributes\n";
  }

  bool RequireSession() {
    if (session_ == nullptr) {
      std::cout << "no query loaded (use 'load' or 'sql')\n";
      return false;
    }
    return true;
  }

  void Show(bool expanded) {
    if (!RequireSession()) return;
    auto solution = session_->Summarize(params_);
    if (!solution.ok()) {
      std::cout << solution.status().ToString() << "\n";
      return;
    }
    auto universe = session_->UniverseFor(params_.L);
    if (!universe.ok()) {
      std::cout << universe.status().ToString() << "\n";
      return;
    }
    std::cout << "summary at " << params_.ToString() << ":\n"
              << (expanded
                      ? core::RenderExpanded(**universe, *solution, 10)
                      : core::RenderSummary(**universe, *solution));
  }

  void Grid(std::istream& in) {
    if (!RequireSession()) return;
    core::PrecomputeOptions options;
    options.k_min = 2;
    options.k_max = std::max(params_.k * 2, 10);
    int k_min, k_max;
    if (in >> k_min >> k_max) {
      options.k_min = k_min;
      options.k_max = k_max;
      int d;
      while (in >> d) options.d_values.push_back(d);
    }
    if (options.d_values.empty()) options.d_values = {1, 2, 3};
    auto store = session_->Guidance(params_.L, options);
    if (!store.ok()) {
      std::cout << store.status().ToString() << "\n";
      return;
    }
    auto grid = viz::BuildParamGrid(**store, options.k_min, options.k_max);
    if (!grid.ok()) {
      std::cout << grid.status().ToString() << "\n";
      return;
    }
    std::cout << grid->ToTextChart();
    for (size_t di = 0; di < grid->d_values.size(); ++di) {
      std::vector<int> knees = grid->KneePoints(static_cast<int>(di));
      if (!knees.empty()) {
        std::cout << "knee points at D=" << grid->d_values[di] << ": ";
        for (size_t i = 0; i < knees.size(); ++i) {
          std::cout << (i ? ", " : "") << "k=" << knees[i];
        }
        std::cout << "\n";
      }
    }
    std::vector<int> redundant = grid->RedundantDValues();
    if (!redundant.empty()) {
      std::cout << "D values bundled with an earlier series:";
      for (int d : redundant) std::cout << " " << d;
      std::cout << "\n";
    }
  }

  void Compare(std::istream& in) {
    if (!RequireSession()) return;
    core::Params next;
    if (!(in >> next.k >> next.L >> next.D)) {
      std::cout << "usage: compare <k> <L> <D>\n";
      return;
    }
    auto old_solution = session_->Summarize(params_);
    auto new_solution = session_->Summarize(next);
    if (!old_solution.ok() || !new_solution.ok()) {
      std::cout << "summarize failed\n";
      return;
    }
    int widest = std::max(params_.L, next.L);
    auto universe = session_->UniverseFor(widest);
    if (!universe.ok()) {
      std::cout << universe.status().ToString() << "\n";
      return;
    }
    viz::SankeyDiagram diagram =
        viz::BuildSankey(**universe, *old_solution, *new_solution);
    std::vector<int> left = viz::IdentityPositions(diagram.num_left());
    auto right = viz::OptimizeRightPositions(diagram, left);
    if (!right.ok()) {
      std::cout << right.status().ToString() << "\n";
      return;
    }
    std::cout << "old " << params_.ToString() << "  ->  new "
              << next.ToString() << "\n"
              << viz::RenderSankey(diagram, left, *right)
              << "crossings: "
              << viz::CountCrossings(diagram, left, *right) << " (default "
              << viz::CountCrossings(diagram, left,
                                     viz::IdentityPositions(
                                         diagram.num_right()))
              << ")\n";
    params_ = next;
    std::cout << "params set: " << params_.ToString() << "\n";
  }

  void ReportStatus(const Status& status, const std::string& success) {
    std::cout << (status.ok() ? success : status.ToString()) << "\n";
  }

  std::optional<storage::Table> table_;
  std::unique_ptr<core::Session> session_;
  core::Params params_{4, 8, 2};
  int commands_ = 0;
};

constexpr const char* kDemoScript = R"(load movielens
top 4
params 4 8 2
show
expand
grid 2 10 1 2 3
compare 3 8 2
stats
quit
)";

}  // namespace

int main() {
  Explorer explorer;
  std::cout << "QAGView interactive explorer (type 'help' for commands)\n";
  int code = explorer.RunScript(std::cin, /*echo=*/true);
  if (explorer.commands() == 0) {
    std::cout << "\nno input — running the demo session:\n\n";
    std::istringstream demo(kDemoScript);
    code = explorer.RunScript(demo, /*echo=*/true);
  }
  return code;
}
