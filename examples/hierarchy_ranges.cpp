// Appendix A.6 extension in action: summarization over concept hierarchies,
// so generalized positions display as ranges (age [20,40), year buckets)
// instead of '*'. Compares the flat '*' summary with the range summary on
// the same answers.

#include <iostream>

#include "core/explore.h"
#include "core/hierarchical_summarizer.h"
#include "core/hybrid.h"
#include "core/semilattice.h"
#include "datagen/movielens.h"
#include "sql/executor.h"

int main() {
  using namespace qagview;

  datagen::MovieLensOptions gen;
  gen.num_ratings = 60000;
  storage::Table ratings =
      datagen::MovieLensGenerator(gen).GenerateRatingTable();
  sql::Catalog catalog;
  catalog.Register("RatingTable", &ratings);
  auto result = sql::ExecuteSql(
      "SELECT hdec, agegrp, occupation, avg(rating) AS val "
      "FROM RatingTable GROUP BY hdec, agegrp, occupation "
      "HAVING count(*) > 25 ORDER BY val DESC",
      catalog);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  auto answers = core::AnswerSet::FromTable(*result, "val");
  if (!answers.ok()) {
    std::cerr << answers.status().ToString() << "\n";
    return 1;
  }
  std::cout << "n=" << answers->size() << " answers over (hdec, agegrp, "
            << "occupation)\n\n";

  core::Params params{4, 10, 2};

  // --- Flat '*' summary (the core framework). ---
  auto universe = core::ClusterUniverse::Build(&*answers, params.L);
  auto flat = core::Hybrid::Run(*universe, params);
  if (!flat.ok()) {
    std::cerr << flat.status().ToString() << "\n";
    return 1;
  }
  std::cout << "=== Flat '*' summary ===\n"
            << core::RenderSummary(*universe, *flat) << "\n";

  // --- Range summary: automatically derived range trees over the ordinal
  //     attributes (the A.6 auto-construction: hdec sorts numerically,
  //     agegrp lexicographically); occupation stays flat. ---
  std::vector<core::ConceptHierarchy> trees;
  for (int a = 0; a < answers->num_attrs(); ++a) {
    const std::string& name = answers->attr_names()[static_cast<size_t>(a)];
    if (name == "hdec" || name == "agegrp") {
      auto tree = core::AutoHierarchyForAttribute(*answers, a);
      if (!tree.ok()) {
        std::cerr << tree.status().ToString() << "\n";
        return 1;
      }
      trees.push_back(std::move(tree).value());
    } else {
      std::vector<std::string> labels;
      for (int32_t v = 0; v < answers->domain_size(a); ++v) {
        labels.push_back(answers->ValueName(a, v));
      }
      trees.push_back(core::ConceptHierarchy::Flat(labels));
    }
  }
  core::HierarchicalSummarizer summarizer(
      &*answers, core::HierarchySet(std::move(trees)));
  auto ranged = summarizer.Run(params);
  if (!ranged.ok()) {
    std::cerr << ranged.status().ToString() << "\n";
    return 1;
  }
  std::cout << "=== Range summary, Fixed-Order policy (Appendix A.6) ===\n"
            << summarizer.Render(*ranged) << "\n";

  auto ranged_bu = summarizer.RunBottomUp(params);
  if (!ranged_bu.ok()) {
    std::cerr << ranged_bu.status().ToString() << "\n";
    return 1;
  }
  std::cout << "=== Range summary, Bottom-Up policy ===\n"
            << summarizer.Render(*ranged_bu)
            << "\nNote the [lo..hi] nodes where the flat summary shows '*':"
            << " ranges exclude unrelated values, so covered averages stay"
            << " tighter.\n";
  return 0;
}
