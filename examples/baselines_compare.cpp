// Qualitative comparison against related approaches (Appendix A.5): runs
// smart drill-down, diversified top-k, DisC diversity, and MMR on the same
// aggregate answers and prints their outputs next to QAGView's summary.

#include <iostream>

#include "baselines/disc_diversity.h"
#include "baselines/diversified_topk.h"
#include "baselines/mmr.h"
#include "baselines/smart_drilldown.h"
#include "core/explore.h"
#include "core/hybrid.h"
#include "core/semilattice.h"
#include "datagen/movielens.h"
#include "sql/executor.h"

namespace {

void PrintElements(const qagview::core::AnswerSet& s,
                   const std::vector<int>& ids) {
  for (int e : ids) {
    const qagview::core::Element& el = s.element(e);
    std::cout << "  ";
    for (int a = 0; a < s.num_attrs(); ++a) {
      if (a) std::cout << ", ";
      std::cout << s.ValueName(a, el.attrs[static_cast<size_t>(a)]);
    }
    std::cout << "  score=" << s.value(e) << "\n";
  }
}

}  // namespace

int main() {
  using namespace qagview;

  datagen::MovieLensOptions gen_options;
  gen_options.num_ratings = 50000;
  storage::Table ratings =
      datagen::MovieLensGenerator(gen_options).GenerateRatingTable();
  sql::Catalog catalog;
  catalog.Register("RatingTable", &ratings);
  auto result = sql::ExecuteSql(
      "SELECT hdec, agegrp, gender, occupation, avg(rating) AS val "
      "FROM RatingTable WHERE genres_adventure = 1 "
      "GROUP BY hdec, agegrp, gender, occupation HAVING count(*) > 30 "
      "ORDER BY val DESC",
      catalog);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  auto answers = core::AnswerSet::FromTable(*result, "val");
  if (!answers.ok()) {
    std::cerr << answers.status().ToString() << "\n";
    return 1;
  }
  std::cout << "n=" << answers->size() << " aggregate answers\n\n";

  const int kK = 4;
  const int kTopL = 10;
  const int kD = 2;

  // --- QAGView (this paper). ---
  auto universe = core::ClusterUniverse::Build(&*answers, kTopL);
  auto solution =
      core::Hybrid::Run(*universe, core::Params{kK, kTopL, kD});
  if (!solution.ok()) {
    std::cerr << solution.status().ToString() << "\n";
    return 1;
  }
  std::cout << "=== QAGView (k=4, L=10, D=2) ===\n"
            << core::RenderSummary(*universe, *solution) << "\n";

  // --- Smart drill-down (A.5.1), on top-10 and on all elements. ---
  baselines::SmartDrilldownResult on_top =
      baselines::SmartDrilldown(*universe, kK);
  std::cout << "=== Smart drill-down on top-" << kTopL << " elements ===\n";
  for (const auto& rule : on_top.rules) {
    std::cout << "  " << universe->cluster(rule.cluster_id).ToString(*answers)
              << "  mcount=" << rule.marginal_count
              << " weight=" << rule.weight
              << " avg=" << rule.marginal_avg << "\n";
  }
  auto full_universe =
      core::ClusterUniverse::Build(&*answers, answers->size());
  if (full_universe.ok()) {
    baselines::SmartDrilldownResult on_all =
        baselines::SmartDrilldown(*full_universe, kK);
    std::cout << "=== Smart drill-down on all elements ===\n";
    for (const auto& rule : on_all.rules) {
      std::cout << "  "
                << full_universe->cluster(rule.cluster_id).ToString(*answers)
                << "  mcount=" << rule.marginal_count
                << " weight=" << rule.weight
                << " avg=" << rule.marginal_avg << "\n";
    }
  }
  std::cout << "\n";

  // --- Diversified top-k (A.5.2). ---
  auto div = baselines::DiversifiedTopKExact(*answers, kK, kTopL, kD);
  if (div.ok()) {
    std::cout << "=== Diversified top-k on top-" << kTopL << " ===\n";
    PrintElements(*answers, div->element_ids);
    std::cout << "  represented avg (radius D-1): "
              << baselines::RepresentedAverage(*answers, div->element_ids,
                                               kD - 1)
              << "\n\n";
  }

  // --- DisC diversity (A.5.3). ---
  baselines::DiscResult disc =
      baselines::DiscDiversity(*answers, kTopL, /*radius=*/kD);
  std::cout << "=== DisC diversity on top-" << kTopL << " (r=" << kD
            << ") ===\n";
  PrintElements(*answers, disc.element_ids);
  std::cout << "\n";

  // --- MMR (A.5.4) across lambda. ---
  for (double lambda : {0.0, 0.5, 1.0}) {
    std::cout << "=== MMR lambda=" << lambda << " ===\n";
    PrintElements(*answers, baselines::Mmr(*answers, kK, kTopL, lambda));
  }
  std::cout << "\nNote how only QAGView reports *summarized* patterns with\n"
               "'*' values and per-cluster averages; the baselines return\n"
               "individual representative tuples (A.5's observation).\n";
  return 0;
}
