// Service demo: the multi-client serving layer end to end.
//
// Registers a MovieLens-like table with a QueryService, runs the paper's
// aggregate query through it, then hammers the shared session with 8
// concurrent client threads issuing a mixed Summarize / Guidance /
// Retrieve / Explore workload — the Appendix A.3 web-app scenario with
// many simultaneous users instead of one. Prints one client's rendered
// two-layer view plus the service statistics showing the cache and
// single-flight coalescing behaviour.

#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "qagview.h"  // the single public umbrella header

int main() {
  using namespace qagview;

  // 1. Stand up the service and register the dataset (CSV files work the
  //    same way via RegisterCsvFile).
  service::QueryService svc;
  datagen::MovieLensOptions gen_options;
  gen_options.num_ratings = 150000;
  storage::Table ratings =
      datagen::MovieLensGenerator(gen_options).GenerateRatingTable();
  // One real row, kept aside for the live-update step below.
  const std::vector<storage::Value> delta_row = ratings.GetRow(0);
  Status registered = svc.RegisterTable("RatingTable", std::move(ratings));
  if (!registered.ok()) {
    std::cerr << registered.ToString() << "\n";
    return 1;
  }

  // 2. The aggregate query of Example 1.1, now answered by the service;
  //    identical SQL from any client reuses the same cached session.
  const char* kSql =
      "SELECT hdec, agegrp, gender, occupation, avg(rating) AS val "
      "FROM RatingTable "
      "WHERE genres_adventure = 1 "
      "GROUP BY hdec, agegrp, gender, occupation "
      "HAVING count(*) > 25 "
      "ORDER BY val DESC";
  auto query = svc.Query(kSql, "val");
  if (!query.ok()) {
    std::cerr << "query failed: " << query.status().ToString() << "\n";
    return 1;
  }
  std::printf("query -> handle %lld: %d ranked answers over %d attrs\n",
              static_cast<long long>(query->handle), query->num_answers,
              query->num_attrs);

  // 3. Eight concurrent clients re-parameterize the same answer set. The
  //    session underneath is shared: one universe build and one (k, D)
  //    grid precompute serve everybody (single-flight), and every client
  //    sees results bit-identical to a single-user run.
  constexpr int kClients = 8;
  constexpr int kRoundsPerClient = 4;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&svc, &query, c] {
      for (int round = 0; round < kRoundsPerClient; ++round) {
        service::RequestStats stats;
        switch ((c + round) % 4) {
          case 0:
            svc.Summarize(query->handle, {4, 8, 2}, &stats);
            break;
          case 1:
            svc.Guidance(query->handle, 8, core::PrecomputeOptions(), &stats);
            break;
          case 2:
            svc.Retrieve(query->handle, 8, /*d=*/1, /*k=*/6, &stats);
            break;
          default:
            svc.Explore(query->handle, {4, 8, 2});
            break;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // 4. One more client renders the two-layer view — everything cached now.
  auto explored = svc.Explore(query->handle, {4, 8, 2});
  if (!explored.ok()) {
    std::cerr << explored.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n=== Summary (Figure 1b): k=4, L=8, D=2 ===\n"
            << explored->summary
            << "\n=== Expanded (Figure 1c, 3 members/cluster) ===\n"
            << explored->expanded;
  std::printf("\nfinal Explore latency: %.3f ms (cache hit: %s)\n",
              explored->stats.latency_ms,
              explored->stats.cache_hit ? "yes" : "no");

  // 5. Live data: an append retires the served generation on next use.
  //    The superseded caches are evicted the moment their last reader
  //    handle drops (drain-then-evict) — the generation counters below
  //    show the graveyard staying empty once everyone re-queried.
  auto appended = svc.AppendRows("RatingTable", {delta_row});
  if (!appended.ok()) {
    std::cerr << "append failed: " << appended.status().ToString() << "\n";
    return 1;
  }
  auto refreshed = svc.Query(kSql, "val");
  if (refreshed.ok()) {
    std::printf("\nappend published catalog v%llu; next Query refreshed the "
                "handle in place (refreshed: %s)\n",
                static_cast<unsigned long long>(svc.catalog_version()),
                refreshed->stats.refreshed ? "yes" : "no");
  }

  // 6. What the service did for those clients.
  service::QueryService::Stats stats = svc.stats();
  std::printf(
      "\n=== ServiceStats ===\n"
      "datasets %lld | sessions %lld | requests %lld\n"
      "queries %lld (cache hits %lld, coalesced %lld)\n"
      "summarize %lld | guidance %lld | retrieve %lld | explore %lld\n"
      "request cache hits %lld | coalesced waits %lld | builds %lld\n"
      "refreshes %lld (full reuses %lld)\n"
      "generations: live %lld | graveyard %lld (reader-pinned) | "
      "evicted %lld\n"
      "latency: total %.1f ms, max %.1f ms\n",
      static_cast<long long>(stats.datasets),
      static_cast<long long>(stats.sessions),
      static_cast<long long>(stats.requests()),
      static_cast<long long>(stats.queries),
      static_cast<long long>(stats.query_cache_hits),
      static_cast<long long>(stats.query_coalesced),
      static_cast<long long>(stats.summarize_requests),
      static_cast<long long>(stats.guidance_requests),
      static_cast<long long>(stats.retrieve_requests),
      static_cast<long long>(stats.explore_requests),
      static_cast<long long>(stats.cache_hits),
      static_cast<long long>(stats.coalesced_waits),
      static_cast<long long>(stats.builds),
      static_cast<long long>(stats.refreshes),
      static_cast<long long>(stats.refresh_full_reuses),
      static_cast<long long>(stats.live_generations),
      static_cast<long long>(stats.graveyard_size),
      static_cast<long long>(stats.generations_evicted),
      stats.total_latency_ms, stats.max_latency_ms);

  core::Session::CacheStats cache = *svc.SessionCacheStats(query->handle);
  std::printf(
      "session cache: %d universes (%lld hits / %lld misses, %lld coalesced), "
      "%d stores (%lld hits / %lld misses, %lld coalesced)\n",
      cache.universes, static_cast<long long>(cache.universe_hits),
      static_cast<long long>(cache.universe_misses),
      static_cast<long long>(cache.universe_coalesced), cache.stores,
      static_cast<long long>(cache.store_hits),
      static_cast<long long>(cache.store_misses),
      static_cast<long long>(cache.store_coalesced));
  return 0;
}
