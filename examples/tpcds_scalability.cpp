// Scalability walkthrough on the TPC-DS-like store_sales substrate (§7.4):
// generate the fact table, run the net-profit aggregate template, and time
// initialization / single runs / precomputation at growing L.

#include <iostream>

#include "common/timer.h"
#include "core/explore.h"
#include "core/hybrid.h"
#include "core/precompute.h"
#include "core/semilattice.h"
#include "datagen/store_sales.h"
#include "sql/executor.h"

int main() {
  using namespace qagview;

  datagen::StoreSalesOptions gen_options;
  gen_options.num_rows = 300000;
  WallTimer timer;
  storage::Table sales =
      datagen::StoreSalesGenerator(gen_options).Generate();
  std::cout << "generated " << sales.num_rows() << " store_sales rows in "
            << timer.ElapsedMillis() << " ms\n";

  sql::Catalog catalog;
  catalog.Register("store_sales", &sales);
  timer.Restart();
  // The paper's A.8 query uses HAVING count(*) > 10 against the full 2.88M-row
  // store_sales table. At our 300K-row scale we group by six attributes and
  // lower the support cutoff proportionally so single-row noise groups are
  // still pruned; the answer-set size lands near the paper's N=47361.
  auto result = sql::ExecuteSql(
      "SELECT sold_year, sold_month, store_state, item_category, "
      "customer_income_band, channel, avg(net_profit) AS val "
      "FROM store_sales "
      "GROUP BY sold_year, sold_month, store_state, item_category, "
      "customer_income_band, channel "
      "HAVING count(*) > 2 ORDER BY val DESC",
      catalog);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "aggregate query: " << timer.ElapsedMillis() << " ms, N="
            << result->num_rows() << " answers (m=6)\n\n";

  auto answers = core::AnswerSet::FromTable(*result, "val");
  if (!answers.ok()) {
    std::cerr << answers.status().ToString() << "\n";
    return 1;
  }

  for (int top_l : {200, 500, 1000}) {
    if (top_l > answers->size()) break;
    timer.Restart();
    auto universe = core::ClusterUniverse::Build(&*answers, top_l);
    if (!universe.ok()) {
      std::cerr << universe.status().ToString() << "\n";
      return 1;
    }
    double init_ms = timer.ElapsedMillis();

    core::Params params{/*k=*/20, top_l, /*D=*/2};
    timer.Restart();
    auto single = core::Hybrid::Run(*universe, params);
    double single_ms = timer.ElapsedMillis();
    if (!single.ok()) {
      std::cerr << single.status().ToString() << "\n";
      return 1;
    }

    core::PrecomputeOptions options;
    options.k_min = 2;
    options.k_max = 20;
    options.d_values = {1, 2, 3};
    timer.Restart();
    auto store = core::Precompute::Run(*universe, top_l, options);
    double precompute_ms = timer.ElapsedMillis();
    if (!store.ok()) {
      std::cerr << store.status().ToString() << "\n";
      return 1;
    }
    timer.Restart();
    auto retrieved = store->Retrieve(2, 20);
    double retrieve_ms = timer.ElapsedMillis();
    if (!retrieved.ok()) {
      std::cerr << retrieved.status().ToString() << "\n";
      return 1;
    }

    std::cout << "L=" << top_l << ": init " << init_ms << " ms | single run "
              << single_ms << " ms (avg=" << single->average
              << ") | precompute " << precompute_ms << " ms | retrieval "
              << retrieve_ms << " ms (avg=" << retrieved->average << ")\n";
  }

  std::cout << "\n=== Sample summary at k=10, L=200, D=2 ===\n";
  auto universe = core::ClusterUniverse::Build(&*answers, 200);
  auto solution = core::Hybrid::Run(*universe, core::Params{10, 200, 2});
  if (!solution.ok()) {
    std::cerr << solution.status().ToString() << "\n";
    return 1;
  }
  std::cout << core::RenderSummary(*universe, *solution);
  return 0;
}
