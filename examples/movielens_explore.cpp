// Interactive-exploration walkthrough on MovieLens-like data: the
// precompute pipeline of §6, the Figure-2 parameter-selection grid with
// knee-point guidance, retrievals from the interval-tree store, and the
// Appendix A.7 comparison visualization between two consecutive solutions.

#include <iostream>

#include "common/timer.h"
#include "core/explore.h"
#include "core/precompute.h"
#include "core/semilattice.h"
#include "datagen/movielens.h"
#include "sql/executor.h"
#include "viz/param_grid.h"
#include "viz/sankey.h"

int main() {
  using namespace qagview;

  datagen::MovieLensOptions gen_options;
  gen_options.num_ratings = 80000;
  storage::Table ratings =
      datagen::MovieLensGenerator(gen_options).GenerateRatingTable();
  sql::Catalog catalog;
  catalog.Register("RatingTable", &ratings);

  auto result = sql::ExecuteSql(
      "SELECT hdec, agegrp, gender, occupation, avg(rating) AS val "
      "FROM RatingTable GROUP BY hdec, agegrp, gender, occupation "
      "HAVING count(*) > 20 ORDER BY val DESC",
      catalog);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  auto answers = core::AnswerSet::FromTable(*result, "val");
  if (!answers.ok()) {
    std::cerr << answers.status().ToString() << "\n";
    return 1;
  }
  std::cout << "answer set: n=" << answers->size()
            << ", m=" << answers->num_attrs() << "\n\n";

  const int kTopL = 15;
  WallTimer timer;
  auto universe = core::ClusterUniverse::Build(&*answers, kTopL);
  if (!universe.ok()) {
    std::cerr << universe.status().ToString() << "\n";
    return 1;
  }
  std::cout << "initialization (cluster generation + tuple mapping): "
            << timer.ElapsedMillis() << " ms, "
            << universe->num_clusters() << " clusters\n";

  // Precompute solutions for the whole (k, D) grid at L=15 (Figure 2).
  core::PrecomputeOptions options;
  options.k_min = 2;
  options.k_max = 14;
  options.d_values = {1, 2, 3};
  core::PrecomputeStats stats;
  timer.Restart();
  auto store = core::Precompute::Run(*universe, kTopL, options, &stats);
  if (!store.ok()) {
    std::cerr << store.status().ToString() << "\n";
    return 1;
  }
  std::cout << "precompute: " << timer.ElapsedMillis() << " ms ("
            << stats.initial_clusters << " initial clusters, "
            << store->num_intervals() << " stored intervals vs "
            << store->naive_entries() << " naive entries)\n\n";

  auto grid = viz::BuildParamGrid(*store, options.k_min, options.k_max);
  if (!grid.ok()) {
    std::cerr << grid.status().ToString() << "\n";
    return 1;
  }
  std::cout << "=== Parameter-selection guide (Figure 2 data) ===\n"
            << grid->ToCsv() << "\n";
  for (size_t di = 0; di < grid->d_values.size(); ++di) {
    std::cout << "knee points for D=" << grid->d_values[di] << ":";
    for (int k : grid->KneePoints(static_cast<int>(di))) {
      std::cout << " k=" << k;
    }
    std::cout << "\n";
  }
  auto redundant = grid->RedundantDValues(0.02);
  if (!redundant.empty()) {
    std::cout << "D values bundled with their predecessor (overlapping "
                 "curves):";
    for (int d : redundant) std::cout << " D=" << d;
    std::cout << "\n";
  }
  std::cout << "\n";

  // Retrieve two consecutive solutions at interactive speed and compare.
  timer.Restart();
  auto old_solution = store->Retrieve(/*d=*/2, /*k=*/6);
  auto new_solution = store->Retrieve(/*d=*/2, /*k=*/4);
  if (!old_solution.ok() || !new_solution.ok()) {
    std::cerr << "retrieval failed\n";
    return 1;
  }
  std::cout << "two retrievals took " << timer.ElapsedMicros() << " us\n\n";

  std::cout << "=== Solution at k=6, D=2 ===\n"
            << core::RenderSummary(*universe, *old_solution) << "\n";
  std::cout << "=== Solution at k=4, D=2 ===\n"
            << core::RenderSummary(*universe, *new_solution) << "\n";

  // Appendix A.7: how the clusters redistribute between the two solutions.
  viz::SankeyDiagram diagram =
      viz::BuildSankey(*universe, *old_solution, *new_solution);
  std::vector<int> left = viz::IdentityPositions(diagram.num_left());
  auto right = viz::OptimizeRightPositions(diagram, left);
  if (!right.ok()) {
    std::cerr << right.status().ToString() << "\n";
    return 1;
  }
  std::vector<int> default_right =
      viz::IdentityPositions(diagram.num_right());
  std::cout << "=== Comparison view (optimized placement) ===\n"
            << viz::RenderSankey(diagram, left, *right);
  std::cout << "placement distance: default="
            << viz::PlacementDistance(diagram, left, default_right)
            << " optimized=" << viz::PlacementDistance(diagram, left, *right)
            << "; crossings: default="
            << viz::CountCrossings(diagram, left, default_right)
            << " optimized=" << viz::CountCrossings(diagram, left, *right)
            << "\n";
  return 0;
}
