// Quickstart: the paper's running example (Examples 1.1/1.2) end to end.
//
// Builds a small ratings table, runs the aggregate-query template through
// the SQL layer, summarizes the answers with k=4, L=8, D=2, and prints the
// two-layer output of Figures 1b/1c.

#include <cstdio>
#include <iostream>

#include "qagview.h"  // the single public umbrella header

int main() {
  using namespace qagview;

  // 1. A MovieLens-like universal rating table (the paper joins the real
  //    MovieLens tables into one; we synthesize an equivalent).
  datagen::MovieLensOptions gen_options;
  gen_options.num_ratings = 150000;
  storage::Table ratings =
      datagen::MovieLensGenerator(gen_options).GenerateRatingTable();

  // 2. The aggregate query of Example 1.1.
  sql::Catalog catalog;
  catalog.Register("RatingTable", &ratings);
  auto result = sql::ExecuteSql(
      "SELECT hdec, agegrp, gender, occupation, avg(rating) AS val "
      "FROM RatingTable "
      "WHERE genres_adventure = 1 "
      "GROUP BY hdec, agegrp, gender, occupation "
      "HAVING count(*) > 25 "
      "ORDER BY val DESC",
      catalog);
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "=== Aggregate query answers (top rows) ===\n"
            << result->ToString(8) << "\n";

  // 3. Summarize: k=4 clusters covering the top L=8 answers, pairwise
  //    distance >= D=2 (Example 1.2).
  auto answers = core::AnswerSet::FromTable(*result, "val");
  if (!answers.ok()) {
    std::cerr << answers.status().ToString() << "\n";
    return 1;
  }
  std::cout << "=== Ranked answers (Figure 1a style) ===\n"
            << answers->ToString(8) << "\n";

  auto universe = core::ClusterUniverse::Build(&*answers, /*top_l=*/8);
  if (!universe.ok()) {
    std::cerr << universe.status().ToString() << "\n";
    return 1;
  }
  core::Params params{/*k=*/4, /*L=*/8, /*D=*/2};
  auto solution = core::Hybrid::Run(*universe, params);
  if (!solution.ok()) {
    std::cerr << solution.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== Summary (Figure 1b): " << params.ToString() << " ===\n"
            << core::RenderSummary(*universe, *solution) << "\n";
  std::cout << "=== Expanded (Figure 1c) ===\n"
            << core::RenderExpanded(*universe, *solution) << "\n";
  std::printf("objective avg(O) = %.4f vs trivial lower bound %.4f\n",
              solution->average, answers->TrivialAverage());
  return 0;
}
