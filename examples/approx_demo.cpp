// Approximate-first serving demo: answer now, refine in place.
//
// Registers a million-row store_sales fact table (the paper's §7.4
// scalability subject), then asks the service for a top-profit aggregate
// in approx-first mode. The first response arrives in about a millisecond
// — computed from the dataset's reservoir sample, every answer carrying a
// confidence-interval half-width — while the exact build runs in the
// background. Refine() waits for that build (coalescing with it, never
// duplicating it) and the same handle then serves the exact generation,
// bit-identical to what an exact-only cold query would have produced.
// Prints both summaries, the reported error bounds, and the service /
// session census showing the two-phase publication.

#include <cstdio>
#include <iostream>

#include "common/timer.h"
#include "qagview.h"  // the single public umbrella header

int main() {
  using namespace qagview;

  // 1. A million-row fact table behind a sampling-enabled service (the
  //    default: every dataset keeps a 4096-row uniform reservoir sample,
  //    maintained incrementally across appends).
  service::QueryService svc;
  datagen::StoreSalesOptions gen_options;
  gen_options.num_rows = 1000000;
  Status registered = svc.RegisterTable(
      "store_sales", datagen::StoreSalesGenerator(gen_options).Generate());
  if (!registered.ok()) {
    std::cerr << registered.ToString() << "\n";
    return 1;
  }

  // 2. Approx-first query: the response is computed from the sample and
  //    annotated with its provenance; the exact build starts immediately
  //    in the background.
  const char* kSql =
      "SELECT store_state, item_category, customer_agegrp, channel, "
      "avg(net_profit) AS val FROM store_sales "
      "GROUP BY store_state, item_category, customer_agegrp, channel "
      "HAVING count(*) > 25 ORDER BY val DESC";
  service::QueryOptions approx;
  approx.mode = service::QueryMode::kApproxFirst;
  approx.confidence = 0.95;
  WallTimer first_answer;
  auto query = svc.Query(kSql, "val", approx);
  double first_answer_ms = first_answer.ElapsedMillis();
  if (!query.ok()) {
    std::cerr << "query failed: " << query.status().ToString() << "\n";
    return 1;
  }
  std::printf(
      "approximate answer in %.2f ms: %d ranked answers over %d attrs\n"
      "  sample fraction %.4f, max +/-%.3f at %.0f%% confidence\n\n",
      first_answer_ms, query->num_answers, query->num_attrs,
      query->sample_fraction, query->max_bound, approx.confidence * 100);

  // 3. Interactive ops work on the approximate set right away — the
  //    request stats say which kind of generation served them.
  service::RequestStats stats;
  auto summary = svc.Summarize(query->handle, {/*k=*/4, /*L=*/8, /*D=*/2},
                               &stats);
  if (!summary.ok()) {
    std::cerr << summary.status().ToString() << "\n";
    return 1;
  }
  std::printf("summarize on the approximate set (approximate=%s):\n",
              stats.approximate ? "true" : "false");

  // 4. Refine: wait for the background exact build and republish through
  //    the same handle. Readers never block — they see the complete
  //    approximate generation until the complete exact one is swapped in.
  WallTimer refine_timer;
  Status refined = svc.Refine(query->handle, &stats);
  if (!refined.ok()) {
    std::cerr << refined.ToString() << "\n";
    return 1;
  }
  std::printf("exact after refinement in %.0f ms (approximate=%s)\n\n",
              refine_timer.ElapsedMillis(),
              stats.approximate ? "true" : "false");

  // 5. The same handle now serves the exact generation; render the
  //    two-layer summary from it.
  auto explored = svc.Explore(query->handle, {/*k=*/4, /*L=*/8, /*D=*/2});
  if (!explored.ok()) {
    std::cerr << explored.status().ToString() << "\n";
    return 1;
  }
  std::cout << explored->summary;

  // 6. Generation census: the approximate generation was superseded and
  //    evicted once its readers drained; the service counted one
  //    approximate query and one refinement.
  auto cache = svc.SessionCacheStats(query->handle);
  if (cache.ok()) {
    const auto census = *cache;
    std::printf(
        "\nsession: live_generations=%lld generations_evicted=%lld "
        "graveyard=%lld\n",
        static_cast<long long>(census.live_generations),
        static_cast<long long>(census.generations_evicted),
        static_cast<long long>(census.graveyard_size));
  }
  const auto service_stats = svc.stats();
  std::printf(
      "service: approx_queries=%lld refinements=%lld "
      "refine_requests=%lld approx_served=%lld\n",
      static_cast<long long>(service_stats.approx_queries),
      static_cast<long long>(service_stats.refinements),
      static_cast<long long>(service_stats.refine_requests),
      static_cast<long long>(service_stats.approx_served));
  return 0;
}
