#include "sql/aggregate.h"

namespace qagview::sql {

Result<AggKind> AggKindFromName(const std::string& name, bool star) {
  if (name == "count") return star ? AggKind::kCountStar : AggKind::kCount;
  if (star) {
    return Status::ParseError("'*' argument is only valid for count()");
  }
  if (name == "sum") return AggKind::kSum;
  if (name == "avg") return AggKind::kAvg;
  if (name == "min") return AggKind::kMin;
  if (name == "max") return AggKind::kMax;
  return Status::ParseError("unknown aggregate function: " + name);
}

const char* AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCount: return "count";
    case AggKind::kCountStar: return "count(*)";
    case AggKind::kSum: return "sum";
    case AggKind::kAvg: return "avg";
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
  }
  return "?";
}

void Aggregator::Add(const storage::Value& v) {
  if (kind_ == AggKind::kCountStar) {
    ++count_;
    return;
  }
  if (v.is_null()) return;
  switch (kind_) {
    case AggKind::kCount:
      ++count_;
      break;
    case AggKind::kSum:
    case AggKind::kAvg: {
      const double x = v.ToDouble();
      sum_ += x;
      sum_squares_ += x * x;
      ++count_;
      break;
    }
    case AggKind::kMin:
      if (!has_extreme_ || v.Compare(extreme_) < 0) extreme_ = v;
      has_extreme_ = true;
      break;
    case AggKind::kMax:
      if (!has_extreme_ || v.Compare(extreme_) > 0) extreme_ = v;
      has_extreme_ = true;
      break;
    case AggKind::kCountStar:
      break;
  }
}

void Aggregator::AddRow() {
  QAG_DCHECK(kind_ == AggKind::kCountStar);
  ++count_;
}

storage::Value Aggregator::Finish() const {
  switch (kind_) {
    case AggKind::kCount:
    case AggKind::kCountStar:
      return storage::Value::Int(count_);
    case AggKind::kSum:
      return count_ == 0 ? storage::Value::Null()
                         : storage::Value::Real(sum_);
    case AggKind::kAvg:
      return count_ == 0 ? storage::Value::Null()
                         : storage::Value::Real(sum_ / count_);
    case AggKind::kMin:
    case AggKind::kMax:
      return has_extreme_ ? extreme_ : storage::Value::Null();
  }
  return storage::Value::Null();
}

void Aggregator::Reset() {
  count_ = 0;
  sum_ = 0.0;
  sum_squares_ = 0.0;
  has_extreme_ = false;
  extreme_ = storage::Value::Null();
}

}  // namespace qagview::sql
