#ifndef QAGVIEW_SQL_AGGREGATE_H_
#define QAGVIEW_SQL_AGGREGATE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "storage/value.h"

namespace qagview::sql {

enum class AggKind { kCount, kCountStar, kSum, kAvg, kMin, kMax };

/// Maps a lower-cased function name ("avg", ...) to its kind.
/// `star` selects count(*) over count(expr).
Result<AggKind> AggKindFromName(const std::string& name, bool star);

const char* AggKindToString(AggKind kind);

/// \brief Streaming aggregate accumulator (SQL NULL semantics: NULL inputs
/// are skipped by every aggregate except count(*)).
class Aggregator {
 public:
  explicit Aggregator(AggKind kind) : kind_(kind) {}

  /// Folds one input row's argument value in.
  void Add(const storage::Value& v);

  /// Folds one row into count(*) (no argument).
  void AddRow();

  /// Final value: count -> INT64, sum/avg -> DOUBLE, min/max -> input type.
  /// Empty input: count -> 0, others -> NULL.
  storage::Value Finish() const;

  void Reset();

  AggKind kind() const { return kind_; }

  /// Accumulator internals, exposed for the approximate executor's scaled
  /// estimators and CLT standard errors (sql/executor.cc): non-null inputs
  /// folded (rows for count(*)), their sum, and their sum of squares (sum
  /// and sum_squares are maintained for sum/avg only).
  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double sum_squares() const { return sum_squares_; }

 private:
  AggKind kind_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double sum_squares_ = 0.0;
  bool has_extreme_ = false;
  storage::Value extreme_;  // current min or max
};

}  // namespace qagview::sql

#endif  // QAGVIEW_SQL_AGGREGATE_H_
