#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace qagview::sql {

namespace {
// Keywords that terminate an expression / select item.
bool IsClauseKeyword(const std::string& word) {
  static const char* kKeywords[] = {"from", "where",  "group", "having",
                                    "order", "limit", "as",    "asc",
                                    "desc",  "by",    "and",   "or",
                                    "not",   "select"};
  std::string lower = ToLower(word);
  for (const char* kw : kKeywords) {
    if (lower == kw) return true;
  }
  return false;
}
}  // namespace

bool Parser::Match(TokenType type) {
  if (!Check(type)) return false;
  ++pos_;
  return true;
}

bool Parser::CheckKeyword(const char* kw) const {
  return Peek().type == TokenType::kIdent && EqualsIgnoreCase(Peek().text, kw);
}

bool Parser::MatchKeyword(const char* kw) {
  if (!CheckKeyword(kw)) return false;
  ++pos_;
  return true;
}

Status Parser::Expect(TokenType type, const char* what) {
  if (Match(type)) return Status::OK();
  return ErrorHere(StrCat("expected ", what));
}

Status Parser::ExpectKeyword(const char* kw) {
  if (MatchKeyword(kw)) return Status::OK();
  return ErrorHere(StrCat("expected keyword ", kw));
}

Status Parser::ErrorHere(const std::string& message) const {
  return Status::ParseError(StrCat(message, ", got '", Peek().ToString(),
                                   "' at offset ", Peek().offset));
}

Result<SelectStatement> Parser::ParseSelect(const std::string& sql) {
  QAG_ASSIGN_OR_RETURN(auto tokens, Lexer(sql).Tokenize());
  Parser parser(std::move(tokens));
  QAG_ASSIGN_OR_RETURN(SelectStatement stmt, parser.Select());
  if (!parser.Check(TokenType::kEnd)) {
    return parser.ErrorHere("unexpected trailing input");
  }
  return stmt;
}

Result<std::unique_ptr<Expr>> Parser::ParseExpression(const std::string& sql) {
  QAG_ASSIGN_OR_RETURN(auto tokens, Lexer(sql).Tokenize());
  Parser parser(std::move(tokens));
  QAG_ASSIGN_OR_RETURN(auto expr, parser.Expression());
  if (!parser.Check(TokenType::kEnd)) {
    return parser.ErrorHere("unexpected trailing input");
  }
  return expr;
}

Result<SelectStatement> Parser::Select() {
  SelectStatement stmt;
  QAG_RETURN_IF_ERROR(ExpectKeyword("select"));

  // Select list.
  while (true) {
    SelectItem item;
    QAG_ASSIGN_OR_RETURN(item.expr, Expression());
    if (MatchKeyword("as")) {
      if (!Check(TokenType::kIdent)) return ErrorHere("expected alias");
      item.alias = Advance().text;
    } else if (Check(TokenType::kIdent) && !IsClauseKeyword(Peek().text)) {
      // Implicit alias: SELECT avg(x) val
      item.alias = Advance().text;
    }
    stmt.items.push_back(std::move(item));
    if (!Match(TokenType::kComma)) break;
  }

  QAG_RETURN_IF_ERROR(ExpectKeyword("from"));
  if (!Check(TokenType::kIdent)) return ErrorHere("expected table name");
  stmt.table_name = Advance().text;

  if (MatchKeyword("where")) {
    QAG_ASSIGN_OR_RETURN(stmt.where, Expression());
  }

  if (MatchKeyword("group")) {
    QAG_RETURN_IF_ERROR(ExpectKeyword("by"));
    while (true) {
      if (!Check(TokenType::kIdent)) return ErrorHere("expected column name");
      stmt.group_by.push_back(Advance().text);
      if (!Match(TokenType::kComma)) break;
    }
  }

  if (MatchKeyword("having")) {
    QAG_ASSIGN_OR_RETURN(stmt.having, Expression());
  }

  if (MatchKeyword("order")) {
    QAG_RETURN_IF_ERROR(ExpectKeyword("by"));
    while (true) {
      if (!Check(TokenType::kIdent)) return ErrorHere("expected column name");
      OrderByItem item;
      item.column = Advance().text;
      if (MatchKeyword("desc")) {
        item.descending = true;
      } else {
        MatchKeyword("asc");
      }
      stmt.order_by.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }
  }

  if (MatchKeyword("limit")) {
    if (!Check(TokenType::kInt)) return ErrorHere("expected integer limit");
    stmt.limit = Advance().int_value;
    if (stmt.limit < 0) return Status::ParseError("LIMIT must be >= 0");
  }
  return stmt;
}

Result<std::unique_ptr<Expr>> Parser::Expression() { return OrExpr(); }

Result<std::unique_ptr<Expr>> Parser::OrExpr() {
  QAG_ASSIGN_OR_RETURN(auto lhs, AndExpr());
  while (MatchKeyword("or")) {
    QAG_ASSIGN_OR_RETURN(auto rhs, AndExpr());
    lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<std::unique_ptr<Expr>> Parser::AndExpr() {
  QAG_ASSIGN_OR_RETURN(auto lhs, NotExpr());
  while (MatchKeyword("and")) {
    QAG_ASSIGN_OR_RETURN(auto rhs, NotExpr());
    lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<std::unique_ptr<Expr>> Parser::NotExpr() {
  if (MatchKeyword("not")) {
    QAG_ASSIGN_OR_RETURN(auto operand, NotExpr());
    return Expr::Unary(UnaryOp::kNot, std::move(operand));
  }
  return Comparison();
}

Result<std::unique_ptr<Expr>> Parser::Comparison() {
  QAG_ASSIGN_OR_RETURN(auto lhs, Additive());
  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq: op = BinaryOp::kEq; break;
    case TokenType::kNe: op = BinaryOp::kNe; break;
    case TokenType::kLt: op = BinaryOp::kLt; break;
    case TokenType::kLe: op = BinaryOp::kLe; break;
    case TokenType::kGt: op = BinaryOp::kGt; break;
    case TokenType::kGe: op = BinaryOp::kGe; break;
    default:
      return lhs;
  }
  Advance();
  QAG_ASSIGN_OR_RETURN(auto rhs, Additive());
  return Expr::Binary(op, std::move(lhs), std::move(rhs));
}

Result<std::unique_ptr<Expr>> Parser::Additive() {
  QAG_ASSIGN_OR_RETURN(auto lhs, Multiplicative());
  while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
    BinaryOp op =
        Advance().type == TokenType::kPlus ? BinaryOp::kAdd : BinaryOp::kSub;
    QAG_ASSIGN_OR_RETURN(auto rhs, Multiplicative());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<std::unique_ptr<Expr>> Parser::Multiplicative() {
  QAG_ASSIGN_OR_RETURN(auto lhs, UnaryExpr());
  while (Check(TokenType::kStar) || Check(TokenType::kSlash) ||
         Check(TokenType::kPercent)) {
    TokenType t = Advance().type;
    BinaryOp op = t == TokenType::kStar
                      ? BinaryOp::kMul
                      : (t == TokenType::kSlash ? BinaryOp::kDiv
                                                : BinaryOp::kMod);
    QAG_ASSIGN_OR_RETURN(auto rhs, UnaryExpr());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<std::unique_ptr<Expr>> Parser::UnaryExpr() {
  if (Match(TokenType::kMinus)) {
    QAG_ASSIGN_OR_RETURN(auto operand, UnaryExpr());
    return Expr::Unary(UnaryOp::kNegate, std::move(operand));
  }
  if (Match(TokenType::kPlus)) return UnaryExpr();
  return Primary();
}

Result<std::unique_ptr<Expr>> Parser::Primary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kInt: {
      int64_t v = Advance().int_value;
      return Expr::Literal(storage::Value::Int(v));
    }
    case TokenType::kReal: {
      double v = Advance().real_value;
      return Expr::Literal(storage::Value::Real(v));
    }
    case TokenType::kString: {
      std::string v = Advance().text;
      return Expr::Literal(storage::Value::Str(std::move(v)));
    }
    case TokenType::kLParen: {
      Advance();
      QAG_ASSIGN_OR_RETURN(auto inner, Expression());
      QAG_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    case TokenType::kIdent: {
      std::string name = Advance().text;
      if (Match(TokenType::kLParen)) {
        // Function call.
        if (Match(TokenType::kStar)) {
          QAG_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          return Expr::Call(name, {}, /*star=*/true);
        }
        std::vector<std::unique_ptr<Expr>> args;
        if (!Check(TokenType::kRParen)) {
          while (true) {
            QAG_ASSIGN_OR_RETURN(auto arg, Expression());
            args.push_back(std::move(arg));
            if (!Match(TokenType::kComma)) break;
          }
        }
        QAG_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return Expr::Call(name, std::move(args));
      }
      return Expr::Column(std::move(name));
    }
    default:
      return ErrorHere("expected expression");
  }
}

}  // namespace qagview::sql
