#ifndef QAGVIEW_SQL_TOKEN_H_
#define QAGVIEW_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace qagview::sql {

enum class TokenType {
  kEnd,
  kIdent,      // bare identifier or keyword
  kInt,        // integer literal
  kReal,       // floating literal
  kString,     // 'quoted string'
  kComma,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,         // = or ==
  kNe,         // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
};

/// One lexical token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // identifier / string body
  int64_t int_value = 0;
  double real_value = 0.0;
  size_t offset = 0;

  std::string ToString() const;
};

const char* TokenTypeToString(TokenType type);

}  // namespace qagview::sql

#endif  // QAGVIEW_SQL_TOKEN_H_
