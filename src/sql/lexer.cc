#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace qagview::sql {

std::string Token::ToString() const {
  switch (type) {
    case TokenType::kIdent:
      return text;
    case TokenType::kInt:
      return std::to_string(int_value);
    case TokenType::kReal:
      return StrCat(real_value);
    case TokenType::kString:
      return StrCat("'", text, "'");
    default:
      return TokenTypeToString(type);
  }
}

const char* TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kEnd: return "<end>";
    case TokenType::kIdent: return "<ident>";
    case TokenType::kInt: return "<int>";
    case TokenType::kReal: return "<real>";
    case TokenType::kString: return "<string>";
    case TokenType::kComma: return ",";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kStar: return "*";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kSlash: return "/";
    case TokenType::kPercent: return "%";
    case TokenType::kEq: return "=";
    case TokenType::kNe: return "!=";
    case TokenType::kLt: return "<";
    case TokenType::kLe: return "<=";
    case TokenType::kGt: return ">";
    case TokenType::kGe: return ">=";
  }
  return "?";
}

Lexer::Lexer(std::string input) : input_(std::move(input)) {}

char Lexer::Peek(size_t ahead) const {
  return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    if (std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    } else if (Peek() == '-' && Peek(1) == '-') {
      while (!AtEnd() && Peek() != '\n') ++pos_;
    } else {
      break;
    }
  }
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    QAG_ASSIGN_OR_RETURN(Token t, Next());
    bool done = t.type == TokenType::kEnd;
    tokens.push_back(std::move(t));
    if (done) break;
  }
  return tokens;
}

Result<Token> Lexer::Next() {
  SkipWhitespaceAndComments();
  Token t;
  t.offset = pos_;
  if (AtEnd()) {
    t.type = TokenType::kEnd;
    return t;
  }
  char c = Peek();

  // Identifier / keyword.
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      ++pos_;
    }
    t.type = TokenType::kIdent;
    t.text = input_.substr(start, pos_ - start);
    return t;
  }

  // Numeric literal.
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
    size_t start = pos_;
    bool is_real = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      is_real = true;
      ++pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      is_real = true;
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Status::ParseError(
            StrCat("malformed exponent at offset ", pos_));
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    std::string text = input_.substr(start, pos_ - start);
    if (is_real) {
      QAG_ASSIGN_OR_RETURN(t.real_value, ParseDouble(text));
      t.type = TokenType::kReal;
    } else {
      QAG_ASSIGN_OR_RETURN(t.int_value, ParseInt64(text));
      t.type = TokenType::kInt;
    }
    return t;
  }

  // String literal.
  if (c == '\'') {
    ++pos_;
    std::string body;
    while (true) {
      if (AtEnd()) {
        return Status::ParseError(
            StrCat("unterminated string starting at offset ", t.offset));
      }
      char d = Peek();
      ++pos_;
      if (d == '\'') {
        if (Peek() == '\'') {  // '' escape
          body.push_back('\'');
          ++pos_;
        } else {
          break;
        }
      } else {
        body.push_back(d);
      }
    }
    t.type = TokenType::kString;
    t.text = std::move(body);
    return t;
  }

  // Operators and punctuation.
  ++pos_;
  switch (c) {
    case ',': t.type = TokenType::kComma; return t;
    case '(': t.type = TokenType::kLParen; return t;
    case ')': t.type = TokenType::kRParen; return t;
    case '*': t.type = TokenType::kStar; return t;
    case '+': t.type = TokenType::kPlus; return t;
    case '-': t.type = TokenType::kMinus; return t;
    case '/': t.type = TokenType::kSlash; return t;
    case '%': t.type = TokenType::kPercent; return t;
    case '=':
      if (Peek() == '=') ++pos_;
      t.type = TokenType::kEq;
      return t;
    case '!':
      if (Peek() == '=') {
        ++pos_;
        t.type = TokenType::kNe;
        return t;
      }
      return Status::ParseError(StrCat("unexpected '!' at offset ", t.offset));
    case '<':
      if (Peek() == '=') {
        ++pos_;
        t.type = TokenType::kLe;
      } else if (Peek() == '>') {
        ++pos_;
        t.type = TokenType::kNe;
      } else {
        t.type = TokenType::kLt;
      }
      return t;
    case '>':
      if (Peek() == '=') {
        ++pos_;
        t.type = TokenType::kGe;
      } else {
        t.type = TokenType::kGt;
      }
      return t;
    default:
      return Status::ParseError(
          StrCat("unexpected character '", std::string(1, c), "' at offset ",
                 t.offset));
  }
}

}  // namespace qagview::sql
