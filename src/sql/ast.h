#ifndef QAGVIEW_SQL_AST_H_
#define QAGVIEW_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/value.h"

namespace qagview::sql {

enum class ExprKind {
  kLiteral,    // 42, 3.5, 'abc'
  kColumnRef,  // column name
  kUnary,      // NOT e, -e
  kBinary,     // e op e
  kCall,       // fn(args) or fn(*)
};

enum class UnaryOp { kNot, kNegate };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

const char* UnaryOpToString(UnaryOp op);
const char* BinaryOpToString(BinaryOp op);

/// \brief Expression tree node.
///
/// A single struct covers all node kinds (this is a compact dialect);
/// only the fields relevant to `kind` are meaningful.
struct Expr {
  ExprKind kind;

  storage::Value literal;              // kLiteral
  std::string column;                  // kColumnRef
  UnaryOp unary_op = UnaryOp::kNot;    // kUnary
  BinaryOp binary_op = BinaryOp::kEq;  // kBinary
  std::unique_ptr<Expr> left;          // kUnary operand / kBinary lhs
  std::unique_ptr<Expr> right;         // kBinary rhs
  std::string function;                // kCall, lower-cased
  std::vector<std::unique_ptr<Expr>> args;  // kCall arguments
  bool star_arg = false;               // kCall with '*' argument: count(*)

  static std::unique_ptr<Expr> Literal(storage::Value v);
  static std::unique_ptr<Expr> Column(std::string name);
  static std::unique_ptr<Expr> Unary(UnaryOp op, std::unique_ptr<Expr> e);
  static std::unique_ptr<Expr> Binary(BinaryOp op, std::unique_ptr<Expr> l,
                                      std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> Call(std::string fn,
                                    std::vector<std::unique_ptr<Expr>> args,
                                    bool star = false);

  /// Deep copy.
  std::unique_ptr<Expr> Clone() const;

  /// Canonical text form; used both for display and as the key matching
  /// aggregate calls between SELECT / HAVING / ORDER BY.
  std::string ToString() const;

  /// True if any node in the tree is a kCall (aggregate) node.
  bool ContainsCall() const;
};

/// One SELECT-list entry: expression plus optional alias.
struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;  // empty if none

  /// Output column name: alias if set, else the expression's text form.
  std::string OutputName() const;
};

struct OrderByItem {
  std::string column;  // output-column name or alias
  bool descending = false;
};

/// Parsed form of the aggregate-query template the paper operates on:
///   SELECT <attrs>, agg(x) AS val FROM t [WHERE ...] GROUP BY <attrs>
///   [HAVING ...] [ORDER BY val DESC] [LIMIT n]
/// Plain (non-grouped) SELECTs are also supported for previews.
struct SelectStatement {
  std::vector<SelectItem> items;
  std::string table_name;
  std::unique_ptr<Expr> where;   // nullable
  std::vector<std::string> group_by;
  std::unique_ptr<Expr> having;  // nullable
  std::vector<OrderByItem> order_by;
  int64_t limit = -1;            // -1 = no limit

  std::string ToString() const;
};

}  // namespace qagview::sql

#endif  // QAGVIEW_SQL_AST_H_
