#include "sql/executor.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "sql/aggregate.h"
#include "sql/expr.h"
#include "sql/parser.h"

namespace qagview::sql {

using storage::Field;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

void Catalog::Register(const std::string& name, const Table* table) {
  tables_[ToLower(name)] = table;
}

const Table* Catalog::Find(const std::string& name) const {
  std::string key = ToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) return nullptr;
  if (std::find(accessed_.begin(), accessed_.end(), key) ==
      accessed_.end()) {
    accessed_.push_back(std::move(key));
  }
  return it->second;
}

void Catalog::RegisterSample(const std::string& name, const Table* rows,
                             int64_t population_rows) {
  samples_[ToLower(name)] = SampleInfo{rows, population_rows};
}

const Catalog::SampleInfo* Catalog::FindSample(const std::string& name) const {
  auto it = samples_.find(ToLower(name));
  return it == samples_.end() ? nullptr : &it->second;
}

namespace {

// Infers a column type from materialized cells (INT64 if all ints,
// DOUBLE if all numerics, else STRING; all-NULL columns default to INT64).
ValueType InferType(const std::vector<std::vector<Value>>& rows, size_t col) {
  bool any = false;
  bool all_int = true;
  bool all_num = true;
  for (const auto& row : rows) {
    const Value& v = row[col];
    if (v.is_null()) continue;
    any = true;
    if (v.type() == ValueType::kString) return ValueType::kString;
    if (v.type() == ValueType::kDouble) all_int = false;
    if (v.type() != ValueType::kInt64 && v.type() != ValueType::kDouble) {
      all_num = false;
    }
  }
  if (!any) return ValueType::kInt64;
  if (all_int) return ValueType::kInt64;
  if (all_num) return ValueType::kDouble;
  return ValueType::kString;
}

// Builds an output table from materialized rows, inferring column types.
Result<Table> MaterializeTable(const std::vector<std::string>& names,
                               std::vector<std::vector<Value>> rows) {
  std::vector<Field> fields;
  fields.reserve(names.size());
  for (size_t c = 0; c < names.size(); ++c) {
    fields.push_back({names[c], InferType(rows, c)});
  }
  Table out{Schema(std::move(fields))};
  for (auto& row : rows) {
    // Coerce ints feeding double columns (AppendRow accepts that directly).
    QAG_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Status ApplyOrderAndLimit(const SelectStatement& stmt,
                          const std::vector<std::string>& names,
                          std::vector<std::vector<Value>>* rows) {
  if (!stmt.order_by.empty()) {
    std::vector<std::pair<size_t, bool>> keys;  // column index, descending
    for (const OrderByItem& item : stmt.order_by) {
      size_t idx = names.size();
      for (size_t c = 0; c < names.size(); ++c) {
        if (EqualsIgnoreCase(names[c], item.column)) {
          idx = c;
          break;
        }
      }
      if (idx == names.size()) {
        return Status::InvalidArgument(
            "ORDER BY column is not in the select list: " + item.column);
      }
      keys.emplace_back(idx, item.descending);
    }
    std::stable_sort(rows->begin(), rows->end(),
                     [&keys](const std::vector<Value>& a,
                             const std::vector<Value>& b) {
                       for (const auto& [idx, desc] : keys) {
                         int c = a[idx].Compare(b[idx]);
                         if (c != 0) return desc ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }
  if (stmt.limit >= 0 &&
      static_cast<int64_t>(rows->size()) > stmt.limit) {
    rows->resize(static_cast<size_t>(stmt.limit));
  }
  return Status::OK();
}

// Evaluates the WHERE clause and returns the surviving row indices.
Result<std::vector<int64_t>> FilterRows(const SelectStatement& stmt,
                                        const Table& table) {
  std::vector<int64_t> rows;
  if (stmt.where == nullptr) {
    rows.reserve(static_cast<size_t>(table.num_rows()));
    for (int64_t r = 0; r < table.num_rows(); ++r) rows.push_back(r);
    return rows;
  }
  if (stmt.where->ContainsCall()) {
    return Status::InvalidArgument("aggregates are not allowed in WHERE");
  }
  QAG_ASSIGN_OR_RETURN(CompiledExpr where,
                       CompiledExpr::Compile(*stmt.where, table.schema()));
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    Value v = where.Eval(table, r);
    if (!v.is_null() && v.IsTruthy()) rows.push_back(r);
  }
  return rows;
}

// Plain (non-grouped, aggregate-free) SELECT.
Result<Table> ExecuteProjection(const SelectStatement& stmt,
                                const Table& table,
                                const std::vector<int64_t>& rows) {
  std::vector<CompiledExpr> exprs;
  std::vector<std::string> names;
  for (const SelectItem& item : stmt.items) {
    QAG_ASSIGN_OR_RETURN(CompiledExpr e,
                         CompiledExpr::Compile(*item.expr, table.schema()));
    exprs.push_back(std::move(e));
    names.push_back(item.OutputName());
  }
  std::vector<std::vector<Value>> cells;
  cells.reserve(rows.size());
  for (int64_t r : rows) {
    std::vector<Value> row;
    row.reserve(exprs.size());
    for (const CompiledExpr& e : exprs) row.push_back(e.Eval(table, r));
    cells.push_back(std::move(row));
  }
  QAG_RETURN_IF_ERROR(ApplyOrderAndLimit(stmt, names, &cells));
  return MaterializeTable(names, std::move(cells));
}

struct GroupState {
  std::vector<Aggregator> aggs;
};

// Scaling context for approximate execution: n sample rows drawn from N
// population rows, and the sink for per-output-column standard errors.
struct ApproxContext {
  int64_t sample_rows = 0;
  int64_t population_rows = 0;
  std::map<std::string, std::vector<double>>* column_se = nullptr;
};

// Horvitz-Thompson-style point estimate for one group's accumulator: count
// and sum scale by N/n, avg is self-normalizing, min/max pass through (the
// sample extreme is the best available estimate, but it carries no CLT
// bound -- see EstimateSe).
Value ScaledEstimate(const Aggregator& agg, double scale) {
  switch (agg.kind()) {
    case AggKind::kCount:
    case AggKind::kCountStar:
      return Value::Real(scale * static_cast<double>(agg.count()));
    case AggKind::kSum:
      return agg.count() == 0 ? Value::Null()
                              : Value::Real(scale * agg.sum());
    default:
      return agg.Finish();
  }
}

// CLT standard error of ScaledEstimate under uniform sampling without
// replacement (finite-population correction applied). Estimating a group's
// count or sum from a uniform table sample is estimating a population
// total of y_i = x_i * 1[row i in group] over all n sample rows, which is
// why those variances are over n, not the group size. Returns HUGE_VAL
// when no CLT error exists (min/max, avg over fewer than two sample rows).
double EstimateSe(const Aggregator& agg, int64_t sample_rows,
                  int64_t population_rows) {
  const double n = static_cast<double>(sample_rows);
  const double N = static_cast<double>(population_rows);
  const double fpc = std::max(0.0, 1.0 - n / N);
  switch (agg.kind()) {
    case AggKind::kCount:
    case AggKind::kCountStar: {
      if (sample_rows < 2) return HUGE_VAL;
      const double p = static_cast<double>(agg.count()) / n;
      return N * std::sqrt(p * (1.0 - p) / n) * std::sqrt(fpc);
    }
    case AggKind::kSum: {
      if (sample_rows < 2) return HUGE_VAL;
      const double s = agg.sum();
      const double var_y =
          std::max(0.0, (agg.sum_squares() - s * s / n) / (n - 1.0));
      return N * std::sqrt(var_y / n) * std::sqrt(fpc);
    }
    case AggKind::kAvg: {
      if (agg.count() < 2) return HUGE_VAL;
      const double c = static_cast<double>(agg.count());
      const double s = agg.sum();
      const double var_x =
          std::max(0.0, (agg.sum_squares() - s * s / c) / (c - 1.0));
      return std::sqrt(var_x / c) * std::sqrt(fpc);
    }
    case AggKind::kMin:
    case AggKind::kMax:
      return HUGE_VAL;
  }
  return HUGE_VAL;
}

// Grouped-aggregate path shared by exact and approximate execution. With
// `approx` set, `table`/`rows` are the sample, estimates are scaled, and
// per-row standard errors for bare count/sum/avg select items are written
// to approx->column_se keyed by output column name. SE values ride along
// the result rows as hidden trailing cells -- invisible to
// ApplyOrderAndLimit, which only indexes named columns -- so they stay
// aligned with their group through ORDER BY and LIMIT, then are stripped
// off before materialization.
Result<Table> ExecuteAggregate(const SelectStatement& stmt, const Table& table,
                               const std::vector<int64_t>& rows,
                               const ApproxContext* approx) {
  // Resolve grouping columns.
  std::vector<int> group_cols;
  for (const std::string& name : stmt.group_by) {
    QAG_ASSIGN_OR_RETURN(int idx, table.schema().GetFieldIndex(name));
    group_cols.push_back(idx);
  }

  // Collect unique aggregate calls from the select list and HAVING.
  std::vector<const Expr*> calls;
  for (const SelectItem& item : stmt.items) {
    CollectCalls(*item.expr, &calls);
  }
  if (stmt.having) CollectCalls(*stmt.having, &calls);

  std::vector<const Expr*> unique_calls;
  std::vector<std::string> call_keys;
  {
    std::unordered_set<std::string> seen;
    for (const Expr* call : calls) {
      for (const auto& arg : call->args) {
        if (arg->ContainsCall()) {
          return Status::InvalidArgument(
              "nested aggregate calls are not supported: " + call->ToString());
        }
      }
      std::string key = call->ToString();
      if (seen.insert(key).second) {
        unique_calls.push_back(call);
        call_keys.push_back(std::move(key));
      }
    }
  }

  // Prepare per-call kinds and argument expressions.
  std::vector<AggKind> kinds;
  std::vector<std::optional<CompiledExpr>> arg_exprs;
  for (const Expr* call : unique_calls) {
    QAG_ASSIGN_OR_RETURN(AggKind kind,
                         AggKindFromName(call->function, call->star_arg));
    if (kind != AggKind::kCountStar && call->args.size() != 1) {
      return Status::InvalidArgument(
          StrCat("aggregate ", call->function, " takes exactly one argument"));
    }
    kinds.push_back(kind);
    if (kind == AggKind::kCountStar) {
      arg_exprs.emplace_back(std::nullopt);
    } else {
      QAG_ASSIGN_OR_RETURN(
          CompiledExpr e,
          CompiledExpr::Compile(*call->args[0], table.schema()));
      arg_exprs.emplace_back(std::move(e));
    }
  }

  // Group rows and accumulate.
  std::unordered_map<std::vector<Value>, GroupState, ValueVectorHash,
                     ValueVectorEq>
      groups;
  std::vector<std::vector<Value>> group_order;  // first-seen order
  for (int64_t r : rows) {
    std::vector<Value> key;
    key.reserve(group_cols.size());
    for (int c : group_cols) key.push_back(table.Get(r, c));
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      for (AggKind kind : kinds) it->second.aggs.emplace_back(kind);
      group_order.push_back(key);
    }
    for (size_t a = 0; a < kinds.size(); ++a) {
      if (kinds[a] == AggKind::kCountStar) {
        it->second.aggs[a].AddRow();
      } else {
        it->second.aggs[a].Add(arg_exprs[a]->Eval(table, r));
      }
    }
  }

  // Build the intermediate "group env" table: group-by columns (original
  // names/types) + one column per unique aggregate call, named by its
  // canonical text. Select items and HAVING are evaluated against it after
  // rewriting calls into column refs. Approximate execution publishes
  // scaled estimates into the env, so expressions over aggregates (and
  // HAVING predicates) see population-scale values.
  std::vector<std::string> env_names;
  for (int c : group_cols) env_names.push_back(table.schema().field(c).name);
  for (const std::string& key : call_keys) env_names.push_back(key);

  const double scale =
      approx == nullptr
          ? 1.0
          : static_cast<double>(approx->population_rows) /
                static_cast<double>(approx->sample_rows);
  std::vector<std::vector<double>> group_ses;  // [group][unique call]
  std::vector<std::vector<Value>> env_rows;
  env_rows.reserve(group_order.size());
  for (const auto& key : group_order) {
    const GroupState& state = groups[key];
    std::vector<Value> row = key;
    if (approx == nullptr) {
      for (const Aggregator& agg : state.aggs) row.push_back(agg.Finish());
    } else {
      std::vector<double> ses;
      ses.reserve(state.aggs.size());
      for (const Aggregator& agg : state.aggs) {
        row.push_back(ScaledEstimate(agg, scale));
        ses.push_back(EstimateSe(agg, approx->sample_rows,
                                 approx->population_rows));
      }
      group_ses.push_back(std::move(ses));
    }
    env_rows.push_back(std::move(row));
  }
  QAG_ASSIGN_OR_RETURN(Table env_table,
                       MaterializeTable(env_names, std::move(env_rows)));

  // Compile rewritten select items / HAVING against the env table.
  std::vector<CompiledExpr> out_exprs;
  std::vector<std::string> out_names;
  for (const SelectItem& item : stmt.items) {
    std::unique_ptr<Expr> rewritten = RewriteCallsToColumns(*item.expr);
    auto compiled = CompiledExpr::Compile(*rewritten, env_table.schema());
    if (!compiled.ok()) {
      // A bare column that is neither grouped nor aggregated.
      return Status::InvalidArgument(
          StrCat("select item ", item.expr->ToString(),
                 " must be a grouping column or an aggregate (",
                 compiled.status().message(), ")"));
    }
    out_exprs.push_back(std::move(compiled).value());
    out_names.push_back(item.OutputName());
  }
  std::optional<CompiledExpr> having;
  if (stmt.having) {
    std::unique_ptr<Expr> rewritten = RewriteCallsToColumns(*stmt.having);
    QAG_ASSIGN_OR_RETURN(CompiledExpr e,
                         CompiledExpr::Compile(*rewritten, env_table.schema()));
    having = std::move(e);
  }

  // Map bare aggregate-call select items to their unique-call index. Only
  // kinds with a CLT bound participate; min/max items get no column_se
  // entry, which tells the caller no bound exists for that column.
  std::vector<int> item_call(stmt.items.size(), -1);
  if (approx != nullptr) {
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const Expr& e = *stmt.items[i].expr;
      if (e.kind != ExprKind::kCall) continue;
      const std::string key = e.ToString();
      for (size_t a = 0; a < call_keys.size(); ++a) {
        if (call_keys[a] != key) continue;
        if (kinds[a] == AggKind::kCount || kinds[a] == AggKind::kCountStar ||
            kinds[a] == AggKind::kSum || kinds[a] == AggKind::kAvg) {
          item_call[i] = static_cast<int>(a);
        }
        break;
      }
    }
  }

  std::vector<std::vector<Value>> out_rows;
  for (int64_t g = 0; g < env_table.num_rows(); ++g) {
    if (having) {
      Value keep = having->Eval(env_table, g);
      if (keep.is_null() || !keep.IsTruthy()) continue;
    }
    std::vector<Value> row;
    row.reserve(out_exprs.size());
    for (const CompiledExpr& e : out_exprs) row.push_back(e.Eval(env_table, g));
    if (approx != nullptr) {
      for (size_t i = 0; i < item_call.size(); ++i) {
        if (item_call[i] >= 0) {
          row.push_back(Value::Real(group_ses[g][item_call[i]]));
        }
      }
    }
    out_rows.push_back(std::move(row));
  }

  QAG_RETURN_IF_ERROR(ApplyOrderAndLimit(stmt, out_names, &out_rows));

  if (approx != nullptr) {
    const size_t base = out_names.size();
    size_t hidden = 0;
    for (size_t i = 0; i < item_call.size(); ++i) {
      if (item_call[i] < 0) continue;
      std::vector<double>& ses =
          (*approx->column_se)[stmt.items[i].OutputName()];
      ses.clear();
      ses.reserve(out_rows.size());
      for (const auto& row : out_rows) {
        ses.push_back(row[base + hidden].ToDouble());
      }
      ++hidden;
    }
    for (auto& row : out_rows) row.resize(base);
  }

  return MaterializeTable(out_names, std::move(out_rows));
}

}  // namespace

Result<Table> ExecuteSelect(const SelectStatement& stmt,
                            const Catalog& catalog) {
  const Table* table = catalog.Find(stmt.table_name);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + stmt.table_name);
  }
  if (stmt.items.empty()) {
    return Status::InvalidArgument("empty select list");
  }

  QAG_ASSIGN_OR_RETURN(std::vector<int64_t> rows, FilterRows(stmt, *table));

  // Detect aggregation.
  bool has_calls = stmt.having != nullptr && stmt.having->ContainsCall();
  for (const SelectItem& item : stmt.items) {
    has_calls = has_calls || item.expr->ContainsCall();
  }
  if (stmt.group_by.empty() && !has_calls) {
    if (stmt.having != nullptr) {
      return Status::InvalidArgument("HAVING requires GROUP BY or aggregates");
    }
    return ExecuteProjection(stmt, *table, rows);
  }

  return ExecuteAggregate(stmt, *table, rows, /*approx=*/nullptr);
}

Result<Table> ExecuteSql(const std::string& sql, const Catalog& catalog) {
  QAG_ASSIGN_OR_RETURN(SelectStatement stmt, Parser::ParseSelect(sql));
  return ExecuteSelect(stmt, catalog);
}

Result<ApproxExecution> ExecuteSelectApproximate(const SelectStatement& stmt,
                                                 const Catalog& catalog) {
  const Table* table = catalog.Find(stmt.table_name);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + stmt.table_name);
  }
  if (stmt.items.empty()) {
    return Status::InvalidArgument("empty select list");
  }

  bool has_calls = stmt.having != nullptr && stmt.having->ContainsCall();
  for (const SelectItem& item : stmt.items) {
    has_calls = has_calls || item.expr->ContainsCall();
  }
  const bool aggregate = !stmt.group_by.empty() || has_calls;

  // Sampling only pays off on the aggregate path, and only when the sample
  // is a strict subset of the population: an empty sample estimates
  // nothing, and a sample that covers the whole table IS the exact answer,
  // so run it as one rather than attaching vacuous error bounds.
  const Catalog::SampleInfo* sample = catalog.FindSample(stmt.table_name);
  const bool sampled = aggregate && sample != nullptr &&
                       sample->rows != nullptr &&
                       sample->rows->num_rows() > 0 &&
                       sample->rows->num_rows() < sample->population_rows;
  if (!sampled) {
    QAG_ASSIGN_OR_RETURN(Table exact, ExecuteSelect(stmt, catalog));
    ApproxExecution out{std::move(exact)};
    out.sample_rows = table->num_rows();
    out.population_rows = table->num_rows();
    return out;
  }

  QAG_ASSIGN_OR_RETURN(std::vector<int64_t> rows,
                       FilterRows(stmt, *sample->rows));
  std::map<std::string, std::vector<double>> column_se;
  ApproxContext ctx;
  ctx.sample_rows = sample->rows->num_rows();
  ctx.population_rows = sample->population_rows;
  ctx.column_se = &column_se;
  QAG_ASSIGN_OR_RETURN(Table estimate,
                       ExecuteAggregate(stmt, *sample->rows, rows, &ctx));
  ApproxExecution out{std::move(estimate)};
  out.approximate = true;
  out.sample_rows = ctx.sample_rows;
  out.population_rows = ctx.population_rows;
  out.sample_fraction = static_cast<double>(ctx.sample_rows) /
                        static_cast<double>(ctx.population_rows);
  out.column_se = std::move(column_se);
  return out;
}

Result<ApproxExecution> ExecuteSqlApproximate(const std::string& sql,
                                              const Catalog& catalog) {
  QAG_ASSIGN_OR_RETURN(SelectStatement stmt, Parser::ParseSelect(sql));
  return ExecuteSelectApproximate(stmt, catalog);
}

}  // namespace qagview::sql
