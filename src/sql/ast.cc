#include "sql/ast.h"

#include "common/string_util.h"

namespace qagview::sql {

const char* UnaryOpToString(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot: return "NOT";
    case UnaryOp::kNegate: return "-";
  }
  return "?";
}

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Literal(storage::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::Column(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::Unary(UnaryOp op, std::unique_ptr<Expr> operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->left = std::move(operand);
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinaryOp op, std::unique_ptr<Expr> l,
                                   std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::Call(std::string fn,
                                 std::vector<std::unique_ptr<Expr>> args,
                                 bool star) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCall;
  e->function = ToLower(fn);
  e->args = std::move(args);
  e->star_arg = star;
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->column = column;
  e->unary_op = unary_op;
  e->binary_op = binary_op;
  if (left) e->left = left->Clone();
  if (right) e->right = right->Clone();
  e->function = function;
  e->star_arg = star_arg;
  for (const auto& a : args) e->args.push_back(a->Clone());
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.type() == storage::ValueType::kString) {
        return StrCat("'", literal.as_string(), "'");
      }
      return literal.ToString();
    case ExprKind::kColumnRef:
      return ToLower(column);
    case ExprKind::kUnary:
      if (unary_op == UnaryOp::kNot) {
        return StrCat("NOT (", left->ToString(), ")");
      }
      return StrCat("-(", left->ToString(), ")");
    case ExprKind::kBinary:
      return StrCat("(", left->ToString(), " ", BinaryOpToString(binary_op),
                    " ", right->ToString(), ")");
    case ExprKind::kCall: {
      if (star_arg) return StrCat(function, "(*)");
      std::vector<std::string> parts;
      for (const auto& a : args) parts.push_back(a->ToString());
      return StrCat(function, "(", Join(parts, ", "), ")");
    }
  }
  return "?";
}

bool Expr::ContainsCall() const {
  if (kind == ExprKind::kCall) return true;
  if (left && left->ContainsCall()) return true;
  if (right && right->ContainsCall()) return true;
  for (const auto& a : args) {
    if (a->ContainsCall()) return true;
  }
  return false;
}

std::string SelectItem::OutputName() const {
  return alias.empty() ? expr->ToString() : alias;
}

std::string SelectStatement::ToString() const {
  std::vector<std::string> sel;
  for (const SelectItem& item : items) {
    sel.push_back(item.alias.empty()
                      ? item.expr->ToString()
                      : StrCat(item.expr->ToString(), " AS ", item.alias));
  }
  std::string out = StrCat("SELECT ", Join(sel, ", "), " FROM ", table_name);
  if (where) out += StrCat(" WHERE ", where->ToString());
  if (!group_by.empty()) out += StrCat(" GROUP BY ", Join(group_by, ", "));
  if (having) out += StrCat(" HAVING ", having->ToString());
  if (!order_by.empty()) {
    std::vector<std::string> parts;
    for (const OrderByItem& o : order_by) {
      parts.push_back(StrCat(o.column, o.descending ? " DESC" : " ASC"));
    }
    out += StrCat(" ORDER BY ", Join(parts, ", "));
  }
  if (limit >= 0) out += StrCat(" LIMIT ", limit);
  return out;
}

}  // namespace qagview::sql
