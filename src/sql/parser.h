#ifndef QAGVIEW_SQL_PARSER_H_
#define QAGVIEW_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace qagview::sql {

/// \brief Recursive-descent parser for the qagview SQL dialect.
///
/// Supported statement form (the paper's aggregate-query template plus plain
/// projections):
///
///   SELECT item [, item]* FROM table
///     [WHERE expr] [GROUP BY col [, col]*] [HAVING expr]
///     [ORDER BY col [ASC|DESC] [, ...]] [LIMIT n]
///
/// with arithmetic, comparisons, AND/OR/NOT, parentheses, aggregate calls
/// (count/sum/avg/min/max, including count(*)), and int/real/string
/// literals.
class Parser {
 public:
  /// Parses a full SELECT statement; fails on trailing input.
  static Result<SelectStatement> ParseSelect(const std::string& sql);

  /// Parses a standalone expression (used by tests and tools).
  static Result<std::unique_ptr<Expr>> ParseExpression(const std::string& sql);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  Token Advance() { return tokens_[pos_++]; }
  bool Check(TokenType type) const { return Peek().type == type; }
  bool Match(TokenType type);
  bool MatchKeyword(const char* kw);
  bool CheckKeyword(const char* kw) const;
  Status Expect(TokenType type, const char* what);
  Status ExpectKeyword(const char* kw);
  Status ErrorHere(const std::string& message) const;

  Result<SelectStatement> Select();
  Result<std::unique_ptr<Expr>> Expression();
  Result<std::unique_ptr<Expr>> OrExpr();
  Result<std::unique_ptr<Expr>> AndExpr();
  Result<std::unique_ptr<Expr>> NotExpr();
  Result<std::unique_ptr<Expr>> Comparison();
  Result<std::unique_ptr<Expr>> Additive();
  Result<std::unique_ptr<Expr>> Multiplicative();
  Result<std::unique_ptr<Expr>> UnaryExpr();
  Result<std::unique_ptr<Expr>> Primary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace qagview::sql

#endif  // QAGVIEW_SQL_PARSER_H_
