#include "sql/expr.h"

#include <cmath>

#include "common/hash.h"
#include "common/string_util.h"

namespace qagview::sql {

using storage::Value;
using storage::ValueType;

Result<CompiledExpr> CompiledExpr::Compile(const Expr& expr,
                                           const storage::Schema& schema) {
  CompiledExpr compiled;
  QAG_ASSIGN_OR_RETURN(compiled.root_, compiled.CompileNode(expr, schema));
  return compiled;
}

Result<int> CompiledExpr::CompileNode(const Expr& expr,
                                      const storage::Schema& schema) {
  Node node;
  node.kind = expr.kind;
  switch (expr.kind) {
    case ExprKind::kLiteral:
      node.literal = expr.literal;
      break;
    case ExprKind::kColumnRef: {
      QAG_ASSIGN_OR_RETURN(node.column_index,
                           schema.GetFieldIndex(expr.column));
      break;
    }
    case ExprKind::kUnary: {
      node.unary_op = expr.unary_op;
      QAG_ASSIGN_OR_RETURN(node.left, CompileNode(*expr.left, schema));
      break;
    }
    case ExprKind::kBinary: {
      node.binary_op = expr.binary_op;
      QAG_ASSIGN_OR_RETURN(node.left, CompileNode(*expr.left, schema));
      QAG_ASSIGN_OR_RETURN(node.right, CompileNode(*expr.right, schema));
      break;
    }
    case ExprKind::kCall:
      return Status::InvalidArgument(
          StrCat("aggregate call ", expr.ToString(),
                 " is not allowed in a scalar context"));
  }
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

Value CompiledExpr::Eval(const storage::Table& table, int64_t row) const {
  return EvalNode(root_, table, row);
}

namespace {

// Three-valued logic: -1 = NULL/unknown, 0 = false, 1 = true.
int Truth(const Value& v) {
  if (v.is_null()) return -1;
  return v.IsTruthy() ? 1 : 0;
}

Value TruthToValue(int t) {
  if (t < 0) return Value::Null();
  return Value::Int(t);
}

}  // namespace

Value CompiledExpr::EvalNode(int index, const storage::Table& table,
                             int64_t row) const {
  const Node& node = nodes_[static_cast<size_t>(index)];
  switch (node.kind) {
    case ExprKind::kLiteral:
      return node.literal;
    case ExprKind::kColumnRef:
      return table.Get(row, node.column_index);
    case ExprKind::kUnary: {
      Value operand = EvalNode(node.left, table, row);
      if (node.unary_op == UnaryOp::kNegate) {
        if (operand.is_null()) return Value::Null();
        if (operand.type() == ValueType::kInt64) {
          return Value::Int(-operand.as_int());
        }
        return Value::Real(-operand.ToDouble());
      }
      // NOT with three-valued logic.
      int t = Truth(operand);
      return t < 0 ? Value::Null() : Value::Int(1 - t);
    }
    case ExprKind::kBinary: {
      // AND/OR need short-circuit-aware three-valued logic.
      if (node.binary_op == BinaryOp::kAnd || node.binary_op == BinaryOp::kOr) {
        int a = Truth(EvalNode(node.left, table, row));
        if (node.binary_op == BinaryOp::kAnd && a == 0) return Value::Int(0);
        if (node.binary_op == BinaryOp::kOr && a == 1) return Value::Int(1);
        int b = Truth(EvalNode(node.right, table, row));
        if (node.binary_op == BinaryOp::kAnd) {
          if (b == 0) return Value::Int(0);
          return TruthToValue((a < 0 || b < 0) ? -1 : 1);
        }
        if (b == 1) return Value::Int(1);
        return TruthToValue((a < 0 || b < 0) ? -1 : 0);
      }

      Value lhs = EvalNode(node.left, table, row);
      Value rhs = EvalNode(node.right, table, row);
      if (lhs.is_null() || rhs.is_null()) return Value::Null();

      switch (node.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul: {
          if (lhs.type() == ValueType::kInt64 &&
              rhs.type() == ValueType::kInt64) {
            int64_t a = lhs.as_int();
            int64_t b = rhs.as_int();
            switch (node.binary_op) {
              case BinaryOp::kAdd: return Value::Int(a + b);
              case BinaryOp::kSub: return Value::Int(a - b);
              default: return Value::Int(a * b);
            }
          }
          double a = lhs.ToDouble();
          double b = rhs.ToDouble();
          switch (node.binary_op) {
            case BinaryOp::kAdd: return Value::Real(a + b);
            case BinaryOp::kSub: return Value::Real(a - b);
            default: return Value::Real(a * b);
          }
        }
        case BinaryOp::kDiv: {
          double b = rhs.ToDouble();
          if (b == 0.0) return Value::Null();  // SQL: division by zero
          return Value::Real(lhs.ToDouble() / b);
        }
        case BinaryOp::kMod: {
          if (lhs.type() == ValueType::kInt64 &&
              rhs.type() == ValueType::kInt64) {
            int64_t b = rhs.as_int();
            if (b == 0) return Value::Null();
            return Value::Int(lhs.as_int() % b);
          }
          double b = rhs.ToDouble();
          if (b == 0.0) return Value::Null();
          return Value::Real(std::fmod(lhs.ToDouble(), b));
        }
        case BinaryOp::kEq: return Value::Bool(lhs.Compare(rhs) == 0);
        case BinaryOp::kNe: return Value::Bool(lhs.Compare(rhs) != 0);
        case BinaryOp::kLt: return Value::Bool(lhs.Compare(rhs) < 0);
        case BinaryOp::kLe: return Value::Bool(lhs.Compare(rhs) <= 0);
        case BinaryOp::kGt: return Value::Bool(lhs.Compare(rhs) > 0);
        case BinaryOp::kGe: return Value::Bool(lhs.Compare(rhs) >= 0);
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          break;  // handled above
      }
      QAG_LOG(Fatal) << "unreachable binary op";
      return Value::Null();
    }
    case ExprKind::kCall:
      QAG_LOG(Fatal) << "call node survived compilation";
      return Value::Null();
  }
  return Value::Null();
}

std::unique_ptr<Expr> RewriteCallsToColumns(const Expr& expr) {
  if (expr.kind == ExprKind::kCall) {
    return Expr::Column(expr.ToString());
  }
  auto copy = expr.Clone();
  if (expr.left) copy->left = RewriteCallsToColumns(*expr.left);
  if (expr.right) copy->right = RewriteCallsToColumns(*expr.right);
  copy->args.clear();
  for (const auto& a : expr.args) {
    copy->args.push_back(RewriteCallsToColumns(*a));
  }
  return copy;
}

void CollectCalls(const Expr& expr, std::vector<const Expr*>* calls) {
  if (expr.kind == ExprKind::kCall) {
    calls->push_back(&expr);
    return;  // nested calls are rejected by the executor
  }
  if (expr.left) CollectCalls(*expr.left, calls);
  if (expr.right) CollectCalls(*expr.right, calls);
  for (const auto& a : expr.args) CollectCalls(*a, calls);
}

size_t HashValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt64:
      return std::hash<int64_t>()(v.as_int());
    case ValueType::kDouble:
      return std::hash<double>()(v.as_double());
    case ValueType::kString:
      return std::hash<std::string>()(v.as_string());
  }
  return 0;
}

size_t ValueVectorHash::operator()(
    const std::vector<storage::Value>& key) const {
  size_t seed = key.size();
  for (const Value& v : key) HashCombine(&seed, HashValue(v));
  return seed;
}

bool ValueVectorEq::operator()(const std::vector<storage::Value>& a,
                               const std::vector<storage::Value>& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

}  // namespace qagview::sql
