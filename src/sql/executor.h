#ifndef QAGVIEW_SQL_EXECUTOR_H_
#define QAGVIEW_SQL_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace qagview::sql {

/// \brief Name → table registry the executor resolves FROM clauses against.
///
/// The catalog does not own tables; registered tables must outlive it. A
/// Catalog instance is built per execution and is not thread-safe (the
/// service layer snapshots one per query).
class Catalog {
 public:
  /// Registers (or replaces) a table under a case-insensitive name.
  void Register(const std::string& name, const storage::Table* table);

  /// Looks a table up; nullptr if absent. Successful lookups are recorded
  /// in accessed().
  const storage::Table* Find(const std::string& name) const;

  /// A registered uniform sample backing approximate execution of queries
  /// against one table: the sampled rows plus the population size they
  /// were drawn from.
  struct SampleInfo {
    const storage::Table* rows = nullptr;
    int64_t population_rows = 0;
  };

  /// Registers (or replaces) the uniform sample for `name`. Like the table
  /// itself, the sample is not owned and must outlive the catalog.
  void RegisterSample(const std::string& name, const storage::Table* rows,
                      int64_t population_rows);

  /// The sample registered for `name`, or nullptr. Does not touch
  /// accessed(): approximate execution resolves the table through Find()
  /// first, so the dependency set is the same as an exact execution's.
  const SampleInfo* FindSample(const std::string& name) const;

  /// Lower-cased names of the tables Find() resolved so far, in
  /// first-access order, deduplicated — the dependency set of the queries
  /// executed against this catalog instance. The versioned-refresh layer
  /// uses it to know which table versions a cached answer set was built
  /// from.
  const std::vector<std::string>& accessed() const { return accessed_; }

 private:
  std::unordered_map<std::string, const storage::Table*> tables_;
  std::unordered_map<std::string, SampleInfo> samples_;
  mutable std::vector<std::string> accessed_;
};

/// \brief Executes a parsed SELECT against the catalog.
///
/// Supports the paper's aggregate template — WHERE filter, GROUP BY over any
/// columns, aggregates (count/count(*)/sum/avg/min/max) in the select list
/// and HAVING, expressions over aggregates and grouping columns, ORDER BY
/// output columns, LIMIT — plus plain (non-grouped) projections.
Result<storage::Table> ExecuteSelect(const SelectStatement& stmt,
                                     const Catalog& catalog);

/// Parses and executes `sql` in one step.
Result<storage::Table> ExecuteSql(const std::string& sql,
                                  const Catalog& catalog);

/// \brief Result of an approximate execution.
///
/// When `approximate` is false the statement was executed exactly (no
/// sample registered for the table, the sample covers the whole table, or
/// the statement has no aggregate path) and `column_se` is empty. When
/// true, `table` holds estimates computed from the registered sample —
/// count and sum estimators scaled by N/n, avg unscaled — and `column_se`
/// maps each output column that is a bare count/sum/avg aggregate call to
/// its per-row CLT standard errors, aligned with `table`'s rows. min/max
/// and expressions over aggregates get no `column_se` entry (no CLT error
/// bound exists for them); per-group standard errors that do not exist
/// (avg over fewer than two sample rows) are HUGE_VAL.
struct ApproxExecution {
  explicit ApproxExecution(storage::Table estimate)
      : table(std::move(estimate)) {}

  storage::Table table;
  bool approximate = false;
  int64_t sample_rows = 0;       // n: sample rows, before WHERE
  int64_t population_rows = 0;   // N: full-table rows, before WHERE
  double sample_fraction = 1.0;  // n / N (1.0 when exact)
  std::map<std::string, std::vector<double>> column_se;
};

/// Executes the statement against the sample registered for its table,
/// scaling estimators and attaching CLT standard errors (see
/// ApproxExecution). Falls back to exact execution — same result as
/// ExecuteSelect — when no useful sample exists or the statement has no
/// aggregate path. Estimates are deterministic in (sample, statement).
Result<ApproxExecution> ExecuteSelectApproximate(const SelectStatement& stmt,
                                                 const Catalog& catalog);

/// Parses and approximately executes `sql` in one step.
Result<ApproxExecution> ExecuteSqlApproximate(const std::string& sql,
                                              const Catalog& catalog);

}  // namespace qagview::sql

#endif  // QAGVIEW_SQL_EXECUTOR_H_
