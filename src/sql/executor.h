#ifndef QAGVIEW_SQL_EXECUTOR_H_
#define QAGVIEW_SQL_EXECUTOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace qagview::sql {

/// \brief Name → table registry the executor resolves FROM clauses against.
///
/// The catalog does not own tables; registered tables must outlive it. A
/// Catalog instance is built per execution and is not thread-safe (the
/// service layer snapshots one per query).
class Catalog {
 public:
  /// Registers (or replaces) a table under a case-insensitive name.
  void Register(const std::string& name, const storage::Table* table);

  /// Looks a table up; nullptr if absent. Successful lookups are recorded
  /// in accessed().
  const storage::Table* Find(const std::string& name) const;

  /// Lower-cased names of the tables Find() resolved so far, in
  /// first-access order, deduplicated — the dependency set of the queries
  /// executed against this catalog instance. The versioned-refresh layer
  /// uses it to know which table versions a cached answer set was built
  /// from.
  const std::vector<std::string>& accessed() const { return accessed_; }

 private:
  std::unordered_map<std::string, const storage::Table*> tables_;
  mutable std::vector<std::string> accessed_;
};

/// \brief Executes a parsed SELECT against the catalog.
///
/// Supports the paper's aggregate template — WHERE filter, GROUP BY over any
/// columns, aggregates (count/count(*)/sum/avg/min/max) in the select list
/// and HAVING, expressions over aggregates and grouping columns, ORDER BY
/// output columns, LIMIT — plus plain (non-grouped) projections.
Result<storage::Table> ExecuteSelect(const SelectStatement& stmt,
                                     const Catalog& catalog);

/// Parses and executes `sql` in one step.
Result<storage::Table> ExecuteSql(const std::string& sql,
                                  const Catalog& catalog);

}  // namespace qagview::sql

#endif  // QAGVIEW_SQL_EXECUTOR_H_
