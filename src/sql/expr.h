#ifndef QAGVIEW_SQL_EXPR_H_
#define QAGVIEW_SQL_EXPR_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace qagview::sql {

/// \brief An expression bound to a schema: column names resolved to indices,
/// ready for repeated row-at-a-time evaluation.
///
/// Scalar expressions only — compiling an expression that still contains an
/// aggregate call fails (the executor rewrites aggregate calls into column
/// references over its intermediate group table first; see
/// RewriteCallsToColumns).
///
/// NULL semantics follow SQL: arithmetic and comparisons propagate NULL;
/// AND/OR use three-valued logic; WHERE/HAVING treat NULL as not-satisfied.
class CompiledExpr {
 public:
  static Result<CompiledExpr> Compile(const Expr& expr,
                                      const storage::Schema& schema);

  /// Evaluates against one row of `table` (whose schema must be the one the
  /// expression was compiled against).
  storage::Value Eval(const storage::Table& table, int64_t row) const;

 private:
  struct Node {
    ExprKind kind;
    storage::Value literal;         // kLiteral
    int column_index = -1;          // kColumnRef
    UnaryOp unary_op = UnaryOp::kNot;
    BinaryOp binary_op = BinaryOp::kEq;
    int left = -1;
    int right = -1;
  };

  Result<int> CompileNode(const Expr& expr, const storage::Schema& schema);
  storage::Value EvalNode(int index, const storage::Table& table,
                          int64_t row) const;

  std::vector<Node> nodes_;
  int root_ = -1;
};

/// Returns a copy of `expr` where every aggregate-call node is replaced by a
/// column reference named by the call's canonical text (e.g. "avg(rating)").
std::unique_ptr<Expr> RewriteCallsToColumns(const Expr& expr);

/// Appends (pointers to) every aggregate-call node in `expr`, outermost
/// first. Nested aggregates (a call inside a call) are rejected upstream.
void CollectCalls(const Expr& expr, std::vector<const Expr*>* calls);

/// Hash for boxed values (used for group-by keys).
size_t HashValue(const storage::Value& v);

struct ValueVectorHash {
  size_t operator()(const std::vector<storage::Value>& key) const;
};
struct ValueVectorEq {
  bool operator()(const std::vector<storage::Value>& a,
                  const std::vector<storage::Value>& b) const;
};

}  // namespace qagview::sql

#endif  // QAGVIEW_SQL_EXPR_H_
