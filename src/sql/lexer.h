#ifndef QAGVIEW_SQL_LEXER_H_
#define QAGVIEW_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace qagview::sql {

/// \brief Tokenizes the SQL dialect accepted by qagview::sql.
///
/// Identifiers are case-insensitive (keywords are recognized by the parser).
/// String literals use single quotes with '' as the escape. `--` starts a
/// line comment.
class Lexer {
 public:
  explicit Lexer(std::string input);

  /// Tokenizes the whole input; the final token is kEnd.
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> Next();
  char Peek(size_t ahead = 0) const;
  bool AtEnd() const { return pos_ >= input_.size(); }
  void SkipWhitespaceAndComments();

  std::string input_;
  size_t pos_ = 0;
};

}  // namespace qagview::sql

#endif  // QAGVIEW_SQL_LEXER_H_
