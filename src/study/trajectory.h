#ifndef QAGVIEW_STUDY_TRAJECTORY_H_
#define QAGVIEW_STUDY_TRAJECTORY_H_

#include <cstdint>
#include <vector>

namespace qagview::study {

/// \file
/// \brief Simulated exploration trajectories and the next-move model
/// distilled from them — the study layer's export to the serving layer.
///
/// The paper's interactive session model (§3, Appendix A.3) makes the
/// user's next move highly predictable: after summarizing the top-L
/// answers, the user almost always drills into a *nearby* coverage level —
/// one step deeper to see what the next answer adds, occasionally doubling
/// L to widen the picture, or stepping back out — exactly the drill-down
/// behaviour smart drill-down (Joglekar et al.) models for rule
/// exploration. This module simulates such sessions with the same
/// deterministic-Rng discipline as the §8 subject simulator and distills
/// them into an empirical transition model over coverage levels, which
/// the service layer's prefetcher consumes: it does not need to know *why*
/// users move the way they do, only the ranked distribution of where they
/// go next.

/// The move kinds the serving layer distinguishes (they map 1:1 onto
/// QueryService operations; Retrieve is excluded — it requires a prior
/// Guidance, so the grid it reads is warm by construction).
enum class MoveKind {
  kQuery,      // session start: the aggregate query itself
  kSummarize,  // one-off summary at L (Summarize / the paper's Figure 1b)
  kExplore,    // summary plus expanded member lists (Figure 1c)
  kGuidance,   // (k, D) grid precompute at L (§6.2)
};

/// One step of a simulated session: what the user did and at which
/// coverage level. A kQuery move carries the L of the *first* summary the
/// user asked for right after the query ran.
struct Move {
  MoveKind kind = MoveKind::kSummarize;
  int top_l = 0;
};

struct TrajectoryOptions {
  int num_sessions = 512;
  int moves_per_session = 12;
  /// Coverage levels stay within [l_min, l_max] (the paper's interactive
  /// range: Params defaults to L = 8, and the §8 study conditions run
  /// nearby levels).
  int l_min = 2;
  int l_max = 32;
  uint64_t seed = 2018;
};

/// Simulates exploration sessions. Deterministic in the options (seed
/// included), like every randomized component in the repo.
std::vector<std::vector<Move>> SimulateTrajectories(
    const TrajectoryOptions& options = TrajectoryOptions());

/// \brief Empirical next-move model: for each move kind, the ranked
/// distribution of the level change (delta-L) to the session's next move;
/// plus the ranked initial levels right after a query.
///
/// Immutable after construction and therefore safe to share across
/// threads; Default() is built once from SimulateTrajectories() defaults.
class NextMoveModel {
 public:
  /// Tallies (kind at L) -> (next move at L') transitions over the
  /// trajectories.
  static NextMoveModel FromTrajectories(
      const std::vector<std::vector<Move>>& trajectories);

  /// The process-wide model distilled from the default simulation.
  static const NextMoveModel& Default();

  /// The most likely nonzero level changes following a move of `kind`,
  /// most probable first, at most `max_predictions` entries. Delta 0 is
  /// excluded by construction: a repeat at the same level is already
  /// served by the caches a prefetcher would warm. Deterministic order:
  /// frequency desc, then |delta| asc, then delta desc (deeper first).
  std::vector<int> PredictDeltaL(MoveKind kind, int max_predictions) const;

  /// The most likely first summarization levels right after a query,
  /// most probable first, at most `max_predictions` entries.
  std::vector<int> PredictInitialL(int max_predictions) const;

 private:
  struct Ranked {
    int value = 0;
    int64_t count = 0;
  };
  static std::vector<int> Top(const std::vector<Ranked>& ranked, int n);

  // Indexed by static_cast<int>(MoveKind); each sorted by the order
  // PredictDeltaL documents.
  std::vector<Ranked> deltas_[4];
  std::vector<Ranked> initial_;
};

}  // namespace qagview::study

#endif  // QAGVIEW_STUDY_TRAJECTORY_H_
