#include "study/study.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace qagview::study {

namespace {

Stat MakeStat(const std::vector<double>& samples) {
  Stat stat;
  if (samples.empty()) return stat;
  double sum = 0.0;
  for (double v : samples) sum += v;
  stat.mean = sum / static_cast<double>(samples.size());
  double sq = 0.0;
  for (double v : samples) sq += (v - stat.mean) * (v - stat.mean);
  stat.stddev = std::sqrt(sq / static_cast<double>(samples.size()));
  return stat;
}

bool IsPositiveT(Category c) { return c == Category::kTop; }
bool IsPositiveTH(Category c) {
  return c == Category::kTop || c == Category::kHigh;
}

std::string FormatStat(const Stat& stat, int precision) {
  return StrCat(FormatDouble(stat.mean, precision), "±",
                FormatDouble(stat.stddev, precision));
}

}  // namespace

UserStudySimulator::UserStudySimulator(const core::AnswerSet* s,
                                       const StudyConfig& config)
    : s_(s), config_(config) {
  QAG_CHECK(s != nullptr);
}

std::vector<int> UserStudySimulator::SampleQuestions(
    Rng* rng, int top_l, int per_category,
    const std::vector<int>& exclude) const {
  std::vector<int> tops;
  std::vector<int> highs;
  std::vector<int> lows;
  for (int e = 0; e < s_->size(); ++e) {
    if (std::find(exclude.begin(), exclude.end(), e) != exclude.end()) {
      continue;
    }
    switch (GroundTruth(*s_, e, top_l)) {
      case Category::kTop: tops.push_back(e); break;
      case Category::kHigh: highs.push_back(e); break;
      case Category::kLow: lows.push_back(e); break;
    }
  }
  QAG_CHECK(!tops.empty() && !highs.empty() && !lows.empty())
      << "answer set too small for a balanced question set";
  std::vector<int> out;
  for (std::vector<int>* bucket : {&tops, &highs, &lows}) {
    rng->Shuffle(bucket);
    for (int q = 0; q < per_category; ++q) {
      out.push_back((*bucket)[static_cast<size_t>(q) % bucket->size()]);
    }
  }
  rng->Shuffle(&out);
  return out;
}

ConditionResult UserStudySimulator::RunCondition(const PatternSet& patterns,
                                                 int top_l,
                                                 const std::string& label) {
  ConditionResult result;
  result.label = label;

  struct Collector {
    std::vector<double> times, t_acc, th_acc;
  };
  Collector collectors[3];

  for (int subject_id = 0; subject_id < config_.num_subjects; ++subject_id) {
    uint64_t seed = config_.seed * 1000003ULL +
                    static_cast<uint64_t>(subject_id) * 7919ULL;
    SimulatedSubject subject(seed, config_.subject_params);
    Rng rng(seed ^ 0x5151);

    // Question tuples per §8.1: patterns-only and memory-only use disjoint
    // balanced sets; patterns+members remixes their union.
    std::vector<int> q1 =
        SampleQuestions(&rng, top_l, config_.questions_per_category, {});
    std::vector<int> q2 =
        SampleQuestions(&rng, top_l, config_.questions_per_category, q1);
    std::vector<int> q3 = q1;
    q3.insert(q3.end(), q2.begin(), q2.end());
    rng.Shuffle(&q3);
    q3.resize(std::min<size_t>(q3.size(),
                               static_cast<size_t>(
                                   4 * config_.questions_per_category)));

    const Section kSections[3] = {Section::kPatternsOnly,
                                  Section::kMemoryOnly,
                                  Section::kPatternsMembers};
    const std::vector<int>* question_sets[3] = {&q1, &q2, &q3};
    for (int sec = 0; sec < 3; ++sec) {
      double time_sum = 0.0;
      int t_correct = 0;
      int th_correct = 0;
      int count = 0;
      for (int e : *question_sets[sec]) {
        SimulatedSubject::Answer answer =
            subject.Classify(*s_, e, top_l, patterns, kSections[sec]);
        Category truth = GroundTruth(*s_, e, top_l);
        time_sum += answer.seconds;
        t_correct += IsPositiveT(answer.category) == IsPositiveT(truth);
        th_correct += IsPositiveTH(answer.category) == IsPositiveTH(truth);
        ++count;
      }
      collectors[sec].times.push_back(time_sum / count);
      collectors[sec].t_acc.push_back(static_cast<double>(t_correct) / count);
      collectors[sec].th_acc.push_back(static_cast<double>(th_correct) /
                                       count);
    }
  }

  SectionMetrics* sections[3] = {&result.patterns_only, &result.memory_only,
                                 &result.patterns_members};
  for (int sec = 0; sec < 3; ++sec) {
    sections[sec]->time_per_question = MakeStat(collectors[sec].times);
    sections[sec]->t_accuracy = MakeStat(collectors[sec].t_acc);
    sections[sec]->th_accuracy = MakeStat(collectors[sec].th_acc);
  }
  return result;
}

std::string UserStudySimulator::RenderTable(
    const std::vector<ConditionResult>& results) {
  std::ostringstream out;
  out << "Section / metric";
  for (const ConditionResult& r : results) out << "\t" << r.label;
  out << "\n";
  struct Row {
    const char* name;
    const SectionMetrics ConditionResult::* section;
    const Stat SectionMetrics::* stat;
    int precision;
  };
  const Row rows[] = {
      {"Patterns-only  time/question", &ConditionResult::patterns_only,
       &SectionMetrics::time_per_question, 1},
      {"Patterns-only  T-accuracy", &ConditionResult::patterns_only,
       &SectionMetrics::t_accuracy, 3},
      {"Patterns-only  TH-accuracy", &ConditionResult::patterns_only,
       &SectionMetrics::th_accuracy, 3},
      {"Memory-only    time/question", &ConditionResult::memory_only,
       &SectionMetrics::time_per_question, 1},
      {"Memory-only    T-accuracy", &ConditionResult::memory_only,
       &SectionMetrics::t_accuracy, 3},
      {"Memory-only    TH-accuracy", &ConditionResult::memory_only,
       &SectionMetrics::th_accuracy, 3},
      {"Patterns+membr time/question", &ConditionResult::patterns_members,
       &SectionMetrics::time_per_question, 1},
      {"Patterns+membr T-accuracy", &ConditionResult::patterns_members,
       &SectionMetrics::t_accuracy, 3},
      {"Patterns+membr TH-accuracy", &ConditionResult::patterns_members,
       &SectionMetrics::th_accuracy, 3},
  };
  for (const Row& row : rows) {
    out << row.name;
    for (const ConditionResult& r : results) {
      out << "\t" << FormatStat(r.*(row.section).*(row.stat), row.precision);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace qagview::study
