#ifndef QAGVIEW_STUDY_STUDY_H_
#define QAGVIEW_STUDY_STUDY_H_

#include <string>
#include <vector>

#include "study/subject.h"

namespace qagview::study {

/// Mean ± standard deviation over subjects.
struct Stat {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Per-section outcomes: time per question and the two accuracy variants of
/// §8.1 (T: positive = top; TH: positive = top or high).
struct SectionMetrics {
  Stat time_per_question;
  Stat t_accuracy;
  Stat th_accuracy;
};

/// One Table-1 column: a summarization condition under the three sections.
struct ConditionResult {
  std::string label;
  SectionMetrics patterns_only;
  SectionMetrics memory_only;
  SectionMetrics patterns_members;
};

struct StudyConfig {
  int num_subjects = 16;
  int questions_per_category = 2;  // 2 top + 2 high + 2 low per section
  uint64_t seed = 2018;
  SubjectParams subject_params;
};

/// \brief The §8 user-study harness over simulated subjects.
///
/// For each condition, every subject answers the three sections' balanced
/// question sets (patterns-only and memory-only on disjoint tuples,
/// patterns+members on a mix, mirroring §8.1); metrics aggregate across
/// subjects as mean ± std, which is what Table 1 reports.
class UserStudySimulator {
 public:
  UserStudySimulator(const core::AnswerSet* s, const StudyConfig& config);

  /// Runs one condition (a pattern set at a given L).
  ConditionResult RunCondition(const PatternSet& patterns, int top_l,
                               const std::string& label);

  /// Renders conditions side by side in the layout of Table 1.
  static std::string RenderTable(const std::vector<ConditionResult>& results);

 private:
  /// Balanced question tuples: `per_category` each of top/high/low.
  std::vector<int> SampleQuestions(Rng* rng, int top_l, int per_category,
                                   const std::vector<int>& exclude) const;

  const core::AnswerSet* s_;
  StudyConfig config_;
};

}  // namespace qagview::study

#endif  // QAGVIEW_STUDY_STUDY_H_
