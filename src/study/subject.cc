#include "study/subject.h"

#include <algorithm>
#include <cmath>

#include "core/cluster.h"

namespace qagview::study {

int StudyPattern::Complexity() const {
  int c = 0;
  for (const baselines::Predicate& p : predicates) c += p.equals ? 1 : 2;
  return c;
}

int PatternSet::TotalComplexity() const {
  int c = 0;
  for (const StudyPattern& p : patterns) c += p.Complexity();
  return c;
}

PatternSet PatternsFromSolution(const core::ClusterUniverse& universe,
                                const core::Solution& solution) {
  PatternSet out;
  for (int id : solution.cluster_ids) {
    const core::Cluster& c = universe.cluster(id);
    StudyPattern p;
    for (int a = 0; a < c.num_attrs(); ++a) {
      if (!c.IsWildcard(a)) {
        p.predicates.push_back({a, c[a], /*equals=*/true});
      }
    }
    p.avg_value = universe.Average(id);
    p.count = universe.covered_count(id);
    p.top_count = universe.top_covered_count(id);
    for (int32_t e : universe.covered(id)) {
      p.member_ids.push_back(static_cast<int>(e));
    }
    out.patterns.push_back(std::move(p));
  }
  return out;
}

PatternSet PatternsFromDecisionTree(const core::AnswerSet& s,
                                    const baselines::DecisionTree& tree) {
  PatternSet out;
  for (const baselines::DecisionRule& rule : tree.PositiveRules()) {
    StudyPattern p;
    p.predicates = rule.predicates;
    p.avg_value = rule.avg_value;
    p.count = rule.total_count;
    for (int e = 0; e < s.size(); ++e) {
      if (rule.Matches(s.element(e).attrs)) p.member_ids.push_back(e);
    }
    p.top_count = rule.positive_count;
    out.patterns.push_back(std::move(p));
  }
  return out;
}

Category GroundTruth(const core::AnswerSet& s, int element, int top_l) {
  if (element < top_l) return Category::kTop;
  if (s.value(element) >= s.TrivialAverage()) return Category::kHigh;
  return Category::kLow;
}

SimulatedSubject::Answer SimulatedSubject::Classify(
    const core::AnswerSet& s, int element, int top_l,
    const PatternSet& patterns, Section section) {
  const std::vector<int32_t>& attrs = s.element(element).attrs;
  Answer answer;

  auto random_category = [this]() {
    switch (rng_.Index(3)) {
      case 0: return Category::kTop;
      case 1: return Category::kHigh;
      default: return Category::kLow;
    }
  };
  auto with_slip = [&](Category intended) {
    return rng_.Bernoulli(params_.slip_prob) ? random_category() : intended;
  };
  auto noisy_time = [&](double seconds) {
    return std::max(1.0, seconds * (1.0 + rng_.Gaussian(0.0, params_.time_noise)));
  };

  // --- Patterns+members: look the exact tuple up in the member lists. ---
  if (section == Section::kPatternsMembers) {
    double scanned = 0.0;
    bool found = false;
    bool found_top_slot = false;
    for (const StudyPattern& p : patterns.patterns) {
      for (size_t idx = 0; idx < p.member_ids.size(); ++idx) {
        scanned += 1.0;
        if (p.member_ids[idx] == element) {
          found = true;
          // Members are listed in rank order; the subject sees whether the
          // tuple sits among the top-L entries of the cluster.
          found_top_slot = element < top_l;
          break;
        }
      }
      if (found) break;
    }
    Category intended;
    if (found) {
      intended = found_top_slot ? Category::kTop : Category::kHigh;
    } else {
      // Not in any cluster: judge from how close it is to shown patterns.
      intended = GroundTruth(s, element, top_l) == Category::kHigh &&
                         rng_.Bernoulli(0.3)
                     ? Category::kHigh
                     : Category::kLow;
    }
    answer.category = with_slip(intended);
    answer.seconds = noisy_time(params_.base_read_seconds +
                                params_.member_scan_seconds * scanned);
    return answer;
  }

  // --- Patterns-only / memory-only: evaluate the predicates. ---
  bool memory = section == Section::kMemoryOnly;
  double total_complexity = patterns.TotalComplexity();
  double recall_scale =
      memory ? std::exp(-total_complexity / params_.memory_capacity) : 1.0;

  // Evaluate patterns; in memory mode each predicate may be forgotten
  // (dropped -> pattern over-generalizes) or misremembered (flipped).
  const StudyPattern* best_match = nullptr;
  double best_proximity = 0.0;
  const StudyPattern* best_proximity_pattern = nullptr;
  double predicates_read = 0.0;
  for (const StudyPattern& p : patterns.patterns) {
    bool matches = true;
    int operational = 0;
    int agreeing = 0;
    for (const baselines::Predicate& pred : p.predicates) {
      predicates_read += memory ? 0.4 : 1.0;
      double recall_p = std::pow(recall_scale, pred.equals ? 1.0 : 2.0);
      if (memory && !rng_.Bernoulli(recall_p)) {
        // Forgotten predicate: half the time dropped, half misremembered.
        if (rng_.Bernoulli(0.5)) continue;  // dropped
        matches = matches && rng_.Bernoulli(0.5);
        ++operational;
        continue;
      }
      ++operational;
      bool ok = pred.Matches(attrs);
      agreeing += ok;
      matches = matches && ok;
    }
    if (matches && (best_match == nullptr ||
                    p.avg_value > best_match->avg_value)) {
      best_match = &p;
    }
    if (operational > 0) {
      double proximity = static_cast<double>(agreeing) / operational;
      if (proximity > best_proximity) {
        best_proximity = proximity;
        best_proximity_pattern = &p;
      }
    }
  }

  Category intended;
  if (best_match != nullptr) {
    // The subject saw the pattern's displayed average: high-average
    // patterns read as "top" summaries, others as merely good.
    double top_threshold = s.TopAverage(top_l);
    intended = best_match->avg_value >=
                       0.5 * (top_threshold + s.TrivialAverage())
                   ? Category::kTop
                   : Category::kHigh;
  } else if (best_proximity >= 0.6 && best_proximity_pattern != nullptr &&
             best_proximity_pattern->avg_value > s.TrivialAverage()) {
    // Near-miss of a high-valued pattern: probably good but not top.
    intended = Category::kHigh;
  } else {
    intended = Category::kLow;
  }

  answer.category = with_slip(intended);
  double seconds =
      memory ? params_.memory_base_seconds +
                   params_.memory_per_predicate_seconds * predicates_read
             : params_.base_read_seconds +
                   params_.per_predicate_seconds * predicates_read * 0.35;
  answer.seconds = noisy_time(seconds);
  return answer;
}

}  // namespace qagview::study
