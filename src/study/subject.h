#ifndef QAGVIEW_STUDY_SUBJECT_H_
#define QAGVIEW_STUDY_SUBJECT_H_

#include <cstdint>
#include <vector>

#include "baselines/decision_tree.h"
#include "common/random.h"
#include "core/explore.h"
#include "core/solution.h"

namespace qagview::study {

/// One summary rule as shown to a study subject: a predicate conjunction
/// (equality-only for QAGView cluster patterns; decision-tree rules also
/// carry negations) plus the displayed statistics.
struct StudyPattern {
  std::vector<baselines::Predicate> predicates;
  double avg_value = 0.0;
  int count = 0;
  int top_count = 0;
  std::vector<int> member_ids;  // shown in the patterns+members section

  int Complexity() const;  // equality = 1, negation = 2
};

/// The full summary handed to a subject for one task group.
struct PatternSet {
  std::vector<StudyPattern> patterns;

  int TotalComplexity() const;
};

/// Converts a QAGView solution into study patterns (equality predicates on
/// the non-wildcard positions; the Figure-1b display).
PatternSet PatternsFromSolution(const core::ClusterUniverse& universe,
                                const core::Solution& solution);

/// Converts a trained decision tree's positive rules into study patterns.
PatternSet PatternsFromDecisionTree(const core::AnswerSet& s,
                                    const baselines::DecisionTree& tree);

/// The three answer categories of the §8 classification questions.
enum class Category { kTop, kHigh, kLow };

/// Ground truth: top (rank <= L), high (value >= overall average, outside
/// top L), low (below average).
Category GroundTruth(const core::AnswerSet& s, int element, int top_l);

/// The three question sections of §8.1.
enum class Section { kPatternsOnly, kMemoryOnly, kPatternsMembers };

/// Behavioural parameters of the simulated subject (the §8 substitution:
/// response correctness and time driven by pattern complexity, with
/// memory decay in the memory-only section — the mechanism the paper
/// credits for its findings).
struct SubjectParams {
  double base_read_seconds = 7.0;
  double per_predicate_seconds = 1.5;
  double member_scan_seconds = 0.35;
  double memory_base_seconds = 4.0;
  double memory_per_predicate_seconds = 0.35;
  /// Predicate-recall scale: each predicate of complexity c is recalled
  /// with probability exp(-c * TotalComplexity / capacity).
  double memory_capacity = 90.0;
  /// Baseline slip probability on any answer.
  double slip_prob = 0.05;
  double time_noise = 0.15;  // lognormal-ish multiplicative noise
};

/// \brief One simulated participant: classifies hidden-value tuples into
/// top/high/low given a pattern set and a section's information access.
///
/// Strategy is method-agnostic — accuracy differences between QAGView
/// patterns and decision-tree rules emerge from the patterns themselves
/// (complexity, discriminativeness), not from method-specific code paths.
class SimulatedSubject {
 public:
  SimulatedSubject(uint64_t seed, const SubjectParams& params)
      : rng_(seed), params_(params) {}

  struct Answer {
    Category category = Category::kLow;
    double seconds = 0.0;
  };

  /// Answers one classification question.
  Answer Classify(const core::AnswerSet& s, int element, int top_l,
                  const PatternSet& patterns, Section section);

 private:
  Rng rng_;
  SubjectParams params_;
};

}  // namespace qagview::study

#endif  // QAGVIEW_STUDY_SUBJECT_H_
