#include "study/trajectory.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "common/random.h"

namespace qagview::study {

namespace {

int Clamp(int v, int lo, int hi) { return std::min(std::max(v, lo), hi); }

/// One session: query, then a drill-down walk over coverage levels. The
/// move mix mirrors how the paper's interface is driven: summaries
/// dominate, expansions (Explore) follow a summary the user wants to
/// inspect, and a user who settles into a level range switches to the
/// precomputed grid (Guidance) to scrub (k, D) interactively.
std::vector<Move> SimulateSession(Rng* rng, const TrajectoryOptions& options) {
  std::vector<Move> session;
  // Initial coverage: clustered around the interactive default (Params
  // L = 8), truncated to the configured range.
  int level = Clamp(static_cast<int>(rng->Gaussian(8.0, 2.0)),
                    options.l_min, options.l_max);
  session.push_back(Move{MoveKind::kQuery, level});
  // The query counts as the first move; the walk fills the rest.
  MoveKind kind = MoveKind::kSummarize;
  for (int step = 1; step < options.moves_per_session; ++step) {
    session.push_back(Move{kind, level});
    // Where next: mostly one answer deeper (the paper's "what does the
    // next answer add"), sometimes two; occasionally back out one, or
    // double the coverage to widen the picture.
    const double r = rng->Uniform01();
    int delta;
    if (r < 0.55) {
      delta = 1;
    } else if (r < 0.70) {
      delta = 2;
    } else if (r < 0.85) {
      delta = -1;
    } else {
      delta = level;  // L -> 2L
    }
    level = Clamp(level + delta, options.l_min, options.l_max);
    // What next: summaries dominate; an Explore expands the current
    // summary; a Guidance precompute marks the switch to grid scrubbing.
    const double k = rng->Uniform01();
    if (k < 0.55) {
      kind = MoveKind::kSummarize;
    } else if (k < 0.80) {
      kind = MoveKind::kExplore;
    } else {
      kind = MoveKind::kGuidance;
    }
  }
  return session;
}

}  // namespace

std::vector<std::vector<Move>> SimulateTrajectories(
    const TrajectoryOptions& options) {
  Rng rng(options.seed);
  std::vector<std::vector<Move>> out;
  out.reserve(static_cast<size_t>(options.num_sessions));
  for (int i = 0; i < options.num_sessions; ++i) {
    out.push_back(SimulateSession(&rng, options));
  }
  return out;
}

NextMoveModel NextMoveModel::FromTrajectories(
    const std::vector<std::vector<Move>>& trajectories) {
  std::map<int, int64_t> delta_counts[4];
  std::map<int, int64_t> initial_counts;
  for (const std::vector<Move>& session : trajectories) {
    for (size_t i = 0; i + 1 < session.size(); ++i) {
      const Move& cur = session[i];
      const Move& next = session[i + 1];
      if (cur.kind == MoveKind::kQuery) {
        // The query row carries the level of the first summary request.
        ++initial_counts[next.top_l];
        continue;
      }
      const int delta = next.top_l - cur.top_l;
      if (delta == 0) continue;  // same level: already cached, nothing to warm
      ++delta_counts[static_cast<int>(cur.kind)][delta];
    }
  }
  auto rank = [](const std::map<int, int64_t>& counts) {
    std::vector<Ranked> out;
    out.reserve(counts.size());
    for (const auto& [value, count] : counts) out.push_back({value, count});
    std::sort(out.begin(), out.end(), [](const Ranked& a, const Ranked& b) {
      if (a.count != b.count) return a.count > b.count;
      if (std::abs(a.value) != std::abs(b.value)) {
        return std::abs(a.value) < std::abs(b.value);
      }
      return a.value > b.value;  // deeper before shallower on exact ties
    });
    return out;
  };
  NextMoveModel model;
  for (int k = 0; k < 4; ++k) model.deltas_[k] = rank(delta_counts[k]);
  model.initial_ = rank(initial_counts);
  return model;
}

const NextMoveModel& NextMoveModel::Default() {
  static const NextMoveModel* model =
      new NextMoveModel(FromTrajectories(SimulateTrajectories()));
  return *model;
}

std::vector<int> NextMoveModel::Top(const std::vector<Ranked>& ranked, int n) {
  std::vector<int> out;
  for (const Ranked& r : ranked) {
    if (static_cast<int>(out.size()) >= n) break;
    out.push_back(r.value);
  }
  return out;
}

std::vector<int> NextMoveModel::PredictDeltaL(MoveKind kind,
                                              int max_predictions) const {
  return Top(deltas_[static_cast<int>(kind)], max_predictions);
}

std::vector<int> NextMoveModel::PredictInitialL(int max_predictions) const {
  return Top(initial_, max_predictions);
}

}  // namespace qagview::study
