#ifndef QAGVIEW_VIZ_PARAM_GRID_H_
#define QAGVIEW_VIZ_PARAM_GRID_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/solution_store.h"

namespace qagview::viz {

/// \brief The data behind the parameter-selection visualization (Figure 2):
/// for a fixed L, the objective value per k (x-axis) with one series per D.
///
/// The GUI the paper demos draws this as a line chart; here it is a matrix
/// plus CSV/ASCII renderings and knee-point detection to support "flat
/// region vs knee point" guidance (§6.1).
struct ParamGrid {
  int l = 0;
  int k_min = 0;
  int k_max = 0;
  std::vector<int> d_values;
  /// values[d_index][k - k_min]; NaN where no solution is stored
  /// (k below the trace's smallest size).
  std::vector<std::vector<double>> values;

  /// Value lookup; NaN if out of range.
  double Value(int d_index, int k) const;

  /// "k,D=1,D=2,..." CSV (the chart's underlying table).
  std::string ToCsv() const;

  /// ASCII line chart (one row per k, one column block per D).
  std::string ToTextChart() const;

  /// Knee points of one series: k values where the marginal gain drops
  /// sharply (large improvement arriving at k, little after) — the
  /// "possibly interesting" parameter choices of §6.1.
  std::vector<int> KneePoints(int d_index) const;

  /// D values whose series are (near-)identical to an earlier series —
  /// the "bundles of D values" the user can treat as one (§6.1).
  std::vector<int> RedundantDValues(double tolerance = 1e-9) const;
};

/// Builds the grid from a precomputed solution store.
Result<ParamGrid> BuildParamGrid(const core::SolutionStore& store, int k_min,
                                 int k_max);

}  // namespace qagview::viz

#endif  // QAGVIEW_VIZ_PARAM_GRID_H_
