#ifndef QAGVIEW_VIZ_ASSIGNMENT_H_
#define QAGVIEW_VIZ_ASSIGNMENT_H_

#include <vector>

#include "common/result.h"

namespace qagview::viz {

/// \brief Minimum-cost perfect matching on a square cost matrix (the
/// Hungarian algorithm [14], O(n^3)), used to place the new solution's
/// cluster boxes in the comparison visualization (Appendix A.7.2).
///
/// Returns `assignment` with assignment[row] = column.
Result<std::vector<int>> SolveAssignment(
    const std::vector<std::vector<double>>& cost);

/// Exhaustive O(n!) reference solver (tests and the A.7.3 timing
/// comparison). n must be small.
Result<std::vector<int>> SolveAssignmentBruteForce(
    const std::vector<std::vector<double>>& cost);

/// Total cost of an assignment.
double AssignmentCost(const std::vector<std::vector<double>>& cost,
                      const std::vector<int>& assignment);

}  // namespace qagview::viz

#endif  // QAGVIEW_VIZ_ASSIGNMENT_H_
