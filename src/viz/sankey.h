#ifndef QAGVIEW_VIZ_SANKEY_H_
#define QAGVIEW_VIZ_SANKEY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/solution.h"

namespace qagview::viz {

/// \brief The data behind the solution-comparison visualization (Appendix
/// A.7.1, Figures 14/15): old clusters on the left, new clusters on the
/// right, ribbons proportional to shared tuples.
struct SankeyDiagram {
  std::vector<std::string> left_labels;
  std::vector<std::string> right_labels;
  std::vector<int> left_sizes;        // tuples per old cluster
  std::vector<int> right_sizes;       // tuples per new cluster
  std::vector<int> left_top_counts;   // of which in top-L (darker box part)
  std::vector<int> right_top_counts;
  /// overlap[i][j] = tuples shared by old cluster i and new cluster j.
  std::vector<std::vector<int>> overlap;

  int num_left() const { return static_cast<int>(left_sizes.size()); }
  int num_right() const { return static_cast<int>(right_sizes.size()); }
};

/// Builds the diagram for two consecutive solutions over the same universe.
SankeyDiagram BuildSankey(const core::ClusterUniverse& universe,
                          const core::Solution& old_solution,
                          const core::Solution& new_solution);

/// The weighted earth-mover objective of Definition A.3:
/// D = Σ_ij overlap[i][j] · |pos_left[i] - pos_right[j]|.
/// `left_order` / `right_order` give each box's vertical position
/// (a permutation of 0..n-1, by side).
double PlacementDistance(const SankeyDiagram& diagram,
                         const std::vector<int>& left_positions,
                         const std::vector<int>& right_positions);

/// Number of crossing ribbon pairs under the given placement (the second
/// metric of Figure 16b).
int CountCrossings(const SankeyDiagram& diagram,
                   const std::vector<int>& left_positions,
                   const std::vector<int>& right_positions);

/// Identity placement 0..n-1 (the "default visualization": clusters listed
/// by solution order, i.e. by value).
std::vector<int> IdentityPositions(int n);

/// Optimal right-side placement for a fixed left placement, via
/// minimum-cost perfect matching (Appendix A.7.2). cost(cluster j at
/// position q) = Σ_i overlap[i][j] · |pos_left[i] - q|.
Result<std::vector<int>> OptimizeRightPositions(
    const SankeyDiagram& diagram, const std::vector<int>& left_positions);

/// Exhaustive reference optimizer (A.7.3's brute-force comparison).
Result<std::vector<int>> OptimizeRightPositionsBruteForce(
    const SankeyDiagram& diagram, const std::vector<int>& left_positions);

/// ASCII rendering of the diagram under a placement (for the CLI examples).
std::string RenderSankey(const SankeyDiagram& diagram,
                         const std::vector<int>& left_positions,
                         const std::vector<int>& right_positions);

}  // namespace qagview::viz

#endif  // QAGVIEW_VIZ_SANKEY_H_
