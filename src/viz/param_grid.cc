#include "viz/param_grid.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/string_util.h"

namespace qagview::viz {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}

double ParamGrid::Value(int d_index, int k) const {
  if (d_index < 0 || d_index >= static_cast<int>(d_values.size()) ||
      k < k_min || k > k_max) {
    return kNan;
  }
  return values[static_cast<size_t>(d_index)][static_cast<size_t>(k - k_min)];
}

std::string ParamGrid::ToCsv() const {
  std::ostringstream out;
  out << "k";
  for (int d : d_values) out << ",D=" << d;
  out << "\n";
  for (int k = k_min; k <= k_max; ++k) {
    out << k;
    for (size_t di = 0; di < d_values.size(); ++di) {
      double v = values[di][static_cast<size_t>(k - k_min)];
      out << ",";
      if (!std::isnan(v)) out << FormatDouble(v, 4);
    }
    out << "\n";
  }
  return out.str();
}

std::string ParamGrid::ToTextChart() const {
  // Normalize into a 40-column bar per (k, D).
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const auto& series : values) {
    for (double v : series) {
      if (std::isnan(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!(hi > lo)) hi = lo + 1.0;
  std::ostringstream out;
  out << "value vs k (L=" << l << "); one row per (D, k)\n";
  for (size_t di = 0; di < d_values.size(); ++di) {
    out << "D=" << d_values[di] << "\n";
    for (int k = k_min; k <= k_max; ++k) {
      double v = values[di][static_cast<size_t>(k - k_min)];
      out << "  k=" << k << "\t";
      if (std::isnan(v)) {
        out << "(none)\n";
        continue;
      }
      int bars = static_cast<int>(std::lround((v - lo) / (hi - lo) * 40));
      for (int b = 0; b < bars; ++b) out << '#';
      out << " " << FormatDouble(v, 4) << "\n";
    }
  }
  return out.str();
}

std::vector<int> ParamGrid::KneePoints(int d_index) const {
  std::vector<int> knees;
  const auto& series = values[static_cast<size_t>(d_index)];
  // Scale from the series span.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (double v : series) {
    if (std::isnan(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double span = hi - lo;
  if (!(span > 0)) return knees;
  for (int k = k_min + 1; k < k_max; ++k) {
    double prev = Value(d_index, k - 1);
    double cur = Value(d_index, k);
    double next = Value(d_index, k + 1);
    if (std::isnan(prev) || std::isnan(cur) || std::isnan(next)) continue;
    double gain_in = cur - prev;
    double gain_out = next - cur;
    // Knee: a substantial arrival gain followed by a much smaller one.
    if (gain_in > 0.1 * span && gain_out < 0.5 * gain_in) {
      knees.push_back(k);
    }
  }
  return knees;
}

std::vector<int> ParamGrid::RedundantDValues(double tolerance) const {
  std::vector<int> redundant;
  for (size_t di = 1; di < d_values.size(); ++di) {
    bool same = true;
    for (size_t ki = 0; ki < values[di].size() && same; ++ki) {
      double a = values[di][ki];
      double b = values[di - 1][ki];
      if (std::isnan(a) != std::isnan(b)) same = false;
      else if (!std::isnan(a) && std::abs(a - b) > tolerance) same = false;
    }
    if (same) redundant.push_back(d_values[di]);
  }
  return redundant;
}

Result<ParamGrid> BuildParamGrid(const core::SolutionStore& store, int k_min,
                                 int k_max) {
  if (k_min < 1 || k_max < k_min) {
    return Status::InvalidArgument("bad k range");
  }
  ParamGrid grid;
  grid.l = store.l();
  grid.k_min = k_min;
  grid.k_max = k_max;
  grid.d_values = store.d_values();
  for (int d : grid.d_values) {
    std::vector<double> series;
    series.reserve(static_cast<size_t>(k_max - k_min) + 1);
    for (int k = k_min; k <= k_max; ++k) {
      auto v = store.Value(d, k);
      series.push_back(v.ok() ? *v : kNan);
    }
    grid.values.push_back(std::move(series));
  }
  return grid;
}

}  // namespace qagview::viz
