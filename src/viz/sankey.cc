#include "viz/sankey.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_util.h"
#include "viz/assignment.h"

namespace qagview::viz {

SankeyDiagram BuildSankey(const core::ClusterUniverse& universe,
                          const core::Solution& old_solution,
                          const core::Solution& new_solution) {
  SankeyDiagram d;
  const core::AnswerSet& s = universe.answer_set();
  auto fill_side = [&](const core::Solution& solution,
                       std::vector<std::string>* labels,
                       std::vector<int>* sizes, std::vector<int>* tops) {
    for (int id : solution.cluster_ids) {
      labels->push_back(universe.cluster(id).ToString(s));
      sizes->push_back(universe.covered_count(id));
      tops->push_back(universe.top_covered_count(id));
    }
  };
  fill_side(old_solution, &d.left_labels, &d.left_sizes, &d.left_top_counts);
  fill_side(new_solution, &d.right_labels, &d.right_sizes,
            &d.right_top_counts);

  d.overlap.assign(static_cast<size_t>(d.num_left()),
                   std::vector<int>(static_cast<size_t>(d.num_right()), 0));
  for (int i = 0; i < d.num_left(); ++i) {
    const std::vector<int32_t>& a =
        universe.covered(old_solution.cluster_ids[static_cast<size_t>(i)]);
    for (int j = 0; j < d.num_right(); ++j) {
      const std::vector<int32_t>& b =
          universe.covered(new_solution.cluster_ids[static_cast<size_t>(j)]);
      // Sorted-list intersection count.
      size_t x = 0;
      size_t y = 0;
      int shared = 0;
      while (x < a.size() && y < b.size()) {
        if (a[x] < b[y]) {
          ++x;
        } else if (a[x] > b[y]) {
          ++y;
        } else {
          ++shared;
          ++x;
          ++y;
        }
      }
      d.overlap[static_cast<size_t>(i)][static_cast<size_t>(j)] = shared;
    }
  }
  return d;
}

double PlacementDistance(const SankeyDiagram& diagram,
                         const std::vector<int>& left_positions,
                         const std::vector<int>& right_positions) {
  double total = 0.0;
  for (int i = 0; i < diagram.num_left(); ++i) {
    for (int j = 0; j < diagram.num_right(); ++j) {
      int m = diagram.overlap[static_cast<size_t>(i)][static_cast<size_t>(j)];
      if (m == 0) continue;
      total += m * std::abs(left_positions[static_cast<size_t>(i)] -
                            right_positions[static_cast<size_t>(j)]);
    }
  }
  return total;
}

int CountCrossings(const SankeyDiagram& diagram,
                   const std::vector<int>& left_positions,
                   const std::vector<int>& right_positions) {
  // Bands as (left position, right position) pairs; two bands cross iff
  // their left and right orders disagree strictly.
  std::vector<std::pair<int, int>> bands;
  for (int i = 0; i < diagram.num_left(); ++i) {
    for (int j = 0; j < diagram.num_right(); ++j) {
      if (diagram.overlap[static_cast<size_t>(i)][static_cast<size_t>(j)] >
          0) {
        bands.emplace_back(left_positions[static_cast<size_t>(i)],
                           right_positions[static_cast<size_t>(j)]);
      }
    }
  }
  int crossings = 0;
  for (size_t a = 0; a < bands.size(); ++a) {
    for (size_t b = a + 1; b < bands.size(); ++b) {
      int dl = bands[a].first - bands[b].first;
      int dr = bands[a].second - bands[b].second;
      crossings += (dl > 0 && dr < 0) || (dl < 0 && dr > 0);
    }
  }
  return crossings;
}

std::vector<int> IdentityPositions(int n) {
  std::vector<int> out(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out[static_cast<size_t>(i)] = i;
  return out;
}

Result<std::vector<int>> OptimizeRightPositions(
    const SankeyDiagram& diagram, const std::vector<int>& left_positions) {
  int n = diagram.num_right();
  if (n == 0) return Status::InvalidArgument("no right-side clusters");
  // cost[j][q] = Σ_i overlap[i][j] * |pos_left[i] - q|.
  std::vector<std::vector<double>> cost(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
  for (int j = 0; j < n; ++j) {
    for (int q = 0; q < n; ++q) {
      double c = 0.0;
      for (int i = 0; i < diagram.num_left(); ++i) {
        c += diagram.overlap[static_cast<size_t>(i)][static_cast<size_t>(j)] *
             std::abs(left_positions[static_cast<size_t>(i)] - q);
      }
      cost[static_cast<size_t>(j)][static_cast<size_t>(q)] = c;
    }
  }
  return SolveAssignment(cost);
}

Result<std::vector<int>> OptimizeRightPositionsBruteForce(
    const SankeyDiagram& diagram, const std::vector<int>& left_positions) {
  int n = diagram.num_right();
  if (n == 0) return Status::InvalidArgument("no right-side clusters");
  std::vector<std::vector<double>> cost(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
  for (int j = 0; j < n; ++j) {
    for (int q = 0; q < n; ++q) {
      double c = 0.0;
      for (int i = 0; i < diagram.num_left(); ++i) {
        c += diagram.overlap[static_cast<size_t>(i)][static_cast<size_t>(j)] *
             std::abs(left_positions[static_cast<size_t>(i)] - q);
      }
      cost[static_cast<size_t>(j)][static_cast<size_t>(q)] = c;
    }
  }
  return SolveAssignmentBruteForce(cost);
}

std::string RenderSankey(const SankeyDiagram& diagram,
                         const std::vector<int>& left_positions,
                         const std::vector<int>& right_positions) {
  // Invert positions to display order.
  std::vector<int> left_at(static_cast<size_t>(diagram.num_left()));
  std::vector<int> right_at(static_cast<size_t>(diagram.num_right()));
  for (int i = 0; i < diagram.num_left(); ++i) {
    left_at[static_cast<size_t>(left_positions[static_cast<size_t>(i)])] = i;
  }
  for (int j = 0; j < diagram.num_right(); ++j) {
    right_at[static_cast<size_t>(right_positions[static_cast<size_t>(j)])] =
        j;
  }
  std::ostringstream out;
  int rows = std::max(diagram.num_left(), diagram.num_right());
  for (int r = 0; r < rows; ++r) {
    std::string left = "";
    std::string right = "";
    if (r < diagram.num_left()) {
      int i = left_at[static_cast<size_t>(r)];
      left = StrCat(diagram.left_labels[static_cast<size_t>(i)], " [",
                    diagram.left_top_counts[static_cast<size_t>(i)], "/",
                    diagram.left_sizes[static_cast<size_t>(i)], "]");
    }
    if (r < diagram.num_right()) {
      int j = right_at[static_cast<size_t>(r)];
      right = StrCat(diagram.right_labels[static_cast<size_t>(j)], " [",
                     diagram.right_top_counts[static_cast<size_t>(j)], "/",
                     diagram.right_sizes[static_cast<size_t>(j)], "]");
    }
    left.resize(std::max<size_t>(left.size(), 42), ' ');
    out << left << " | " << right << "\n";
    // Ribbons leaving this left row.
    if (r < diagram.num_left()) {
      int i = left_at[static_cast<size_t>(r)];
      for (int j = 0; j < diagram.num_right(); ++j) {
        int m =
            diagram.overlap[static_cast<size_t>(i)][static_cast<size_t>(j)];
        if (m > 0) {
          out << "    ~~ " << m << " tuples ~> right row "
              << right_positions[static_cast<size_t>(j)] << "\n";
        }
      }
    }
  }
  return out.str();
}

}  // namespace qagview::viz
