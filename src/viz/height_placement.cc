#include "viz/height_placement.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/string_util.h"

namespace qagview::viz {

namespace {

Status ValidateProblem(const HeightPlacementProblem& problem) {
  for (double h : problem.left_heights) {
    if (!(h > 0.0)) {
      return Status::InvalidArgument("left box heights must be positive");
    }
  }
  for (double h : problem.right_heights) {
    if (!(h > 0.0)) {
      return Status::InvalidArgument("right box heights must be positive");
    }
  }
  if (static_cast<int>(problem.overlap.size()) != problem.num_left()) {
    return Status::InvalidArgument(
        StrCat("overlap has ", problem.overlap.size(), " rows, expected ",
               problem.num_left()));
  }
  for (const std::vector<double>& row : problem.overlap) {
    if (static_cast<int>(row.size()) != problem.num_right()) {
      return Status::InvalidArgument(
          StrCat("overlap row has ", row.size(), " columns, expected ",
                 problem.num_right()));
    }
    for (double v : row) {
      if (v < 0.0) {
        return Status::InvalidArgument("overlap mass must be >= 0");
      }
    }
  }
  return Status::OK();
}

Status ValidatePermutation(const std::vector<int>& order, int n,
                           const char* side) {
  if (static_cast<int>(order.size()) != n) {
    return Status::InvalidArgument(
        StrCat(side, " order has ", order.size(), " entries, expected ", n));
  }
  std::vector<char> seen(static_cast<size_t>(n), 0);
  for (int box : order) {
    if (box < 0 || box >= n || seen[static_cast<size_t>(box)]) {
      return Status::InvalidArgument(
          StrCat(side, " order is not a permutation of 0..", n - 1));
    }
    seen[static_cast<size_t>(box)] = 1;
  }
  return Status::OK();
}

double CostFromCenters(const HeightPlacementProblem& problem,
                       const std::vector<double>& left_centers,
                       const std::vector<double>& right_centers) {
  double cost = 0.0;
  for (int i = 0; i < problem.num_left(); ++i) {
    for (int j = 0; j < problem.num_right(); ++j) {
      double mass = problem.overlap[static_cast<size_t>(i)]
                                   [static_cast<size_t>(j)];
      if (mass > 0.0) {
        cost += mass * std::abs(left_centers[static_cast<size_t>(i)] -
                                right_centers[static_cast<size_t>(j)]);
      }
    }
  }
  return cost;
}

}  // namespace

HeightPlacementProblem FromSankey(const SankeyDiagram& diagram) {
  HeightPlacementProblem problem;
  problem.left_heights.reserve(static_cast<size_t>(diagram.num_left()));
  for (int size : diagram.left_sizes) {
    problem.left_heights.push_back(static_cast<double>(size));
  }
  problem.right_heights.reserve(static_cast<size_t>(diagram.num_right()));
  for (int size : diagram.right_sizes) {
    problem.right_heights.push_back(static_cast<double>(size));
  }
  problem.overlap.resize(static_cast<size_t>(diagram.num_left()));
  for (int i = 0; i < diagram.num_left(); ++i) {
    problem.overlap[static_cast<size_t>(i)].assign(
        static_cast<size_t>(diagram.num_right()), 0.0);
    for (int j = 0; j < diagram.num_right(); ++j) {
      problem.overlap[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          static_cast<double>(
              diagram.overlap[static_cast<size_t>(i)][static_cast<size_t>(j)]);
    }
  }
  return problem;
}

std::vector<double> StackedCenters(const std::vector<double>& heights,
                                   const std::vector<int>& order) {
  std::vector<double> centers(heights.size(), 0.0);
  double offset = 0.0;
  for (int box : order) {
    double h = heights[static_cast<size_t>(box)];
    centers[static_cast<size_t>(box)] = offset + h / 2.0;
    offset += h;
  }
  return centers;
}

Result<double> HeightPlacementCost(const HeightPlacementProblem& problem,
                                   const std::vector<int>& left_order,
                                   const std::vector<int>& right_order) {
  QAG_RETURN_IF_ERROR(ValidateProblem(problem));
  QAG_RETURN_IF_ERROR(
      ValidatePermutation(left_order, problem.num_left(), "left"));
  QAG_RETURN_IF_ERROR(
      ValidatePermutation(right_order, problem.num_right(), "right"));
  return CostFromCenters(problem,
                         StackedCenters(problem.left_heights, left_order),
                         StackedCenters(problem.right_heights, right_order));
}

Result<std::vector<int>> OptimizeHeightPlacement(
    const HeightPlacementProblem& problem,
    const std::vector<int>& left_order) {
  QAG_RETURN_IF_ERROR(ValidateProblem(problem));
  QAG_RETURN_IF_ERROR(
      ValidatePermutation(left_order, problem.num_left(), "left"));
  const int n = problem.num_right();
  if (n == 0) return std::vector<int>{};

  std::vector<double> left_centers =
      StackedCenters(problem.left_heights, left_order);

  // Barycenter seed: sort right boxes by the overlap-weighted mean of their
  // left partners' centers. Boxes with no overlap keep a neutral key (the
  // middle of the left stack) so they end up between the anchored boxes.
  double left_total =
      std::accumulate(problem.left_heights.begin(),
                      problem.left_heights.end(), 0.0);
  std::vector<double> keys(static_cast<size_t>(n), left_total / 2.0);
  for (int j = 0; j < n; ++j) {
    double mass = 0.0;
    double weighted = 0.0;
    for (int i = 0; i < problem.num_left(); ++i) {
      double w =
          problem.overlap[static_cast<size_t>(i)][static_cast<size_t>(j)];
      mass += w;
      weighted += w * left_centers[static_cast<size_t>(i)];
    }
    if (mass > 0.0) keys[static_cast<size_t>(j)] = weighted / mass;
  }
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return keys[static_cast<size_t>(a)] < keys[static_cast<size_t>(b)];
  });

  // Pairwise-swap local search. Each pass tries all O(n^2) swaps; a pass
  // with no improvement terminates. Cost is re-evaluated from scratch per
  // candidate (O(nm)); fine at visualization scale (n = k <= dozens).
  auto cost_of = [&](const std::vector<int>& candidate) {
    return CostFromCenters(
        problem, left_centers,
        StackedCenters(problem.right_heights, candidate));
  };
  double best = cost_of(order);
  bool improved = true;
  while (improved) {
    improved = false;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        std::swap(order[static_cast<size_t>(p)], order[static_cast<size_t>(q)]);
        double cost = cost_of(order);
        if (cost + 1e-12 < best) {
          best = cost;
          improved = true;
        } else {
          std::swap(order[static_cast<size_t>(p)],
                    order[static_cast<size_t>(q)]);
        }
      }
    }
  }
  return order;
}

Result<std::vector<int>> OptimizeHeightPlacementBruteForce(
    const HeightPlacementProblem& problem,
    const std::vector<int>& left_order) {
  QAG_RETURN_IF_ERROR(ValidateProblem(problem));
  QAG_RETURN_IF_ERROR(
      ValidatePermutation(left_order, problem.num_left(), "left"));
  const int n = problem.num_right();
  if (n > 10) {
    return Status::InvalidArgument(
        StrCat("brute force limited to 10 right boxes, got ", n));
  }
  if (n == 0) return std::vector<int>{};

  std::vector<double> left_centers =
      StackedCenters(problem.left_heights, left_order);
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<int> best_order = order;
  double best = std::numeric_limits<double>::infinity();
  do {
    double cost = CostFromCenters(
        problem, left_centers,
        StackedCenters(problem.right_heights, order));
    if (cost < best) {
      best = cost;
      best_order = order;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best_order;
}

}  // namespace qagview::viz
