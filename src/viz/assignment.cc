#include "viz/assignment.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace qagview::viz {

namespace {
Status ValidateSquare(const std::vector<std::vector<double>>& cost) {
  if (cost.empty()) return Status::InvalidArgument("empty cost matrix");
  for (const auto& row : cost) {
    if (row.size() != cost.size()) {
      return Status::InvalidArgument("cost matrix must be square");
    }
  }
  return Status::OK();
}
}  // namespace

Result<std::vector<int>> SolveAssignment(
    const std::vector<std::vector<double>>& cost) {
  QAG_RETURN_IF_ERROR(ValidateSquare(cost));
  int n = static_cast<int>(cost.size());
  const double kInf = std::numeric_limits<double>::infinity();

  // Potentials-based shortest-augmenting-path Hungarian algorithm
  // (1-indexed working arrays; p[j] = row matched to column j).
  std::vector<double> u(static_cast<size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(n) + 1, 0.0);
  std::vector<int> p(static_cast<size_t>(n) + 1, 0);
  std::vector<int> way(static_cast<size_t>(n) + 1, 0);

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<size_t>(n) + 1, kInf);
    std::vector<char> used(static_cast<size_t>(n) + 1, 0);
    do {
      used[static_cast<size_t>(j0)] = 1;
      int i0 = p[static_cast<size_t>(j0)];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= n; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        double cur = cost[static_cast<size_t>(i0) - 1][static_cast<size_t>(j) -
                                                       1] -
                     u[static_cast<size_t>(i0)] - v[static_cast<size_t>(j)];
        if (cur < minv[static_cast<size_t>(j)]) {
          minv[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (minv[static_cast<size_t>(j)] < delta) {
          delta = minv[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(p[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          minv[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<size_t>(j0)] != 0);
    do {
      int j1 = way[static_cast<size_t>(j0)];
      p[static_cast<size_t>(j0)] = p[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> assignment(static_cast<size_t>(n), -1);
  for (int j = 1; j <= n; ++j) {
    assignment[static_cast<size_t>(p[static_cast<size_t>(j)]) - 1] = j - 1;
  }
  return assignment;
}

Result<std::vector<int>> SolveAssignmentBruteForce(
    const std::vector<std::vector<double>>& cost) {
  QAG_RETURN_IF_ERROR(ValidateSquare(cost));
  int n = static_cast<int>(cost.size());
  if (n > 10) {
    return Status::InvalidArgument("brute-force assignment limited to n<=10");
  }
  std::vector<int> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<int> best = perm;
  double best_cost = AssignmentCost(cost, perm);
  while (std::next_permutation(perm.begin(), perm.end())) {
    double c = AssignmentCost(cost, perm);
    if (c < best_cost) {
      best_cost = c;
      best = perm;
    }
  }
  return best;
}

double AssignmentCost(const std::vector<std::vector<double>>& cost,
                      const std::vector<int>& assignment) {
  double total = 0.0;
  for (size_t i = 0; i < assignment.size(); ++i) {
    total += cost[i][static_cast<size_t>(assignment[i])];
  }
  return total;
}

}  // namespace qagview::viz
