#ifndef QAGVIEW_VIZ_HEIGHT_PLACEMENT_H_
#define QAGVIEW_VIZ_HEIGHT_PLACEMENT_H_

#include <vector>

#include "common/result.h"
#include "viz/sankey.h"

namespace qagview::viz {

/// \brief The Appendix A.7.2 "alternative formulation" of cluster placement:
/// box heights are proportional to cluster sizes, so a box's vertical
/// position depends on the heights stacked above it, not just its rank.
///
/// The paper shows the slot-based formulation (all boxes the same height)
/// reduces to bipartite matching and is solved exactly by the Hungarian
/// algorithm (viz::OptimizeRightPositions); the height-proportional variant
/// is NP-hard by a reduction from earliness-tardiness scheduling [13] and is
/// deferred to the extended version. This module provides that variant: the
/// exhaustive optimum for small n and a barycenter + pairwise-swap local
/// search for the general case. With uniform heights the variant coincides
/// with the slot formulation (a cross-check exploited in tests).
struct HeightPlacementProblem {
  std::vector<double> left_heights;
  std::vector<double> right_heights;
  /// overlap[i][j]: mass shared by left box i and right box j (band width).
  std::vector<std::vector<double>> overlap;

  int num_left() const { return static_cast<int>(left_heights.size()); }
  int num_right() const { return static_cast<int>(right_heights.size()); }
};

/// Heights = cluster tuple counts, overlaps = shared-tuple counts.
HeightPlacementProblem FromSankey(const SankeyDiagram& diagram);

/// Centers of boxes stacked top-to-bottom with no gaps: order[p] is the box
/// occupying slot p. Returns center[box] (indexed by box, not slot).
std::vector<double> StackedCenters(const std::vector<double>& heights,
                                   const std::vector<int>& order);

/// The weighted earth-mover objective of Definition A.3 on stacked centers:
/// D = Σ_ij overlap[i][j] · |center_left(i) − center_right(j)|.
Result<double> HeightPlacementCost(const HeightPlacementProblem& problem,
                                   const std::vector<int>& left_order,
                                   const std::vector<int>& right_order);

/// Heuristic right-side order for a fixed left order: barycenter seed (each
/// right box goes to the overlap-weighted mean of its left centers) refined
/// by pairwise-swap local search until no swap improves. The result is
/// locally optimal under single swaps (an invariant the tests verify).
Result<std::vector<int>> OptimizeHeightPlacement(
    const HeightPlacementProblem& problem,
    const std::vector<int>& left_order);

/// Exhaustive O(n!) reference optimum; requires num_right() <= 10.
Result<std::vector<int>> OptimizeHeightPlacementBruteForce(
    const HeightPlacementProblem& problem,
    const std::vector<int>& left_order);

}  // namespace qagview::viz

#endif  // QAGVIEW_VIZ_HEIGHT_PLACEMENT_H_
