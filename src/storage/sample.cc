#include "storage/sample.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace qagview::storage {

ReservoirSampler::ReservoirSampler(Schema schema, int capacity, uint64_t seed)
    : schema_(std::move(schema)), capacity_(capacity), rng_(seed) {
  QAG_CHECK(capacity_ > 0) << "reservoir capacity must be positive";
  reservoir_.reserve(static_cast<size_t>(capacity_));
}

double ReservoirSampler::UnitOpen() {
  double u = rng_.Uniform01();  // [0, 1)
  return u > 0.0 ? u : std::numeric_limits<double>::min();
}

void ReservoirSampler::ScheduleNextPick() {
  // Skip length: geometric with parameter 1 - w_. log1p keeps the
  // denominator accurate for w_ near 0; the clamp guards the int64 cast
  // when w_ is so small the skip exceeds any realistic stream (and w_ == 1
  // degenerates to admitting the very next row, which is harmless).
  double skip = std::floor(std::log(UnitOpen()) / std::log1p(-w_));
  if (!(skip < 9.0e18)) skip = 9.0e18;
  next_pick_ = seen_ + static_cast<int64_t>(skip) + 1;
}

void ReservoirSampler::Add(const std::vector<Value>& row) {
  ++seen_;
  if (static_cast<int>(reservoir_.size()) < capacity_) {
    reservoir_.push_back(row);
    if (static_cast<int>(reservoir_.size()) == capacity_) {
      w_ = std::exp(std::log(UnitOpen()) / capacity_);
      ScheduleNextPick();
    }
    return;
  }
  if (seen_ == next_pick_) {
    reservoir_[static_cast<size_t>(rng_.Index(capacity_))] = row;
    w_ *= std::exp(std::log(UnitOpen()) / capacity_);
    ScheduleNextPick();
  }
}

void ReservoirSampler::AddTable(const Table& table) {
  const int64_t n = table.num_rows();
  int64_t r = 0;
  // Fill phase: row-by-row until the reservoir reaches capacity.
  while (static_cast<int>(reservoir_.size()) < capacity_ && r < n) {
    Add(table.GetRow(r));
    ++r;
  }
  // Skip-ahead phase: jump straight to each admitted row.
  while (r < n) {
    if (next_pick_ - seen_ > n - r) {
      seen_ += n - r;
      return;
    }
    const int64_t jump = next_pick_ - seen_;
    r += jump;
    seen_ += jump;
    reservoir_[static_cast<size_t>(rng_.Index(capacity_))] =
        table.GetRow(r - 1);
    w_ *= std::exp(std::log(UnitOpen()) / capacity_);
    ScheduleNextPick();
  }
}

std::shared_ptr<const TableSample> ReservoirSampler::Snapshot() const {
  Table rows{schema_};
  for (const auto& row : reservoir_) {
    Status status = rows.AppendRow(row);
    QAG_CHECK(status.ok()) << "sampled row no longer fits its schema: "
                           << status.message();
  }
  return std::make_shared<const TableSample>(std::move(rows), seen_);
}

}  // namespace qagview::storage
