#ifndef QAGVIEW_STORAGE_SAMPLE_H_
#define QAGVIEW_STORAGE_SAMPLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "storage/table.h"

namespace qagview::storage {

/// \brief An immutable uniform-sample snapshot of one table version: the
/// sampled rows materialized as a Table, plus the population size they were
/// drawn from.
///
/// Published behind `shared_ptr<const TableSample>` with the same immutable
/// snapshot discipline as the tables themselves (service::DatasetCatalog):
/// every catalog mutation publishes a fresh snapshot; readers holding an
/// older one keep it alive for as long as they need it.
struct TableSample {
  TableSample(Table sample_rows, int64_t population)
      : rows(std::move(sample_rows)), population_rows(population) {}

  /// The sampled rows (a uniform subset of the population, in reservoir
  /// order — not the original row order).
  Table rows;

  /// Number of rows in the table version this sample was drawn from.
  int64_t population_rows = 0;

  /// n / N. 1.0 when the sample covers the whole (or an empty) table.
  double fraction() const {
    return population_rows <= 0
               ? 1.0
               : static_cast<double>(rows.num_rows()) /
                     static_cast<double>(population_rows);
  }
};

/// \brief Maintains a bounded uniform reservoir over a row stream and
/// materializes immutable TableSample snapshots of it.
///
/// Classic reservoir sampling with Vitter's Algorithm L skip-ahead: once
/// the reservoir is full, the sampler draws the gap to the next admitted
/// row from a geometric distribution instead of flipping a coin per row,
/// so feeding a stream of n rows costs O(capacity * (1 + log(n/capacity)))
/// admissions — per-row work for the common rejected row is one integer
/// compare. The sample is exactly uniform over every prefix of the stream,
/// which is what lets the dataset catalog maintain it incrementally across
/// append batches instead of rescanning the table.
///
/// Determinism: all randomness flows through the explicitly seeded Rng, so
/// the same (seed, row stream) always yields the same sample — the
/// differential tests rely on this. Not thread-safe; the catalog mutates a
/// sampler only under the owning dataset's writer mutex.
class ReservoirSampler {
 public:
  /// `capacity` > 0 is the reservoir size in rows; `schema` must match
  /// every row subsequently fed in (the catalog validates rows against the
  /// table before feeding them here).
  ReservoirSampler(Schema schema, int capacity, uint64_t seed);

  /// Feeds one row of the stream. Copies the row only if it is admitted.
  void Add(const std::vector<Value>& row);

  /// Feeds every row of `table`, using skip-ahead to materialize only the
  /// admitted rows (a bulk load touches O(capacity * log(n/capacity)) rows).
  void AddTable(const Table& table);

  /// Rows seen so far (N, the population of the current sample).
  int64_t population_rows() const { return seen_; }

  int capacity() const { return capacity_; }

  /// Materializes the current reservoir as an immutable snapshot.
  std::shared_ptr<const TableSample> Snapshot() const;

 private:
  /// Uniform in (0, 1): log() of the result stays finite.
  double UnitOpen();

  /// Draws the stream index of the next admitted row (Algorithm L: the
  /// skip length is geometric with parameter 1 - w_).
  void ScheduleNextPick();

  Schema schema_;
  const int capacity_;
  Rng rng_;
  std::vector<std::vector<Value>> reservoir_;
  int64_t seen_ = 0;       // rows consumed from the stream
  double w_ = 0.0;         // Algorithm L state, valid once the reservoir fills
  int64_t next_pick_ = 0;  // 1-based stream index of the next admitted row
};

}  // namespace qagview::storage

#endif  // QAGVIEW_STORAGE_SAMPLE_H_
