#ifndef QAGVIEW_STORAGE_DICTIONARY_H_
#define QAGVIEW_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace qagview::storage {

/// \brief Interns strings to dense int32 codes.
///
/// This implements the paper's "hash values for fields" optimization (§6.3):
/// all categorical attribute values are mapped to integer codes once at
/// ingest, so the summarization core compares/hashes int32 instead of text,
/// and codes are mapped back to strings only for display.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the existing code for `s`, or assigns the next code.
  int32_t Intern(std::string_view s);

  /// Returns the code for `s` if already interned.
  std::optional<int32_t> Find(std::string_view s) const;

  /// Maps a code back to its string. Requires a valid code.
  const std::string& GetString(int32_t code) const {
    QAG_DCHECK(code >= 0 && code < size());
    return strings_[static_cast<size_t>(code)];
  }

  int32_t size() const { return static_cast<int32_t>(strings_.size()); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int32_t> codes_;
};

}  // namespace qagview::storage

#endif  // QAGVIEW_STORAGE_DICTIONARY_H_
