#include "storage/value.h"

#include <cmath>

#include "common/string_util.h"

namespace qagview::storage {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

double Value::ToDouble() const {
  switch (type_) {
    case ValueType::kInt64:
      return static_cast<double>(int_);
    case ValueType::kDouble:
      return double_;
    default:
      QAG_LOG(Fatal) << "ToDouble on non-numeric value: " << ToString();
      return 0.0;
  }
}

bool Value::IsTruthy() const {
  switch (type_) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt64:
      return int_ != 0;
    case ValueType::kDouble:
      return double_ != 0.0;
    case ValueType::kString:
      return !string_.empty();
  }
  return false;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(int_);
    case ValueType::kDouble: {
      // Render integral doubles without a trailing ".000000".
      if (std::floor(double_) == double_ && std::abs(double_) < 1e15) {
        return StrCat(static_cast<int64_t>(double_));
      }
      return StrCat(double_);
    }
    case ValueType::kString:
      return string_;
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (type_ == ValueType::kString || other.type_ == ValueType::kString) {
    return type_ == other.type_ && string_ == other.string_;
  }
  return ToDouble() == other.ToDouble();
}

int Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  if (type_ == ValueType::kString && other.type_ == ValueType::kString) {
    int c = string_.compare(other.string_);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  QAG_CHECK(type_ != ValueType::kString && other.type_ != ValueType::kString)
      << "cannot compare " << ToString() << " with " << other.ToString();
  double a = ToDouble();
  double b = other.ToDouble();
  return a < b ? -1 : (a > b ? 1 : 0);
}

}  // namespace qagview::storage
