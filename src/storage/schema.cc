#include "storage/schema.h"

#include "common/string_util.h"

namespace qagview::storage {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (int i = 0; i < static_cast<int>(fields_.size()); ++i) {
    index_.emplace(ToLower(fields_[i].name), i);
  }
}

int Schema::FindField(const std::string& name) const {
  auto it = index_.find(ToLower(name));
  return it == index_.end() ? -1 : it->second;
}

Result<int> Schema::GetFieldIndex(const std::string& name) const {
  int i = FindField(name);
  if (i < 0) return Status::NotFound("no such column: " + name);
  return i;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) {
    parts.push_back(StrCat(f.name, ":", ValueTypeToString(f.type)));
  }
  return Join(parts, ", ");
}

}  // namespace qagview::storage
