#ifndef QAGVIEW_STORAGE_CSV_H_
#define QAGVIEW_STORAGE_CSV_H_

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace qagview::storage {

struct CsvOptions {
  char separator = ',';
  /// First row holds column names; when false, columns are named c0, c1, ...
  bool has_header = true;
};

/// \brief Parses CSV text into a Table, inferring column types.
///
/// Type inference scans all rows: a column is INT64 if every non-empty cell
/// parses as an integer, DOUBLE if every non-empty cell parses as a number,
/// STRING otherwise. Empty cells become NULL.
Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options = {});

/// Reads and parses a CSV file.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

/// Serializes a table as CSV (header + rows). NULLs are written as empty
/// cells; cells containing the separator, quotes, or newlines are quoted.
std::string WriteCsvString(const Table& table, const CsvOptions& options = {});

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace qagview::storage

#endif  // QAGVIEW_STORAGE_CSV_H_
