#ifndef QAGVIEW_STORAGE_COLUMN_H_
#define QAGVIEW_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/dictionary.h"
#include "storage/value.h"

namespace qagview::storage {

/// \brief One typed, in-memory column.
///
/// Int64 and double columns store flat vectors; string columns are
/// dictionary-encoded (int32 codes + a per-column Dictionary). NULLs are
/// tracked in a validity vector.
class Column {
 public:
  explicit Column(ValueType type);

  ValueType type() const { return type_; }
  int64_t size() const { return static_cast<int64_t>(valid_.size()); }

  /// Deep copy of the column (data plus dictionary). Explicit — Column is
  /// not copy-constructible, so sizable copies never happen by accident;
  /// the snapshot-producing catalog mutations are the intended caller.
  Column Clone() const;

  /// Appends a value; NULL is always accepted, otherwise the value type must
  /// match the column type (int64 is accepted into double columns).
  void Append(const Value& v);

  /// Typed appends (hot paths in the data generators).
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string_view v);
  void AppendNull();

  bool IsNull(int64_t row) const { return !valid_[static_cast<size_t>(row)]; }

  /// Boxed access (NULL-aware).
  Value Get(int64_t row) const;

  /// Unboxed access; requires a non-NULL row of the matching type.
  int64_t GetInt(int64_t row) const;
  double GetDouble(int64_t row) const;
  const std::string& GetString(int64_t row) const;

  /// Dictionary code of a string cell (string columns only).
  int32_t GetStringCode(int64_t row) const;

  /// The dictionary backing a string column.
  const Dictionary& dictionary() const;

 private:
  ValueType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<int32_t> codes_;
  std::unique_ptr<Dictionary> dict_;
  std::vector<uint8_t> valid_;  // 1 = present, 0 = NULL
};

}  // namespace qagview::storage

#endif  // QAGVIEW_STORAGE_COLUMN_H_
