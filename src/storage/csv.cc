#include "storage/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace qagview::storage {

namespace {

// Splits one CSV record, honoring double-quote quoting with "" escapes.
Result<std::vector<std::string>> SplitRecord(const std::string& line,
                                             char sep) {
  std::vector<std::string> cells;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == sep) {
      cells.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quote in: " + line);
  cells.push_back(std::move(cur));
  return cells;
}

bool NeedsQuoting(const std::string& s, char sep) {
  return s.find(sep) != std::string::npos ||
         s.find('"') != std::string::npos || s.find('\n') != std::string::npos;
}

std::string QuoteCell(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options) {
  std::vector<std::vector<std::string>> records;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    QAG_ASSIGN_OR_RETURN(auto cells, SplitRecord(line, options.separator));
    records.push_back(std::move(cells));
  }
  if (records.empty()) return Status::ParseError("empty CSV input");

  std::vector<std::string> names;
  size_t first_data = 0;
  if (options.has_header) {
    names = records[0];
    first_data = 1;
  } else {
    for (size_t i = 0; i < records[0].size(); ++i) {
      names.push_back(StrCat("c", i));
    }
  }
  size_t num_cols = names.size();
  for (size_t r = first_data; r < records.size(); ++r) {
    if (records[r].size() != num_cols) {
      return Status::ParseError(
          StrCat("row ", r, " has ", records[r].size(), " cells, expected ",
                 num_cols));
    }
  }

  // Infer per-column types.
  std::vector<ValueType> types(num_cols, ValueType::kInt64);
  for (size_t c = 0; c < num_cols; ++c) {
    bool all_int = true;
    bool all_num = true;
    bool any_value = false;
    for (size_t r = first_data; r < records.size(); ++r) {
      const std::string& cell = records[r][c];
      if (cell.empty()) continue;
      any_value = true;
      if (all_int && !ParseInt64(cell).ok()) all_int = false;
      if (all_num && !ParseDouble(cell).ok()) all_num = false;
      if (!all_num) break;
    }
    if (!any_value) {
      types[c] = ValueType::kString;
    } else if (all_int) {
      types[c] = ValueType::kInt64;
    } else if (all_num) {
      types[c] = ValueType::kDouble;
    } else {
      types[c] = ValueType::kString;
    }
  }

  std::vector<Field> fields;
  for (size_t c = 0; c < num_cols; ++c) fields.push_back({names[c], types[c]});
  Table table(Schema{std::move(fields)});

  std::vector<Value> row(num_cols);
  for (size_t r = first_data; r < records.size(); ++r) {
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& cell = records[r][c];
      if (cell.empty()) {
        row[c] = Value::Null();
      } else {
        switch (types[c]) {
          case ValueType::kInt64:
            row[c] = Value::Int(ParseInt64(cell).value());
            break;
          case ValueType::kDouble:
            row[c] = Value::Real(ParseDouble(cell).value());
            break;
          default:
            row[c] = Value::Str(cell);
        }
      }
    }
    QAG_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), options);
}

std::string WriteCsvString(const Table& table, const CsvOptions& options) {
  std::ostringstream out;
  const Schema& schema = table.schema();
  for (int c = 0; c < schema.num_fields(); ++c) {
    if (c) out << options.separator;
    out << schema.field(c).name;
  }
  out << "\n";
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c) out << options.separator;
      Value v = table.Get(r, c);
      if (v.is_null()) continue;
      std::string s = v.ToString();
      out << (NeedsQuoting(s, options.separator) ? QuoteCell(s) : s);
    }
    out << "\n";
  }
  return out.str();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open file for write: " + path);
  out << WriteCsvString(table, options);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace qagview::storage
