#include "storage/dictionary.h"

namespace qagview::storage {

int32_t Dictionary::Intern(std::string_view s) {
  auto it = codes_.find(std::string(s));
  if (it != codes_.end()) return it->second;
  int32_t code = size();
  strings_.emplace_back(s);
  codes_.emplace(strings_.back(), code);
  return code;
}

std::optional<int32_t> Dictionary::Find(std::string_view s) const {
  auto it = codes_.find(std::string(s));
  if (it == codes_.end()) return std::nullopt;
  return it->second;
}

}  // namespace qagview::storage
