#include "storage/table.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace qagview::storage {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_.num_fields()));
  for (const Field& f : schema_.fields()) {
    columns_.push_back(std::make_unique<Column>(f.type));
  }
}

Table Table::Clone() const {
  Table out(schema_);
  for (int i = 0; i < num_columns(); ++i) {
    *out.columns_[static_cast<size_t>(i)] =
        columns_[static_cast<size_t>(i)]->Clone();
  }
  out.num_rows_ = num_rows_;
  return out;
}

Status Table::ValidateRow(const std::vector<Value>& values) const {
  if (static_cast<int>(values.size()) != num_columns()) {
    return Status::InvalidArgument(
        StrCat("row has ", values.size(), " values, table has ",
               num_columns(), " columns"));
  }
  for (int i = 0; i < num_columns(); ++i) {
    const Value& v = values[static_cast<size_t>(i)];
    if (!v.is_null()) {
      ValueType ct = schema_.field(i).type;
      bool ok = v.type() == ct ||
                (ct == ValueType::kDouble && v.type() == ValueType::kInt64);
      if (!ok) {
        return Status::InvalidArgument(
            StrCat("column ", schema_.field(i).name, " expects ",
                   ValueTypeToString(ct), ", got ",
                   ValueTypeToString(v.type())));
      }
    }
  }
  return Status::OK();
}

Status Table::AppendRow(const std::vector<Value>& values) {
  QAG_RETURN_IF_ERROR(ValidateRow(values));
  for (int i = 0; i < num_columns(); ++i) {
    columns_[static_cast<size_t>(i)]->Append(values[static_cast<size_t>(i)]);
  }
  ++num_rows_;
  return Status::OK();
}

Status Table::AppendRows(const std::vector<std::vector<Value>>& rows) {
  for (size_t r = 0; r < rows.size(); ++r) {
    Status status = ValidateRow(rows[r]);
    if (!status.ok()) {
      return Status::InvalidArgument(
          StrCat("batch row ", r, ": ", status.message()));
    }
  }
  for (const std::vector<Value>& row : rows) {
    for (int i = 0; i < num_columns(); ++i) {
      columns_[static_cast<size_t>(i)]->Append(row[static_cast<size_t>(i)]);
    }
    ++num_rows_;
  }
  return Status::OK();
}

std::vector<Value> Table::GetRow(int64_t row) const {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(num_columns()));
  for (int i = 0; i < num_columns(); ++i) out.push_back(Get(row, i));
  return out;
}

std::string Table::ToString(int64_t max_rows) const {
  int64_t rows = std::min(max_rows, num_rows());
  // Compute column widths over the printed window.
  std::vector<size_t> width(static_cast<size_t>(num_columns()));
  std::vector<std::vector<std::string>> cells(static_cast<size_t>(rows));
  for (int c = 0; c < num_columns(); ++c) {
    width[static_cast<size_t>(c)] = schema_.field(c).name.size();
  }
  for (int64_t r = 0; r < rows; ++r) {
    cells[static_cast<size_t>(r)].resize(static_cast<size_t>(num_columns()));
    for (int c = 0; c < num_columns(); ++c) {
      std::string s = Get(r, c).ToString();
      width[static_cast<size_t>(c)] =
          std::max(width[static_cast<size_t>(c)], s.size());
      cells[static_cast<size_t>(r)][static_cast<size_t>(c)] = std::move(s);
    }
  }
  std::ostringstream out;
  for (int c = 0; c < num_columns(); ++c) {
    out << (c ? " | " : "");
    std::string name = schema_.field(c).name;
    name.resize(width[static_cast<size_t>(c)], ' ');
    out << name;
  }
  out << "\n";
  for (int64_t r = 0; r < rows; ++r) {
    for (int c = 0; c < num_columns(); ++c) {
      out << (c ? " | " : "");
      std::string s = cells[static_cast<size_t>(r)][static_cast<size_t>(c)];
      s.resize(width[static_cast<size_t>(c)], ' ');
      out << s;
    }
    out << "\n";
  }
  if (rows < num_rows()) {
    out << "... (" << num_rows() - rows << " more rows)\n";
  }
  return out.str();
}

}  // namespace qagview::storage
