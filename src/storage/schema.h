#ifndef QAGVIEW_STORAGE_SCHEMA_H_
#define QAGVIEW_STORAGE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace qagview::storage {

/// One column declaration: name + physical type.
struct Field {
  std::string name;
  ValueType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Ordered list of fields with case-insensitive name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with the given (case-insensitive) name, or -1.
  int FindField(const std::string& name) const;

  /// Index of the field, or an error naming the missing column.
  Result<int> GetFieldIndex(const std::string& name) const;

  /// "name:TYPE, name:TYPE, ..."
  std::string ToString() const;

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;  // lower-cased name -> index
};

}  // namespace qagview::storage

#endif  // QAGVIEW_STORAGE_SCHEMA_H_
