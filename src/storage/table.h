#ifndef QAGVIEW_STORAGE_TABLE_H_
#define QAGVIEW_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace qagview::storage {

/// \brief An in-memory columnar table: a Schema plus one Column per field.
///
/// This is the relational substrate standing in for the paper's PostgreSQL
/// backend: data generators and the CSV reader produce Tables; the SQL layer
/// executes aggregate queries over them; query results are again Tables.
class Table {
 public:
  explicit Table(Schema schema);

  // Tables own sizable column data; pass by pointer/reference instead.
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const Schema& schema() const { return schema_; }
  int num_columns() const { return schema_.num_fields(); }
  int64_t num_rows() const { return num_rows_; }

  const Column& column(int i) const { return *columns_[static_cast<size_t>(i)]; }
  Column* mutable_column(int i) { return columns_[static_cast<size_t>(i)].get(); }

  /// Deep copy of the schema and all column data. Explicit — Table stays
  /// move-only so accidental copies never compile; the versioned dataset
  /// catalog clones the current snapshot before applying an update.
  Table Clone() const;

  /// Appends one row; `values.size()` must equal the number of columns and
  /// each value must match its column type.
  Status AppendRow(const std::vector<Value>& values);

  /// Appends a batch of rows atomically: every row is validated before any
  /// is appended, so on error the table is unchanged (no partial batch).
  Status AppendRows(const std::vector<std::vector<Value>>& rows);

  /// Boxed cell access.
  Value Get(int64_t row, int col) const { return column(col).Get(row); }

  /// One row as boxed values.
  std::vector<Value> GetRow(int64_t row) const;

  /// Pretty-prints up to `max_rows` rows as an aligned text table.
  std::string ToString(int64_t max_rows = 20) const;

 private:
  /// Shape/type checks of AppendRow, without mutating anything.
  Status ValidateRow(const std::vector<Value>& values) const;

  Schema schema_;
  std::vector<std::unique_ptr<Column>> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace qagview::storage

#endif  // QAGVIEW_STORAGE_TABLE_H_
