#ifndef QAGVIEW_STORAGE_VALUE_H_
#define QAGVIEW_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/logging.h"

namespace qagview::storage {

/// Physical type of a column or scalar value.
enum class ValueType { kNull, kInt64, kDouble, kString };

const char* ValueTypeToString(ValueType type);

/// \brief A dynamically-typed scalar: NULL, 64-bit int, double, or string.
///
/// Used at API boundaries (query literals, CSV cells, result rows). Hot
/// loops in the summarization core never touch Value; they operate on
/// dictionary codes (see storage::Dictionary).
class Value {
 public:
  /// Constructs NULL.
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.type_ = ValueType::kInt64;
    out.int_ = v;
    return out;
  }
  static Value Real(double v) {
    Value out;
    out.type_ = ValueType::kDouble;
    out.double_ = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.type_ = ValueType::kString;
    out.string_ = std::move(v);
    return out;
  }
  static Value Bool(bool v) { return Int(v ? 1 : 0); }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  int64_t as_int() const {
    QAG_DCHECK(type_ == ValueType::kInt64);
    return int_;
  }
  double as_double() const {
    QAG_DCHECK(type_ == ValueType::kDouble);
    return double_;
  }
  const std::string& as_string() const {
    QAG_DCHECK(type_ == ValueType::kString);
    return string_;
  }

  /// Numeric coercion: int64 and double both read as double.
  /// Requires a numeric type.
  double ToDouble() const;

  /// True iff the value is numeric and non-zero (SQL-ish truthiness).
  bool IsTruthy() const;

  /// Human-readable form ("NULL", "42", "3.14", "abc").
  std::string ToString() const;

  /// Equality with int/double coercion (1 == 1.0). NULL != anything,
  /// including NULL (SQL semantics are applied at the expression layer; this
  /// operator treats two NULLs as equal so Values can live in containers).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Three-way compare: -1/0/1. Numerics coerce; strings compare
  /// lexicographically; NULL sorts before everything. Comparing a string
  /// with a numeric is a programming error.
  int Compare(const Value& other) const;

 private:
  ValueType type_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
};

}  // namespace qagview::storage

#endif  // QAGVIEW_STORAGE_VALUE_H_
