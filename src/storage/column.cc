#include "storage/column.h"

namespace qagview::storage {

Column::Column(ValueType type) : type_(type) {
  QAG_CHECK(type != ValueType::kNull) << "column type may not be NULL";
  if (type_ == ValueType::kString) dict_ = std::make_unique<Dictionary>();
}

Column Column::Clone() const {
  Column out(type_);
  out.ints_ = ints_;
  out.doubles_ = doubles_;
  out.codes_ = codes_;
  if (dict_ != nullptr) out.dict_ = std::make_unique<Dictionary>(*dict_);
  out.valid_ = valid_;
  return out;
}

void Column::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case ValueType::kInt64:
      QAG_CHECK(v.type() == ValueType::kInt64)
          << "appending " << ValueTypeToString(v.type()) << " to INT64 column";
      AppendInt(v.as_int());
      return;
    case ValueType::kDouble:
      AppendDouble(v.ToDouble());
      return;
    case ValueType::kString:
      QAG_CHECK(v.type() == ValueType::kString)
          << "appending " << ValueTypeToString(v.type())
          << " to STRING column";
      AppendString(v.as_string());
      return;
    case ValueType::kNull:
      break;
  }
  QAG_LOG(Fatal) << "unreachable";
}

void Column::AppendInt(int64_t v) {
  QAG_DCHECK(type_ == ValueType::kInt64);
  ints_.push_back(v);
  valid_.push_back(1);
}

void Column::AppendDouble(double v) {
  QAG_DCHECK(type_ == ValueType::kDouble);
  doubles_.push_back(v);
  valid_.push_back(1);
}

void Column::AppendString(std::string_view v) {
  QAG_DCHECK(type_ == ValueType::kString);
  codes_.push_back(dict_->Intern(v));
  valid_.push_back(1);
}

void Column::AppendNull() {
  switch (type_) {
    case ValueType::kInt64:
      ints_.push_back(0);
      break;
    case ValueType::kDouble:
      doubles_.push_back(0.0);
      break;
    case ValueType::kString:
      codes_.push_back(-1);
      break;
    case ValueType::kNull:
      break;
  }
  valid_.push_back(0);
}

Value Column::Get(int64_t row) const {
  QAG_DCHECK(row >= 0 && row < size());
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case ValueType::kInt64:
      return Value::Int(ints_[static_cast<size_t>(row)]);
    case ValueType::kDouble:
      return Value::Real(doubles_[static_cast<size_t>(row)]);
    case ValueType::kString:
      return Value::Str(dict_->GetString(codes_[static_cast<size_t>(row)]));
    case ValueType::kNull:
      break;
  }
  return Value::Null();
}

int64_t Column::GetInt(int64_t row) const {
  QAG_DCHECK(type_ == ValueType::kInt64 && !IsNull(row));
  return ints_[static_cast<size_t>(row)];
}

double Column::GetDouble(int64_t row) const {
  QAG_DCHECK(!IsNull(row));
  if (type_ == ValueType::kInt64) {
    return static_cast<double>(ints_[static_cast<size_t>(row)]);
  }
  QAG_DCHECK(type_ == ValueType::kDouble);
  return doubles_[static_cast<size_t>(row)];
}

const std::string& Column::GetString(int64_t row) const {
  QAG_DCHECK(type_ == ValueType::kString && !IsNull(row));
  return dict_->GetString(codes_[static_cast<size_t>(row)]);
}

int32_t Column::GetStringCode(int64_t row) const {
  QAG_DCHECK(type_ == ValueType::kString);
  return codes_[static_cast<size_t>(row)];
}

const Dictionary& Column::dictionary() const {
  QAG_DCHECK(type_ == ValueType::kString);
  return *dict_;
}

}  // namespace qagview::storage
