#ifndef QAGVIEW_DATAGEN_MOVIELENS_H_
#define QAGVIEW_DATAGEN_MOVIELENS_H_

#include <cstdint>

#include "storage/table.h"

namespace qagview::datagen {

/// Shape parameters of the synthetic MovieLens-100K stand-in.
struct MovieLensOptions {
  int num_users = 943;     // ML-100K user count
  int num_movies = 1682;   // ML-100K movie count
  int num_ratings = 100000;
  uint64_t seed = 42;
};

/// \brief Generates the joined, materialized "RatingTable" the paper's
/// experiments run on (§7: all MovieLens tables joined into one universal
/// relation with 33 attributes of binary / numeric / categorical types).
///
/// We cannot ship the real MovieLens data, so this generator reproduces its
/// schema shape and the statistical structure the evaluation relies on:
/// skewed categorical marginals (occupation, genres), derived bucketing
/// attributes (agegrp, decade, hdec), and a planted rating signal in which
/// specific (genre, half-decade, age group, gender, occupation) patterns
/// rate systematically higher — giving top answers of aggregate queries
/// shared attribute patterns, as in Figure 1a.
///
/// Columns (33): user_id, age, agegrp, gender, occupation, zip_region,
/// movie_id, year, decade, hdec, 19 genre flags, rate_month, rate_weekday,
/// rating.
class MovieLensGenerator {
 public:
  explicit MovieLensGenerator(const MovieLensOptions& options =
                                  MovieLensOptions());

  /// Builds the universal rating table.
  storage::Table GenerateRatingTable() const;

  static constexpr int kNumGenres = 19;
  static const char* const kGenres[kNumGenres];
  static constexpr int kNumOccupations = 21;
  static const char* const kOccupations[kNumOccupations];

 private:
  MovieLensOptions options_;
};

}  // namespace qagview::datagen

#endif  // QAGVIEW_DATAGEN_MOVIELENS_H_
