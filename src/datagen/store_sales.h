#ifndef QAGVIEW_DATAGEN_STORE_SALES_H_
#define QAGVIEW_DATAGEN_STORE_SALES_H_

#include <cstdint>

#include "storage/table.h"

namespace qagview::datagen {

struct StoreSalesOptions {
  int64_t num_rows = 100000;  // paper used 2,880,404 at scale factor 1
  uint64_t seed = 7;
};

/// \brief Synthetic stand-in for the TPC-DS `store_sales` fact table used
/// in the paper's scalability experiment (§7.4): 23 attributes, with
/// `net_profit` as the aggregate value (which, as in TPC-DS, can be
/// negative).
///
/// Columns (23): sold_year, sold_month, sold_weekday, store_id,
/// store_state, item_category, item_class, item_brand, customer_agegrp,
/// customer_gender, customer_state, customer_income_band, promo_id,
/// household_buy_potential, quantity, wholesale_bucket, list_bucket,
/// sales_bucket, discount_bucket, coupon_used, channel, ticket_size_bucket,
/// net_profit.
class StoreSalesGenerator {
 public:
  explicit StoreSalesGenerator(const StoreSalesOptions& options =
                                   StoreSalesOptions());

  storage::Table Generate() const;

 private:
  StoreSalesOptions options_;
};

}  // namespace qagview::datagen

#endif  // QAGVIEW_DATAGEN_STORE_SALES_H_
