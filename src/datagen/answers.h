#ifndef QAGVIEW_DATAGEN_ANSWERS_H_
#define QAGVIEW_DATAGEN_ANSWERS_H_

#include <cstdint>

#include "core/answer_set.h"

namespace qagview::datagen {

/// Parameters for direct synthesis of an aggregate-query answer set.
struct SyntheticAnswerOptions {
  /// Number of answer tuples (the paper's N — the query *output* size).
  int n = 2087;
  /// Number of group-by attributes (m).
  int m = 8;
  /// Domain size per attribute.
  int domain = 9;
  /// Number of planted high-value partial patterns.
  int planted_patterns = 6;
  /// Gaussian noise on values.
  double noise = 0.25;
  uint64_t seed = 1;
};

/// \brief Synthesizes an aggregate answer set directly, bypassing the SQL
/// layer, with exact control of N and m (the knobs of the §7 experiments).
///
/// Values are built from planted partial patterns (random conjunctions over
/// ~half the attributes with positive boosts) plus noise, so the top of the
/// ranking shares attribute patterns — the structure the summarization
/// algorithms exploit — while low-value tuples partially share them too
/// (making naive "cluster the top L" summaries misleading, per §1).
core::AnswerSet MakeSyntheticAnswers(const SyntheticAnswerOptions& options =
                                         SyntheticAnswerOptions());

}  // namespace qagview::datagen

#endif  // QAGVIEW_DATAGEN_ANSWERS_H_
