#include "datagen/answers.h"

#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/cluster.h"

namespace qagview::datagen {

core::AnswerSet MakeSyntheticAnswers(const SyntheticAnswerOptions& options) {
  QAG_CHECK(options.n >= 1 && options.m >= 1 && options.domain >= 2);
  Rng rng(options.seed);

  // Planted patterns: fix about half the attributes to concrete values.
  struct Planted {
    std::vector<int32_t> pattern;  // kWildcard or value
    double boost;
  };
  std::vector<Planted> planted;
  for (int p = 0; p < options.planted_patterns; ++p) {
    Planted pl;
    pl.pattern.assign(static_cast<size_t>(options.m), core::kWildcard);
    int fixed = std::max(1, options.m / 2 +
                                static_cast<int>(rng.Uniform(-1, 1)));
    for (int f = 0; f < fixed; ++f) {
      int a = static_cast<int>(rng.Index(options.m));
      pl.pattern[static_cast<size_t>(a)] =
          static_cast<int32_t>(rng.Zipf(options.domain, 0.5));
    }
    pl.boost = rng.UniformReal(0.3, 1.2);
    planted.push_back(std::move(pl));
  }

  std::vector<std::string> attr_names;
  std::vector<std::vector<std::string>> value_names(
      static_cast<size_t>(options.m));
  for (int a = 0; a < options.m; ++a) {
    attr_names.push_back(StrCat("a", a));
    for (int v = 0; v < options.domain; ++v) {
      value_names[static_cast<size_t>(a)].push_back(StrCat("v", v));
    }
  }

  std::unordered_set<std::vector<int32_t>, VectorHash<int32_t>> seen;
  std::vector<core::Element> elements;
  elements.reserve(static_cast<size_t>(options.n));
  int64_t attempts = 0;
  while (static_cast<int>(elements.size()) < options.n) {
    QAG_CHECK(++attempts < 100LL * options.n)
        << "domain too small to draw " << options.n << " distinct tuples";
    std::vector<int32_t> attrs(static_cast<size_t>(options.m));
    for (int a = 0; a < options.m; ++a) {
      attrs[static_cast<size_t>(a)] =
          static_cast<int32_t>(rng.Zipf(options.domain, 0.6));
    }
    if (!seen.insert(attrs).second) continue;

    double value = 2.8;
    for (const Planted& pl : planted) {
      bool match = true;
      for (int a = 0; a < options.m && match; ++a) {
        match = pl.pattern[static_cast<size_t>(a)] == core::kWildcard ||
                pl.pattern[static_cast<size_t>(a)] ==
                    attrs[static_cast<size_t>(a)];
      }
      if (match) value += pl.boost;
      // Partial matches leak a fraction of the boost: low-value tuples can
      // share parts of top patterns (the "(20s, M)" effect of §1).
      int agree = 0;
      int fixed = 0;
      for (int a = 0; a < options.m; ++a) {
        if (pl.pattern[static_cast<size_t>(a)] == core::kWildcard) continue;
        ++fixed;
        agree += pl.pattern[static_cast<size_t>(a)] ==
                 attrs[static_cast<size_t>(a)];
      }
      if (!match && fixed > 0 && agree * 2 >= fixed) {
        value += pl.boost * 0.15;
      }
    }
    value += rng.Gaussian(0.0, options.noise);
    elements.push_back({std::move(attrs), value});
  }

  auto result = core::AnswerSet::FromRaw(
      std::move(attr_names), std::move(value_names), std::move(elements));
  QAG_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace qagview::datagen
