#include "datagen/movielens.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"

namespace qagview::datagen {

const char* const MovieLensGenerator::kGenres[MovieLensGenerator::kNumGenres] =
    {"action",    "adventure", "animation", "children", "comedy",
     "crime",     "documentary", "drama",   "fantasy",  "filmnoir",
     "horror",    "musical",   "mystery",   "romance",  "scifi",
     "thriller",  "war",       "western",   "unknown"};

const char* const
    MovieLensGenerator::kOccupations[MovieLensGenerator::kNumOccupations] = {
        "student",    "educator",   "engineer",      "programmer",
        "librarian",  "writer",     "executive",     "scientist",
        "artist",     "technician", "administrator", "marketing",
        "healthcare", "lawyer",     "entertainment", "retired",
        "salesman",   "doctor",     "homemaker",     "none",
        "other"};

namespace {

struct User {
  int id;
  int age;
  int gender;      // 0 = M, 1 = F
  int occupation;  // index into kOccupations
  int zip_region;  // 0..9
};

struct Movie {
  int id;
  int year;
  uint32_t genres;  // bitmask over kNumGenres
};

const char* AgeGroup(int age) {
  if (age < 10) return "0s";
  if (age < 20) return "10s";
  if (age < 30) return "20s";
  if (age < 40) return "30s";
  if (age < 50) return "40s";
  if (age < 60) return "50s";
  return "60s";
}

}  // namespace

MovieLensGenerator::MovieLensGenerator(const MovieLensOptions& options)
    : options_(options) {}

storage::Table MovieLensGenerator::GenerateRatingTable() const {
  Rng rng(options_.seed);

  // --- Users: age skewed young, gender ~71% male (as in ML-100K),
  // occupation Zipf-skewed. ---
  std::vector<User> users;
  users.reserve(static_cast<size_t>(options_.num_users));
  for (int i = 0; i < options_.num_users; ++i) {
    User u;
    u.id = i + 1;
    u.age = 12 + static_cast<int>(rng.Zipf(55, 0.6));
    u.gender = rng.Bernoulli(0.29) ? 1 : 0;
    u.occupation = static_cast<int>(rng.Zipf(kNumOccupations, 0.7));
    u.zip_region = static_cast<int>(rng.Index(10));
    users.push_back(u);
  }

  // --- Movies: release years 1930-1998 skewed recent, 1-3 genres. ---
  std::vector<Movie> movies;
  movies.reserve(static_cast<size_t>(options_.num_movies));
  for (int i = 0; i < options_.num_movies; ++i) {
    Movie m;
    m.id = i + 1;
    m.year = 1998 - static_cast<int>(rng.Zipf(69, 0.55));
    m.genres = 0;
    int count = 1 + static_cast<int>(rng.Index(3));
    for (int g = 0; g < count; ++g) {
      m.genres |= 1u << rng.Zipf(kNumGenres, 0.5);
    }
    movies.push_back(m);
  }

  // --- Schema (33 columns). ---
  std::vector<storage::Field> fields = {
      {"user_id", storage::ValueType::kInt64},
      {"age", storage::ValueType::kInt64},
      {"agegrp", storage::ValueType::kString},
      {"gender", storage::ValueType::kString},
      {"occupation", storage::ValueType::kString},
      {"zip_region", storage::ValueType::kInt64},
      {"movie_id", storage::ValueType::kInt64},
      {"year", storage::ValueType::kInt64},
      {"decade", storage::ValueType::kInt64},
      {"hdec", storage::ValueType::kInt64},
  };
  for (int g = 0; g < kNumGenres; ++g) {
    fields.push_back({StrCat("genres_", kGenres[g]),
                      storage::ValueType::kInt64});
  }
  fields.push_back({"rate_year", storage::ValueType::kInt64});
  fields.push_back({"rate_month", storage::ValueType::kInt64});
  fields.push_back({"rate_weekday", storage::ValueType::kInt64});
  fields.push_back({"rating", storage::ValueType::kInt64});
  storage::Table table{storage::Schema(std::move(fields))};

  // --- Planted rating signal: the "who likes what when" structure that
  // gives aggregate answers their shared top patterns. ---
  // genre affinity boosts per (occupation class, genre block).
  auto base_rating = [&](const User& u, const Movie& m) {
    double r = 3.1;
    // Older films rate slightly higher (classic effect).
    r += (1998 - m.year) * 0.004;
    // Young male students/programmers love action/adventure/scifi, with the
    // strongest affinity for 1975-1989 films (the Figure-1a pattern).
    bool tech = u.occupation == 0 || u.occupation == 3 || u.occupation == 2;
    bool young = u.age < 30;
    bool av_genre = (m.genres & ((1u << 0) | (1u << 1) | (1u << 14))) != 0;
    if (tech && young && u.gender == 0 && av_genre) {
      r += (m.year >= 1975 && m.year < 1990) ? 1.15 : 0.75;
    }
    // Educators/librarians favour documentaries and drama.
    bool scholarly = u.occupation == 1 || u.occupation == 4;
    if (scholarly && (m.genres & ((1u << 6) | (1u << 7))) != 0) r += 0.6;
    // Horror rates lower with older viewers.
    if ((m.genres & (1u << 10)) != 0 && u.age >= 40) r -= 0.7;
    // Romance bump for female viewers in their 20s-30s.
    if ((m.genres & (1u << 13)) != 0 && u.gender == 1 && u.age >= 20 &&
        u.age < 40) {
      r += 0.5;
    }
    return r;
  };

  std::vector<storage::Value> row(static_cast<size_t>(table.num_columns()));
  for (int i = 0; i < options_.num_ratings; ++i) {
    const User& u = users[static_cast<size_t>(rng.Index(options_.num_users))];
    const Movie& m =
        movies[static_cast<size_t>(rng.Zipf(options_.num_movies, 0.4))];
    double r = base_rating(u, m) + rng.Gaussian(0.0, 0.8);
    int rating = std::clamp(static_cast<int>(std::lround(r)), 1, 5);

    size_t c = 0;
    row[c++] = storage::Value::Int(u.id);
    row[c++] = storage::Value::Int(u.age);
    row[c++] = storage::Value::Str(AgeGroup(u.age));
    row[c++] = storage::Value::Str(u.gender == 0 ? "M" : "F");
    row[c++] = storage::Value::Str(kOccupations[u.occupation]);
    row[c++] = storage::Value::Int(u.zip_region);
    row[c++] = storage::Value::Int(m.id);
    row[c++] = storage::Value::Int(m.year);
    row[c++] = storage::Value::Int(m.year / 10 * 10);
    row[c++] = storage::Value::Int(m.year / 5 * 5);
    for (int g = 0; g < kNumGenres; ++g) {
      row[c++] = storage::Value::Int((m.genres >> g) & 1u);
    }
    row[c++] = storage::Value::Int(1997 + rng.Index(2));
    row[c++] = storage::Value::Int(1 + rng.Index(12));
    row[c++] = storage::Value::Int(rng.Index(7));
    row[c++] = storage::Value::Int(rating);
    QAG_CHECK_OK(table.AppendRow(row));
  }
  return table;
}

}  // namespace qagview::datagen
