#include "datagen/store_sales.h"

#include <vector>

#include "common/random.h"
#include "common/string_util.h"

namespace qagview::datagen {

namespace {
const char* const kStates[] = {"TN", "GA", "SC", "NC", "AL",
                               "KY", "VA", "FL", "MS", "TX"};
const char* const kCategories[] = {"Books", "Music",    "Home",  "Sports",
                                   "Shoes", "Children", "Women", "Men",
                                   "Jewelry", "Electronics"};
const char* const kAgeGroups[] = {"10s", "20s", "30s", "40s", "50s", "60s"};
const char* const kIncomeBands[] = {"low", "lower_mid", "upper_mid", "high"};
const char* const kBuyPotential[] = {"0-500", "501-1000", "1001-5000",
                                     "5001-10000", ">10000"};
const char* const kChannels[] = {"walkin", "event", "promo"};
}  // namespace

StoreSalesGenerator::StoreSalesGenerator(const StoreSalesOptions& options)
    : options_(options) {}

storage::Table StoreSalesGenerator::Generate() const {
  Rng rng(options_.seed);

  std::vector<storage::Field> fields = {
      {"sold_year", storage::ValueType::kInt64},
      {"sold_month", storage::ValueType::kInt64},
      {"sold_weekday", storage::ValueType::kInt64},
      {"store_id", storage::ValueType::kInt64},
      {"store_state", storage::ValueType::kString},
      {"item_category", storage::ValueType::kString},
      {"item_class", storage::ValueType::kInt64},
      {"item_brand", storage::ValueType::kInt64},
      {"customer_agegrp", storage::ValueType::kString},
      {"customer_gender", storage::ValueType::kString},
      {"customer_state", storage::ValueType::kString},
      {"customer_income_band", storage::ValueType::kString},
      {"promo_id", storage::ValueType::kInt64},
      {"household_buy_potential", storage::ValueType::kString},
      {"quantity", storage::ValueType::kInt64},
      {"wholesale_bucket", storage::ValueType::kInt64},
      {"list_bucket", storage::ValueType::kInt64},
      {"sales_bucket", storage::ValueType::kInt64},
      {"discount_bucket", storage::ValueType::kInt64},
      {"coupon_used", storage::ValueType::kInt64},
      {"channel", storage::ValueType::kString},
      {"ticket_size_bucket", storage::ValueType::kInt64},
      {"net_profit", storage::ValueType::kDouble},
  };
  storage::Table table{storage::Schema(std::move(fields))};

  std::vector<storage::Value> row(static_cast<size_t>(table.num_columns()));
  for (int64_t i = 0; i < options_.num_rows; ++i) {
    int year = 1998 + static_cast<int>(rng.Index(6));
    int month = 1 + static_cast<int>(rng.Index(12));
    int weekday = static_cast<int>(rng.Index(7));
    int store = 1 + static_cast<int>(rng.Zipf(12, 0.5));
    int store_state = static_cast<int>(rng.Zipf(10, 0.8));
    int category = static_cast<int>(rng.Zipf(10, 0.6));
    int item_class = 1 + static_cast<int>(rng.Index(20));
    int brand = 1 + static_cast<int>(rng.Zipf(50, 0.9));
    int agegrp = static_cast<int>(rng.Zipf(6, 0.4));
    int gender = static_cast<int>(rng.Index(2));
    int cust_state = static_cast<int>(rng.Zipf(10, 0.7));
    int income = static_cast<int>(rng.Index(4));
    int promo = static_cast<int>(rng.Zipf(30, 1.2));
    int potential = static_cast<int>(rng.Index(5));
    int quantity = 1 + static_cast<int>(rng.Zipf(100, 1.1));
    int wholesale = static_cast<int>(rng.Index(10));
    int list = wholesale + static_cast<int>(rng.Index(4));
    int sales = std::max(0, list - static_cast<int>(rng.Index(4)));
    int discount = static_cast<int>(rng.Index(5));
    int coupon = rng.Bernoulli(0.15) ? 1 : 0;
    int channel = static_cast<int>(rng.Zipf(3, 0.8));
    int ticket = static_cast<int>(rng.Index(8));

    // Net profit: margin structure plus planted patterns — electronics in
    // December via promos is lucrative; heavy discounting in low-income
    // bands loses money. Matches TPC-DS's negative-profit tail.
    double profit = (sales - wholesale) * 2.5 * quantity * 0.1;
    if (category == 9 && month == 12) profit += 40.0;
    if (category == 8 && income == 3) profit += 25.0;  // jewelry, high income
    if (promo <= 2 && channel == 2) profit += 15.0;
    if (discount >= 3) profit -= 25.0;
    if (discount >= 3 && income == 0) profit -= 20.0;
    if (coupon == 1) profit -= 8.0;
    profit += rng.Gaussian(0.0, 20.0);

    size_t c = 0;
    row[c++] = storage::Value::Int(year);
    row[c++] = storage::Value::Int(month);
    row[c++] = storage::Value::Int(weekday);
    row[c++] = storage::Value::Int(store);
    row[c++] = storage::Value::Str(kStates[store_state]);
    row[c++] = storage::Value::Str(kCategories[category]);
    row[c++] = storage::Value::Int(item_class);
    row[c++] = storage::Value::Int(brand);
    row[c++] = storage::Value::Str(kAgeGroups[agegrp]);
    row[c++] = storage::Value::Str(gender == 0 ? "M" : "F");
    row[c++] = storage::Value::Str(kStates[cust_state]);
    row[c++] = storage::Value::Str(kIncomeBands[income]);
    row[c++] = storage::Value::Int(promo);
    row[c++] = storage::Value::Str(kBuyPotential[potential]);
    row[c++] = storage::Value::Int(quantity);
    row[c++] = storage::Value::Int(wholesale);
    row[c++] = storage::Value::Int(list);
    row[c++] = storage::Value::Int(sales);
    row[c++] = storage::Value::Int(discount);
    row[c++] = storage::Value::Int(coupon);
    row[c++] = storage::Value::Str(kChannels[channel]);
    row[c++] = storage::Value::Int(ticket);
    row[c++] = storage::Value::Real(profit);
    QAG_CHECK_OK(table.AppendRow(row));
  }
  return table;
}

}  // namespace qagview::datagen
