#ifndef QAGVIEW_BASELINES_MMR_H_
#define QAGVIEW_BASELINES_MMR_H_

#include <vector>

#include "core/answer_set.h"

namespace qagview::baselines {

/// \brief MMR (Maximal Marginal Relevance [4]) λ-parameterized result
/// diversification as used in Vieira et al. [41] and compared against in
/// Appendix A.5.4: iteratively select up to k of the top-L elements,
/// each maximizing
///     (1 - λ) · rel(e) + λ · min_{chosen} dist(e, chosen)
/// with rel normalized to [0,1] over the top-L values and dist normalized
/// by m. λ = 0 reduces to plain top-k; λ = 1 to pure dispersion.
std::vector<int> Mmr(const core::AnswerSet& s, int k, int top_l,
                     double lambda);

}  // namespace qagview::baselines

#endif  // QAGVIEW_BASELINES_MMR_H_
