#include "baselines/disc_diversity.h"

#include "core/cluster.h"

namespace qagview::baselines {

DiscResult DiscDiversity(const core::AnswerSet& s, int top_l, int radius) {
  DiscResult result;
  for (int e = 0; e < top_l; ++e) {
    bool independent = true;
    for (int rep : result.element_ids) {
      if (core::ElementDistance(s.element(e).attrs, s.element(rep).attrs) <=
          radius) {
        independent = false;
        break;
      }
    }
    if (independent) result.element_ids.push_back(e);
  }
  return result;
}

bool IsDiscDiverse(const core::AnswerSet& s, int top_l, int radius,
                   const std::vector<int>& element_ids) {
  // Independence.
  for (size_t i = 0; i < element_ids.size(); ++i) {
    for (size_t j = i + 1; j < element_ids.size(); ++j) {
      if (core::ElementDistance(s.element(element_ids[i]).attrs,
                                s.element(element_ids[j]).attrs) <= radius) {
        return false;
      }
    }
  }
  // Domination of all top-L elements.
  for (int e = 0; e < top_l; ++e) {
    bool dominated = false;
    for (int rep : element_ids) {
      if (core::ElementDistance(s.element(e).attrs, s.element(rep).attrs) <=
          radius) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

}  // namespace qagview::baselines
