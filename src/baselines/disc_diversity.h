#ifndef QAGVIEW_BASELINES_DISC_DIVERSITY_H_
#define QAGVIEW_BASELINES_DISC_DIVERSITY_H_

#include <vector>

#include "core/answer_set.h"

namespace qagview::baselines {

struct DiscResult {
  /// Chosen representative element ids.
  std::vector<int> element_ids;
};

/// \brief DisC diversity of Drosou & Pitoura [8], adapted as in Appendix
/// A.5.3: an independent-and-dominating subset of the top-L elements — each
/// top-L element is within distance `radius` of some representative, and no
/// two representatives are within `radius` of each other.
///
/// Greedy maximal-independent-set construction in descending-value order
/// (a maximal independent set under the distance-<= radius graph is also
/// dominating, hence DisC diverse).
DiscResult DiscDiversity(const core::AnswerSet& s, int top_l, int radius);

/// Validates the DisC property of a subset (test helper): coverage of all
/// top-L within `radius` and pairwise independence.
bool IsDiscDiverse(const core::AnswerSet& s, int top_l, int radius,
                   const std::vector<int>& element_ids);

}  // namespace qagview::baselines

#endif  // QAGVIEW_BASELINES_DISC_DIVERSITY_H_
