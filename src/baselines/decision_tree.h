#ifndef QAGVIEW_BASELINES_DECISION_TREE_H_
#define QAGVIEW_BASELINES_DECISION_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/answer_set.h"

namespace qagview::baselines {

/// One atomic test on a tuple: attribute == value or attribute != value.
struct Predicate {
  int attr = 0;
  int32_t value = 0;
  bool equals = true;

  bool Matches(const std::vector<int32_t>& attrs) const {
    bool eq = attrs[static_cast<size_t>(attr)] == value;
    return equals ? eq : !eq;
  }
};

/// A root-to-positive-leaf path: the conjunction of its predicates is one
/// "rule" of the decision-tree summary shown to user-study subjects.
struct DecisionRule {
  std::vector<Predicate> predicates;
  int positive_count = 0;  // top-L tuples at the leaf
  int total_count = 0;
  double avg_value = 0.0;  // average value of tuples at the leaf

  bool Matches(const std::vector<int32_t>& attrs) const;
  /// Rule complexity: equality tests count 1, negations 2 (they are harder
  /// to read and recall — the §8 hypothesis our study layer models).
  int Complexity() const;
};

struct DecisionTreeOptions {
  int max_height = 6;
  int min_leaf_size = 1;
};

/// \brief CART-style binary decision tree (Gini impurity, categorical
/// equality splits), the user-study comparator of §8: trained to separate
/// the top-L tuples ("positive") from the rest.
///
/// Mirrors the paper's scikit-learn usage: TrainTuned() grows trees of
/// increasing height and keeps the tallest whose number of positive leaves
/// (leaves where top-L tuples are the majority) stays <= k.
class DecisionTree {
 public:
  static DecisionTree Train(const core::AnswerSet& s, int top_l,
                            const DecisionTreeOptions& options =
                                DecisionTreeOptions());

  /// Height tuning per §8.1: largest height whose positive-leaf count is
  /// as close as possible to, but no greater than, k.
  static DecisionTree TrainTuned(const core::AnswerSet& s, int top_l, int k);

  /// True iff the tuple reaches a positive leaf.
  bool PredictTop(const std::vector<int32_t>& attrs) const;

  /// Number of leaves where positives are the majority.
  int PositiveLeafCount() const;

  /// The positive-leaf rules (root-to-leaf predicate paths).
  std::vector<DecisionRule> PositiveRules() const;

  int height() const { return height_; }
  int node_count() const { return static_cast<int>(nodes_.size()); }

  /// Multi-line description of the positive rules.
  std::string ToString(const core::AnswerSet& s) const;

 private:
  struct Node {
    // Split (internal nodes): attr == value goes left, != goes right.
    int attr = -1;
    int32_t value = 0;
    int left = -1;
    int right = -1;
    // Leaf payload.
    bool is_leaf = false;
    bool positive = false;
    int positive_count = 0;
    int total_count = 0;
    double avg_value = 0.0;
  };

  int BuildNode(const core::AnswerSet& s, std::vector<int>* elements,
                int begin, int end, int depth,
                const DecisionTreeOptions& options);
  void CollectRules(int node, std::vector<Predicate>* path,
                    std::vector<DecisionRule>* out) const;

  std::vector<Node> nodes_;
  int root_ = -1;
  int top_l_ = 0;
  int height_ = 0;
};

}  // namespace qagview::baselines

#endif  // QAGVIEW_BASELINES_DECISION_TREE_H_
