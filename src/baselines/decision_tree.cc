#include "baselines/decision_tree.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"

namespace qagview::baselines {

bool DecisionRule::Matches(const std::vector<int32_t>& attrs) const {
  for (const Predicate& p : predicates) {
    if (!p.Matches(attrs)) return false;
  }
  return true;
}

int DecisionRule::Complexity() const {
  int c = 0;
  for (const Predicate& p : predicates) c += p.equals ? 1 : 2;
  return c;
}

namespace {

double Gini(int positives, int total) {
  if (total == 0) return 0.0;
  double p = static_cast<double>(positives) / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

DecisionTree DecisionTree::Train(const core::AnswerSet& s, int top_l,
                                 const DecisionTreeOptions& options) {
  QAG_CHECK(top_l >= 1 && top_l <= s.size());
  DecisionTree tree;
  tree.top_l_ = top_l;
  std::vector<int> elements(static_cast<size_t>(s.size()));
  for (int e = 0; e < s.size(); ++e) elements[static_cast<size_t>(e)] = e;
  tree.root_ = tree.BuildNode(s, &elements, 0, s.size(), 0, options);
  return tree;
}

int DecisionTree::BuildNode(const core::AnswerSet& s,
                            std::vector<int>* elements, int begin, int end,
                            int depth, const DecisionTreeOptions& options) {
  int positives = 0;
  double value_sum = 0.0;
  for (int i = begin; i < end; ++i) {
    int e = (*elements)[static_cast<size_t>(i)];
    positives += e < top_l_;
    value_sum += s.value(e);
  }
  int total = end - begin;
  height_ = std::max(height_, depth);

  auto make_leaf = [&]() {
    Node leaf;
    leaf.is_leaf = true;
    leaf.positive_count = positives;
    leaf.total_count = total;
    leaf.positive = 2 * positives > total;  // majority vote
    leaf.avg_value = total == 0 ? 0.0 : value_sum / total;
    nodes_.push_back(leaf);
    return static_cast<int>(nodes_.size()) - 1;
  };

  if (depth >= options.max_height || positives == 0 || positives == total ||
      total <= options.min_leaf_size) {
    return make_leaf();
  }

  // Best (attr == value) split by Gini gain.
  double base = Gini(positives, total);
  double best_gain = 1e-12;
  int best_attr = -1;
  int32_t best_value = 0;
  for (int a = 0; a < s.num_attrs(); ++a) {
    // Per-value (count, positive-count) tallies in this node.
    std::unordered_map<int32_t, std::pair<int, int>> tallies;
    for (int i = begin; i < end; ++i) {
      int e = (*elements)[static_cast<size_t>(i)];
      auto& t = tallies[s.element(e).attrs[static_cast<size_t>(a)]];
      ++t.first;
      t.second += e < top_l_;
    }
    if (tallies.size() < 2) continue;
    for (const auto& [value, tally] : tallies) {
      int in_count = tally.first;
      int in_pos = tally.second;
      int out_count = total - in_count;
      int out_pos = positives - in_pos;
      double split =
          (static_cast<double>(in_count) / total) * Gini(in_pos, in_count) +
          (static_cast<double>(out_count) / total) * Gini(out_pos, out_count);
      double gain = base - split;
      if (gain > best_gain) {
        best_gain = gain;
        best_attr = a;
        best_value = value;
      }
    }
  }
  if (best_attr < 0) return make_leaf();

  // Partition [begin, end) into == (left) and != (right).
  auto mid_it = std::stable_partition(
      elements->begin() + begin, elements->begin() + end, [&](int e) {
        return s.element(e).attrs[static_cast<size_t>(best_attr)] ==
               best_value;
      });
  int mid = static_cast<int>(mid_it - elements->begin());
  QAG_DCHECK(mid > begin && mid < end);

  int left = BuildNode(s, elements, begin, mid, depth + 1, options);
  int right = BuildNode(s, elements, mid, end, depth + 1, options);
  Node node;
  node.attr = best_attr;
  node.value = best_value;
  node.left = left;
  node.right = right;
  nodes_.push_back(node);
  return static_cast<int>(nodes_.size()) - 1;
}

DecisionTree DecisionTree::TrainTuned(const core::AnswerSet& s, int top_l,
                                      int k) {
  DecisionTree best;
  bool have_best = false;
  for (int height = 1; height <= 12; ++height) {
    DecisionTreeOptions options;
    options.max_height = height;
    DecisionTree tree = Train(s, top_l, options);
    int leaves = tree.PositiveLeafCount();
    if (leaves <= k) {
      best = std::move(tree);
      have_best = true;
    } else {
      break;  // deeper trees only grow more positive leaves
    }
  }
  if (!have_best) {
    DecisionTreeOptions options;
    options.max_height = 1;
    best = Train(s, top_l, options);
  }
  return best;
}

bool DecisionTree::PredictTop(const std::vector<int32_t>& attrs) const {
  int node = root_;
  while (!nodes_[static_cast<size_t>(node)].is_leaf) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    node = attrs[static_cast<size_t>(n.attr)] == n.value ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(node)].positive;
}

int DecisionTree::PositiveLeafCount() const {
  int count = 0;
  for (const Node& n : nodes_) count += n.is_leaf && n.positive;
  return count;
}

void DecisionTree::CollectRules(int node, std::vector<Predicate>* path,
                                std::vector<DecisionRule>* out) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (n.is_leaf) {
    if (n.positive) {
      DecisionRule rule;
      rule.predicates = *path;
      rule.positive_count = n.positive_count;
      rule.total_count = n.total_count;
      rule.avg_value = n.avg_value;
      out->push_back(std::move(rule));
    }
    return;
  }
  path->push_back({n.attr, n.value, /*equals=*/true});
  CollectRules(n.left, path, out);
  path->back().equals = false;
  CollectRules(n.right, path, out);
  path->pop_back();
}

std::vector<DecisionRule> DecisionTree::PositiveRules() const {
  std::vector<DecisionRule> out;
  std::vector<Predicate> path;
  CollectRules(root_, &path, &out);
  return out;
}

std::string DecisionTree::ToString(const core::AnswerSet& s) const {
  std::string out;
  for (const DecisionRule& rule : PositiveRules()) {
    std::vector<std::string> parts;
    for (const Predicate& p : rule.predicates) {
      parts.push_back(StrCat(s.attr_names()[static_cast<size_t>(p.attr)],
                             p.equals ? " = " : " != ",
                             s.ValueName(p.attr, p.value)));
    }
    out += StrCat(Join(parts, " AND "), "  [", rule.positive_count, "/",
                  rule.total_count, " top, avg ",
                  FormatDouble(rule.avg_value, 2), "]\n");
  }
  return out;
}

}  // namespace qagview::baselines
