#ifndef QAGVIEW_BASELINES_SMART_DRILLDOWN_H_
#define QAGVIEW_BASELINES_SMART_DRILLDOWN_H_

#include <vector>

#include "core/semilattice.h"

namespace qagview::baselines {

/// One selected rule with its marginal statistics at selection time.
struct DrilldownRule {
  int cluster_id = -1;
  /// MCount(r, R): elements covered by r and by no earlier rule.
  int marginal_count = 0;
  /// W(r): number of non-* attributes.
  int weight = 0;
  /// Average value of the marginal elements (the val(r) factor of the
  /// value-extended scoring).
  double marginal_avg = 0.0;
  /// This rule's contribution to the total score.
  double contribution = 0.0;
};

struct SmartDrilldownResult {
  std::vector<DrilldownRule> rules;
  double total_score = 0.0;
};

struct SmartDrilldownOptions {
  /// When true, uses the paper's value-extended scoring
  /// score(R) = Σ MCount(r,R) × W(r) × val(r) (Appendix A.5.1); when
  /// false, the original [24] scoring Σ MCount(r,R) × W(r).
  bool value_weighted = true;
};

/// \brief The smart drill-down operator of Joglekar et al. [24], adapted as
/// in Appendix A.5.1: greedily selects an ordered set of k rules maximizing
/// the (optionally value-weighted) marginal-coverage × specificity score.
///
/// Candidate rules are the clusters of `universe`; build the universe with
/// top_l = n to emulate "smart drill-down on all elements" or a smaller
/// top_l for "on top-L elements". The trivial all-* rule is excluded (it is
/// weight 0 anyway under W(r)).
SmartDrilldownResult SmartDrilldown(const core::ClusterUniverse& universe,
                                    int k,
                                    const SmartDrilldownOptions& options =
                                        SmartDrilldownOptions());

}  // namespace qagview::baselines

#endif  // QAGVIEW_BASELINES_SMART_DRILLDOWN_H_
