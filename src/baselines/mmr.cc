#include "baselines/mmr.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "core/cluster.h"

namespace qagview::baselines {

std::vector<int> Mmr(const core::AnswerSet& s, int k, int top_l,
                     double lambda) {
  QAG_CHECK(top_l >= 1 && top_l <= s.size());
  QAG_CHECK(lambda >= 0.0 && lambda <= 1.0);
  double hi = s.value(0);
  double lo = s.value(top_l - 1);
  double range = hi > lo ? hi - lo : 1.0;
  double m = s.num_attrs();

  std::vector<int> chosen;
  std::vector<char> used(static_cast<size_t>(top_l), 0);
  while (static_cast<int>(chosen.size()) < std::min(k, top_l)) {
    int best = -1;
    double best_score = -std::numeric_limits<double>::infinity();
    for (int e = 0; e < top_l; ++e) {
      if (used[static_cast<size_t>(e)]) continue;
      double rel = (s.value(e) - lo) / range;
      double div = 1.0;  // first pick: diversity term is neutral-max
      if (!chosen.empty()) {
        int min_d = s.num_attrs();
        for (int other : chosen) {
          min_d = std::min(min_d,
                           core::ElementDistance(s.element(e).attrs,
                                                 s.element(other).attrs));
        }
        div = min_d / m;
      }
      double score = (1.0 - lambda) * rel + lambda * div;
      if (score > best_score) {
        best_score = score;
        best = e;
      }
    }
    used[static_cast<size_t>(best)] = 1;
    chosen.push_back(best);
  }
  return chosen;
}

}  // namespace qagview::baselines
