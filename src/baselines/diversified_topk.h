#ifndef QAGVIEW_BASELINES_DIVERSIFIED_TOPK_H_
#define QAGVIEW_BASELINES_DIVERSIFIED_TOPK_H_

#include <vector>

#include "common/result.h"
#include "core/answer_set.h"

namespace qagview::baselines {

struct DiversifiedTopKResult {
  /// Chosen element ids (indices into the answer set's ranking).
  std::vector<int> element_ids;
  double score_sum = 0.0;
};

/// \brief Diversified top-k of Qin et al. [31], adapted as in Appendix
/// A.5.2: choose at most k of the top-L *elements* (no '*' summarization)
/// with pairwise element distance >= d, maximizing the sum of scores.
///
/// Exact search (branch and bound over elements in rank order; the paper
/// used brute force for its qualitative comparison). L and k must be small.
Result<DiversifiedTopKResult> DiversifiedTopKExact(const core::AnswerSet& s,
                                                   int k, int top_l, int d);

/// Greedy variant: sweep elements by descending value, keep each element
/// that is >= d away from everything kept so far, stop at k.
DiversifiedTopKResult DiversifiedTopKGreedy(const core::AnswerSet& s, int k,
                                            int top_l, int d);

/// Average value of the elements within distance `radius` of any chosen
/// element (the "avg score" column of the A.5.2 table: the implicit
/// cluster a representative stands for).
double RepresentedAverage(const core::AnswerSet& s,
                          const std::vector<int>& element_ids, int radius);

}  // namespace qagview::baselines

#endif  // QAGVIEW_BASELINES_DIVERSIFIED_TOPK_H_
