#include "baselines/smart_drilldown.h"

#include <vector>

namespace qagview::baselines {

SmartDrilldownResult SmartDrilldown(const core::ClusterUniverse& universe,
                                    int k,
                                    const SmartDrilldownOptions& options) {
  const core::AnswerSet& s = universe.answer_set();
  std::vector<char> covered(static_cast<size_t>(s.size()), 0);
  std::vector<char> chosen(static_cast<size_t>(universe.num_clusters()), 0);

  SmartDrilldownResult result;
  for (int round = 0; round < k; ++round) {
    int best = -1;
    double best_score = 0.0;
    DrilldownRule best_rule;
    for (int id = 0; id < universe.num_clusters(); ++id) {
      if (chosen[static_cast<size_t>(id)]) continue;
      int weight = s.num_attrs() - universe.cluster(id).level();
      if (weight == 0) continue;  // trivial all-* rule scores 0
      int mcount = 0;
      double msum = 0.0;
      for (int32_t e : universe.covered(id)) {
        if (!covered[static_cast<size_t>(e)]) {
          ++mcount;
          msum += s.value(e);
        }
      }
      if (mcount == 0) continue;
      double score = static_cast<double>(mcount) * weight;
      if (options.value_weighted) score *= msum / mcount;
      if (score > best_score) {
        best_score = score;
        best = id;
        best_rule.cluster_id = id;
        best_rule.marginal_count = mcount;
        best_rule.weight = weight;
        best_rule.marginal_avg = msum / mcount;
        best_rule.contribution = score;
      }
    }
    if (best < 0) break;  // everything covered
    chosen[static_cast<size_t>(best)] = 1;
    for (int32_t e : universe.covered(best)) {
      covered[static_cast<size_t>(e)] = 1;
    }
    result.total_score += best_rule.contribution;
    result.rules.push_back(best_rule);
  }
  return result;
}

}  // namespace qagview::baselines
