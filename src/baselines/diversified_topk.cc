#include "baselines/diversified_topk.h"

#include "core/cluster.h"

namespace qagview::baselines {

namespace {

// Depth-first exact search over elements in rank order.
struct ExactSearcher {
  const core::AnswerSet& s;
  int k, top_l, d;
  std::vector<int> current;
  double current_sum = 0.0;
  std::vector<int> best;
  double best_sum = -1.0;

  void Dfs(int next) {
    if (current_sum > best_sum) {
      best_sum = current_sum;
      best = current;
    }
    if (static_cast<int>(current.size()) == k || next >= top_l) return;
    // Upper bound prune: even taking the next (k - |current|) elements in
    // rank order cannot beat best.
    double bound = current_sum;
    int picks = k - static_cast<int>(current.size());
    for (int e = next; e < top_l && picks > 0; ++e, --picks) {
      bound += s.value(e);
    }
    if (bound <= best_sum) return;

    for (int e = next; e < top_l; ++e) {
      bool compatible = true;
      for (int other : current) {
        if (core::ElementDistance(s.element(e).attrs,
                                  s.element(other).attrs) < d) {
          compatible = false;
          break;
        }
      }
      if (!compatible) continue;
      current.push_back(e);
      current_sum += s.value(e);
      Dfs(e + 1);
      current.pop_back();
      current_sum -= s.value(e);
    }
  }
};

}  // namespace

Result<DiversifiedTopKResult> DiversifiedTopKExact(const core::AnswerSet& s,
                                                   int k, int top_l, int d) {
  if (k < 1 || top_l < 1 || top_l > s.size()) {
    return Status::InvalidArgument("bad k or L");
  }
  if (top_l > 40) {
    return Status::InvalidArgument(
        "exact diversified top-k is for small L (qualitative comparison)");
  }
  ExactSearcher searcher{s, k, top_l, d, {}, 0.0, {}, -1.0};
  searcher.Dfs(0);
  DiversifiedTopKResult result;
  result.element_ids = searcher.best;
  result.score_sum = searcher.best_sum < 0 ? 0.0 : searcher.best_sum;
  return result;
}

DiversifiedTopKResult DiversifiedTopKGreedy(const core::AnswerSet& s, int k,
                                            int top_l, int d) {
  DiversifiedTopKResult result;
  for (int e = 0; e < top_l && static_cast<int>(result.element_ids.size()) < k;
       ++e) {
    bool compatible = true;
    for (int other : result.element_ids) {
      if (core::ElementDistance(s.element(e).attrs, s.element(other).attrs) <
          d) {
        compatible = false;
        break;
      }
    }
    if (compatible) {
      result.element_ids.push_back(e);
      result.score_sum += s.value(e);
    }
  }
  return result;
}

double RepresentedAverage(const core::AnswerSet& s,
                          const std::vector<int>& element_ids, int radius) {
  double sum = 0.0;
  int count = 0;
  for (int e = 0; e < s.size(); ++e) {
    for (int rep : element_ids) {
      if (core::ElementDistance(s.element(e).attrs, s.element(rep).attrs) <=
          radius) {
        sum += s.value(e);
        ++count;
        break;
      }
    }
  }
  return count == 0 ? 0.0 : sum / count;
}

}  // namespace qagview::baselines
