#ifndef QAGVIEW_COMMON_HASH_H_
#define QAGVIEW_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace qagview {

/// Mixes `value`'s hash into `seed` (boost::hash_combine recipe).
template <typename T>
void HashCombine(size_t* seed, const T& value) {
  *seed ^= std::hash<T>()(value) + 0x9e3779b97f4a7c15ULL + (*seed << 6) +
           (*seed >> 2);
}

/// Hash functor for vectors of hashable elements; used to key cluster
/// patterns (vectors of int32 attribute codes) in hash maps.
template <typename T>
struct VectorHash {
  size_t operator()(const std::vector<T>& v) const {
    size_t seed = v.size();
    for (const T& x : v) HashCombine(&seed, x);
    return seed;
  }
};

}  // namespace qagview

#endif  // QAGVIEW_COMMON_HASH_H_
