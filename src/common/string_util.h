#ifndef QAGVIEW_COMMON_STRING_UTIL_H_
#define QAGVIEW_COMMON_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace qagview {

/// Joins the string forms of the elements with `sep`.
template <typename Container>
std::string Join(const Container& parts, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out << sep;
    out << p;
    first = false;
  }
  return out.str();
}

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);

/// Strict integer / double parsing (whole string must be consumed).
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// Concatenates the string forms of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}

/// Formats a double with the given number of decimal places.
std::string FormatDouble(double value, int precision);

}  // namespace qagview

#endif  // QAGVIEW_COMMON_STRING_UTIL_H_
