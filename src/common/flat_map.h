#ifndef QAGVIEW_COMMON_FLAT_MAP_H_
#define QAGVIEW_COMMON_FLAT_MAP_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace qagview {

/// \brief Open-addressing hash map from uint64 keys to int32 values,
/// specialized for the cluster-universe index hot path (packed cluster
/// patterns -> cluster ids).
///
/// Linear probing over a power-of-two table with splitmix64 key mixing;
/// keys and values live in flat arrays, so probes cost one cache line in
/// the common case (node-based std::unordered_map costs several).
///
/// The all-ones key is reserved as the empty marker. Packed patterns never
/// produce it: a lane holds code+1 (up to 255) or 0, and the single shape
/// that could saturate all eight lanes — 8 attributes, every domain exactly
/// 255 values — is rejected by ClusterUniverse::CanPack, which falls back
/// to the vector-keyed index for that corner. Any new FlatMap64 user must
/// guarantee the same exclusion itself.
class FlatMap64 {
 public:
  explicit FlatMap64(size_t expected = 0) { Reset(expected); }

  size_t size() const { return size_; }

  /// Clears and re-reserves.
  void Reset(size_t expected) {
    size_t capacity = 16;
    while (capacity < expected * 2) capacity <<= 1;
    keys_.assign(capacity, kEmpty);
    values_.assign(capacity, 0);
    mask_ = capacity - 1;
    size_ = 0;
  }

  /// Inserts key -> value if absent. Returns the current value and whether
  /// the insert happened.
  std::pair<int32_t, bool> FindOrInsert(uint64_t key, int32_t value) {
    QAG_DCHECK(key != kEmpty);
    if ((size_ + 1) * 10 >= (mask_ + 1) * 7) Grow();  // load factor 0.7
    size_t slot = Mix(key) & mask_;
    while (true) {
      if (keys_[slot] == kEmpty) {
        keys_[slot] = key;
        values_[slot] = value;
        ++size_;
        return {value, true};
      }
      if (keys_[slot] == key) return {values_[slot], false};
      slot = (slot + 1) & mask_;
    }
  }

  /// Returns the value for key, or `fallback` if absent.
  int32_t FindOr(uint64_t key, int32_t fallback) const {
    size_t slot = Mix(key) & mask_;
    while (true) {
      if (keys_[slot] == kEmpty) return fallback;
      if (keys_[slot] == key) return values_[slot];
      slot = (slot + 1) & mask_;
    }
  }

  bool Contains(uint64_t key) const {
    size_t slot = Mix(key) & mask_;
    while (true) {
      if (keys_[slot] == kEmpty) return false;
      if (keys_[slot] == key) return true;
      slot = (slot + 1) & mask_;
    }
  }

 private:
  static constexpr uint64_t kEmpty = ~0ULL;

  static uint64_t Mix(uint64_t x) {
    // splitmix64 finalizer.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  void Grow() {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<int32_t> old_values = std::move(values_);
    size_t capacity = (mask_ + 1) * 2;
    keys_.assign(capacity, kEmpty);
    values_.assign(capacity, 0);
    mask_ = capacity - 1;
    size_ = 0;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != kEmpty) FindOrInsert(old_keys[i], old_values[i]);
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<int32_t> values_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace qagview

#endif  // QAGVIEW_COMMON_FLAT_MAP_H_
