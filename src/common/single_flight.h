#ifndef QAGVIEW_COMMON_SINGLE_FLIGHT_H_
#define QAGVIEW_COMMON_SINGLE_FLIGHT_H_

#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/status.h"

namespace qagview {

/// \brief One in-flight build that concurrent requesters wait on — the
/// latch behind the single-flight caches in core::Session and
/// service::QueryService.
///
/// Protocol: the leader that created the registry entry performs the work,
/// publishes its result into the shared cache (under the cache's exclusive
/// lock) and removes the registry entry *before* calling Finish(), so
/// woken waiters always find either the published value or no entry (a
/// failed flight leaves no residue). Waiters block in Wait() and, on OK,
/// retry their cache lookup.
struct FlightLatch {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status = Status::OK();

  /// Blocks until the leader finished; returns its build status.
  Status Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return done; });
    return status;
  }

  void Finish(Status s) {
    {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      status = std::move(s);
    }
    cv.notify_all();
  }
};

}  // namespace qagview

#endif  // QAGVIEW_COMMON_SINGLE_FLIGHT_H_
