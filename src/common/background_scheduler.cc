#include "common/background_scheduler.h"

#include <utility>

namespace qagview {

BackgroundScheduler::BackgroundScheduler(int num_threads) {
  const int n = num_threads > 0 ? num_threads : 1;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { Loop(); });
  }
}

BackgroundScheduler::~BackgroundScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    for (auto& lane : lanes_) lane.clear();  // drop, don't drain
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void BackgroundScheduler::Submit(Lane lane, uint64_t token,
                                 std::function<void()> task) {
  const int li = static_cast<int>(lane);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    ++counters_[li].submitted;
    if (token != 0 && token < floor_) {
      // Already superseded at submission time (the catalog moved between
      // the caller's token read and here): never enqueue.
      ++counters_[li].dropped_superseded;
      return;
    }
    lanes_[li].push_back(Task{token, std::move(task)});
  }
  cv_.notify_one();
}

void BackgroundScheduler::InvalidateBelow(uint64_t floor) {
  std::lock_guard<std::mutex> lock(mu_);
  if (floor <= floor_) return;
  floor_ = floor;
  DropSupersededLocked();
  // Dropping may have emptied the queues while a Drain() waits.
  if (active_ == 0 && RunnableLaneLocked() < 0) drained_cv_.notify_all();
}

void BackgroundScheduler::DropSupersededLocked() {
  for (int li = 0; li < kNumLanes; ++li) {
    auto& lane = lanes_[li];
    for (auto it = lane.begin(); it != lane.end();) {
      if (it->token != 0 && it->token < floor_) {
        it = lane.erase(it);
        ++counters_[li].dropped_superseded;
      } else {
        ++it;
      }
    }
  }
}

int BackgroundScheduler::RunnableLaneLocked() const {
  for (int li = 0; li < kNumLanes; ++li) {
    if (lanes_[li].empty()) continue;
    if (li == static_cast<int>(Lane::kPrefetch) &&
        foreground_active_.load(std::memory_order_acquire) > 0) {
      // Speculative work pauses while foreground requests are in flight.
      continue;
    }
    return li;
  }
  return -1;
}

void BackgroundScheduler::BeginForeground() {
  foreground_active_.fetch_add(1, std::memory_order_acq_rel);
}

void BackgroundScheduler::EndForeground() {
  if (foreground_active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last window closed: gated prefetch tasks may be runnable again. The
    // (empty) critical section orders the wake against a worker that is
    // between evaluating its predicate and parking.
    { std::lock_guard<std::mutex> lock(mu_); }
    cv_.notify_all();
  }
}

void BackgroundScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] {
    if (active_ != 0) return false;
    for (const auto& lane : lanes_) {
      if (!lane.empty()) return false;
    }
    return true;
  });
}

BackgroundScheduler::Counters BackgroundScheduler::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counters out;
  for (int li = 0; li < kNumLanes; ++li) out.lanes[li] = counters_[li];
  return out;
}

void BackgroundScheduler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return stop_ || RunnableLaneLocked() >= 0; });
    if (stop_) return;
    const int li = RunnableLaneLocked();
    Task task = std::move(lanes_[li].front());
    lanes_[li].pop_front();
    // The floor only rises, so a token valid here was valid for the whole
    // queued interval: no invalidation separates submit from run.
    ++active_;
    lock.unlock();
    task.fn();
    lock.lock();
    --active_;
    ++counters_[li].ran;
    if (active_ == 0 && RunnableLaneLocked() < 0) drained_cv_.notify_all();
  }
}

}  // namespace qagview
