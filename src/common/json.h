#ifndef QAGVIEW_COMMON_JSON_H_
#define QAGVIEW_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace qagview::json {

/// \brief Small dependency-free JSON document: the wire format of the
/// `src/server/` front end and the `bench` load generator.
///
/// Design constraints, in order:
///
///  * **Exact numeric round-trips.** Doubles are written in the shortest
///    form that parses back to the same bit pattern (std::to_chars), and
///    integer-looking tokens are kept as int64 — so a response serialized
///    by the server and re-parsed by a client compares bit-identical to
///    the in-process structs (the server_test bit-identity contract).
///  * **Hostile input never crashes.** Parse() is depth-limited, rejects
///    trailing garbage, validates escapes and UTF-16 surrogate pairs, and
///    returns Status::ParseError with an offset instead of throwing — the
///    malformed-request corpus in server_test drives byte soups through
///    it, mirroring csv_fuzz_test.
///  * **Deterministic output.** Objects preserve insertion order (a vector
///    of pairs, not a map), so serializations are reproducible and
///    duplicate keys survive a round trip (lookup returns the first).
///
/// Numbers have one Kind (kNumber) with an integer flavor: Json::Int
/// stores an exact int64 (printed without a decimal point), Json::Number
/// stores a double. Parsing classifies tokens the same way: no fraction,
/// no exponent, fits int64 -> integer flavor. AsDouble() reads both.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Defaults to null.
  Json() = default;

  static Json Null() { return Json(); }
  static Json Bool(bool v) {
    Json out;
    out.kind_ = Kind::kBool;
    out.bool_ = v;
    return out;
  }
  static Json Number(double v) {
    Json out;
    out.kind_ = Kind::kNumber;
    out.double_ = v;
    return out;
  }
  static Json Int(int64_t v) {
    Json out;
    out.kind_ = Kind::kNumber;
    out.is_int_ = true;
    out.int_ = v;
    out.double_ = static_cast<double>(v);
    return out;
  }
  static Json Str(std::string v) {
    Json out;
    out.kind_ = Kind::kString;
    out.string_ = std::move(v);
    return out;
  }
  static Json Array() {
    Json out;
    out.kind_ = Kind::kArray;
    return out;
  }
  static Json Object() {
    Json out;
    out.kind_ = Kind::kObject;
    return out;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  /// Number carrying an exact int64 (never true for 1.5 or 1e3 inputs).
  bool is_int() const { return kind_ == Kind::kNumber && is_int_; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Unchecked accessors: the caller has already verified kind() (the
  /// serde layer validates before reading; misuse aborts via QAG_CHECK in
  /// debug-style fashion — here we keep it simple and defined).
  bool AsBool() const { return bool_; }
  double AsDouble() const {
    return is_int_ ? static_cast<double>(int_) : double_;
  }
  int64_t AsInt() const {
    return is_int_ ? int_ : static_cast<int64_t>(double_);
  }
  const std::string& AsString() const { return string_; }

  // --- Arrays ------------------------------------------------------------

  size_t size() const { return items_.size(); }
  const Json& at(size_t i) const { return items_[i].second; }
  Json& Append(Json value) {
    items_.emplace_back(std::string(), std::move(value));
    return items_.back().second;
  }

  // --- Objects (ordered; first match wins on lookup) ----------------------

  /// Member pointer or nullptr. Objects only; null/other kinds find nothing.
  const Json* Find(std::string_view key) const {
    if (kind_ != Kind::kObject) return nullptr;
    for (const auto& [k, v] : items_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  Json& Set(std::string key, Json value) {
    items_.emplace_back(std::move(key), std::move(value));
    return items_.back().second;
  }
  /// Object members (or array elements with empty keys), in order.
  const std::vector<std::pair<std::string, Json>>& items() const {
    return items_;
  }

  /// Compact serialization (no whitespace). Numbers round-trip exactly;
  /// strings are escaped (control chars as \u00XX); non-finite doubles are
  /// written as null (JSON has no NaN/Inf).
  std::string Dump() const;

  /// Parses a complete JSON document. The whole input must be consumed
  /// (trailing non-whitespace is an error). Nesting is limited to
  /// `max_depth` (hostile [[[[... input fails cleanly instead of
  /// overflowing the stack).
  static Result<Json> Parse(std::string_view text, int max_depth = 96);

 private:
  void DumpTo(std::string* out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  bool is_int_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  /// Object members (key, value) or array elements (key empty).
  std::vector<std::pair<std::string, Json>> items_;
};

/// Appends `s` as a quoted, escaped JSON string literal.
void AppendQuoted(std::string_view s, std::string* out);

/// Shortest decimal form of `v` that parses back to the same double
/// ("0.1", "3.141592653589793"); "null" for NaN/Inf.
std::string FormatJsonNumber(double v);

}  // namespace qagview::json

#endif  // QAGVIEW_COMMON_JSON_H_
