#ifndef QAGVIEW_COMMON_THREAD_POOL_H_
#define QAGVIEW_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace qagview {

/// \brief Deterministic fixed-size thread pool for the precomputation and
/// initialization hot paths (parallel per-D replays, sharded coverage
/// scans).
///
/// Design constraints, in order:
///
///  * **Determinism of results.** There is no work stealing and no nested
///    submission; a `ParallelFor` body must write only to slots owned by its
///    index (or its shard), so the output is bit-identical regardless of
///    which worker executes which index. Index *assignment* is dynamic (an
///    atomic cursor, for load balance across uneven per-D replays), which is
///    safe precisely because bodies are index-pure.
///
///  * **Serial fallback.** `num_threads == 1` spawns no workers and runs
///    every body inline on the caller, so the single-threaded path is
///    exactly the pre-pool code path (no locks, no atomics in the loop).
///
///  * **Exception propagation.** The first exception thrown by any body
///    aborts the remaining iterations and is rethrown on the calling thread
///    once all workers have quiesced.
///
/// The pool keeps its workers parked on a condition variable between jobs.
/// `ParallelFor` may be called repeatedly, but only from one thread at a
/// time (the pool is an engine internal, not a general-purpose scheduler).
class ThreadPool {
 public:
  /// Worker count used for `num_threads <= 0`: the hardware concurrency,
  /// clamped to at least 1 (hardware_concurrency() may return 0).
  static int DefaultNumThreads() {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

  explicit ThreadPool(int num_threads = 0)
      : num_threads_(num_threads > 0 ? num_threads : DefaultNumThreads()) {
    workers_.reserve(static_cast<size_t>(num_threads_ - 1));
    // The calling thread participates in every job, so only n-1 workers.
    for (int i = 1; i < num_threads_; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    job_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Invokes fn(i) for every i in [begin, end), distributed over the pool.
  /// Blocks until every iteration completed (or one threw; see above).
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& fn) {
    if (end <= begin) return;
    if (num_threads_ == 1 || end - begin == 1) {
      for (int64_t i = begin; i < end; ++i) fn(i);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      QAG_CHECK(fn_ == nullptr) << "ParallelFor is not reentrant";
      fn_ = &fn;
      end_ = end;
      next_.store(begin, std::memory_order_relaxed);
      pending_workers_ = num_threads_ - 1;
      ++epoch_;
    }
    job_cv_.notify_all();
    RunCurrentJob();  // caller is worker 0
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
    fn_ = nullptr;
    if (exception_) {
      std::exception_ptr e = exception_;
      exception_ = nullptr;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

  /// Splits [begin, end) into exactly num_threads() contiguous shards in
  /// ascending order (trailing shards may be empty) and invokes
  /// fn(shard, shard_begin, shard_end) for each. Merging per-shard results
  /// in shard order therefore preserves the original index order — the
  /// contract the coverage-scan merge relies on.
  void ParallelForShards(
      int64_t begin, int64_t end,
      const std::function<void(int, int64_t, int64_t)>& fn) {
    if (end <= begin) return;
    const int64_t total = end - begin;
    const int64_t shards = num_threads_;
    ParallelFor(0, shards, [&](int64_t shard) {
      int64_t lo = begin + total * shard / shards;
      int64_t hi = begin + total * (shard + 1) / shards;
      if (lo < hi) fn(static_cast<int>(shard), lo, hi);
    });
  }

 private:
  void WorkerLoop() {
    uint64_t seen_epoch = 0;
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      job_cv_.wait(lock,
                   [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      lock.unlock();
      RunCurrentJob();
      lock.lock();
      if (--pending_workers_ == 0) done_cv_.notify_all();
    }
  }

  /// Drains the shared index cursor. On exception, records the first one
  /// and fast-forwards the cursor so all participants stop claiming work.
  void RunCurrentJob() {
    while (true) {
      int64_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= end_) return;
      try {
        (*fn_)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!exception_) exception_ = std::current_exception();
        next_.store(end_, std::memory_order_relaxed);
        return;
      }
    }
  }

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_cv_;   // workers wait here between jobs
  std::condition_variable done_cv_;  // caller waits here for quiescence
  bool stop_ = false;
  uint64_t epoch_ = 0;      // bumped per job; workers compare-and-run
  int pending_workers_ = 0;  // workers yet to finish the current job
  const std::function<void(int64_t)>* fn_ = nullptr;
  int64_t end_ = 0;
  std::atomic<int64_t> next_{0};
  std::exception_ptr exception_;
};

// Deferred (fire-and-forget) work does not live here: it goes through
// common/background_scheduler.h, the one prioritized, cancelable home for
// refinement, prefetch, and warm-start tasks. ThreadPool remains the
// engine-internal primitive for *synchronous* data parallelism — the
// caller participates and blocks until the job completes — which is a
// different contract from deferral, not a competing executor.

}  // namespace qagview

#endif  // QAGVIEW_COMMON_THREAD_POOL_H_
