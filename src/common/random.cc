#include "common/random.h"

#include <cmath>

namespace qagview {

int64_t Rng::Zipf(int64_t n, double theta) {
  QAG_DCHECK(n > 0);
  if (n == 1) return 0;
  // Inverse-CDF sampling over the truncated zeta distribution. n is small
  // (attribute domain sizes), so the linear scan is fine.
  double norm = 0.0;
  for (int64_t i = 0; i < n; ++i) norm += 1.0 / std::pow(i + 1.0, theta);
  double u = Uniform01() * norm;
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(i + 1.0, theta);
    if (u <= acc) return i;
  }
  return n - 1;
}

size_t Rng::WeightedChoice(const std::vector<double>& weights) {
  QAG_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    QAG_DCHECK(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) return Index(static_cast<int64_t>(weights.size()));
  double u = Uniform01() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u <= acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace qagview
