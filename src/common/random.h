#ifndef QAGVIEW_COMMON_RANDOM_H_
#define QAGVIEW_COMMON_RANDOM_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.h"

namespace qagview {

/// \brief Deterministic pseudo-random source used across generators,
/// randomized algorithm variants, and tests.
///
/// All QAGView randomness flows through explicitly seeded Rng instances so
/// experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    QAG_DCHECK(lo <= hi) << "Uniform(" << lo << "," << hi << ")";
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t Index(int64_t n) { return Uniform(0, n - 1); }

  /// Uniform double in [0, 1).
  double Uniform01() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformReal(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform01() < p; }

  /// Zipf-like skewed index in [0, n): probability of i proportional to
  /// 1/(i+1)^theta. Used by the synthetic data generators to produce the
  /// skewed attribute-value frequencies real datasets exhibit.
  int64_t Zipf(int64_t n, double theta);

  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Picks one element uniformly at random. Requires non-empty input.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    QAG_DCHECK(!v.empty());
    return v[Index(static_cast<int64_t>(v.size()))];
  }

  /// Picks an index according to the (unnormalized, non-negative) weights.
  size_t WeightedChoice(const std::vector<double>& weights);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qagview

#endif  // QAGVIEW_COMMON_RANDOM_H_
