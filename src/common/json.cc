#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace qagview::json {

namespace {

bool IsJsonWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp <= 0x7F) {
    out->push_back(static_cast<char>(cp));
  } else if (cp <= 0x7FF) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0xFFFF) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// Recursive-descent parser over a string_view with an explicit cursor.
/// Every entry point leaves the cursor after the value it consumed.
class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<Json> Run() {
    SkipWhitespace();
    Json root;
    QAG_RETURN_IF_ERROR(ParseValue(0, &root));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return root;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError(
        StrCat("JSON: ", what, " at offset ", pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && IsJsonWhitespace(text_[pos_])) ++pos_;
  }

  bool Peek(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  bool Consume(char c) {
    if (!Peek(c)) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Status ParseValue(int depth, Json* out) {
    if (depth > max_depth_) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        QAG_RETURN_IF_ERROR(ParseString(&s));
        *out = Json::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = Json::Bool(true);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = Json::Bool(false);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = Json::Null();
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(int depth, Json* out) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (!Peek('"')) return Error("expected object key string");
      std::string key;
      QAG_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      Json value;
      QAG_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(int depth, Json* out) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWhitespace();
      Json value;
      QAG_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      out->Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape digit");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\\'
      if (pos_ >= text_.size()) return Error("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          QAG_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!ConsumeLiteral("\\u")) {
              return Error("high surrogate not followed by \\u escape");
            }
            uint32_t low = 0;
            QAG_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseNumber(Json* out) {
    const size_t start = pos_;
    bool is_int = true;
    if (Consume('-')) {
    }
    // Integer part: "0" alone or a nonzero digit run (no leading zeros).
    if (Consume('0')) {
      // ok
    } else if (pos_ < text_.size() && text_[pos_] >= '1' &&
               text_[pos_] <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    } else {
      return Error("invalid number");
    }
    if (Consume('.')) {
      is_int = false;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (Consume('e') || Consume('E')) {
      is_int = false;
      if (!Consume('+')) Consume('-');
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (is_int) {
      int64_t value = 0;
      auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        *out = Json::Int(value);
        return Status::OK();
      }
      // Out of int64 range: fall through to double.
    }
    double value = 0.0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc::result_out_of_range) {
      // Per strtod convention: overflow to +-inf is not representable in
      // JSON; reject rather than silently clamping.
      return Error("number out of range");
    }
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Error("invalid number");
    }
    *out = Json::Number(value);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  int max_depth_;
};

}  // namespace

void AppendQuoted(std::string_view s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

std::string FormatJsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "null";  // cannot happen with this buffer
  return std::string(buf, ptr);
}

void Json::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      return;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Kind::kNumber:
      if (is_int_) {
        char buf[32];
        auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), int_);
        (void)ec;
        out->append(buf, ptr);
      } else {
        out->append(FormatJsonNumber(double_));
      }
      return;
    case Kind::kString:
      AppendQuoted(string_, out);
      return;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const auto& [key, value] : items_) {
        (void)key;
        if (!first) out->push_back(',');
        first = false;
        value.DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : items_) {
        if (!first) out->push_back(',');
        first = false;
        AppendQuoted(key, out);
        out->push_back(':');
        value.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

Result<Json> Json::Parse(std::string_view text, int max_depth) {
  return Parser(text, max_depth).Run();
}

}  // namespace qagview::json
