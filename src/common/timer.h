#ifndef QAGVIEW_COMMON_TIMER_H_
#define QAGVIEW_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace qagview {

/// \brief Simple monotonic wall-clock stopwatch used by benchmarks and the
/// precomputation layer.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qagview

#endif  // QAGVIEW_COMMON_TIMER_H_
