#ifndef QAGVIEW_COMMON_SHARDED_STATS_H_
#define QAGVIEW_COMMON_SHARDED_STATS_H_

#include <atomic>
#include <cstddef>

namespace qagview {

/// A small, stable ordinal for the calling thread, assigned round-robin on
/// first use. Unlike hashing std::thread::id, the first N threads of a
/// process are guaranteed distinct ordinals, so with N statistic shards
/// they never false-share a counter cacheline.
inline std::size_t ThreadStatOrdinal() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// \brief Per-thread sharded statistics: a fixed array of cacheline-padded
/// `Shard` objects, indexed by ThreadStatOrdinal().
///
/// The warm serving paths must not contend on anything — including their
/// own bookkeeping. A single shared `std::atomic` counter is lock-free but
/// still bounces its cacheline between every incrementing core; with one
/// padded shard per thread (modulo N), increments are core-local writes
/// and the cost moves to the cold aggregate-on-read side, which sums every
/// shard. Shard members should still be relaxed atomics: two threads can
/// share a shard once more than N threads exist, and the reader sums
/// concurrently with writers. Sums are exact whenever the reader
/// happens-after the writers (e.g. after thread join); mid-race reads are
/// monotonic snapshots.
template <typename Shard, std::size_t N = 16>
class Sharded {
  static_assert((N & (N - 1)) == 0, "shard count must be a power of two");

 public:
  /// The calling thread's shard.
  Shard& Local() { return shards_[ThreadStatOrdinal() & (N - 1)].shard; }

  /// Visits every shard (aggregate-on-read).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Padded& padded : shards_) fn(padded.shard);
  }

 private:
  struct alignas(64) Padded {
    Shard shard;
  };
  Padded shards_[N];
};

}  // namespace qagview

#endif  // QAGVIEW_COMMON_SHARDED_STATS_H_
