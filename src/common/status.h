#ifndef QAGVIEW_COMMON_STATUS_H_
#define QAGVIEW_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace qagview {

/// \brief Canonical error space used across the library.
///
/// QAGView does not throw exceptions across public API boundaries; fallible
/// operations return a Status (or Result<T>, see common/result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kParseError,
  kIOError,
  kInternal,
};

/// \brief Returns a short human-readable name for a StatusCode
/// (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief A success-or-error value, modeled after absl::Status / rocksdb
/// Status.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Statuses are cheap to copy (OK carries no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Named constructors for each error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace qagview

/// Propagates an error Status from the current function.
#define QAG_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::qagview::Status _qag_status = (expr);      \
    if (!_qag_status.ok()) return _qag_status;   \
  } while (false)

#endif  // QAGVIEW_COMMON_STATUS_H_
