#ifndef QAGVIEW_COMMON_BACKGROUND_SCHEDULER_H_
#define QAGVIEW_COMMON_BACKGROUND_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qagview {

/// \brief The one home for all deferred work: a prioritized, cancelable
/// task scheduler with three lanes.
///
/// Background execution used to be scattered (a private one-thread FIFO
/// executor for refinement, nothing for speculative work); none of that
/// could express "spend idle cycles speculatively, yield instantly to
/// foreground work." The scheduler expresses exactly that:
///
///  * **Lanes, strictly prioritized.** A freed worker always takes the
///    oldest task from the highest non-empty lane: kForegroundBuild (work
///    a just-served client is about to need, e.g. warm-start snapshot
///    loads) beats kRefinement (exact builds behind approximate answers)
///    beats kPrefetch (speculative builds and snapshot writes). Within a
///    lane, FIFO.
///  * **Validity tokens, superseded work dropped.** Every task carries a
///    uint64 token — by convention the catalog version it was scheduled
///    under; 0 means "never superseded." InvalidateBelow(floor) drops every
///    queued task whose nonzero token is below `floor` without running it
///    (and a Submit after the floor rose drops immediately), so a dataset
///    update cancels the speculative work it just invalidated instead of
///    letting it burn cycles building structures for a retired generation.
///    A task's token proves more than liveness: token still valid at
///    dequeue means no invalidation happened between submit and run.
///  * **Foreground yield.** While any BeginForeground/EndForeground window
///    (or ForegroundGuard) is open, workers do not *start* kPrefetch tasks
///    — a running one is never interrupted, but the speculative queue
///    pauses until the foreground burst ends. The two higher lanes are
///    not gated: their work is owed, not speculative.
///
/// Submit never blocks and never runs the task inline. Shutdown drops, it
/// does not drain: the destructor lets running tasks finish, discards
/// everything still queued, and joins. Tasks must therefore be safe to
/// never run, and must not reference state destroyed before the scheduler
/// — declare a BackgroundScheduler *last* in the owning class so it is
/// destroyed (and quiesced) first. Drain() exists for tests and benches
/// that need a quiescent state.
class BackgroundScheduler {
 public:
  enum class Lane {
    kForegroundBuild = 0,  // a client is (about to be) waiting on this
    kRefinement = 1,       // owed work: exact builds behind approx answers
    kPrefetch = 2,         // speculative: droppable, yields to foreground
  };
  static constexpr int kNumLanes = 3;

  /// Per-lane lifetime counters (monotonic; consistent under counters()).
  struct LaneCounters {
    int64_t submitted = 0;  // Submit() calls accepted or dropped below
    int64_t ran = 0;        // tasks actually executed to completion
    /// Queued (or just-submitted) tasks whose token fell below the
    /// invalidation floor and were discarded without running.
    int64_t dropped_superseded = 0;
  };
  struct Counters {
    LaneCounters lanes[kNumLanes];
    const LaneCounters& lane(Lane lane) const {
      return lanes[static_cast<int>(lane)];
    }
  };

  explicit BackgroundScheduler(int num_threads = 1);
  ~BackgroundScheduler();

  BackgroundScheduler(const BackgroundScheduler&) = delete;
  BackgroundScheduler& operator=(const BackgroundScheduler&) = delete;

  /// Enqueues `task` on `lane` and returns immediately. `token` is the
  /// validity token (0 = never superseded). After shutdown began, or when
  /// the nonzero token is already below the invalidation floor, the task
  /// is silently dropped (callers must tolerate tasks never running).
  void Submit(Lane lane, uint64_t token, std::function<void()> task);

  /// Raises the invalidation floor: every queued task with a nonzero
  /// token < `floor` is dropped, never run. Call with the new catalog
  /// version after a dataset mutation. The floor is monotonic; stale
  /// (lower) calls are no-ops.
  void InvalidateBelow(uint64_t floor);

  /// Foreground-activity gate. While the count of open windows is > 0,
  /// workers do not start kPrefetch tasks. Begin is wait-free (one atomic
  /// increment); End takes the scheduler mutex only when closing the last
  /// window (to wake workers parked on gated prefetch work).
  void BeginForeground();
  void EndForeground();

  /// RAII foreground window; a null scheduler makes it a no-op, so call
  /// sites can gate on configuration without branching.
  class ForegroundGuard {
   public:
    explicit ForegroundGuard(BackgroundScheduler* scheduler)
        : scheduler_(scheduler) {
      if (scheduler_ != nullptr) scheduler_->BeginForeground();
    }
    ~ForegroundGuard() {
      if (scheduler_ != nullptr) scheduler_->EndForeground();
    }
    ForegroundGuard(const ForegroundGuard&) = delete;
    ForegroundGuard& operator=(const ForegroundGuard&) = delete;

   private:
    BackgroundScheduler* scheduler_;
  };

  /// Blocks until every lane is empty and no task is running. Gated
  /// prefetch tasks still count as pending: Drain waits for the foreground
  /// window to close and the work to run (or be invalidated). Only
  /// meaningful when no concurrent Submit is racing (tests, benches).
  void Drain();

  Counters counters() const;

 private:
  struct Task {
    uint64_t token = 0;
    std::function<void()> fn;
  };

  void Loop();
  /// Caller holds mu_. Drops queued tasks with nonzero token < floor_.
  void DropSupersededLocked();
  /// Caller holds mu_. Index of the highest-priority lane with a task a
  /// worker may start now, or -1.
  int RunnableLaneLocked() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  std::deque<Task> lanes_[kNumLanes];
  LaneCounters counters_[kNumLanes];
  uint64_t floor_ = 0;
  int active_ = 0;
  bool stop_ = false;
  std::atomic<int64_t> foreground_active_{0};
  std::vector<std::thread> workers_;
};

}  // namespace qagview

#endif  // QAGVIEW_COMMON_BACKGROUND_SCHEDULER_H_
