#ifndef QAGVIEW_COMMON_RESULT_H_
#define QAGVIEW_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "common/status.h"

namespace qagview {

/// \brief Holds either a value of type T or an error Status, modeled after
/// absl::StatusOr / arrow::Result.
///
/// Accessing the value of an error Result aborts the process (programming
/// error); callers must test ok() or use the QAG_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from an error Status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      std::cerr << "Result constructed from OK status without a value\n";
      std::abort();
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T& value() & {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return *std::move(value_);
  }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void EnsureOk() const {
    if (!status_.ok()) {
      std::cerr << "Accessed value of error Result: " << status_.ToString()
                << "\n";
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace qagview

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// assigns the value to `lhs`.
#define QAG_ASSIGN_OR_RETURN(lhs, rexpr)                  \
  QAG_ASSIGN_OR_RETURN_IMPL(                              \
      QAG_RESULT_CONCAT(_qag_result_, __LINE__), lhs, rexpr)

#define QAG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define QAG_RESULT_CONCAT_INNER(a, b) a##b
#define QAG_RESULT_CONCAT(a, b) QAG_RESULT_CONCAT_INNER(a, b)

#endif  // QAGVIEW_COMMON_RESULT_H_
