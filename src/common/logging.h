#ifndef QAGVIEW_COMMON_LOGGING_H_
#define QAGVIEW_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace qagview {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// \brief Sets the minimum level that is actually emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// One in-flight log statement; emits on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed message when the statement is compiled out.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace qagview

#define QAG_LOG(level)                                              \
  ::qagview::internal::LogMessage(::qagview::LogLevel::k##level,    \
                                  __FILE__, __LINE__)

/// Fatal assertion: always on, aborts with the streamed message on failure.
/// Supports streaming extra context: QAG_CHECK(x > 0) << "x=" << x;
#define QAG_CHECK(cond)                                             \
  while (!(cond))                                                   \
  ::qagview::internal::LogMessage(::qagview::LogLevel::kFatal,      \
                                  __FILE__, __LINE__)               \
      << "Check failed: " #cond " "

#define QAG_CHECK_OK(expr)                                          \
  do {                                                              \
    ::qagview::Status _qag_st = (expr);                             \
    QAG_CHECK(_qag_st.ok()) << _qag_st.ToString();                  \
  } while (false)

#ifdef NDEBUG
// Compiled out, but keeps `cond`'s operands "used" to avoid warnings.
#define QAG_DCHECK(cond) \
  while (false && (cond)) ::qagview::internal::NullLog()
#else
#define QAG_DCHECK(cond) QAG_CHECK(cond)
#endif

#endif  // QAGVIEW_COMMON_LOGGING_H_
