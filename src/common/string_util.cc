#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <iomanip>

namespace qagview {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf(StripWhitespace(s));
  if (buf.empty()) return Status::ParseError("empty integer literal");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::ParseError("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid integer literal: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(StripWhitespace(s));
  if (buf.empty()) return Status::ParseError("empty numeric literal");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::ParseError("number out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid numeric literal: " + buf);
  }
  return v;
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

}  // namespace qagview
