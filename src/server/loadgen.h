#ifndef QAGVIEW_SERVER_LOADGEN_H_
#define QAGVIEW_SERVER_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "server/http.h"

namespace qagview::server {

/// One scripted request of a load-generation run. Scripts are built by the
/// caller (typically by serializing service/api.h requests with
/// server/serde.h) and replayed round-robin.
struct LoadgenRequest {
  std::string method = "POST";
  std::string target;
  std::string body;
};

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Offered load in requests/second. **Open loop**: request i is due at
  /// start + i/rate regardless of how long earlier requests take, so
  /// queueing delay shows up in the measured latency instead of silently
  /// throttling the offered load (the closed-loop lie / coordinated
  /// omission).
  double rate = 100.0;
  int total_requests = 1000;
  /// Client threads; request i is issued by thread i % num_threads. Enough
  /// threads must be configured that a slow response on one does not starve
  /// the schedule of the others.
  int num_threads = 4;
  HttpLimits limits;
};

struct LoadgenResults {
  int64_t issued = 0;
  int64_t ok = 0;                // 2xx
  int64_t http_503 = 0;          // shed by admission control
  int64_t http_4xx = 0;
  int64_t http_5xx = 0;          // 5xx other than 503
  int64_t transport_errors = 0;  // connect/read failures, no response
  double duration_s = 0.0;
  double achieved_rps = 0.0;  // completed responses / duration
  /// Latency is measured from each request's *scheduled* arrival time, not
  /// from when the client thread got around to sending it — waiting behind
  /// a previous slow response counts against the server, as it would for a
  /// real newly-arriving client.
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
};

/// Replays `script` round-robin at the configured open-loop rate and
/// reports latency percentiles and response-class counts. Blocks until all
/// requests have completed (or failed).
LoadgenResults RunOpenLoop(const std::vector<LoadgenRequest>& script,
                           const LoadgenOptions& options);

}  // namespace qagview::server

#endif  // QAGVIEW_SERVER_LOADGEN_H_
