#ifndef QAGVIEW_SERVER_SERDE_H_
#define QAGVIEW_SERVER_SERDE_H_

#include "common/json.h"
#include "common/result.h"
#include "service/api.h"

/// \file
/// \brief Bidirectional JSON (de)serialization of the service/api.h
/// request/response structs — the server's wire format, shared with the
/// load generator.
///
/// Round-trip fidelity is the contract: ToJson followed by FromJson yields
/// a struct that compares field-for-field (bit-for-bit for doubles, via
/// json::FormatJsonNumber's shortest round-trip form) with the original,
/// which is what lets server_test assert bit-identity between an HTTP
/// response and a direct QueryService call. FromJson validates types and
/// required fields and returns InvalidArgument — never crashes — on
/// hostile documents; unknown fields are ignored (forward compatibility).

namespace qagview::server {

// --- Requests (parsed by the server, written by clients) -----------------

json::Json ToJson(const service::QueryRequest& request);
json::Json ToJson(const service::SummarizeRequest& request);
json::Json ToJson(const service::GuidanceRequest& request);
json::Json ToJson(const service::RetrieveRequest& request);
json::Json ToJson(const service::ExploreRequest& request);
json::Json ToJson(const service::RefineRequest& request);
json::Json ToJson(const service::AppendRowsRequest& request);

Result<service::QueryRequest> QueryRequestFromJson(const json::Json& doc);
Result<service::SummarizeRequest> SummarizeRequestFromJson(
    const json::Json& doc);
Result<service::GuidanceRequest> GuidanceRequestFromJson(
    const json::Json& doc);
Result<service::RetrieveRequest> RetrieveRequestFromJson(
    const json::Json& doc);
Result<service::ExploreRequest> ExploreRequestFromJson(const json::Json& doc);
Result<service::RefineRequest> RefineRequestFromJson(const json::Json& doc);
Result<service::AppendRowsRequest> AppendRowsRequestFromJson(
    const json::Json& doc);

// --- Responses (written by the server, parsed by clients/tests) ----------

json::Json ToJson(const service::QueryResponse& response);
json::Json ToJson(const service::SummarizeResponse& response);
json::Json ToJson(const service::GuidanceResponse& response);
json::Json ToJson(const service::RetrieveResponse& response);
json::Json ToJson(const service::ExploreResponse& response);
json::Json ToJson(const service::RefineResponse& response);
json::Json ToJson(const service::AppendRowsResponse& response);
json::Json ToJson(const service::ServiceStats& stats);

Result<service::QueryResponse> QueryResponseFromJson(const json::Json& doc);
Result<service::SummarizeResponse> SummarizeResponseFromJson(
    const json::Json& doc);
Result<service::GuidanceResponse> GuidanceResponseFromJson(
    const json::Json& doc);
Result<service::RetrieveResponse> RetrieveResponseFromJson(
    const json::Json& doc);
Result<service::ExploreResponse> ExploreResponseFromJson(
    const json::Json& doc);
Result<service::RefineResponse> RefineResponseFromJson(const json::Json& doc);
Result<service::AppendRowsResponse> AppendRowsResponseFromJson(
    const json::Json& doc);
Result<service::ServiceStats> ServiceStatsFromJson(const json::Json& doc);

// --- Shared pieces -------------------------------------------------------

json::Json ToJson(const service::RequestStats& stats);
json::Json ToJson(const service::ApproxMeta& meta);
json::Json ToJson(const core::Params& params);
json::Json ToJson(const core::Solution& solution);
json::Json ToJson(const core::TwoLayerView& view);

Result<service::RequestStats> RequestStatsFromJson(const json::Json& doc);
Result<service::ApproxMeta> ApproxMetaFromJson(const json::Json& doc);
Result<core::Params> ParamsFromJson(const json::Json& doc);
Result<core::Solution> SolutionFromJson(const json::Json& doc);
Result<core::TwoLayerView> TwoLayerViewFromJson(const json::Json& doc);

}  // namespace qagview::server

#endif  // QAGVIEW_SERVER_SERDE_H_
