#ifndef QAGVIEW_SERVER_SERVER_H_
#define QAGVIEW_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "server/http.h"
#include "service/query_service.h"

namespace qagview::server {

/// Knobs of the HTTP front end, fixed at Start().
struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks a free port, read it back via port().
  int port = 0;
  /// Fixed worker pool draining the accepted-connection queue.
  int num_workers = 4;
  /// Admission bound: accepted connections waiting for a worker. When the
  /// queue is full the *acceptor* answers 503 + Retry-After immediately —
  /// overload sheds load at the door instead of growing an unbounded
  /// backlog whose tail latency lies to every client.
  int max_queue = 64;
  /// Seconds advertised in the 503 Retry-After header.
  int retry_after_seconds = 1;
  HttpLimits limits;
};

/// Monotonic counters of the transport layer (the service keeps its own
/// request-mix counters; these cover what the service never sees: admission,
/// rejection, and wire failures). Readable at any time; exact after
/// Shutdown() joined the workers.
struct ServerStats {
  int64_t accepted = 0;       // connections accept() handed us
  int64_t admitted = 0;       // ... that made it into the worker queue
  int64_t rejected_503 = 0;   // ... shed at the door (queue full)
  int64_t served_2xx = 0;
  int64_t client_errors_4xx = 0;
  int64_t server_errors_5xx = 0;  // includes 501/503 written by workers
  int64_t io_errors = 0;  // peers gone mid-request; no response written
};

/// \brief Dependency-free HTTP/1.1 front end over QueryService: a blocking
/// acceptor thread feeding a fixed worker pool through a bounded queue.
///
/// Endpoints (all bodies JSON, Content-Type: application/json):
///
///   POST /query /summarize /guidance /retrieve /explore /refine
///        /append_rows   — the request/response pairs of service/api.h,
///                         (de)serialized by server/serde.h
///   GET  /stats          — service::ServiceStats + the ServerStats above
///   GET  /healthz        — 200 "ok" (load-balancer probe)
///
/// Error mapping: a Status from the service becomes
/// `{"error":{"code":"...","message":"..."}}` with InvalidArgument /
/// ParseError / OutOfRange / FailedPrecondition → 400, NotFound → 404,
/// Unimplemented → 501, anything else → 500. Malformed HTTP is answered
/// with the status ReadHttpRequest suggests and NEVER crashes the server
/// (the malformed-request corpus in server_test drives this).
///
/// **Shutdown is a graceful drain**: Shutdown() closes the listening
/// socket (no new admissions), lets the workers finish every connection
/// already admitted, joins all threads, and only then returns — zero
/// admitted requests are dropped, which server_test asserts by counting
/// responses across a SIGTERM-shaped shutdown.
///
/// The server owns no service state: it borrows a QueryService and speaks
/// JSON over sockets. Transport stays out of the core library (DESIGN
/// layering rules) — nothing under src/core or src/service includes this.
class HttpServer {
 public:
  HttpServer(service::QueryService* service, ServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and launches the acceptor + workers. Fails (IOError)
  /// if the address/port cannot be bound.
  Status Start();

  /// Graceful drain: stop accepting, finish every admitted connection,
  /// join all threads. Idempotent; also run by the destructor.
  void Shutdown();

  /// The bound port (the kernel's pick when options.port == 0). Valid
  /// after Start() succeeds.
  int port() const { return port_; }

  ServerStats stats() const;

 private:
  void AcceptLoop();
  void WorkerLoop();
  /// Serves one connection end to end: read, dispatch, write, close.
  void ServeConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request);

  service::QueryService* const service_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;  // accepted fds awaiting a worker

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  // Transport counters; relaxed is fine, they are independent monotonics.
  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> rejected_503_{0};
  std::atomic<int64_t> served_2xx_{0};
  std::atomic<int64_t> client_errors_4xx_{0};
  std::atomic<int64_t> server_errors_5xx_{0};
  std::atomic<int64_t> io_errors_{0};
};

}  // namespace qagview::server

#endif  // QAGVIEW_SERVER_SERVER_H_
