// qagview_server: the standalone HTTP front end.
//
//   qagview_server --port 8080 --workers 4 --queue 64
//       --dataset sales=path/to/sales.csv [--dataset more=other.csv]
//
// Serves the QueryService endpoints documented in server/server.h until
// SIGTERM or SIGINT, then drains gracefully (in-flight requests finish)
// and prints the transport + service counters.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "server/serde.h"
#include "server/server.h"
#include "service/query_service.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--workers N] [--queue N]\n"
               "          [--dataset name=path.csv]...\n"
               "          [--snapshot-dir DIR] [--prefetch]\n"
               "          [--background-threads N]\n"
               "\n"
               "  --snapshot-dir DIR      persist guidance grids to DIR and\n"
               "                          warm-start new sessions from them\n"
               "  --prefetch              speculatively build likely next\n"
               "                          exploration levels in the background\n"
               "  --background-threads N  workers for refinement/prefetch\n"
               "                          (default 1)\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qagview;

  server::ServerOptions options;
  options.port = 8080;
  service::ServiceOptions service_options;
  std::vector<std::pair<std::string, std::string>> datasets;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      options.bind_address = next();
    } else if (arg == "--port") {
      options.port = std::atoi(next());
    } else if (arg == "--workers") {
      options.num_workers = std::atoi(next());
    } else if (arg == "--queue") {
      options.max_queue = std::atoi(next());
    } else if (arg == "--snapshot-dir") {
      service_options.snapshot_dir = next();
    } else if (arg == "--prefetch") {
      service_options.prefetch = true;
    } else if (arg == "--background-threads") {
      service_options.background_threads = std::atoi(next());
    } else if (arg == "--dataset") {
      const std::string spec = next();
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--dataset expects name=path.csv, got %s\n",
                     spec.c_str());
        return 2;
      }
      datasets.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  // Block the shutdown signals in every thread the server will spawn, then
  // sigwait for them on the main thread: the classic drain-on-SIGTERM shape.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  service::QueryService service(service_options);
  for (const auto& [name, path] : datasets) {
    Status status = service.RegisterCsvFile(name, path);
    if (!status.ok()) {
      std::fprintf(stderr, "failed to load dataset %s from %s: %s\n",
                   name.c_str(), path.c_str(), status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded dataset %s from %s\n", name.c_str(),
                 path.c_str());
  }

  server::HttpServer http(&service, options);
  Status status = http.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "failed to start: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "qagview_server listening on %s:%d (%d workers)\n",
               options.bind_address.c_str(), http.port(),
               options.num_workers);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::fprintf(stderr, "signal %d: draining...\n", sig);
  http.Shutdown();

  const server::ServerStats transport = http.stats();
  std::fprintf(stderr,
               "drained. accepted=%lld admitted=%lld rejected_503=%lld "
               "served_2xx=%lld 4xx=%lld 5xx=%lld io_errors=%lld\n",
               static_cast<long long>(transport.accepted),
               static_cast<long long>(transport.admitted),
               static_cast<long long>(transport.rejected_503),
               static_cast<long long>(transport.served_2xx),
               static_cast<long long>(transport.client_errors_4xx),
               static_cast<long long>(transport.server_errors_5xx),
               static_cast<long long>(transport.io_errors));
  std::fprintf(stderr, "service stats: %s\n",
               server::ToJson(service.stats()).Dump().c_str());
  return 0;
}
