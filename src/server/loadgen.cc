#include "server/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace qagview::server {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-thread tallies, merged after the join (no shared mutable state while
/// the run is hot).
struct ThreadTally {
  int64_t issued = 0;
  int64_t ok = 0;
  int64_t http_503 = 0;
  int64_t http_4xx = 0;
  int64_t http_5xx = 0;
  int64_t transport_errors = 0;
  std::vector<double> latencies_ms;
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

LoadgenResults RunOpenLoop(const std::vector<LoadgenRequest>& script,
                           const LoadgenOptions& options) {
  LoadgenResults results;
  if (script.empty() || options.total_requests <= 0 || options.rate <= 0.0) {
    return results;
  }
  const int num_threads = std::max(1, options.num_threads);
  const double interval_s = 1.0 / options.rate;
  const Clock::time_point start = Clock::now();

  std::vector<ThreadTally> tallies(static_cast<size_t>(num_threads));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));

  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      ThreadTally& tally = tallies[static_cast<size_t>(t)];
      for (int i = t; i < options.total_requests; i += num_threads) {
        // The open-loop schedule: request i is due at start + i/rate,
        // independent of how long any earlier request took.
        const Clock::time_point due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(interval_s * i));
        std::this_thread::sleep_until(due);

        const LoadgenRequest& req = script[static_cast<size_t>(i) %
                                           script.size()];
        tally.issued++;
        Result<HttpClientResponse> response =
            HttpFetch(options.host, options.port, req.method, req.target,
                      req.body, options.limits);
        const double latency_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - due)
                .count();
        if (!response.ok()) {
          tally.transport_errors++;
          continue;
        }
        tally.latencies_ms.push_back(latency_ms);
        if (response->status == 503) {
          tally.http_503++;
        } else if (response->status >= 500) {
          tally.http_5xx++;
        } else if (response->status >= 400) {
          tally.http_4xx++;
        } else {
          tally.ok++;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  results.duration_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> latencies;
  for (const ThreadTally& tally : tallies) {
    results.issued += tally.issued;
    results.ok += tally.ok;
    results.http_503 += tally.http_503;
    results.http_4xx += tally.http_4xx;
    results.http_5xx += tally.http_5xx;
    results.transport_errors += tally.transport_errors;
    latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                     tally.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  results.p50_ms = Percentile(latencies, 0.50);
  results.p90_ms = Percentile(latencies, 0.90);
  results.p99_ms = Percentile(latencies, 0.99);
  results.p999_ms = Percentile(latencies, 0.999);
  results.max_ms = latencies.empty() ? 0.0 : latencies.back();
  if (results.duration_s > 0.0) {
    results.achieved_rps =
        static_cast<double>(latencies.size()) / results.duration_s;
  }
  return results;
}

}  // namespace qagview::server
