#ifndef QAGVIEW_SERVER_HTTP_H_
#define QAGVIEW_SERVER_HTTP_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace qagview::server {

/// Wire limits of the dependency-free HTTP/1.1 transport. Every limit
/// exists to keep a hostile or broken peer from holding a worker hostage:
/// oversized headers/bodies are rejected with the matching 4xx, and a peer
/// that stops sending trips the socket timeout instead of hanging a
/// worker forever.
struct HttpLimits {
  int max_header_bytes = 16 * 1024;
  int max_body_bytes = 1 << 20;
  /// SO_RCVTIMEO / SO_SNDTIMEO on the connection, per syscall.
  int io_timeout_ms = 5000;
};

/// One parsed request. The server speaks the minimal interoperable subset:
/// one request per connection (`Connection: close` on every response), no
/// keep-alive, no chunked transfer encoding.
struct HttpRequest {
  std::string method;   // "GET", "POST" — uppercase as received
  std::string target;   // "/query" — as received, no normalization
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with the given name (case-insensitive), or nullptr.
  const std::string* FindHeader(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  /// Extra headers; Content-Length, Connection, and the reason phrase are
  /// filled by SerializeResponse.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

/// Reads one request from a connected socket, enforcing `limits`. On
/// failure, `*error_status` suggests the HTTP status to answer with —
/// 400 malformed, 408 timeout, 411 missing Content-Length, 413 body too
/// large, 431 headers too large, 501 Transfer-Encoding — or 0 when the
/// peer is gone (EOF before the first byte, reset) and no response should
/// be written. Never crashes on hostile bytes; the malformed-request
/// corpus in server_test drives byte soups through this path.
Result<HttpRequest> ReadHttpRequest(int fd, const HttpLimits& limits,
                                    int* error_status);

/// Serializes a response with Content-Length, Connection: close, and the
/// standard reason phrase.
std::string SerializeResponse(const HttpResponse& response);

/// The reason phrase for a status code ("OK", "Service Unavailable", ...).
const char* ReasonPhrase(int status);

/// Writes all of `data` to `fd`, retrying on EINTR and honoring the socket
/// send timeout. Returns false if the peer went away or the timeout hit.
bool WriteFull(int fd, std::string_view data);

/// Sets SO_RCVTIMEO and SO_SNDTIMEO on a socket.
void SetSocketTimeouts(int fd, int timeout_ms);

/// One full client exchange against a loopback server: connect, send
/// `raw_request` verbatim, read until the peer closes, return the raw
/// response bytes. The test-side primitive for both well-formed requests
/// and the malformed corpus (which must be sent byte-for-byte, unfixed).
Result<std::string> HttpExchangeRaw(const std::string& host, int port,
                                    const std::string& raw_request,
                                    const HttpLimits& limits = HttpLimits());

/// A parsed client-side response.
struct HttpClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* FindHeader(std::string_view name) const;
};

/// Convenience client: issues `method target` with `body` (POST bodies get
/// a Content-Length) and parses the status line, headers, and body.
Result<HttpClientResponse> HttpFetch(const std::string& host, int port,
                                     const std::string& method,
                                     const std::string& target,
                                     const std::string& body,
                                     const HttpLimits& limits = HttpLimits());

}  // namespace qagview::server

#endif  // QAGVIEW_SERVER_HTTP_H_
