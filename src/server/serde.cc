#include "server/serde.h"

#include <utility>

#include "common/string_util.h"

namespace qagview::server {

using json::Json;

namespace {

// --- Validating readers --------------------------------------------------

Result<const Json*> Member(const Json& doc, std::string_view key) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("expected a JSON object");
  }
  const Json* found = doc.Find(key);
  if (found == nullptr) {
    return Status::InvalidArgument(StrCat("missing field \"", key, "\""));
  }
  return found;
}

Result<int64_t> GetInt(const Json& doc, std::string_view key) {
  QAG_ASSIGN_OR_RETURN(const Json* v, Member(doc, key));
  if (!v->is_int()) {
    return Status::InvalidArgument(
        StrCat("field \"", key, "\" must be an integer"));
  }
  return v->AsInt();
}

Result<double> GetDouble(const Json& doc, std::string_view key) {
  QAG_ASSIGN_OR_RETURN(const Json* v, Member(doc, key));
  if (!v->is_number()) {
    return Status::InvalidArgument(
        StrCat("field \"", key, "\" must be a number"));
  }
  return v->AsDouble();
}

Result<bool> GetBool(const Json& doc, std::string_view key) {
  QAG_ASSIGN_OR_RETURN(const Json* v, Member(doc, key));
  if (!v->is_bool()) {
    return Status::InvalidArgument(
        StrCat("field \"", key, "\" must be a boolean"));
  }
  return v->AsBool();
}

Result<std::string> GetString(const Json& doc, std::string_view key) {
  QAG_ASSIGN_OR_RETURN(const Json* v, Member(doc, key));
  if (!v->is_string()) {
    return Status::InvalidArgument(
        StrCat("field \"", key, "\" must be a string"));
  }
  return v->AsString();
}

Result<std::vector<int>> GetIntArray(const Json& doc, std::string_view key) {
  QAG_ASSIGN_OR_RETURN(const Json* v, Member(doc, key));
  if (!v->is_array()) {
    return Status::InvalidArgument(
        StrCat("field \"", key, "\" must be an array"));
  }
  std::vector<int> out;
  out.reserve(v->size());
  for (size_t i = 0; i < v->size(); ++i) {
    if (!v->at(i).is_int()) {
      return Status::InvalidArgument(
          StrCat("field \"", key, "\" must hold integers"));
    }
    out.push_back(static_cast<int>(v->at(i).AsInt()));
  }
  return out;
}

Json IntArrayToJson(const std::vector<int>& values) {
  Json out = Json::Array();
  for (int v : values) out.Append(Json::Int(v));
  return out;
}

const char* QueryModeName(service::QueryMode mode) {
  switch (mode) {
    case service::QueryMode::kExactOnly: return "exact_only";
    case service::QueryMode::kApproxFirst: return "approx_first";
    case service::QueryMode::kApproxOnly: return "approx_only";
  }
  return "exact_only";
}

Result<service::QueryMode> QueryModeFromName(std::string_view name) {
  if (name == "exact_only") return service::QueryMode::kExactOnly;
  if (name == "approx_first") return service::QueryMode::kApproxFirst;
  if (name == "approx_only") return service::QueryMode::kApproxOnly;
  return Status::InvalidArgument(StrCat("unknown query mode \"", name, "\""));
}

Json ToJson(const service::QueryOptions& options) {
  Json out = Json::Object();
  out.Set("mode", Json::Str(QueryModeName(options.mode)));
  out.Set("confidence", Json::Number(options.confidence));
  return out;
}

Result<service::QueryOptions> QueryOptionsFromJson(const Json& doc) {
  service::QueryOptions out;
  QAG_ASSIGN_OR_RETURN(std::string mode, GetString(doc, "mode"));
  QAG_ASSIGN_OR_RETURN(out.mode, QueryModeFromName(mode));
  QAG_ASSIGN_OR_RETURN(out.confidence, GetDouble(doc, "confidence"));
  return out;
}

Json ToJson(const core::PrecomputeOptions& options) {
  Json out = Json::Object();
  out.Set("k_min", Json::Int(options.k_min));
  out.Set("k_max", Json::Int(options.k_max));
  out.Set("d_values", IntArrayToJson(options.d_values));
  out.Set("c", Json::Int(options.c));
  out.Set("use_delta_judgment", Json::Bool(options.use_delta_judgment));
  // num_threads is a per-process execution knob, not request content:
  // it never changes the resulting store, so it does not travel.
  return out;
}

Result<core::PrecomputeOptions> PrecomputeOptionsFromJson(const Json& doc) {
  core::PrecomputeOptions out;
  QAG_ASSIGN_OR_RETURN(int64_t k_min, GetInt(doc, "k_min"));
  QAG_ASSIGN_OR_RETURN(int64_t k_max, GetInt(doc, "k_max"));
  QAG_ASSIGN_OR_RETURN(out.d_values, GetIntArray(doc, "d_values"));
  QAG_ASSIGN_OR_RETURN(int64_t c, GetInt(doc, "c"));
  QAG_ASSIGN_OR_RETURN(out.use_delta_judgment,
                       GetBool(doc, "use_delta_judgment"));
  out.k_min = static_cast<int>(k_min);
  out.k_max = static_cast<int>(k_max);
  out.c = static_cast<int>(c);
  return out;
}

Json ToJson(const storage::Value& value) {
  switch (value.type()) {
    case storage::ValueType::kNull: return Json::Null();
    case storage::ValueType::kInt64: return Json::Int(value.as_int());
    case storage::ValueType::kDouble: return Json::Number(value.as_double());
    case storage::ValueType::kString: return Json::Str(value.as_string());
  }
  return Json::Null();
}

Result<storage::Value> ValueFromJson(const Json& cell) {
  if (cell.is_null()) return storage::Value::Null();
  if (cell.is_string()) return storage::Value::Str(cell.AsString());
  if (cell.is_int()) return storage::Value::Int(cell.AsInt());
  if (cell.is_number()) return storage::Value::Real(cell.AsDouble());
  return Status::InvalidArgument(
      "row cells must be null, string, or number");
}

}  // namespace

// --- Shared pieces -------------------------------------------------------

Json ToJson(const service::RequestStats& stats) {
  Json out = Json::Object();
  out.Set("latency_ms", Json::Number(stats.latency_ms));
  out.Set("cache_hit", Json::Bool(stats.cache_hit));
  out.Set("coalesced", Json::Bool(stats.coalesced));
  out.Set("built", Json::Bool(stats.built));
  out.Set("refreshed", Json::Bool(stats.refreshed));
  out.Set("approximate", Json::Bool(stats.approximate));
  out.Set("sample_fraction", Json::Number(stats.sample_fraction));
  out.Set("max_bound", Json::Number(stats.max_bound));
  return out;
}

Result<service::RequestStats> RequestStatsFromJson(const Json& doc) {
  service::RequestStats out;
  QAG_ASSIGN_OR_RETURN(out.latency_ms, GetDouble(doc, "latency_ms"));
  QAG_ASSIGN_OR_RETURN(out.cache_hit, GetBool(doc, "cache_hit"));
  QAG_ASSIGN_OR_RETURN(out.coalesced, GetBool(doc, "coalesced"));
  QAG_ASSIGN_OR_RETURN(out.built, GetBool(doc, "built"));
  QAG_ASSIGN_OR_RETURN(out.refreshed, GetBool(doc, "refreshed"));
  QAG_ASSIGN_OR_RETURN(out.approximate, GetBool(doc, "approximate"));
  QAG_ASSIGN_OR_RETURN(out.sample_fraction,
                       GetDouble(doc, "sample_fraction"));
  QAG_ASSIGN_OR_RETURN(out.max_bound, GetDouble(doc, "max_bound"));
  return out;
}

Json ToJson(const service::ApproxMeta& meta) {
  Json out = Json::Object();
  out.Set("is_exact", Json::Bool(meta.is_exact));
  out.Set("sample_fraction", Json::Number(meta.sample_fraction));
  out.Set("max_bound", Json::Number(meta.max_bound));
  return out;
}

Result<service::ApproxMeta> ApproxMetaFromJson(const Json& doc) {
  service::ApproxMeta out;
  QAG_ASSIGN_OR_RETURN(out.is_exact, GetBool(doc, "is_exact"));
  QAG_ASSIGN_OR_RETURN(out.sample_fraction,
                       GetDouble(doc, "sample_fraction"));
  QAG_ASSIGN_OR_RETURN(out.max_bound, GetDouble(doc, "max_bound"));
  return out;
}

Json ToJson(const core::Params& params) {
  Json out = Json::Object();
  out.Set("k", Json::Int(params.k));
  out.Set("L", Json::Int(params.L));
  out.Set("D", Json::Int(params.D));
  return out;
}

Result<core::Params> ParamsFromJson(const Json& doc) {
  core::Params out;
  QAG_ASSIGN_OR_RETURN(int64_t k, GetInt(doc, "k"));
  QAG_ASSIGN_OR_RETURN(int64_t l, GetInt(doc, "L"));
  QAG_ASSIGN_OR_RETURN(int64_t d, GetInt(doc, "D"));
  out.k = static_cast<int>(k);
  out.L = static_cast<int>(l);
  out.D = static_cast<int>(d);
  return out;
}

Json ToJson(const core::Solution& solution) {
  Json out = Json::Object();
  out.Set("cluster_ids", IntArrayToJson(solution.cluster_ids));
  out.Set("covered_sum", Json::Number(solution.covered_sum));
  out.Set("covered_count", Json::Int(solution.covered_count));
  out.Set("average", Json::Number(solution.average));
  out.Set("covered_min", Json::Number(solution.covered_min));
  return out;
}

Result<core::Solution> SolutionFromJson(const Json& doc) {
  core::Solution out;
  QAG_ASSIGN_OR_RETURN(out.cluster_ids, GetIntArray(doc, "cluster_ids"));
  QAG_ASSIGN_OR_RETURN(out.covered_sum, GetDouble(doc, "covered_sum"));
  QAG_ASSIGN_OR_RETURN(int64_t count, GetInt(doc, "covered_count"));
  QAG_ASSIGN_OR_RETURN(out.average, GetDouble(doc, "average"));
  QAG_ASSIGN_OR_RETURN(out.covered_min, GetDouble(doc, "covered_min"));
  out.covered_count = static_cast<int>(count);
  return out;
}

Json ToJson(const core::TwoLayerView& view) {
  Json clusters = Json::Array();
  for (const core::ClusterView& c : view.clusters) {
    Json row = Json::Object();
    row.Set("cluster_id", Json::Int(c.cluster_id));
    row.Set("pattern", Json::Str(c.pattern));
    row.Set("average", Json::Number(c.average));
    row.Set("count", Json::Int(c.count));
    row.Set("top_count", Json::Int(c.top_count));
    row.Set("member_ranks", IntArrayToJson(c.member_ranks));
    clusters.Append(std::move(row));
  }
  Json out = Json::Object();
  out.Set("clusters", std::move(clusters));
  out.Set("solution_average", Json::Number(view.solution_average));
  out.Set("solution_count", Json::Int(view.solution_count));
  return out;
}

Result<core::TwoLayerView> TwoLayerViewFromJson(const Json& doc) {
  core::TwoLayerView out;
  QAG_ASSIGN_OR_RETURN(const Json* clusters, Member(doc, "clusters"));
  if (!clusters->is_array()) {
    return Status::InvalidArgument("\"clusters\" must be an array");
  }
  for (size_t i = 0; i < clusters->size(); ++i) {
    const Json& row = clusters->at(i);
    core::ClusterView c;
    QAG_ASSIGN_OR_RETURN(int64_t id, GetInt(row, "cluster_id"));
    QAG_ASSIGN_OR_RETURN(c.pattern, GetString(row, "pattern"));
    QAG_ASSIGN_OR_RETURN(c.average, GetDouble(row, "average"));
    QAG_ASSIGN_OR_RETURN(int64_t count, GetInt(row, "count"));
    QAG_ASSIGN_OR_RETURN(int64_t top_count, GetInt(row, "top_count"));
    QAG_ASSIGN_OR_RETURN(c.member_ranks, GetIntArray(row, "member_ranks"));
    c.cluster_id = static_cast<int>(id);
    c.count = static_cast<int>(count);
    c.top_count = static_cast<int>(top_count);
    out.clusters.push_back(std::move(c));
  }
  QAG_ASSIGN_OR_RETURN(out.solution_average,
                       GetDouble(doc, "solution_average"));
  QAG_ASSIGN_OR_RETURN(int64_t solution_count,
                       GetInt(doc, "solution_count"));
  out.solution_count = static_cast<int>(solution_count);
  return out;
}

// --- Requests ------------------------------------------------------------

Json ToJson(const service::QueryRequest& request) {
  Json out = Json::Object();
  out.Set("sql", Json::Str(request.sql));
  out.Set("value_column", Json::Str(request.value_column));
  out.Set("options", ToJson(request.options));
  return out;
}

Result<service::QueryRequest> QueryRequestFromJson(const Json& doc) {
  service::QueryRequest out;
  QAG_ASSIGN_OR_RETURN(out.sql, GetString(doc, "sql"));
  QAG_ASSIGN_OR_RETURN(out.value_column, GetString(doc, "value_column"));
  // options are optional: a bare {sql, value_column} request is exact-only.
  if (doc.Find("options") != nullptr) {
    QAG_ASSIGN_OR_RETURN(out.options,
                         QueryOptionsFromJson(*doc.Find("options")));
  }
  return out;
}

Json ToJson(const service::SummarizeRequest& request) {
  Json out = Json::Object();
  out.Set("handle", Json::Int(request.handle));
  out.Set("params", ToJson(request.params));
  return out;
}

Result<service::SummarizeRequest> SummarizeRequestFromJson(const Json& doc) {
  service::SummarizeRequest out;
  QAG_ASSIGN_OR_RETURN(out.handle, GetInt(doc, "handle"));
  QAG_ASSIGN_OR_RETURN(const Json* params, Member(doc, "params"));
  QAG_ASSIGN_OR_RETURN(out.params, ParamsFromJson(*params));
  return out;
}

Json ToJson(const service::GuidanceRequest& request) {
  Json out = Json::Object();
  out.Set("handle", Json::Int(request.handle));
  out.Set("top_l", Json::Int(request.top_l));
  out.Set("options", ToJson(request.options));
  return out;
}

Result<service::GuidanceRequest> GuidanceRequestFromJson(const Json& doc) {
  service::GuidanceRequest out;
  QAG_ASSIGN_OR_RETURN(out.handle, GetInt(doc, "handle"));
  QAG_ASSIGN_OR_RETURN(int64_t top_l, GetInt(doc, "top_l"));
  out.top_l = static_cast<int>(top_l);
  // options are optional: defaults mirror the in-process default argument.
  if (doc.Find("options") != nullptr) {
    QAG_ASSIGN_OR_RETURN(out.options,
                         PrecomputeOptionsFromJson(*doc.Find("options")));
  }
  return out;
}

Json ToJson(const service::RetrieveRequest& request) {
  Json out = Json::Object();
  out.Set("handle", Json::Int(request.handle));
  out.Set("top_l", Json::Int(request.top_l));
  out.Set("d", Json::Int(request.d));
  out.Set("k", Json::Int(request.k));
  return out;
}

Result<service::RetrieveRequest> RetrieveRequestFromJson(const Json& doc) {
  service::RetrieveRequest out;
  QAG_ASSIGN_OR_RETURN(out.handle, GetInt(doc, "handle"));
  QAG_ASSIGN_OR_RETURN(int64_t top_l, GetInt(doc, "top_l"));
  QAG_ASSIGN_OR_RETURN(int64_t d, GetInt(doc, "d"));
  QAG_ASSIGN_OR_RETURN(int64_t k, GetInt(doc, "k"));
  out.top_l = static_cast<int>(top_l);
  out.d = static_cast<int>(d);
  out.k = static_cast<int>(k);
  return out;
}

Json ToJson(const service::ExploreRequest& request) {
  Json out = Json::Object();
  out.Set("handle", Json::Int(request.handle));
  out.Set("params", ToJson(request.params));
  out.Set("max_members", Json::Int(request.max_members));
  return out;
}

Result<service::ExploreRequest> ExploreRequestFromJson(const Json& doc) {
  service::ExploreRequest out;
  QAG_ASSIGN_OR_RETURN(out.handle, GetInt(doc, "handle"));
  QAG_ASSIGN_OR_RETURN(const Json* params, Member(doc, "params"));
  QAG_ASSIGN_OR_RETURN(out.params, ParamsFromJson(*params));
  if (doc.Find("max_members") != nullptr) {
    QAG_ASSIGN_OR_RETURN(int64_t max_members, GetInt(doc, "max_members"));
    out.max_members = static_cast<int>(max_members);
  }
  return out;
}

Json ToJson(const service::RefineRequest& request) {
  Json out = Json::Object();
  out.Set("handle", Json::Int(request.handle));
  return out;
}

Result<service::RefineRequest> RefineRequestFromJson(const Json& doc) {
  service::RefineRequest out;
  QAG_ASSIGN_OR_RETURN(out.handle, GetInt(doc, "handle"));
  return out;
}

Json ToJson(const service::AppendRowsRequest& request) {
  Json rows = Json::Array();
  for (const auto& row : request.rows) {
    Json cells = Json::Array();
    for (const storage::Value& cell : row) cells.Append(ToJson(cell));
    rows.Append(std::move(cells));
  }
  Json out = Json::Object();
  out.Set("dataset", Json::Str(request.dataset));
  out.Set("rows", std::move(rows));
  return out;
}

Result<service::AppendRowsRequest> AppendRowsRequestFromJson(
    const Json& doc) {
  service::AppendRowsRequest out;
  QAG_ASSIGN_OR_RETURN(out.dataset, GetString(doc, "dataset"));
  QAG_ASSIGN_OR_RETURN(const Json* rows, Member(doc, "rows"));
  if (!rows->is_array()) {
    return Status::InvalidArgument("\"rows\" must be an array of arrays");
  }
  for (size_t i = 0; i < rows->size(); ++i) {
    const Json& row = rows->at(i);
    if (!row.is_array()) {
      return Status::InvalidArgument("\"rows\" must be an array of arrays");
    }
    std::vector<storage::Value> cells;
    cells.reserve(row.size());
    for (size_t j = 0; j < row.size(); ++j) {
      QAG_ASSIGN_OR_RETURN(storage::Value cell, ValueFromJson(row.at(j)));
      cells.push_back(std::move(cell));
    }
    out.rows.push_back(std::move(cells));
  }
  return out;
}

// --- Responses -----------------------------------------------------------

Json ToJson(const service::QueryResponse& response) {
  Json out = Json::Object();
  out.Set("handle", Json::Int(response.handle));
  out.Set("num_answers", Json::Int(response.num_answers));
  out.Set("num_attrs", Json::Int(response.num_attrs));
  out.Set("confidence", Json::Number(response.confidence));
  out.Set("approx", ToJson(response.approx));
  out.Set("stats", ToJson(response.stats));
  return out;
}

Result<service::QueryResponse> QueryResponseFromJson(const Json& doc) {
  service::QueryResponse out;
  QAG_ASSIGN_OR_RETURN(out.handle, GetInt(doc, "handle"));
  QAG_ASSIGN_OR_RETURN(int64_t num_answers, GetInt(doc, "num_answers"));
  QAG_ASSIGN_OR_RETURN(int64_t num_attrs, GetInt(doc, "num_attrs"));
  QAG_ASSIGN_OR_RETURN(out.confidence, GetDouble(doc, "confidence"));
  QAG_ASSIGN_OR_RETURN(const Json* approx, Member(doc, "approx"));
  QAG_ASSIGN_OR_RETURN(out.approx, ApproxMetaFromJson(*approx));
  QAG_ASSIGN_OR_RETURN(const Json* stats, Member(doc, "stats"));
  QAG_ASSIGN_OR_RETURN(out.stats, RequestStatsFromJson(*stats));
  out.num_answers = static_cast<int>(num_answers);
  out.num_attrs = static_cast<int>(num_attrs);
  return out;
}

Json ToJson(const service::SummarizeResponse& response) {
  Json out = Json::Object();
  out.Set("solution", ToJson(response.solution));
  out.Set("approx", ToJson(response.approx));
  out.Set("stats", ToJson(response.stats));
  return out;
}

Result<service::SummarizeResponse> SummarizeResponseFromJson(
    const Json& doc) {
  service::SummarizeResponse out;
  QAG_ASSIGN_OR_RETURN(const Json* solution, Member(doc, "solution"));
  QAG_ASSIGN_OR_RETURN(out.solution, SolutionFromJson(*solution));
  QAG_ASSIGN_OR_RETURN(const Json* approx, Member(doc, "approx"));
  QAG_ASSIGN_OR_RETURN(out.approx, ApproxMetaFromJson(*approx));
  QAG_ASSIGN_OR_RETURN(const Json* stats, Member(doc, "stats"));
  QAG_ASSIGN_OR_RETURN(out.stats, RequestStatsFromJson(*stats));
  return out;
}

Json ToJson(const service::GuidanceResponse& response) {
  Json out = Json::Object();
  out.Set("store_l", Json::Int(response.store_l));
  out.Set("k_max", Json::Int(response.k_max));
  out.Set("d_values", IntArrayToJson(response.d_values));
  out.Set("min_ks", IntArrayToJson(response.min_ks));
  out.Set("num_intervals", Json::Int(response.num_intervals));
  out.Set("naive_entries", Json::Int(response.naive_entries));
  out.Set("approx", ToJson(response.approx));
  out.Set("stats", ToJson(response.stats));
  return out;
}

Result<service::GuidanceResponse> GuidanceResponseFromJson(const Json& doc) {
  service::GuidanceResponse out;
  QAG_ASSIGN_OR_RETURN(int64_t store_l, GetInt(doc, "store_l"));
  QAG_ASSIGN_OR_RETURN(int64_t k_max, GetInt(doc, "k_max"));
  QAG_ASSIGN_OR_RETURN(out.d_values, GetIntArray(doc, "d_values"));
  QAG_ASSIGN_OR_RETURN(out.min_ks, GetIntArray(doc, "min_ks"));
  QAG_ASSIGN_OR_RETURN(out.num_intervals, GetInt(doc, "num_intervals"));
  QAG_ASSIGN_OR_RETURN(out.naive_entries, GetInt(doc, "naive_entries"));
  QAG_ASSIGN_OR_RETURN(const Json* approx, Member(doc, "approx"));
  QAG_ASSIGN_OR_RETURN(out.approx, ApproxMetaFromJson(*approx));
  QAG_ASSIGN_OR_RETURN(const Json* stats, Member(doc, "stats"));
  QAG_ASSIGN_OR_RETURN(out.stats, RequestStatsFromJson(*stats));
  out.store_l = static_cast<int>(store_l);
  out.k_max = static_cast<int>(k_max);
  return out;
}

Json ToJson(const service::RetrieveResponse& response) {
  Json out = Json::Object();
  out.Set("solution", ToJson(response.solution));
  out.Set("approx", ToJson(response.approx));
  out.Set("stats", ToJson(response.stats));
  return out;
}

Result<service::RetrieveResponse> RetrieveResponseFromJson(const Json& doc) {
  service::RetrieveResponse out;
  QAG_ASSIGN_OR_RETURN(const Json* solution, Member(doc, "solution"));
  QAG_ASSIGN_OR_RETURN(out.solution, SolutionFromJson(*solution));
  QAG_ASSIGN_OR_RETURN(const Json* approx, Member(doc, "approx"));
  QAG_ASSIGN_OR_RETURN(out.approx, ApproxMetaFromJson(*approx));
  QAG_ASSIGN_OR_RETURN(const Json* stats, Member(doc, "stats"));
  QAG_ASSIGN_OR_RETURN(out.stats, RequestStatsFromJson(*stats));
  return out;
}

Json ToJson(const service::ExploreResponse& response) {
  Json out = Json::Object();
  out.Set("solution", ToJson(response.solution));
  out.Set("view", ToJson(response.view));
  out.Set("summary", Json::Str(response.summary));
  out.Set("expanded", Json::Str(response.expanded));
  out.Set("approx", ToJson(response.approx));
  out.Set("stats", ToJson(response.stats));
  return out;
}

Result<service::ExploreResponse> ExploreResponseFromJson(const Json& doc) {
  service::ExploreResponse out;
  QAG_ASSIGN_OR_RETURN(const Json* solution, Member(doc, "solution"));
  QAG_ASSIGN_OR_RETURN(out.solution, SolutionFromJson(*solution));
  QAG_ASSIGN_OR_RETURN(const Json* view, Member(doc, "view"));
  QAG_ASSIGN_OR_RETURN(out.view, TwoLayerViewFromJson(*view));
  QAG_ASSIGN_OR_RETURN(out.summary, GetString(doc, "summary"));
  QAG_ASSIGN_OR_RETURN(out.expanded, GetString(doc, "expanded"));
  QAG_ASSIGN_OR_RETURN(const Json* approx, Member(doc, "approx"));
  QAG_ASSIGN_OR_RETURN(out.approx, ApproxMetaFromJson(*approx));
  QAG_ASSIGN_OR_RETURN(const Json* stats, Member(doc, "stats"));
  QAG_ASSIGN_OR_RETURN(out.stats, RequestStatsFromJson(*stats));
  return out;
}

Json ToJson(const service::RefineResponse& response) {
  Json out = Json::Object();
  out.Set("approx", ToJson(response.approx));
  out.Set("stats", ToJson(response.stats));
  return out;
}

Result<service::RefineResponse> RefineResponseFromJson(const Json& doc) {
  service::RefineResponse out;
  QAG_ASSIGN_OR_RETURN(const Json* approx, Member(doc, "approx"));
  QAG_ASSIGN_OR_RETURN(out.approx, ApproxMetaFromJson(*approx));
  QAG_ASSIGN_OR_RETURN(const Json* stats, Member(doc, "stats"));
  QAG_ASSIGN_OR_RETURN(out.stats, RequestStatsFromJson(*stats));
  return out;
}

Json ToJson(const service::AppendRowsResponse& response) {
  Json out = Json::Object();
  out.Set("version", Json::Int(static_cast<int64_t>(response.version)));
  out.Set("stats", ToJson(response.stats));
  return out;
}

Result<service::AppendRowsResponse> AppendRowsResponseFromJson(
    const Json& doc) {
  service::AppendRowsResponse out;
  QAG_ASSIGN_OR_RETURN(int64_t version, GetInt(doc, "version"));
  QAG_ASSIGN_OR_RETURN(const Json* stats, Member(doc, "stats"));
  QAG_ASSIGN_OR_RETURN(out.stats, RequestStatsFromJson(*stats));
  out.version = static_cast<uint64_t>(version);
  return out;
}

Json ToJson(const service::ServiceStats& stats) {
  Json out = Json::Object();
  out.Set("datasets", Json::Int(stats.datasets));
  out.Set("sessions", Json::Int(stats.sessions));
  out.Set("queries", Json::Int(stats.queries));
  out.Set("query_cache_hits", Json::Int(stats.query_cache_hits));
  out.Set("query_coalesced", Json::Int(stats.query_coalesced));
  out.Set("summarize_requests", Json::Int(stats.summarize_requests));
  out.Set("guidance_requests", Json::Int(stats.guidance_requests));
  out.Set("retrieve_requests", Json::Int(stats.retrieve_requests));
  out.Set("explore_requests", Json::Int(stats.explore_requests));
  out.Set("cache_hits", Json::Int(stats.cache_hits));
  out.Set("coalesced_waits", Json::Int(stats.coalesced_waits));
  out.Set("builds", Json::Int(stats.builds));
  out.Set("refreshes", Json::Int(stats.refreshes));
  out.Set("refresh_full_reuses", Json::Int(stats.refresh_full_reuses));
  out.Set("approx_queries", Json::Int(stats.approx_queries));
  out.Set("approx_served", Json::Int(stats.approx_served));
  out.Set("refine_requests", Json::Int(stats.refine_requests));
  out.Set("refinements", Json::Int(stats.refinements));
  out.Set("refinements_superseded",
          Json::Int(stats.refinements_superseded));
  out.Set("graveyard_size", Json::Int(stats.graveyard_size));
  out.Set("live_generations", Json::Int(stats.live_generations));
  out.Set("generations_evicted", Json::Int(stats.generations_evicted));
  out.Set("prefetch_issued", Json::Int(stats.prefetch_issued));
  out.Set("prefetch_hits", Json::Int(stats.prefetch_hits));
  out.Set("warm_start_loads", Json::Int(stats.warm_start_loads));
  out.Set("total_latency_ms", Json::Number(stats.total_latency_ms));
  out.Set("max_latency_ms", Json::Number(stats.max_latency_ms));
  out.Set("requests", Json::Int(stats.requests()));
  return out;
}

Result<service::ServiceStats> ServiceStatsFromJson(const Json& doc) {
  service::ServiceStats out;
  QAG_ASSIGN_OR_RETURN(out.datasets, GetInt(doc, "datasets"));
  QAG_ASSIGN_OR_RETURN(out.sessions, GetInt(doc, "sessions"));
  QAG_ASSIGN_OR_RETURN(out.queries, GetInt(doc, "queries"));
  QAG_ASSIGN_OR_RETURN(out.query_cache_hits,
                       GetInt(doc, "query_cache_hits"));
  QAG_ASSIGN_OR_RETURN(out.query_coalesced, GetInt(doc, "query_coalesced"));
  QAG_ASSIGN_OR_RETURN(out.summarize_requests,
                       GetInt(doc, "summarize_requests"));
  QAG_ASSIGN_OR_RETURN(out.guidance_requests,
                       GetInt(doc, "guidance_requests"));
  QAG_ASSIGN_OR_RETURN(out.retrieve_requests,
                       GetInt(doc, "retrieve_requests"));
  QAG_ASSIGN_OR_RETURN(out.explore_requests,
                       GetInt(doc, "explore_requests"));
  QAG_ASSIGN_OR_RETURN(out.cache_hits, GetInt(doc, "cache_hits"));
  QAG_ASSIGN_OR_RETURN(out.coalesced_waits, GetInt(doc, "coalesced_waits"));
  QAG_ASSIGN_OR_RETURN(out.builds, GetInt(doc, "builds"));
  QAG_ASSIGN_OR_RETURN(out.refreshes, GetInt(doc, "refreshes"));
  QAG_ASSIGN_OR_RETURN(out.refresh_full_reuses,
                       GetInt(doc, "refresh_full_reuses"));
  QAG_ASSIGN_OR_RETURN(out.approx_queries, GetInt(doc, "approx_queries"));
  QAG_ASSIGN_OR_RETURN(out.approx_served, GetInt(doc, "approx_served"));
  QAG_ASSIGN_OR_RETURN(out.refine_requests, GetInt(doc, "refine_requests"));
  QAG_ASSIGN_OR_RETURN(out.refinements, GetInt(doc, "refinements"));
  QAG_ASSIGN_OR_RETURN(out.refinements_superseded,
                       GetInt(doc, "refinements_superseded"));
  QAG_ASSIGN_OR_RETURN(out.graveyard_size, GetInt(doc, "graveyard_size"));
  QAG_ASSIGN_OR_RETURN(out.live_generations,
                       GetInt(doc, "live_generations"));
  QAG_ASSIGN_OR_RETURN(out.generations_evicted,
                       GetInt(doc, "generations_evicted"));
  QAG_ASSIGN_OR_RETURN(out.prefetch_issued, GetInt(doc, "prefetch_issued"));
  QAG_ASSIGN_OR_RETURN(out.prefetch_hits, GetInt(doc, "prefetch_hits"));
  QAG_ASSIGN_OR_RETURN(out.warm_start_loads,
                       GetInt(doc, "warm_start_loads"));
  QAG_ASSIGN_OR_RETURN(out.total_latency_ms,
                       GetDouble(doc, "total_latency_ms"));
  QAG_ASSIGN_OR_RETURN(out.max_latency_ms, GetDouble(doc, "max_latency_ms"));
  return out;
}

}  // namespace qagview::server
