#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/json.h"
#include "common/string_util.h"
#include "server/serde.h"

namespace qagview::server {

using json::Json;

namespace {

int HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kUnimplemented:
      return 501;
    default:
      return 500;
  }
}

HttpResponse JsonResponse(int status, Json body) {
  HttpResponse out;
  out.status = status;
  out.headers.emplace_back("Content-Type", "application/json");
  out.body = body.Dump();
  return out;
}

HttpResponse ErrorResponse(int status, std::string_view code,
                           std::string_view message) {
  Json error = Json::Object();
  error.Set("code", Json::Str(std::string(code)));
  error.Set("message", Json::Str(std::string(message)));
  Json body = Json::Object();
  body.Set("error", std::move(error));
  return JsonResponse(status, std::move(body));
}

HttpResponse ErrorResponse(const Status& status) {
  return ErrorResponse(HttpStatusFor(status.code()),
                       StatusCodeToString(status.code()), status.message());
}

/// Parses the request body, applies FromJson, calls the service, and
/// serializes the response — the one shape every POST endpoint shares.
template <typename Request, typename Response>
HttpResponse HandleJson(const HttpRequest& request,
                        Result<Request> (*from_json)(const Json&),
                        Result<Response> (*call)(service::QueryService*,
                                                 const Request&),
                        service::QueryService* service) {
  Result<Json> doc = Json::Parse(request.body);
  if (!doc.ok()) return ErrorResponse(doc.status());
  Result<Request> parsed = from_json(*doc);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  Result<Response> response = call(service, *parsed);
  if (!response.ok()) return ErrorResponse(response.status());
  return JsonResponse(200, ToJson(*response));
}

}  // namespace

HttpServer::HttpServer(service::QueryService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

HttpServer::~HttpServer() { Shutdown(); }

Status HttpServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrCat("bad bind address \"", options_.bind_address, "\""));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::IOError(StrCat("bind: ", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  // The listen backlog sits in front of our own admission queue; keep it
  // modest so overload reaches the 503 path quickly instead of pooling in
  // the kernel.
  if (::listen(listen_fd_, 64) != 0) {
    Status status = Status::IOError(StrCat("listen: ", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    Status status =
        Status::IOError(StrCat("getsockname: ", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(bound.sin_port);

  // A timed accept() (SO_RCVTIMEO applies to accept) lets the acceptor
  // notice `stopping_` without the close-the-fd-under-accept race.
  SetSocketTimeouts(listen_fd_, /*timeout_ms=*/100);

  started_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  int num_workers = options_.num_workers > 0 ? options_.num_workers : 1;
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Shutdown() {
  if (!started_) return;
  started_ = false;

  // 1. Stop admissions. The acceptor polls `stopping_` on its accept
  //    timeout; shutdown() is a best-effort immediate wake. The fd is only
  //    closed after the join so the acceptor never races a reused fd.
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Drain: workers keep serving until the queue is empty, then exit on
  //    the stop signal. Every admitted connection gets its response.
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ServerStats HttpServer::stats() const {
  ServerStats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.admitted = admitted_.load(std::memory_order_relaxed);
  out.rejected_503 = rejected_503_.load(std::memory_order_relaxed);
  out.served_2xx = served_2xx_.load(std::memory_order_relaxed);
  out.client_errors_4xx = client_errors_4xx_.load(std::memory_order_relaxed);
  out.server_errors_5xx = server_errors_5xx_.load(std::memory_order_relaxed);
  out.io_errors = io_errors_.load(std::memory_order_relaxed);
  return out;
}

void HttpServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;  // accept timeout tick: re-check stopping_ and wait again
      }
      // Hard error on the listening socket: no more admissions.
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    SetSocketTimeouts(fd, options_.limits.io_timeout_ms);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (static_cast<int>(queue_.size()) < options_.max_queue &&
          !stopping_.load(std::memory_order_acquire)) {
        queue_.push_back(fd);
        admitted = true;
      }
    }
    if (admitted) {
      admitted_.fetch_add(1, std::memory_order_relaxed);
      queue_cv_.notify_one();
      continue;
    }

    // Shed at the door: the acceptor itself writes the canned 503 so a
    // saturated worker pool cannot delay the rejection.
    rejected_503_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response = ErrorResponse(
        503, "Unavailable", "server overloaded: admission queue full");
    response.headers.emplace_back("Retry-After",
                                  StrCat(options_.retry_after_seconds));
    WriteFull(fd, SerializeResponse(response));
    ::close(fd);
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) return;  // stopping and drained
      fd = queue_.front();
      queue_.pop_front();
    }
    ServeConnection(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  int error_status = 0;
  Result<HttpRequest> request =
      ReadHttpRequest(fd, options_.limits, &error_status);
  if (!request.ok()) {
    if (error_status == 0) {
      // Peer vanished before saying anything; nothing to answer.
      io_errors_.fetch_add(1, std::memory_order_relaxed);
    } else {
      if (error_status >= 500) {
        server_errors_5xx_.fetch_add(1, std::memory_order_relaxed);
      } else {
        client_errors_4xx_.fetch_add(1, std::memory_order_relaxed);
      }
      WriteFull(fd, SerializeResponse(ErrorResponse(
                        error_status, "BadRequest",
                        request.status().message())));
    }
    ::close(fd);
    return;
  }

  // Exactly one counter per admitted connection (a peer that resets while
  // we write still counts in its response class, not as an io_error), so
  // `admitted == served_2xx + 4xx + 5xx + io_errors` holds — the zero-drop
  // invariant the graceful-drain test asserts.
  HttpResponse response = Dispatch(*request);
  if (response.status >= 500) {
    server_errors_5xx_.fetch_add(1, std::memory_order_relaxed);
  } else if (response.status >= 400) {
    client_errors_4xx_.fetch_add(1, std::memory_order_relaxed);
  } else {
    served_2xx_.fetch_add(1, std::memory_order_relaxed);
  }
  WriteFull(fd, SerializeResponse(response));
  ::close(fd);
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) {
  const std::string& target = request.target;
  const bool is_post = request.method == "POST";
  const bool is_get = request.method == "GET";

  if (target == "/healthz") {
    if (!is_get) return ErrorResponse(405, "MethodNotAllowed", "use GET");
    HttpResponse out;
    out.headers.emplace_back("Content-Type", "text/plain");
    out.body = "ok\n";
    return out;
  }
  if (target == "/stats") {
    if (!is_get) return ErrorResponse(405, "MethodNotAllowed", "use GET");
    Json body = Json::Object();
    body.Set("service", ToJson(service_->stats()));
    ServerStats transport = stats();
    Json server = Json::Object();
    server.Set("accepted", Json::Int(transport.accepted));
    server.Set("admitted", Json::Int(transport.admitted));
    server.Set("rejected_503", Json::Int(transport.rejected_503));
    server.Set("served_2xx", Json::Int(transport.served_2xx));
    server.Set("client_errors_4xx", Json::Int(transport.client_errors_4xx));
    server.Set("server_errors_5xx", Json::Int(transport.server_errors_5xx));
    server.Set("io_errors", Json::Int(transport.io_errors));
    body.Set("server", std::move(server));
    return JsonResponse(200, std::move(body));
  }

  // Everything below is POST-with-JSON-body.
  static const char* kPostEndpoints[] = {"/query",   "/summarize",
                                         "/guidance", "/retrieve",
                                         "/explore",  "/refine",
                                         "/append_rows"};
  bool known_post = false;
  for (const char* endpoint : kPostEndpoints) {
    if (target == endpoint) known_post = true;
  }
  if (!known_post) {
    return ErrorResponse(404, "NotFound",
                         StrCat("no such endpoint: ", target));
  }
  if (!is_post) return ErrorResponse(405, "MethodNotAllowed", "use POST");

  if (target == "/query") {
    return HandleJson<service::QueryRequest, service::QueryResponse>(
        request, &QueryRequestFromJson,
        +[](service::QueryService* s, const service::QueryRequest& r) {
          return s->Query(r);
        },
        service_);
  }
  if (target == "/summarize") {
    return HandleJson<service::SummarizeRequest, service::SummarizeResponse>(
        request, &SummarizeRequestFromJson,
        +[](service::QueryService* s, const service::SummarizeRequest& r) {
          return s->Summarize(r);
        },
        service_);
  }
  if (target == "/guidance") {
    return HandleJson<service::GuidanceRequest, service::GuidanceResponse>(
        request, &GuidanceRequestFromJson,
        +[](service::QueryService* s, const service::GuidanceRequest& r) {
          return s->Guidance(r);
        },
        service_);
  }
  if (target == "/retrieve") {
    return HandleJson<service::RetrieveRequest, service::RetrieveResponse>(
        request, &RetrieveRequestFromJson,
        +[](service::QueryService* s, const service::RetrieveRequest& r) {
          return s->Retrieve(r);
        },
        service_);
  }
  if (target == "/explore") {
    return HandleJson<service::ExploreRequest, service::ExploreResponse>(
        request, &ExploreRequestFromJson,
        +[](service::QueryService* s, const service::ExploreRequest& r) {
          return s->Explore(r);
        },
        service_);
  }
  if (target == "/refine") {
    return HandleJson<service::RefineRequest, service::RefineResponse>(
        request, &RefineRequestFromJson,
        +[](service::QueryService* s, const service::RefineRequest& r) {
          return s->Refine(r);
        },
        service_);
  }
  // target == "/append_rows"
  return HandleJson<service::AppendRowsRequest, service::AppendRowsResponse>(
      request, &AppendRowsRequestFromJson,
      +[](service::QueryService* s, const service::AppendRowsRequest& r) {
        return s->AppendRows(r);
      },
      service_);
}

}  // namespace qagview::server
