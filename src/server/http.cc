#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

#include "common/string_util.h"

namespace qagview::server {

namespace {

/// Receives up to `len` bytes, retrying on EINTR. Returns -2 on timeout,
/// -1 on other errors, 0 on orderly EOF.
ssize_t RecvSome(int fd, char* buf, size_t len) {
  while (true) {
    ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -2;
    return -1;
  }
}

bool ParseStatusInt(std::string_view text, int* out) {
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

/// Splits "Name: value" header lines out of the header block (which
/// excludes the request/status line). Returns false on a malformed line.
bool ParseHeaderLines(std::string_view block,
                      std::vector<std::pair<std::string, std::string>>* out) {
  size_t pos = 0;
  while (pos < block.size()) {
    size_t eol = block.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = block.size();
    std::string_view line = block.substr(pos, eol - pos);
    pos = (eol == block.size()) ? eol : eol + 2;
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    std::string_view name = StripWhitespace(line.substr(0, colon));
    std::string_view value = StripWhitespace(line.substr(colon + 1));
    if (name.empty()) return false;
    out->emplace_back(std::string(name), std::string(value));
  }
  return true;
}

const std::string* FindIn(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

/// Connects to host:port with the configured timeouts; -1 on failure.
int ConnectTo(const std::string& host, int port, const HttpLimits& limits) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  SetSocketTimeouts(fd, limits.io_timeout_ms);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Reads until EOF (or the cap); used by the raw client exchange.
Result<std::string> ReadToEof(int fd, size_t cap) {
  std::string out;
  char buf[4096];
  while (out.size() < cap) {
    ssize_t n = RecvSome(fd, buf, sizeof(buf));
    if (n == 0) return out;
    if (n == -2) return Status::IOError("client read timed out");
    if (n < 0) {
      // A peer that already sent its full response may reset on close
      // (ECONNRESET after we saw bytes): treat what arrived as the answer.
      if (!out.empty()) return out;
      return Status::IOError(StrCat("recv: ", std::strerror(errno)));
    }
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  return FindIn(headers, name);
}

const std::string* HttpClientResponse::FindHeader(
    std::string_view name) const {
  return FindIn(headers, name);
}

void SetSocketTimeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Result<HttpRequest> ReadHttpRequest(int fd, const HttpLimits& limits,
                                    int* error_status) {
  *error_status = 400;
  std::string buf;
  // Phase 1: read until the end of the header block ("\r\n\r\n").
  size_t header_end = std::string::npos;
  size_t scanned = 0;  // bytes already known not to start the terminator
  while (true) {
    // Re-scan from just before the previously scanned tail so a terminator
    // split across reads is still found.
    size_t from = scanned < 3 ? 0 : scanned - 3;
    header_end = buf.find("\r\n\r\n", from);
    if (header_end != std::string::npos) {
      // The limit applies to the header block itself, not just to how much
      // arrived per read — a complete oversized block is still oversized.
      if (header_end + 4 > static_cast<size_t>(limits.max_header_bytes)) {
        *error_status = 431;
        return Status::InvalidArgument("request headers exceed limit");
      }
      break;
    }
    scanned = buf.size();
    if (buf.size() > static_cast<size_t>(limits.max_header_bytes)) {
      *error_status = 431;
      return Status::InvalidArgument("request headers exceed limit");
    }
    char chunk[4096];
    ssize_t n = RecvSome(fd, chunk, sizeof(chunk));
    if (n == 0) {
      if (buf.empty()) {
        *error_status = 0;  // clean EOF before any bytes: peer gone
        return Status::IOError("connection closed before request");
      }
      return Status::InvalidArgument("connection closed mid-headers");
    }
    if (n == -2) {
      *error_status = buf.empty() ? 0 : 408;
      return Status::IOError("timed out reading request headers");
    }
    if (n < 0) {
      *error_status = 0;
      return Status::IOError(StrCat("recv: ", std::strerror(errno)));
    }
    buf.append(chunk, static_cast<size_t>(n));
  }

  // Request line: METHOD SP TARGET SP VERSION.
  size_t line_end = buf.find("\r\n");
  std::string_view line(buf.data(), line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = (sp1 == std::string_view::npos)
                   ? std::string_view::npos
                   : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= line.size()) {
    return Status::InvalidArgument("malformed request line");
  }
  HttpRequest request;
  request.method = std::string(line.substr(0, sp1));
  request.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(line.substr(sp2 + 1));
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    return Status::InvalidArgument("unsupported HTTP version");
  }
  for (char c : request.method) {
    if (c < 'A' || c > 'Z') {
      return Status::InvalidArgument("malformed method");
    }
  }

  // A request with no headers has line_end == header_end; guard the
  // subtraction (an unsigned underflow here would build a wild view).
  std::string_view header_block;
  if (header_end > line_end) {
    header_block = std::string_view(buf.data() + line_end + 2,
                                    header_end - line_end - 2);
  }
  if (!ParseHeaderLines(header_block, &request.headers)) {
    return Status::InvalidArgument("malformed header line");
  }

  if (request.FindHeader("Transfer-Encoding") != nullptr) {
    *error_status = 501;
    return Status::Unimplemented("Transfer-Encoding is not supported");
  }

  // Phase 2: the body, exactly Content-Length bytes.
  size_t body_start = header_end + 4;
  const std::string* content_length = request.FindHeader("Content-Length");
  size_t body_len = 0;
  if (content_length != nullptr) {
    int parsed = 0;
    if (!ParseStatusInt(*content_length, &parsed) || parsed < 0) {
      return Status::InvalidArgument("malformed Content-Length");
    }
    if (parsed > limits.max_body_bytes) {
      *error_status = 413;
      return Status::InvalidArgument("request body exceeds limit");
    }
    body_len = static_cast<size_t>(parsed);
  } else if (request.method == "POST" || request.method == "PUT") {
    *error_status = 411;
    return Status::InvalidArgument("Content-Length required");
  }
  request.body = buf.substr(body_start);
  if (request.body.size() > body_len) {
    return Status::InvalidArgument("bytes beyond Content-Length");
  }
  while (request.body.size() < body_len) {
    char chunk[4096];
    size_t want = std::min(sizeof(chunk), body_len - request.body.size());
    ssize_t n = RecvSome(fd, chunk, want);
    if (n == 0) {
      return Status::InvalidArgument("connection closed mid-body");
    }
    if (n == -2) {
      *error_status = 408;
      return Status::IOError("timed out reading request body");
    }
    if (n < 0) {
      *error_status = 0;
      return Status::IOError(StrCat("recv: ", std::strerror(errno)));
    }
    request.body.append(chunk, static_cast<size_t>(n));
  }
  *error_status = 200;
  return request;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = StrCat("HTTP/1.1 ", response.status, " ",
                           ReasonPhrase(response.status), "\r\n");
  for (const auto& [name, value] : response.headers) {
    out += StrCat(name, ": ", value, "\r\n");
  }
  out += StrCat("Content-Length: ", response.body.size(), "\r\n");
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

bool WriteFull(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer gone or send timeout
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

Result<std::string> HttpExchangeRaw(const std::string& host, int port,
                                    const std::string& raw_request,
                                    const HttpLimits& limits) {
  int fd = ConnectTo(host, port, limits);
  if (fd < 0) {
    return Status::IOError(
        StrCat("connect ", host, ":", port, ": ", std::strerror(errno)));
  }
  if (!WriteFull(fd, raw_request)) {
    ::close(fd);
    return Status::IOError("send failed");
  }
  // Half-close: tells servers reading to EOF that the request is done.
  ::shutdown(fd, SHUT_WR);
  Result<std::string> response = ReadToEof(
      fd, static_cast<size_t>(limits.max_header_bytes) +
              static_cast<size_t>(limits.max_body_bytes) + 4096);
  ::close(fd);
  return response;
}

Result<HttpClientResponse> HttpFetch(const std::string& host, int port,
                                     const std::string& method,
                                     const std::string& target,
                                     const std::string& body,
                                     const HttpLimits& limits) {
  std::string raw = StrCat(method, " ", target, " HTTP/1.1\r\n",
                           "Host: ", host, "\r\n");
  if (!body.empty() || method == "POST" || method == "PUT") {
    raw += "Content-Type: application/json\r\n";
    raw += StrCat("Content-Length: ", body.size(), "\r\n");
  }
  raw += "\r\n";
  raw += body;
  QAG_ASSIGN_OR_RETURN(std::string bytes,
                       HttpExchangeRaw(host, port, raw, limits));

  size_t header_end = bytes.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::ParseError("response missing header terminator");
  }
  size_t line_end = bytes.find("\r\n");
  std::string_view line(bytes.data(), line_end);
  // Status line: HTTP/1.1 SP CODE SP REASON.
  size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    return Status::ParseError("malformed status line");
  }
  size_t sp2 = line.find(' ', sp1 + 1);
  std::string_view code = line.substr(
      sp1 + 1, sp2 == std::string_view::npos ? std::string_view::npos
                                             : sp2 - sp1 - 1);
  HttpClientResponse response;
  if (!ParseStatusInt(code, &response.status)) {
    return Status::ParseError("malformed status code");
  }
  std::string_view header_block(bytes.data() + line_end + 2,
                                header_end - line_end - 2);
  if (!ParseHeaderLines(header_block, &response.headers)) {
    return Status::ParseError("malformed response header");
  }
  response.body = bytes.substr(header_end + 4);
  const std::string* content_length = response.FindHeader("Content-Length");
  if (content_length != nullptr) {
    int expected = 0;
    if (ParseStatusInt(*content_length, &expected) &&
        response.body.size() != static_cast<size_t>(expected)) {
      return Status::ParseError("response body truncated");
    }
  }
  return response;
}

}  // namespace qagview::server
