#ifndef QAGVIEW_QAGVIEW_H_
#define QAGVIEW_QAGVIEW_H_

/// \file qagview.h
/// \brief Umbrella header for the QAGView library — summarization and
/// interactive exploration of top aggregate query answers (Wen, Zhu, Roy,
/// Yang; VLDB 2018).
///
/// The typical pipeline:
///
///   #include "qagview.h"
///   using namespace qagview;
///
///   // 1. Load data (CSV, generator, or build a storage::Table directly).
///   auto table = storage::ReadCsvFile("ratings.csv");
///
///   // 2. Run the aggregate query.
///   sql::Catalog catalog;
///   catalog.Register("ratings", &*table);
///   auto result = sql::ExecuteSql(
///       "SELECT hdec, agegrp, gender, occupation, avg(rating) AS val "
///       "FROM ratings GROUP BY hdec, agegrp, gender, occupation "
///       "HAVING count(*) > 50 ORDER BY val DESC", catalog);
///
///   // 3. Open a session and summarize under (k, L, D).
///   auto session = core::Session::FromTable(*result, "val");
///   auto solution = (*session)->Summarize({/*k=*/4, /*L=*/8, /*D=*/2});
///
///   // 4. Display the two layers (Figures 1b/1c). UniverseFor returns a
///   //    shared_ptr handle pinning the universe while you render.
///   auto universe = (*session)->UniverseFor(8);
///   std::cout << core::RenderSummary(**universe, *solution)
///             << core::RenderExpanded(**universe, *solution);
///
///   // 5. Interactive exploration: precompute the (k, D) grid once,
///   //    retrieve any combination instantly, chart it, persist it.
///   //    Hold the handle, never a raw pointer extracted from it: the
///   //    handle keeps the grid valid across live-data refreshes, and
///   //    dropping it lets a superseded generation be evicted.
///   auto guidance = (*session)->Guidance(8);
///   auto alt = (*guidance)->Retrieve(/*d=*/1, /*k=*/6);
///   (*session)->SaveGuidance(8, "guidance.store");
///
/// Layer map (see DESIGN.md for the full inventory):
///   storage/    columnar tables, dictionary encoding, CSV
///   sql/        lexer, parser, aggregate-query executor
///   datagen/    MovieLens-like and TPC-DS-like workload generators
///   core/       clusters, semilattice universe, greedy algorithms,
///               precompute + interval-tree store (+ persistence),
///               concept hierarchies, session cache
///   baselines/  smart drill-down, diversified top-k, DisC, MMR,
///               decision trees
///   service/    thread-safe multi-client QueryService: dataset catalog,
///               SQL -> cached answer sets, shared sessions with
///               single-flight builds, per-request statistics
///   server/     dependency-free HTTP/1.1 front end over QueryService
///               (acceptor + worker pool, bounded admission, graceful
///               drain), JSON serde for the api.h structs, open-loop
///               load generator
///   viz/        parameter grid (Fig 2), Sankey comparison + placement
///               optimization (Fig 13-16, A.7)
///   study/      simulated-subject user study (Section 8)

#include "baselines/decision_tree.h"
#include "baselines/disc_diversity.h"
#include "baselines/diversified_topk.h"
#include "baselines/mmr.h"
#include "baselines/smart_drilldown.h"
#include "common/json.h"
#include "core/answer_set.h"
#include "core/bottom_up.h"
#include "core/brute_force.h"
#include "core/cluster.h"
#include "core/explore.h"
#include "core/fixed_order.h"
#include "core/hierarchical_summarizer.h"
#include "core/hierarchy.h"
#include "core/hybrid.h"
#include "core/numeric_distance.h"
#include "core/precompute.h"
#include "core/semilattice.h"
#include "core/session.h"
#include "core/solution.h"
#include "core/solution_store.h"
#include "core/solution_store_io.h"
#include "datagen/answers.h"
#include "datagen/movielens.h"
#include "datagen/store_sales.h"
#include "server/http.h"
#include "server/loadgen.h"
#include "server/serde.h"
#include "server/server.h"
#include "service/api.h"
#include "service/catalog.h"
#include "service/query_service.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "storage/csv.h"
#include "storage/sample.h"
#include "storage/table.h"
#include "study/study.h"
#include "viz/assignment.h"
#include "viz/height_placement.h"
#include "viz/param_grid.h"
#include "viz/sankey.h"

#endif  // QAGVIEW_QAGVIEW_H_
