#ifndef QAGVIEW_SERVICE_PREFETCH_H_
#define QAGVIEW_SERVICE_PREFETCH_H_

#include <vector>

#include "study/trajectory.h"

namespace qagview::service {

/// \brief The exploration-aware prediction policy behind QueryService's
/// prefetcher: maps one observed foreground move to the ranked coverage
/// levels the client will most likely ask for next.
///
/// The predictor is a thin, stateless clamp over the study layer's
/// NextMoveModel (study/trajectory.h): the model supplies ranked level
/// *changes* per move kind, and this class turns them into concrete,
/// in-range, deduplicated target levels for a session with `num_answers`
/// ranked answers. Stateless and immutable, so one instance serves every
/// session and thread.
class ExplorationPredictor {
 public:
  /// `max_predictions` bounds the speculative builds issued per observed
  /// move (clamped to >= 1).
  explicit ExplorationPredictor(int max_predictions = 2);

  /// Levels to prefetch after a move of `kind` at `level`. In model
  /// order (most probable first); every entry is in [1, num_answers] and
  /// differs from `level` (the current level's structures are warm by
  /// definition). Empty when nothing useful can be predicted.
  std::vector<int> NextLevels(study::MoveKind kind, int level,
                              int num_answers) const;

  /// Likely first summarization levels right after Query() opens a
  /// session — warming these makes the session's very first Summarize a
  /// warm read. Same clamping rules as NextLevels.
  std::vector<int> InitialLevels(int num_answers) const;

  int max_predictions() const { return max_predictions_; }

 private:
  int max_predictions_;
};

}  // namespace qagview::service

#endif  // QAGVIEW_SERVICE_PREFETCH_H_
