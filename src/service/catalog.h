#ifndef QAGVIEW_SERVICE_CATALOG_H_
#define QAGVIEW_SERVICE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/executor.h"
#include "storage/sample.h"
#include "storage/table.h"

namespace qagview::service {

/// One immutable table snapshot plus the catalog version it was published
/// at. `table == nullptr` means the dataset is absent. `sample` is the
/// table's uniform reservoir sample, published in the same snapshot as the
/// table version it was drawn from (nullptr when sampling is disabled).
struct TableSnapshot {
  std::shared_ptr<const storage::Table> table;
  std::shared_ptr<const storage::TableSample> sample;
  uint64_t version = 0;
};

/// Point-in-time view of the whole catalog for one SQL execution: a
/// sql::Catalog of raw table pointers, the shared_ptr pins keeping those
/// snapshots alive while the query runs, and the per-table versions the
/// refresh layer records as the query's dependencies.
struct CatalogSnapshot {
  sql::Catalog sql;
  uint64_t catalog_version = 0;
  /// Lower-cased name -> version, for every table in the snapshot.
  std::map<std::string, uint64_t> versions;
  /// Keeps every table in `sql` alive for the snapshot's lifetime.
  std::vector<std::shared_ptr<const storage::Table>> pins;
  /// Keeps every sample registered in `sql` alive alongside its table.
  std::vector<std::shared_ptr<const storage::TableSample>> sample_pins;
};

struct DatasetCatalogOptions {
  /// Reservoir capacity (rows) of the per-dataset uniform sample each
  /// snapshot carries. <= 0 disables sampling: snapshots publish no
  /// samples and approximate execution falls back to exact.
  int sample_capacity = 4096;
};

/// \brief Thread-safe, versioned catalog of the named datasets a
/// QueryService can query — the service-layer analogue of the paper
/// prototype's database schema, extended with live updates.
///
/// Every dataset is an **immutable snapshot**: AppendRows and ReplaceTable
/// never mutate a published table, they publish a new snapshot under the
/// next monotonically increasing catalog version, and readers holding the
/// previous snapshot (in-flight queries, pinned CatalogSnapshots) keep it
/// alive for as long as they need it. Names are case-insensitive, matching
/// `sql::Catalog`.
class DatasetCatalog {
 public:
  explicit DatasetCatalog(DatasetCatalogOptions options = {})
      : options_(options) {}

  /// Takes ownership of `table` under `name` as version snapshot 1 of the
  /// dataset. AlreadyExists if the name is taken (use ReplaceTable to
  /// swap a dataset wholesale).
  Status Register(const std::string& name, storage::Table table);

  /// Loads a CSV file (type-inferred, see storage::ReadCsvFile) and
  /// registers it under `name`.
  Status RegisterCsvFile(const std::string& name, const std::string& path);

  /// Publishes a new snapshot of `name` with `rows` appended (atomic:
  /// either every row is appended or the dataset is unchanged). Existing
  /// readers keep their old snapshot. Returns the new version. NotFound
  /// if the dataset does not exist.
  Result<uint64_t> AppendRows(
      const std::string& name,
      const std::vector<std::vector<storage::Value>>& rows);

  /// Publishes `table` as the new snapshot of `name` (the schema may
  /// change), creating the dataset if absent. Existing readers keep their
  /// old snapshot. Returns the new version.
  Result<uint64_t> ReplaceTable(const std::string& name,
                                storage::Table table);

  /// The current snapshot of `name`; `.table == nullptr` if absent. The
  /// returned shared_ptr keeps the snapshot alive across later updates.
  TableSnapshot Find(const std::string& name) const;

  /// The current version of `name`, or 0 if absent.
  uint64_t TableVersion(const std::string& name) const;

  /// Catalog-wide version: bumps on every Register / AppendRows /
  /// ReplaceTable. 0 = empty, never mutated. Lock-free (one atomic load):
  /// this is the staleness fast path every warm QueryService request takes,
  /// so it must never contend with snapshot readers or writers.
  uint64_t version() const;

  /// Registered names (lower-cased), sorted.
  std::vector<std::string> names() const;

  int size() const;

  /// A pinned point-in-time view of all current tables for one query
  /// execution: the sql::Catalog plus the versions and pins described on
  /// CatalogSnapshot.
  CatalogSnapshot Snapshot() const;

 private:
  struct Entry {
    TableSnapshot snapshot;
    /// Serializes writers to THIS dataset across the read-clone-publish
    /// window of AppendRows/ReplaceTable (lost-update guard) without
    /// blocking writers to other datasets; readers only ever take mu_.
    /// Shared so a writer can hold it while mu_ is released.
    std::shared_ptr<std::mutex> writer;
    /// The dataset's incremental reservoir sampler. Mutated only while the
    /// dataset's writer mutex is held (AppendRows feeds batches in;
    /// ReplaceTable installs a fresh one); readers see only the immutable
    /// TableSample snapshots it emits. Nullptr when sampling is disabled.
    std::shared_ptr<storage::ReservoirSampler> sampler;
  };

  /// Deterministic per-dataset sampler seed (FNV-1a of the lower-cased
  /// name): the sample stream depends only on (name, row stream), so
  /// rebuilding a catalog from the same inputs reproduces every sample.
  static uint64_t SampleSeed(const std::string& key);

  /// A fresh sampler over `table` (nullptr when sampling is disabled).
  std::shared_ptr<storage::ReservoirSampler> MakeSampler(
      const std::string& key, const storage::Table& table) const;

  const DatasetCatalogOptions options_;
  mutable std::shared_mutex mu_;
  /// Written only under mu_ exclusive (writers are serialized); atomic so
  /// version() reads it without the lock. A bump is published (release)
  /// after the new table snapshot is installed in tables_, so a reader
  /// that observes the new version and then takes mu_ sees the snapshot.
  std::atomic<uint64_t> version_{0};
  // Keyed by lower-cased name. Entries are never erased, so a writer
  // mutex fetched under mu_ stays the dataset's writer mutex forever.
  std::map<std::string, Entry> tables_;
};

}  // namespace qagview::service

#endif  // QAGVIEW_SERVICE_CATALOG_H_
