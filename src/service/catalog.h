#ifndef QAGVIEW_SERVICE_CATALOG_H_
#define QAGVIEW_SERVICE_CATALOG_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/executor.h"
#include "storage/table.h"

namespace qagview::service {

/// \brief Thread-safe catalog of the named datasets a QueryService can
/// query — the service-layer analogue of the paper prototype's database
/// schema (CSV- or datagen-loaded tables instead of PostgreSQL relations).
///
/// Tables are owned by the catalog and **immutable once registered**:
/// registration under an existing name fails rather than replacing, so
/// table pointers handed to the SQL executor (or captured by in-flight
/// queries) stay valid for the catalog's lifetime. Names are
/// case-insensitive, matching `sql::Catalog`.
class DatasetCatalog {
 public:
  /// Takes ownership of `table` under `name`. AlreadyExists if the name is
  /// taken (tables are never replaced; see class comment).
  Status Register(const std::string& name, storage::Table table);

  /// Loads a CSV file (type-inferred, see storage::ReadCsvFile) and
  /// registers it under `name`.
  Status RegisterCsvFile(const std::string& name, const std::string& path);

  /// The table registered under `name`, or nullptr. The pointer stays
  /// valid for the catalog's lifetime.
  const storage::Table* Find(const std::string& name) const;

  /// Registered names (lower-cased), sorted.
  std::vector<std::string> names() const;

  int size() const;

  /// A sql::Catalog view over the current tables for one query execution.
  /// The view holds non-owning pointers; since tables are never removed,
  /// it stays valid even if other threads register more datasets.
  sql::Catalog SqlCatalog() const;

 private:
  mutable std::shared_mutex mu_;
  // Keyed by lower-cased name.
  std::map<std::string, std::unique_ptr<storage::Table>> tables_;
};

}  // namespace qagview::service

#endif  // QAGVIEW_SERVICE_CATALOG_H_
